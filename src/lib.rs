//! TPFTL reproduction suite — facade crate.
//!
//! Re-exports every crate of the workspace so examples and integration
//! tests can use a single dependency. See the individual crates for the
//! real documentation:
//!
//! * [`flash`] — NAND flash device model.
//! * [`trace`] — I/O traces: parsers and synthetic workload generators.
//! * [`core`] — the FTL framework and the page-level FTLs (TPFTL, DFTL,
//!   S-FTL, CDFTL, optimal, block-level).
//! * [`sim`] — the trace-driven SSD simulator.
//! * [`models`] — the paper's analytical models (Section 3.1).
//! * [`experiments`] — per-table/figure experiment harness.

pub use tpftl_core as core;
pub use tpftl_experiments as experiments;
pub use tpftl_flash as flash;
pub use tpftl_models as models;
pub use tpftl_sim as sim;
pub use tpftl_trace as trace;
