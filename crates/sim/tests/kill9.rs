//! Integration test for the `crash-replay` kill-9 harness.
//!
//! Drives the real binary (the same one CI sweeps with): children are
//! genuine subprocesses replaying against a device file and dying of
//! `SIGKILL` mid-op; the parent process remounts each image cold and
//! judges durability. A small point count keeps `cargo test` fast — the
//! wide sweep runs in CI via `--quick` and locally via `--exhaustive`.

use std::os::unix::process::ExitStatusExt;
use std::path::PathBuf;
use std::process::Command;

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_crash-replay")
}

fn temp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tpftl_kill9_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

/// A small randomized sweep: every child must die of `SIGKILL`, every
/// image must remount, and the oracle must find zero durability
/// violations — reported both by the exit code and the JSON artifact.
#[test]
fn kill9_sweep_is_durable() {
    let dir = temp_dir("sweep");
    let out = dir.join("CRASH_matrix_file.json");
    let status = Command::new(exe())
        .args(["--points", "12", "--requests", "150", "--seed", "7"])
        .args(["--dir", &dir.display().to_string()])
        .args(["--out", &out.display().to_string()])
        .status()
        .expect("run sweep");
    assert!(status.success(), "sweep reported violations: {status:?}");

    let json = std::fs::read_to_string(&out).expect("read artifact");
    assert!(json.contains("\"schema\": \"crash-replay-file-v1\""));
    assert!(json.contains("\"kill_points\": 12"));
    // Kill points are drawn below each FTL's op horizon, so every child
    // dies mid-run; a child that exits cleanly would mean the sweep
    // tested nothing.
    assert!(
        json.contains("\"children_sigkilled\": 12"),
        "expected all 12 children SIGKILLed:\n{json}"
    );
    assert!(
        !json.contains("unmapped after kill"),
        "violations in:\n{json}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One child driven by hand: it must die of signal 9 exactly (not a
/// panic, not an abort), leave a mountable image behind, and log its
/// acknowledged writes to the sidecar file.
#[test]
fn child_dies_of_sigkill_and_leaves_a_mountable_image() {
    let dir = temp_dir("child");
    let img = dir.join("dev.img");
    let acks = dir.join("dev.acks");
    let status = Command::new(exe())
        .arg("child")
        .args(["--img", &img.display().to_string()])
        .args(["--acks", &acks.display().to_string()])
        .args(["--ftl", "tpftl", "--kill-at", "40", "--tear", "1000"])
        .args(["--requests", "150", "--seed", "7"])
        .status()
        .expect("run child");
    assert_eq!(status.signal(), Some(9), "child must die of SIGKILL");
    assert_eq!(status.code(), None, "SIGKILL leaves no exit code");

    let acked = std::fs::read(&acks).expect("acks file exists");
    assert!(!acked.is_empty(), "prefill acks must be logged");
    let flash = tpftl_flash::Flash::open_file(&img).expect("image mounts after kill -9");
    assert!(flash.scan_valid().next().is_some(), "device retains pages");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kill point beyond the run: the child completes the trace, flushes,
/// and exits 0 — and the image then satisfies the oracle for *every*
/// write in the trace.
#[test]
fn child_with_unreachable_kill_point_exits_clean() {
    let dir = temp_dir("clean");
    let img = dir.join("dev.img");
    let acks = dir.join("dev.acks");
    let status = Command::new(exe())
        .arg("child")
        .args(["--img", &img.display().to_string()])
        .args(["--acks", &acks.display().to_string()])
        .args(["--ftl", "dftl"])
        .args(["--kill-at", &u64::MAX.to_string(), "--tear", "0"])
        .args(["--requests", "80", "--seed", "3"])
        .status()
        .expect("run child");
    assert!(status.success(), "child must exit 0: {status:?}");
    assert!(tpftl_flash::Flash::open_file(&img).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
