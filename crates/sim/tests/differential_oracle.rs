//! Cross-FTL differential oracle: every FTL is a different implementation
//! of the *same* address-translation contract, so replaying one fixed-seed
//! mixed trace through DFTL, CDFTL, S-FTL, TPFTL, LearnedFTL, and the
//! Optimal pure-RAM baseline must produce identical read-your-writes
//! behaviour. A host-side shadow map (`HashMap<Lpn, u64>`, LPN → write
//! version) is the ground truth all six are checked against — and then
//! against each other.

use std::collections::HashMap;

use tpftl_core::driver;
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::{
    AccessCtx, Cdftl, Dftl, Ftl, LearnedFtl, OptimalFtl, Sftl, TpFtl, TpftlConfig,
};
use tpftl_core::{gc, SsdConfig};
use tpftl_flash::Lpn;
use tpftl_trace::{IoRequest, SyntheticSpec};

const PAGE_BYTES: u64 = 4096;

fn config() -> SsdConfig {
    let mut c = SsdConfig::paper_default(8 << 20);
    // Starve the cache so the demand-paging FTLs actually evict and fetch.
    c.cache_bytes = c.gtd_bytes() + 10 * 1024;
    c
}

fn ftls(c: &SsdConfig) -> Vec<Box<dyn Ftl>> {
    vec![
        Box::new(Dftl::new(c).expect("budget")),
        Box::new(Cdftl::new(c).expect("budget")),
        Box::new(Sftl::new(c).expect("budget")),
        Box::new(TpFtl::new(c, TpftlConfig::full()).expect("budget")),
        Box::new(LearnedFtl::new(c).expect("budget")),
        Box::new(OptimalFtl::new(c)),
    ]
}

fn trace() -> Vec<IoRequest> {
    let spec = SyntheticSpec {
        requests: 2_000,
        address_bytes: 8 << 20,
        write_ratio: 0.6,
        mean_req_sectors: 16.0,
        ..SyntheticSpec::default()
    };
    spec.iter(1234).collect()
}

/// Replays the trace through one FTL, shadowing every write, then reads
/// back every logical page and returns the sorted list of mapped LPNs.
///
/// Every read inside the trace is already an oracle: the environment
/// verifies the out-of-band tag of the page the FTL translated to, so a
/// stale or cross-wired mapping fails the replay immediately.
fn replay(mut ftl: Box<dyn Ftl>, c: &SsdConfig, reqs: &[IoRequest]) -> (Vec<Lpn>, u64) {
    let name = ftl.name();
    let mut env = SsdEnv::new(c.clone()).expect("env");
    driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");

    // Host-side shadow of every acknowledged write: LPN → version.
    let mut shadow: HashMap<Lpn, u64> = HashMap::new();
    let prefilled = (c.logical_pages() as f64 * c.prefill_frac) as u64;
    for lpn in 0..prefilled as Lpn {
        shadow.insert(lpn, 0);
    }

    for req in reqs {
        let first = (req.offset / PAGE_BYTES) as Lpn;
        let count = req.page_count(PAGE_BYTES) as u32;
        driver::serve_request(ftl.as_mut(), &mut env, first, count, req.is_write())
            .unwrap_or_else(|e| panic!("{name}: serve failed: {e}"));
        if req.is_write() {
            for lpn in req.pages(PAGE_BYTES) {
                *shadow.entry(lpn as Lpn).or_insert(0) += 1;
            }
        }
    }

    // Read-your-writes sweep over the whole logical space: exactly the
    // shadowed LPNs must be mapped, and each must read back its own tag.
    let mut mapped = Vec::new();
    for lpn in 0..c.logical_pages() as Lpn {
        gc::ensure_free(ftl.as_mut(), &mut env).expect("gc");
        let ppn = ftl
            .translate(&mut env, lpn, &AccessCtx::single(false))
            .unwrap_or_else(|e| panic!("{name}: translate({lpn}) failed: {e}"));
        assert_eq!(
            ppn.is_some(),
            shadow.contains_key(&lpn),
            "{name}: LPN {lpn} mapped={} but shadow says written={}",
            ppn.is_some(),
            shadow.contains_key(&lpn)
        );
        if let Some(ppn) = ppn {
            env.read_data_page(ppn, lpn)
                .unwrap_or_else(|e| panic!("{name}: LPN {lpn} readback failed: {e}"));
            mapped.push(lpn);
        }
    }
    (mapped, shadow.len() as u64)
}

fn run_differential(c: &SsdConfig) {
    let reqs = trace();
    let mut results: Vec<(String, Vec<Lpn>, u64)> = Vec::new();
    for ftl in ftls(c) {
        let name = ftl.name();
        let (mapped, shadowed) = replay(ftl, c, &reqs);
        assert_eq!(
            mapped.len() as u64,
            shadowed,
            "{name}: mapped pages must equal shadowed writes"
        );
        results.push((name, mapped, shadowed));
    }
    // Differential step: all six FTLs expose the identical logical state.
    let (ref_name, ref_mapped, _) = &results[0];
    for (name, mapped, _) in &results[1..] {
        assert_eq!(
            mapped, ref_mapped,
            "{name} and {ref_name} disagree on the set of readable pages"
        );
    }
    // And the trace must have actually mixed reads, writes, and overwrites.
    assert!(
        !ref_mapped.is_empty(),
        "trace wrote nothing — oracle is vacuous"
    );
}

#[test]
fn all_ftls_agree_on_read_your_writes() {
    run_differential(&config());
}

/// The same oracle under the multi-stream GC data plane: two hot/cold
/// streams plus windowed victim selection must not change read-your-writes
/// behaviour for any FTL — stream placement moves pages between blocks,
/// never between logical identities.
#[test]
fn all_ftls_agree_with_two_streams_and_windowed_gc() {
    let mut c = config();
    c.streams = tpftl_core::config::StreamCount(2);
    c.gc_policy = tpftl_core::config::GcPolicy::Windowed { window: 8 };
    run_differential(&c);
}

/// Adversarial trace for the learned mapping: a fully pre-filled device
/// (so warm-up learns the whole table) churned by overwrite-heavy traffic
/// that relocates pages, splits segments, and forces GC-batch refits over
/// scattered payloads. Stale or ε-inexact segments must surface as
/// *mispredicts* — validated rejections routed to the fallback — never as
/// a wrong answer: every read inside the replay and the final sweep
/// verifies the OOB tag of the page the FTL translated to.
#[test]
fn learned_ftl_overwrite_churn_mispredicts_safely() {
    let mut c = config();
    c.prefill_frac = 1.0;
    let spec = SyntheticSpec {
        requests: 3_000,
        address_bytes: 8 << 20,
        write_ratio: 0.9,
        mean_req_sectors: 8.0,
        ..SyntheticSpec::default()
    };
    let reqs: Vec<IoRequest> = spec.iter(1234).collect();

    let mut ftl = LearnedFtl::new(&c).expect("budget");
    let mut env = SsdEnv::new(c.clone()).expect("env");
    driver::bootstrap(&mut ftl, &mut env).expect("bootstrap");

    for req in &reqs {
        let first = (req.offset / PAGE_BYTES) as Lpn;
        let count = req.page_count(PAGE_BYTES) as u32;
        driver::serve_request(&mut ftl, &mut env, first, count, req.is_write())
            .expect("serve survives churn");
    }
    // Full read sweep: the environment panics on any OOB tag mismatch, so
    // a mispredict that slipped past validation cannot hide here.
    for lpn in 0..c.logical_pages() as Lpn {
        gc::ensure_free(&mut ftl, &mut env).expect("gc");
        let ppn = ftl
            .translate(&mut env, lpn, &AccessCtx::single(false))
            .expect("translate")
            .unwrap_or_else(|| panic!("prefilled LPN {lpn} lost its mapping"));
        env.read_data_page(ppn, lpn).expect("readback");
    }

    let s = &env.stats;
    assert!(
        s.predict_hits > 0,
        "learned index never validated a prediction — the trace is vacuous"
    );
    assert!(
        s.mispredicts > 0,
        "overwrite churn produced no mispredicts — the adversarial trace \
         no longer exercises stale/inexact segments"
    );
}
