//! Randomized exactly-once/FIFO property test for the NVMe-style queue
//! pairs behind the sharded engine.
//!
//! The sharded replay and open-loop tests in `shard.rs` exercise the
//! queues through real FTL traffic; this suite attacks the rings
//! directly with adversarial shapes the engine never produces — tiny
//! depths, random batch sizes, many queues per host thread — and checks
//! the two properties every transport above them assumes:
//!
//! 1. **Exactly once**: every submitted command is completed exactly
//!    once — nothing lost at the full/empty boundaries or at close, and
//!    nothing duplicated by a doorbell race.
//! 2. **Per-queue FIFO**: completions arrive in submission order on
//!    their own queue pair (a single worker services each SQ in order
//!    and the CQ is a FIFO ring).

use tpftl_rng::Rng64;
use tpftl_sim::QueuePair;

/// Drives `cmds` commands through one queue pair in random-size bursts,
/// returning the completion stream in arrival order.
fn echo_round_trip(rng: &mut Rng64, sq_depth: usize, cq_depth: usize, cmds: u64) -> Vec<u64> {
    let pair = std::sync::Arc::new(QueuePair::<u64, u64>::new(sq_depth, cq_depth));
    let worker = {
        let pair = std::sync::Arc::clone(&pair);
        std::thread::spawn(move || {
            while let Some(id) = pair.sq.pop_blocking() {
                pair.cq.push_blocking(id);
            }
            pair.cq.close();
        })
    };
    let mut done = Vec::with_capacity(cmds as usize);
    let mut next = 0u64;
    while next < cmds {
        // Bursts deliberately overshoot the SQ depth so both the
        // ring-full path (drain callback) and the batched-harvest path
        // get exercised.
        let burst = rng.next_u64() % (2 * sq_depth as u64) + 1;
        for _ in 0..burst.min(cmds - next) {
            pair.sq.push_yielding(next, || {
                while let Some(id) = pair.cq.try_pop() {
                    done.push(id);
                }
            });
            next += 1;
        }
        // Occasionally harvest outside the full-ring fallback too.
        if rng.gen_bool(0.5) {
            while let Some(id) = pair.cq.try_pop() {
                done.push(id);
            }
        }
    }
    pair.sq.close();
    while let Some(id) = pair.cq.pop_blocking() {
        done.push(id);
    }
    worker.join().expect("worker panicked");
    done
}

#[test]
fn every_command_completes_exactly_once_in_fifo_order() {
    let mut rng = Rng64::seed_from_u64(0x9e3779b97f4a7c15);
    for trial in 0..24 {
        let sq_depth = 1 << (rng.next_u64() % 7 + 1); // 2..=128
        let cq_depth = 1 << (rng.next_u64() % 7 + 1);
        let cmds = rng.next_u64() % 4_000 + 100;
        let done = echo_round_trip(&mut rng, sq_depth, cq_depth, cmds);
        assert_eq!(
            done.len() as u64,
            cmds,
            "trial {trial} (sq {sq_depth}, cq {cq_depth}): \
             {} of {cmds} commands completed",
            done.len()
        );
        for (i, id) in done.iter().enumerate() {
            assert_eq!(
                *id, i as u64,
                "trial {trial} (sq {sq_depth}, cq {cq_depth}): \
                 completion {i} out of order"
            );
        }
    }
}

#[test]
fn concurrent_queue_pairs_preserve_per_queue_fifo() {
    let mut rng = Rng64::seed_from_u64(2015);
    for _trial in 0..6 {
        let queues: usize = (rng.next_u64() % 3 + 2) as usize; // 2..=4
        let sq_depth = 1 << (rng.next_u64() % 5 + 1); // 2..=32
        let cmds_per_queue = rng.next_u64() % 1_500 + 200;
        let pairs: Vec<_> = (0..queues)
            .map(|_| std::sync::Arc::new(QueuePair::<u64, u64>::new(sq_depth, 2 * sq_depth)))
            .collect();
        let workers: Vec<_> = pairs
            .iter()
            .map(|pair| {
                let pair = std::sync::Arc::clone(pair);
                std::thread::spawn(move || {
                    while let Some(id) = pair.sq.pop_blocking() {
                        pair.cq.push_blocking(id);
                    }
                    pair.cq.close();
                })
            })
            .collect();
        // One host thread multiplexes all queues, the way the open-loop
        // generator does: random interleaving of per-queue submissions,
        // harvesting every CQ whenever any SQ pushes back.
        let mut submitted = vec![0u64; queues];
        let mut done: Vec<Vec<u64>> = vec![Vec::new(); queues];
        while submitted.iter().any(|&s| s < cmds_per_queue) {
            let q = (rng.next_u64() % queues as u64) as usize;
            if submitted[q] == cmds_per_queue {
                continue;
            }
            let id = submitted[q];
            pairs[q].sq.push_yielding(id, || {
                for (dq, pair) in pairs.iter().enumerate() {
                    while let Some(id) = pair.cq.try_pop() {
                        done[dq].push(id);
                    }
                }
            });
            submitted[q] += 1;
        }
        for pair in &pairs {
            pair.sq.close();
        }
        for (q, pair) in pairs.iter().enumerate() {
            while let Some(id) = pair.cq.pop_blocking() {
                done[q].push(id);
            }
        }
        for w in workers {
            w.join().expect("worker panicked");
        }
        for (q, stream) in done.iter().enumerate() {
            assert_eq!(
                stream.len() as u64,
                cmds_per_queue,
                "queue {q} lost commands"
            );
            for (i, id) in stream.iter().enumerate() {
                assert_eq!(*id, i as u64, "queue {q} completion {i} out of order");
            }
        }
    }
}
