//! Exhaustive crash-point sweep: inject a power loss at *every* flash-op
//! index of a fixed 500-request trace and prove the durability invariant
//! holds at each one — no acknowledged write is lost, no mapping points at
//! a torn or dead page, and `recovery::verify` is clean after remount.
//!
//! This is a loop over every op index, not a sample: if any single
//! interleaving of (program, invalidate, erase) can lose data, this test
//! finds it.

use tpftl_core::ftl::{LearnedFtl, TpFtl, TpftlConfig};
use tpftl_core::SsdConfig;
use tpftl_flash::FaultPlan;
use tpftl_sim::CrashHarness;
use tpftl_trace::SyntheticSpec;

fn config() -> SsdConfig {
    // Small device so the full sweep stays fast, cache starved enough to
    // force translation-page traffic, prefill high enough to force GC.
    let mut c = SsdConfig::paper_default(4 << 20);
    c.cache_bytes = c.gtd_bytes() + 1024;
    c.prefill_frac = 0.6;
    c
}

fn trace() -> Vec<tpftl_trace::IoRequest> {
    let spec = SyntheticSpec {
        requests: 500,
        address_bytes: 4 << 20,
        write_ratio: 0.7,
        mean_req_sectors: 8.0,
        ..SyntheticSpec::default()
    };
    spec.iter(42).collect()
}

fn ftl(c: &SsdConfig) -> TpFtl {
    TpFtl::new(c, TpftlConfig::full()).expect("budget")
}

/// The tentpole acceptance test: every op index, zero violations.
#[test]
fn power_loss_at_every_op_index_is_recoverable() {
    let h = CrashHarness::new(config(), trace());
    let horizon = h.baseline_ops(ftl(h.config())).expect("baseline");
    assert!(
        horizon > 1_000,
        "trace too small to be interesting: {horizon}"
    );

    let mut interrupted_kinds = std::collections::BTreeSet::new();
    for op in 0..horizon {
        let out = h
            .run_to_crash(ftl(h.config()), FaultPlan::at_op(op))
            .unwrap_or_else(|e| panic!("op {op}: harness error {e}"));
        assert!(
            out.is_durable(),
            "op {op} ({:?}): {} violations, {} verify errors\n{}\n{}",
            out.recovery.interrupted,
            out.violations.len(),
            out.verify.errors.len(),
            out.violations.join("\n"),
            out.verify.errors.join("\n")
        );
        let fired = out
            .recovery
            .interrupted
            .unwrap_or_else(|| panic!("op {op} below the horizon must fire"));
        assert_eq!(fired.op_index, op);
        interrupted_kinds.insert(format!("{:?}", fired.kind));
    }
    // The sweep must have exercised interrupted reads, writes, and erases.
    assert!(
        interrupted_kinds.len() >= 3,
        "sweep only interrupted {interrupted_kinds:?}"
    );
}

/// The same exhaustive sweep for the learned FTL: its piecewise-linear
/// segments are RAM-only acceleration state, so a power loss at any op
/// index must recover to the identical durable answer the demand-paged
/// table gives — recovery discards the learned index wholesale and the
/// remounted device depends only on persisted translation pages.
#[test]
fn learned_ftl_power_loss_at_every_op_index_is_recoverable() {
    let h = CrashHarness::new(config(), trace());
    let build = || LearnedFtl::new(h.config()).expect("budget");
    let horizon = h.baseline_ops(build()).expect("baseline");
    assert!(
        horizon > 1_000,
        "trace too small to be interesting: {horizon}"
    );
    for op in 0..horizon {
        let out = h
            .run_to_crash(build(), FaultPlan::at_op(op))
            .unwrap_or_else(|e| panic!("op {op}: harness error {e}"));
        assert!(
            out.is_durable(),
            "op {op} ({:?}): {} violations, {} verify errors\n{}\n{}",
            out.recovery.interrupted,
            out.violations.len(),
            out.verify.errors.len(),
            out.violations.join("\n"),
            out.verify.errors.join("\n")
        );
    }
}

/// The exhaustive sweep under the multi-stream GC data plane: stream
/// assignment is volatile RAM state (the write-temperature estimator is
/// rebuilt cold on mount), so a crash at any op index with two open data
/// streams and windowed victim selection must recover exactly like the
/// single-stream device — durable pages identify themselves through their
/// OOB tags regardless of which stream's block they landed in.
#[test]
fn two_stream_power_loss_at_every_op_index_is_recoverable() {
    let mut c = config();
    c.streams = tpftl_core::config::StreamCount(2);
    c.gc_policy = tpftl_core::config::GcPolicy::Windowed { window: 8 };
    let h = CrashHarness::new(c, trace());
    let horizon = h.baseline_ops(ftl(h.config())).expect("baseline");
    assert!(
        horizon > 1_000,
        "trace too small to be interesting: {horizon}"
    );
    for op in 0..horizon {
        let out = h
            .run_to_crash(ftl(h.config()), FaultPlan::at_op(op))
            .unwrap_or_else(|e| panic!("op {op}: harness error {e}"));
        assert!(
            out.is_durable(),
            "op {op} ({:?}): {} violations, {} verify errors\n{}\n{}",
            out.recovery.interrupted,
            out.violations.len(),
            out.verify.errors.len(),
            out.violations.join("\n"),
            out.verify.errors.join("\n")
        );
    }
}

/// The other trigger modes — Kth translation-page write, Kth erase —
/// reach states the flat op sweep also covers, but must fire where they
/// say they do.
#[test]
fn translation_write_and_erase_triggers_are_recoverable() {
    let h = CrashHarness::new(config(), trace());
    for k in [0, 1, 7, 40] {
        let out = h
            .run_to_crash(ftl(h.config()), FaultPlan::on_translation_write(k))
            .expect("harness");
        out.assert_durable();
        let out = h
            .run_to_crash(ftl(h.config()), FaultPlan::on_erase(k))
            .expect("harness");
        out.assert_durable();
    }
}

/// Seeded plans are deterministic: the same seed produces bit-identical
/// outcomes (including the serialized recovery report), different seeds
/// pick different crash points.
#[test]
fn seeded_plans_are_deterministic() {
    let h = CrashHarness::new(config(), trace());
    let horizon = h.baseline_ops(ftl(h.config())).expect("baseline");
    let a = h
        .run_to_crash(ftl(h.config()), FaultPlan::seeded(9, horizon))
        .expect("run");
    let b = h
        .run_to_crash(ftl(h.config()), FaultPlan::seeded(9, horizon))
        .expect("run");
    assert_eq!(a, b, "same seed must reproduce the same crash + recovery");
    a.assert_durable();
    b.assert_durable();
}
