//! File-backed vs RAM-backed differential test.
//!
//! The file backing is a *mirror*: attaching it must not change a single
//! observable bit of device behaviour. For all six FTLs, the same
//! fixed-seed trace replayed on a RAM device and on a file-backed device
//! must produce bit-identical run reports (op counters, response-time
//! float bits, golden fingerprints ride on these), bit-identical flash
//! state — and, after a full power cycle of the file-backed device
//! (reopened purely from media), bit-identical remount outcomes.
//!
//! A second sweep compares the crash harness's RAM path against its
//! file-backed path under injected power loss for the five
//! mapping-persisting FTLs: `CrashOutcome`s must match exactly.

use std::path::PathBuf;

use tpftl_core::ftl::{Cdftl, Dftl, Ftl, LearnedFtl, OptimalFtl, Sftl, TpFtl, TpftlConfig};
use tpftl_core::{recovery, SsdConfig};
use tpftl_flash::{FaultPlan, Flash, Lpn};
use tpftl_sim::{CrashHarness, Ssd};
use tpftl_trace::{IoRequest, SyntheticSpec};

fn config() -> SsdConfig {
    let mut c = SsdConfig::paper_default(4 << 20);
    c.cache_bytes = c.gtd_bytes() + 10 * 1024;
    c.prefill_frac = 0.6;
    c
}

fn ftls(c: &SsdConfig) -> Vec<Box<dyn Ftl>> {
    vec![
        Box::new(Dftl::new(c).expect("budget")),
        Box::new(Cdftl::new(c).expect("budget")),
        Box::new(Sftl::new(c).expect("budget")),
        Box::new(TpFtl::new(c, TpftlConfig::full()).expect("budget")),
        Box::new(LearnedFtl::new(c).expect("budget")),
        Box::new(OptimalFtl::new(c)),
    ]
}

fn trace() -> Vec<IoRequest> {
    let spec = SyntheticSpec {
        requests: 300,
        address_bytes: 4 << 20,
        write_ratio: 0.7,
        mean_req_sectors: 8.0,
        ..SyntheticSpec::default()
    };
    spec.iter(42).collect()
}

fn temp_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("tpftl_diff_{}_{name}.img", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Clean replay: reports, flash state, and post-power-cycle remount
/// outcomes are bit-identical between RAM and file backing, for all six
/// FTLs (Optimal included — it persists no translation pages, and its
/// mirrored data pages must still round-trip).
#[test]
fn file_backing_is_bit_identical_to_ram_for_all_ftls() {
    let c = config();
    let reqs = trace();
    for (ram_ftl, file_ftl) in ftls(&c).into_iter().zip(ftls(&c)) {
        let name = ram_ftl.name();
        let path = temp_path(&name.replace(['(', ')', '-'], "_"));

        let mut ram_ssd = Ssd::new(ram_ftl, c.clone()).expect("ram ssd");
        let ram_report = ram_ssd.run(reqs.iter().cloned()).expect("ram run");

        let flash = Flash::create_file(c.geometry(), &path).expect("create");
        let mut file_ssd = Ssd::with_flash(file_ftl, c.clone(), flash).expect("file ssd");
        let file_report = file_ssd.run(reqs.iter().cloned()).expect("file run");

        // Op counters, golden-fingerprint inputs, response-time float
        // bits: the mirror must cost zero observable behaviour.
        assert_eq!(ram_report, file_report, "{name}: run reports diverge");
        assert_eq!(
            serde_json::to_string(&ram_report).expect("json"),
            serde_json::to_string(&file_report).expect("json"),
            "{name}: serialized reports diverge"
        );

        let ram_flash = ram_ssd.into_env().into_flash();
        let file_flash_live = file_ssd.into_env().into_flash();
        let live_valid: Vec<_> = file_flash_live.scan_valid().collect();
        assert_eq!(
            ram_flash.scan_valid().collect::<Vec<_>>(),
            live_valid,
            "{name}: live flash state diverges"
        );

        // Power cycle the file-backed device: drop every byte of RAM
        // state, reopen from media alone.
        drop(file_flash_live);
        let file_flash = Flash::open_file(&path).expect("reopen");
        assert_eq!(
            ram_flash.scan_valid().collect::<Vec<_>>(),
            file_flash.scan_valid().collect::<Vec<_>>(),
            "{name}: remounted flash state diverges"
        );

        // Remount outcomes: recovery reports, verify reports, and every
        // persisted lookup must agree bit for bit.
        let (ram_env, ram_rec) = recovery::crash_mount(ram_flash, c.clone()).expect("ram mount");
        let (file_env, file_rec) =
            recovery::crash_mount(file_flash, c.clone()).expect("file mount");
        assert_eq!(ram_rec, file_rec, "{name}: recovery reports diverge");
        assert_eq!(
            recovery::verify(&ram_env),
            recovery::verify(&file_env),
            "{name}: verify reports diverge"
        );
        for lpn in 0..c.logical_pages() as Lpn {
            assert_eq!(
                recovery::lookup(&ram_env, lpn),
                recovery::lookup(&file_env, lpn),
                "{name}: persisted lookup of LPN {lpn} diverges"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Injected power loss: the crash harness's file-backed path (full power
/// cycle through the device file) must reach the exact same
/// `CrashOutcome` as its RAM path, across FTLs and crash points.
#[test]
fn crash_outcomes_match_between_ram_and_file_paths() {
    let c = config();
    let h = CrashHarness::new(c.clone(), trace());
    type Mk = fn(&SsdConfig) -> Box<dyn Ftl>;
    let kinds: Vec<(&str, Mk)> = vec![
        ("dftl", |c| Box::new(Dftl::new(c).expect("budget"))),
        ("cdftl", |c| Box::new(Cdftl::new(c).expect("budget"))),
        ("sftl", |c| Box::new(Sftl::new(c).expect("budget"))),
        ("tpftl", |c| {
            Box::new(TpFtl::new(c, TpftlConfig::full()).expect("budget"))
        }),
        ("learned", |c| Box::new(LearnedFtl::new(c).expect("budget"))),
    ];
    for (key, mk) in kinds {
        let path = temp_path(&format!("crash_{key}"));
        let ops = h.baseline_ops(mk(&c)).expect("baseline");
        for at in [ops / 5, ops / 2, 4 * ops / 5, u64::MAX] {
            let ram = h
                .run_to_crash(mk(&c), FaultPlan::at_op(at))
                .expect("ram run");
            let file = h
                .run_to_crash_backed(mk(&c), FaultPlan::at_op(at), &path)
                .expect("file run");
            assert_eq!(ram, file, "{key}: outcomes diverge at op {at}");
            ram.assert_durable();
            file.assert_durable();
        }
        let _ = std::fs::remove_file(&path);
    }
}
