//! The simulated SSD: an FTL + environment + FIFO timing model.

use tpftl_core::driver;
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::{AccessCtx, Ftl};
use tpftl_core::{Result, SsdConfig};
use tpftl_flash::Lpn;
use tpftl_trace::IoRequest;

use crate::{CacheSampler, LatencyHistogram, RunReport, SimTiming, WriteBuffer};

/// 4 KB pages everywhere (Table 3).
const PAGE_BYTES: u64 = 4096;

/// A simulated SSD running one FTL.
///
/// # Examples
///
/// ```
/// use tpftl_core::ftl::{TpFtl, TpftlConfig};
/// use tpftl_core::SsdConfig;
/// use tpftl_sim::Ssd;
/// use tpftl_trace::SyntheticSpec;
///
/// let config = SsdConfig::paper_default(16 << 20);
/// let ftl = TpFtl::new(&config, TpftlConfig::full()).unwrap();
/// let mut ssd = Ssd::new(ftl, config).unwrap();
/// let spec = SyntheticSpec {
///     requests: 500,
///     address_bytes: 16 << 20,
///     ..SyntheticSpec::default()
/// };
/// let report = ssd.run(spec.iter(42)).unwrap();
/// assert_eq!(report.ftl_stats.requests, 500);
/// ```
pub struct Ssd<F: Ftl> {
    ftl: F,
    env: SsdEnv,
    sampler: Option<CacheSampler>,
    buffer: Option<WriteBuffer>,
    /// Time at which the device becomes idle.
    device_free_us: f64,
    response_sum_us: f64,
    responses: u64,
    /// Unit-clock model: completion time of the previous request (requests
    /// are still served in arrival order, but their flash ops spread over
    /// the channel/way units).
    sim_free_us: f64,
    /// Sum of per-request simulated busy spans (completion − start).
    sim_span_us: f64,
    sim_resp_sum_us: f64,
    sim_hist: LatencyHistogram,
}

impl<F: Ftl> Ssd<F> {
    /// Builds and bootstraps (pre-fill + format + stats reset) an SSD.
    pub fn new(mut ftl: F, config: SsdConfig) -> Result<Self> {
        let mut env = SsdEnv::new(config)?;
        driver::bootstrap(&mut ftl, &mut env)?;
        Ok(Self {
            ftl,
            env,
            sampler: None,
            buffer: None,
            device_free_us: 0.0,
            response_sum_us: 0.0,
            responses: 0,
            sim_free_us: 0.0,
            sim_span_us: 0.0,
            sim_resp_sum_us: 0.0,
            sim_hist: LatencyHistogram::new(),
        })
    }

    /// Like [`Ssd::new`], but bootstraps on a prebuilt flash device —
    /// typically a file-backed one from `tpftl_flash::Flash::create_file`,
    /// so the whole run (including bootstrap) is mirrored to the device
    /// file. The device must be fully erased and match `config`'s
    /// geometry.
    pub fn with_flash(mut ftl: F, config: SsdConfig, flash: tpftl_flash::Flash) -> Result<Self> {
        let mut env = SsdEnv::with_flash(config, flash)?;
        driver::bootstrap(&mut ftl, &mut env)?;
        Ok(Self {
            ftl,
            env,
            sampler: None,
            buffer: None,
            device_free_us: 0.0,
            response_sum_us: 0.0,
            responses: 0,
            sim_free_us: 0.0,
            sim_span_us: 0.0,
            sim_resp_sum_us: 0.0,
            sim_hist: LatencyHistogram::new(),
        })
    }

    /// Attaches a cache sampler (Figure 1/2 experiments).
    pub fn with_sampler(mut self, sampler: CacheSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Attaches a host write buffer of `pages` 4 KB pages (the "data
    /// buffer" role of the internal RAM, Section 2.1). Buffered rewrites
    /// and reads cost no flash time; evictions reach the FTL as writes.
    pub fn with_write_buffer(mut self, pages: usize) -> Self {
        self.buffer = Some(WriteBuffer::new(pages));
        self
    }

    /// The write buffer's counters, if one is attached.
    pub fn buffer_stats(&self) -> Option<crate::BufferStats> {
        self.buffer.as_ref().map(|b| b.stats)
    }

    /// Flushes every buffered dirty page to the FTL (unmount barrier).
    pub fn flush_buffer(&mut self) -> Result<()> {
        let Some(mut buffer) = self.buffer.take() else {
            return Ok(());
        };
        for lpn in buffer.drain() {
            driver::serve_page_access(&mut self.ftl, &mut self.env, lpn, AccessCtx::single(true))?;
        }
        self.buffer = Some(buffer);
        Ok(())
    }

    /// The FTL under test.
    pub fn ftl(&self) -> &F {
        &self.ftl
    }

    /// The environment (flash stats, GTD, counters).
    pub fn env(&self) -> &SsdEnv {
        &self.env
    }

    /// Arms a power-loss fault plan on the underlying flash device; the
    /// corresponding operation (and everything after it) fails with
    /// `FlashError::PowerLoss`. See `tpftl_flash::FaultPlan`.
    pub fn arm_faults(&mut self, plan: tpftl_flash::FaultPlan) {
        self.env.arm_faults(plan);
    }

    /// The fatal operation, if an armed fault plan has fired.
    pub fn fault_fired(&self) -> Option<tpftl_flash::FaultRecord> {
        self.env.fault_fired()
    }

    /// Flushes the write buffer and every dirty mapping entry to flash —
    /// the clean-unmount barrier.
    pub fn flush(&mut self) -> Result<()> {
        self.flush_buffer()?;
        tpftl_core::recovery::flush_cache(&mut self.ftl, &mut self.env)
    }

    /// Consumes the SSD, dropping all FTL RAM state, and returns the
    /// environment — the first half of a power cycle (follow with
    /// [`tpftl_core::env::SsdEnv::into_flash`]).
    pub fn into_env(self) -> SsdEnv {
        self.env
    }

    /// Detaches and returns the sampler with its collected samples.
    pub fn take_sampler(&mut self) -> Option<CacheSampler> {
        self.sampler.take()
    }

    /// Serves one request; returns its system response time in µs
    /// (queuing + service).
    pub fn serve(&mut self, req: &IoRequest) -> Result<f64> {
        self.env.stats.requests += 1;
        let busy_before = self.env.flash().stats().busy_us;

        // Unit-clock timing: the request starts once it arrives and the
        // previous request completed (requests are served in order). Each
        // of its page accesses is an independent dependency chain from that
        // start, so accesses that land on different channel/way units
        // overlap; the request completes when its slowest chain does.
        let sim_start = req.arrival_us.max(self.sim_free_us);
        let mut sim_done = sim_start;

        let first = (req.offset / PAGE_BYTES) as Lpn;
        let count = req.page_count(PAGE_BYTES) as u32;
        for i in 0..count {
            let ctx = AccessCtx {
                is_write: req.is_write(),
                remaining_in_request: count - 1 - i,
            };
            let lpn = first + i;
            self.env.sim_relax_to(sim_start);
            if let Some(buffer) = &mut self.buffer {
                self.env.check_lpn(lpn)?;
                if ctx.is_write {
                    // Absorb the write in RAM; only the eviction reaches
                    // flash.
                    if let Some(evicted) = buffer.write(lpn) {
                        driver::serve_page_access(
                            &mut self.ftl,
                            &mut self.env,
                            evicted,
                            AccessCtx::single(true),
                        )?;
                        sim_done = sim_done.max(self.env.sim_frontier_us());
                    }
                    continue;
                } else if buffer.read_hit(lpn) {
                    continue; // served from RAM
                }
            }
            driver::serve_page_access(&mut self.ftl, &mut self.env, lpn, ctx)?;
            sim_done = sim_done.max(self.env.sim_frontier_us());
            if let Some(s) = &mut self.sampler {
                let served = self.env.stats.user_page_accesses();
                if s.due(served) {
                    s.record(served, &self.ftl.cached_tp_distribution());
                }
            }
        }

        // Leave the frontier at the request's completion so flash activity
        // outside `serve` (flushes, crash harness) chains after it.
        self.env.sim_relax_to(sim_done);
        self.sim_free_us = sim_done;
        let sim_response = sim_done - req.arrival_us;
        self.sim_resp_sum_us += sim_response;
        self.sim_span_us += sim_done - sim_start;
        self.sim_hist.record(sim_response);

        // FIFO timing: the device serves one request at a time; service
        // time is the flash busy time this request induced (translation,
        // data access, GC).
        let service = self.env.flash().stats().busy_us - busy_before;
        let start = req.arrival_us.max(self.device_free_us);
        let completion = start + service;
        self.device_free_us = completion;
        let response = completion - req.arrival_us;
        self.response_sum_us += response;
        self.responses += 1;
        Ok(response)
    }

    /// The histogram of simulated response times (for shard merging).
    pub fn sim_histogram(&self) -> &LatencyHistogram {
        &self.sim_hist
    }

    /// Serves an entire trace and reports the run's measurements.
    pub fn run<I>(&mut self, trace: I) -> Result<RunReport>
    where
        I: IntoIterator<Item = IoRequest>,
    {
        for req in trace {
            self.serve(&req)?;
        }
        Ok(self.report())
    }

    /// The measurements accumulated so far.
    pub fn report(&self) -> RunReport {
        RunReport {
            ftl: self.ftl.name(),
            ftl_stats: {
                // Snapshot the device's erase-count moments so the report
                // carries the wear-evenness metric; kept as exact integer
                // sums so the sharded engine's merge stays additive.
                let mut stats = self.env.stats.clone();
                (stats.wear_blocks, stats.wear_sum, stats.wear_sq_sum) = self.env.wear_summary();
                stats
            },
            flash: self.env.flash().stats().clone(),
            gc: self.env.gc_stats.clone(),
            avg_response_us: if self.responses == 0 {
                0.0
            } else {
                self.response_sum_us / self.responses as f64
            },
            cached_entries: self.ftl.cached_entries(),
            cache_bytes_used: self.ftl.cache_bytes_used(),
            cache_bytes_total: self.env.config().cache_bytes,
            sim: {
                let topo = self.env.config().topology;
                SimTiming {
                    channels: topo.channels,
                    ways: topo.ways,
                    device_us: self.sim_span_us,
                    makespan_us: self.env.flash().sim_device_done_us(),
                    resp_avg_us: if self.responses == 0 {
                        0.0
                    } else {
                        self.sim_resp_sum_us / self.responses as f64
                    },
                    resp_p50_us: self.sim_hist.p50(),
                    resp_p99_us: self.sim_hist.p99(),
                    resp_p999_us: self.sim_hist.p999(),
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpftl_core::ftl::{Dftl, OptimalFtl, TpFtl, TpftlConfig};
    use tpftl_trace::{Dir, SyntheticSpec};

    fn small_spec(requests: usize) -> SyntheticSpec {
        SyntheticSpec {
            requests,
            address_bytes: 16 << 20,
            write_ratio: 0.7,
            mean_req_sectors: 8.0,
            mean_interarrival_us: 300.0,
            ..SyntheticSpec::default()
        }
    }

    #[test]
    fn queuing_delay_accumulates_under_load() {
        let config = SsdConfig::paper_default(16 << 20);
        let ftl = OptimalFtl::new(&config);
        let mut ssd = Ssd::new(ftl, config).unwrap();
        // Two back-to-back writes at t=0: the second waits for the first.
        let r1 = ssd
            .serve(&IoRequest::new(0.0, 0, 4096, Dir::Write))
            .unwrap();
        let r2 = ssd
            .serve(&IoRequest::new(0.0, 8192, 4096, Dir::Write))
            .unwrap();
        assert!((r1 - 200.0).abs() < 1e-9, "r1={r1}");
        assert!((r2 - 400.0).abs() < 1e-9, "second request queues, r2={r2}");
        // A request arriving after the device idles sees no queuing.
        let r3 = ssd
            .serve(&IoRequest::new(10_000.0, 0, 4096, Dir::Read))
            .unwrap();
        assert!((r3 - 25.0).abs() < 1e-9, "r3={r3}");
        // On the default 1-channel/1-way topology the unit-clock model
        // reproduces the FIFO numbers exactly.
        let sim = ssd.report().sim;
        assert_eq!(sim.channels, 1);
        assert_eq!(sim.ways, 1);
        assert!((sim.resp_avg_us - (200.0 + 400.0 + 25.0) / 3.0).abs() < 1e-9);
        assert!((sim.makespan_us - 10_025.0).abs() < 1e-9);
        assert!((sim.device_us - 425.0).abs() < 1e-9, "spans 200+200+25");
        assert_eq!(sim.resp_p99_us, 384.0, "400 µs bucket lower edge");
    }

    #[test]
    fn channels_change_sim_timing_but_nothing_else() {
        let mut serial_cfg = SsdConfig::paper_default(16 << 20);
        serial_cfg.cache_bytes = serial_cfg.gtd_bytes() + 2048;
        let mut wide_cfg = serial_cfg.clone();
        wide_cfg.topology.channels = 4;
        wide_cfg.topology.ways = 2;
        let spec = small_spec(2000);
        let run = |cfg: &SsdConfig| {
            let ftl = TpFtl::new(cfg, TpftlConfig::full()).unwrap();
            Ssd::new(ftl, cfg.clone())
                .unwrap()
                .run(spec.iter(5))
                .unwrap()
        };
        let serial = run(&serial_cfg);
        let wide = run(&wide_cfg);
        // The timing model is observation-only: op sequence, counters and
        // the FIFO response metric are bit-identical across topologies.
        assert_eq!(serial.ftl_stats, wide.ftl_stats);
        assert_eq!(serial.flash, wide.flash);
        assert_eq!(serial.gc, wide.gc);
        assert_eq!(
            serial.avg_response_us.to_bits(),
            wide.avg_response_us.to_bits()
        );
        // Independent units overlap: simulated device time and latency
        // can only improve.
        assert_eq!(wide.sim.channels, 4);
        assert!(wide.sim.device_us < serial.sim.device_us);
        assert!(wide.sim.makespan_us <= serial.sim.makespan_us);
        assert!(wide.sim.resp_avg_us <= serial.sim.resp_avg_us);
        assert!(wide.sim.resp_p99_us <= serial.sim.resp_p99_us);
    }

    #[test]
    fn translation_misses_inflate_response_time() {
        let mut config = SsdConfig::paper_default(16 << 20);
        config.cache_bytes = config.gtd_bytes() + 1024;
        let optimal = OptimalFtl::new(&config);
        let dftl = Dftl::new(&config).unwrap();
        let spec = small_spec(2000);
        let ro = Ssd::new(optimal, config.clone())
            .unwrap()
            .run(spec.iter(1))
            .unwrap();
        let rd = Ssd::new(dftl, config).unwrap().run(spec.iter(1)).unwrap();
        assert!(
            rd.avg_response_us > ro.avg_response_us,
            "DFTL ({}) must be slower than optimal ({})",
            rd.avg_response_us,
            ro.avg_response_us
        );
        assert!(rd.translation_reads() > 0);
        assert_eq!(ro.translation_reads(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut config = SsdConfig::paper_default(16 << 20);
        config.cache_bytes = config.gtd_bytes() + 2048;
        let spec = small_spec(1500);
        let run = |seed| {
            let ftl = TpFtl::new(&config, TpftlConfig::full()).unwrap();
            Ssd::new(ftl, config.clone())
                .unwrap()
                .run(spec.iter(seed))
                .unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce identical reports");
        let c = run(8);
        assert_ne!(a, c);
    }

    #[test]
    fn sampler_collects_during_run() {
        let mut config = SsdConfig::paper_default(16 << 20);
        config.cache_bytes = config.gtd_bytes() + 2048;
        let ftl = Dftl::new(&config).unwrap();
        let mut ssd = Ssd::new(ftl, config)
            .unwrap()
            .with_sampler(CacheSampler::new(500));
        let _ = ssd.run(small_spec(2000).iter(3)).unwrap();
        let sampler = ssd.take_sampler().unwrap();
        assert!(
            sampler.samples.len() >= 3,
            "got {} samples",
            sampler.samples.len()
        );
        assert!(sampler.samples[0].cached_tps > 0);
    }

    #[test]
    fn report_counts_page_accesses() {
        let config = SsdConfig::paper_default(16 << 20);
        let ftl = OptimalFtl::new(&config);
        let mut ssd = Ssd::new(ftl, config).unwrap();
        // 3 pages written, 2 read.
        ssd.serve(&IoRequest::new(0.0, 0, 3 * 4096, Dir::Write))
            .unwrap();
        ssd.serve(&IoRequest::new(0.0, 0, 2 * 4096, Dir::Read))
            .unwrap();
        let r = ssd.report();
        assert_eq!(r.ftl_stats.user_page_writes, 3);
        assert_eq!(r.ftl_stats.user_page_reads, 2);
        assert_eq!(r.ftl_stats.requests, 2);
        assert!((r.write_amplification() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_buffer_absorbs_hot_rewrites() {
        let config = SsdConfig::paper_default(16 << 20);
        let mut plain = Ssd::new(OptimalFtl::new(&config), config.clone()).unwrap();
        let mut buffered = Ssd::new(OptimalFtl::new(&config), config.clone())
            .unwrap()
            .with_write_buffer(64);
        // Hammer a 32-page hot set.
        for i in 0..2_000u32 {
            let req = IoRequest::new(i as f64 * 50.0, ((i % 32) as u64) * 4096, 4096, Dir::Write);
            plain.serve(&req).unwrap();
            buffered.serve(&req).unwrap();
        }
        buffered.flush_buffer().unwrap();
        let (p, b) = (plain.report(), buffered.report());
        assert_eq!(p.flash.total_writes(), 2_000);
        // The hot set fits in the buffer: only the final flush hits flash.
        assert_eq!(b.flash.total_writes(), 32);
        let stats = buffered.buffer_stats().unwrap();
        assert_eq!(stats.write_absorbed, 2_000 - 32);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn write_buffer_read_your_writes() {
        let config = SsdConfig::paper_default(16 << 20);
        let mut ssd = Ssd::new(OptimalFtl::new(&config), config.clone())
            .unwrap()
            .with_write_buffer(8);
        // Write 20 pages (12 evict to flash), then read them all back.
        for lpn in 0..20u64 {
            ssd.serve(&IoRequest::new(0.0, lpn * 4096, 4096, Dir::Write))
                .unwrap();
        }
        for lpn in 0..20u64 {
            ssd.serve(&IoRequest::new(1e9, lpn * 4096, 4096, Dir::Read))
                .unwrap();
        }
        let stats = ssd.buffer_stats().unwrap();
        assert_eq!(stats.evictions, 12);
        assert_eq!(stats.read_hits, 8, "the 8 still-buffered pages hit in RAM");
        // Flush and read again: everything now comes from flash.
        ssd.flush_buffer().unwrap();
        for lpn in 0..20u64 {
            ssd.serve(&IoRequest::new(2e9, lpn * 4096, 4096, Dir::Read))
                .unwrap();
        }
    }

    #[test]
    fn rejects_out_of_space_requests() {
        let config = SsdConfig::paper_default(16 << 20);
        let ftl = OptimalFtl::new(&config);
        let mut ssd = Ssd::new(ftl, config).unwrap();
        let too_far = IoRequest::new(0.0, 16 << 20, 4096, Dir::Write);
        assert!(ssd.serve(&too_far).is_err());
    }
}
