//! Periodic mapping-cache sampling — the Figure 1/2 observable.
//!
//! The paper collected its cache-distribution numbers "by sampling the
//! mapping cache every 10,000 user page accesses during the entire running
//! phase". [`CacheSampler`] does exactly that: every `interval` page
//! accesses it snapshots the per-translation-page distribution of cached
//! entries.

use serde::{Deserialize, Serialize};

/// Dirty-count histogram buckets: nodes with `0..=MAX_DIRTY_BUCKET` dirty
/// entries (the paper's Figure 1(b) x-axis runs to 50).
pub const MAX_DIRTY_BUCKET: usize = 50;

/// One snapshot of the cached translation-page distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSample {
    /// Page accesses served when the sample was taken.
    pub page_accesses: u64,
    /// Number of cached translation pages (TP nodes / grouped entries).
    pub cached_tps: u32,
    /// Total cached entries across them.
    pub total_entries: u64,
    /// Total dirty entries across them.
    pub total_dirty: u64,
    /// `dirty_hist[d]` = number of cached translation pages with exactly
    /// `d` dirty entries (`d` capped at [`MAX_DIRTY_BUCKET`]).
    pub dirty_hist: Vec<u32>,
}

impl CacheSample {
    /// Average cached entries per cached translation page (Figure 1a).
    pub fn avg_entries_per_tp(&self) -> f64 {
        if self.cached_tps == 0 {
            0.0
        } else {
            self.total_entries as f64 / self.cached_tps as f64
        }
    }
}

/// Collects [`CacheSample`]s every `interval` page accesses.
#[derive(Debug, Clone)]
pub struct CacheSampler {
    interval: u64,
    next_at: u64,
    /// The collected samples, in time order.
    pub samples: Vec<CacheSample>,
}

impl CacheSampler {
    /// Creates a sampler firing every `interval` page accesses (the paper
    /// uses 10,000).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        Self {
            interval,
            next_at: interval,
            samples: Vec::new(),
        }
    }

    /// Whether a sample is due at `page_accesses` served.
    pub(crate) fn due(&self, page_accesses: u64) -> bool {
        page_accesses >= self.next_at
    }

    /// Records a snapshot built from an FTL's distribution.
    pub(crate) fn record(&mut self, page_accesses: u64, dist: &[tpftl_core::ftl::TpDistEntry]) {
        let mut hist = vec![0u32; MAX_DIRTY_BUCKET + 1];
        let mut total_entries = 0u64;
        let mut total_dirty = 0u64;
        for d in dist {
            total_entries += d.entries as u64;
            total_dirty += d.dirty as u64;
            hist[(d.dirty as usize).min(MAX_DIRTY_BUCKET)] += 1;
        }
        self.samples.push(CacheSample {
            page_accesses,
            cached_tps: dist.len() as u32,
            total_entries,
            total_dirty,
            dirty_hist: hist,
        });
        self.next_at = page_accesses + self.interval;
    }

    /// Aggregated dirty-count CDF over all samples: `cdf[d]` = fraction of
    /// sampled cached translation pages with at most `d` dirty entries
    /// (Figure 1b).
    pub fn dirty_cdf(&self) -> Vec<f64> {
        let mut counts = vec![0u64; MAX_DIRTY_BUCKET + 1];
        let mut total = 0u64;
        for s in &self.samples {
            for (d, &c) in s.dirty_hist.iter().enumerate() {
                counts[d] += c as u64;
                total += c as u64;
            }
        }
        let mut acc = 0u64;
        counts
            .iter()
            .map(|&c| {
                acc += c;
                if total == 0 {
                    0.0
                } else {
                    acc as f64 / total as f64
                }
            })
            .collect()
    }

    /// Mean dirty entries per cached translation page over all samples
    /// (the vertical dashed lines of Figure 1b).
    pub fn mean_dirty_per_tp(&self) -> f64 {
        let (dirty, tps) = self.samples.iter().fold((0u64, 0u64), |(d, t), s| {
            (d + s.total_dirty, t + s.cached_tps as u64)
        });
        if tps == 0 {
            0.0
        } else {
            dirty as f64 / tps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpftl_core::ftl::TpDistEntry;

    #[test]
    fn sampling_cadence() {
        let mut s = CacheSampler::new(100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.record(100, &[]);
        assert!(!s.due(199));
        assert!(s.due(200));
    }

    #[test]
    fn histogram_and_cdf() {
        let mut s = CacheSampler::new(1);
        let dist = vec![
            TpDistEntry {
                vtpn: 0,
                entries: 10,
                dirty: 0,
            },
            TpDistEntry {
                vtpn: 1,
                entries: 5,
                dirty: 2,
            },
            TpDistEntry {
                vtpn: 2,
                entries: 7,
                dirty: 2,
            },
            TpDistEntry {
                vtpn: 3,
                entries: 1,
                dirty: 60,
            }, // clamps to 50
        ];
        s.record(1, &dist);
        let sample = &s.samples[0];
        assert_eq!(sample.cached_tps, 4);
        assert_eq!(sample.total_entries, 23);
        assert_eq!(sample.total_dirty, 64);
        assert!((sample.avg_entries_per_tp() - 5.75).abs() < 1e-12);
        assert_eq!(sample.dirty_hist[0], 1);
        assert_eq!(sample.dirty_hist[2], 2);
        assert_eq!(sample.dirty_hist[50], 1);
        let cdf = s.dirty_cdf();
        assert!((cdf[0] - 0.25).abs() < 1e-12);
        assert!((cdf[2] - 0.75).abs() < 1e-12);
        assert!((cdf[50] - 1.0).abs() < 1e-12);
        assert!((s.mean_dirty_per_tp() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sampler_is_sane() {
        let s = CacheSampler::new(10);
        assert_eq!(s.dirty_cdf()[0], 0.0);
        assert_eq!(s.mean_dirty_per_tp(), 0.0);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let _ = CacheSampler::new(0);
    }
}
