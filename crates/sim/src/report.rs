//! The per-run measurement record.

use serde::{Deserialize, Serialize};
use tpftl_core::env::GcStats;
use tpftl_core::FtlStats;
use tpftl_flash::{FlashStats, OpPurpose};

/// Simulated-time metrics from the channel/way unit-clock timing model.
///
/// All zeros (including `channels`/`ways`) on reports recorded before the
/// model existed. On a 1-channel/1-way device the unit-clock numbers agree
/// with the serial FIFO model's (`makespan_us` tracks `busy_us` bit for
/// bit when the device never idles); with more units, independent flash
/// ops overlap and the device time and tail latencies compress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTiming {
    /// Channels of the device that produced this report.
    pub channels: u32,
    /// Ways (dies) per channel.
    pub ways: u32,
    /// Sum of per-request busy spans (completion − start) in µs: simulated
    /// device time spent serving requests. Summed across shards.
    pub device_us: f64,
    /// Completion time of the last flash op (device makespan) in µs.
    /// Maximum across shards (they run in parallel).
    pub makespan_us: f64,
    /// Mean simulated response time (arrival → completion) in µs.
    pub resp_avg_us: f64,
    /// Median simulated response time in µs (log-bucket lower edge).
    pub resp_p50_us: f64,
    /// 99th-percentile simulated response time in µs.
    pub resp_p99_us: f64,
    /// 99.9th-percentile simulated response time in µs. Defaults to 0 so
    /// reports recorded before PR 9 still deserialize.
    #[serde(default)]
    pub resp_p999_us: f64,
}

/// Everything the paper's figures plot, for one (FTL, workload) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// FTL name including configuration (e.g. `TPFTL(rsbc)`).
    pub ftl: String,
    /// Cache-level counters (`H_r`, `P_rd`, `H_gcr`, ...).
    pub ftl_stats: FtlStats,
    /// Flash operation counts by purpose.
    pub flash: FlashStats,
    /// GC aggregates (`N_gcd`, `V_d`, `N_gct`, `V_t`).
    pub gc: GcStats,
    /// Mean system response time in microseconds (queuing included).
    pub avg_response_us: f64,
    /// Mapping entries cached at the end of the run.
    pub cached_entries: usize,
    /// Cache bytes in use at the end of the run (excluding the GTD).
    pub cache_bytes_used: usize,
    /// Total configured cache budget in bytes (including the GTD).
    pub cache_bytes_total: usize,
    /// Unit-clock simulated timing (absent in pre-topology reports).
    #[serde(default)]
    pub sim: SimTiming,
}

impl RunReport {
    /// Cache hit ratio `H_r` (Figure 6b).
    pub fn hit_ratio(&self) -> f64 {
        self.ftl_stats.hit_ratio()
    }

    /// Probability of replacing a dirty entry `P_rd` (Figure 6a).
    pub fn dirty_replacement_prob(&self) -> f64 {
        self.ftl_stats.dirty_replacement_prob()
    }

    /// Translation page reads, address-translation phase + GC (Figure 6c).
    pub fn translation_reads(&self) -> u64 {
        self.flash.translation_reads()
    }

    /// Translation page writes, address-translation phase + GC (Figure 6d).
    pub fn translation_writes(&self) -> u64 {
        self.flash.translation_writes()
    }

    /// Translation page writes during address translation only (`N_tw`).
    pub fn ntw(&self) -> u64 {
        self.flash.of(OpPurpose::Translation).writes
    }

    /// Overall write amplification (Figure 6f); 0 for read-only runs.
    pub fn write_amplification(&self) -> f64 {
        self.flash
            .write_amplification(self.ftl_stats.user_page_writes)
            .unwrap_or(0.0)
    }

    /// Total block erases (Figure 7a).
    pub fn erase_count(&self) -> u64 {
        self.flash.total_erases()
    }

    /// GC copy amplification: valid pages the collector migrated (data +
    /// translation) per host page write — the Eq. 12–13 cost the
    /// multi-stream GC exists to shrink. 0 when nothing was written.
    /// Unlike [`RunReport::write_amplification`] (flash writes ÷ host
    /// writes) this isolates the GC contribution, so mapping-table
    /// writeback traffic does not dilute the comparison between GC
    /// policies.
    pub fn write_amp(&self) -> f64 {
        if self.ftl_stats.user_page_writes == 0 {
            return 0.0;
        }
        (self.gc.data_pages_migrated + self.gc.trans_pages_migrated) as f64
            / self.ftl_stats.user_page_writes as f64
    }

    /// Coefficient of variation of per-block erase counts (wear evenness).
    pub fn erase_cv(&self) -> f64 {
        self.ftl_stats.erase_cv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut r = RunReport {
            ftl: "X".into(),
            ftl_stats: FtlStats::default(),
            flash: FlashStats::default(),
            gc: GcStats::default(),
            avg_response_us: 100.0,
            cached_entries: 0,
            cache_bytes_used: 0,
            cache_bytes_total: 0,
            sim: SimTiming::default(),
        };
        r.ftl_stats.lookups = 10;
        r.ftl_stats.hits = 9;
        assert!((r.hit_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(r.write_amplification(), 0.0);
        assert_eq!(r.write_amp(), 0.0);
        assert_eq!(r.erase_cv(), 0.0);
        r.ftl_stats.user_page_writes = 10;
        r.gc.data_pages_migrated = 4;
        r.gc.trans_pages_migrated = 1;
        assert!((r.write_amp() - 0.5).abs() < 1e-12);
        // Serializes round-trip (the experiment harness persists these).
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
