//! Sharded multi-queue SSD engine: parallel trace replay across
//! LPN-partitioned shards.
//!
//! The single-queue [`Ssd`] serves one page access at a time on one core.
//! This module scales replay across cores the way real NVMe-era SSDs scale
//! across channels/dies: the logical page space is striped over `N`
//! independent shards (`N` a power of two), each shard owning a complete
//! private device — flash arena, block manager, mapping cache, GC state —
//! of `1/N`-th the geometry (see `SsdConfig::shard_config`). One worker
//! thread per shard consumes an NVMe-style queue pair (see
//! [`crate::queue`]): the host pushes request batches into the shard's
//! bounded submission queue and harvests per-batch status entries from its
//! completion queue; doorbell park/unpark on both rings means an idle
//! worker sleeps instead of burning a core. A splitter on the submitting
//! thread routes (and, for multi-page requests, splits) the incoming
//! stream by the low LPN bits (see `tpftl_trace::ShardSplitter`).
//!
//! Two drive modes:
//!
//! * [`ShardedSsd::run`] — closed-loop replay: submit as fast as the
//!   queues accept, measure deterministic counters and simulated clocks.
//! * [`ShardedSsd::run_open_loop`] — open-loop steady state: requests
//!   arrive on a fixed wall-clock schedule regardless of completion (no
//!   coordinated omission; see `tpftl_trace::fixed_rate`), excess backlog
//!   queues host-side without bound, and each completion's response time
//!   is measured against its *scheduled* arrival. Reports offered vs
//!   achieved throughput and p50/p99/p999 wall-clock latency.
//!
//! # Determinism
//!
//! Thread interleaving can never change the result: each shard's
//! sub-request sequence is a *projection* of the trace (same relative
//! order, fixed by the single splitter), each shard's state is private, so
//! every per-shard [`RunReport`] is a pure function of (config, trace,
//! shard index). The merge then folds the per-shard reports **in shard
//! order**, so even the floating-point sums (`busy_us`, the response-time
//! average) are bit-reproducible run to run. With one shard, the splitter
//! emits exactly the original page spans into a single worker, and the
//! merged report is the shard's report verbatim — bit-identical to the
//! single-queue path (pinned by the sharded golden test). Open-loop runs
//! keep all of this for the *simulated* report (the arrival schedule is a
//! pure function of the offered rate); only the wall-clock latency
//! histogram varies run to run.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use tpftl_core::env::GcStats;
use tpftl_core::ftl::Ftl;
use tpftl_core::{FtlStats, Result, SsdConfig};
use tpftl_flash::FlashStats;
use tpftl_trace::{fixed_rate, IoRequest, ShardSplitter};

use crate::queue::{DoorbellStats, QueuePair};
use crate::{LatencyHistogram, RunReport, SimTiming, Ssd};

/// 4 KB pages everywhere (Table 3).
const PAGE_BYTES: u64 = 4096;

/// Requests per submitted batch in closed-loop replay (the submission
/// queue's item granularity).
const BATCH_REQUESTS: usize = 64;

/// Closed-loop submission-queue depth in batches — bounds the per-shard
/// queue at `SQ_BATCHES * BATCH_REQUESTS` in-flight requests.
const SQ_BATCHES: usize = 32;

/// Closed-loop completion-queue depth in batches. Sized to hold every
/// possible outstanding completion (`SQ_BATCHES` queued + one in
/// service), so the final drain can harvest shard by shard without ever
/// wedging a worker behind a full completion ring.
const CQ_BATCHES: usize = 2 * SQ_BATCHES;

// ---- Reports ----------------------------------------------------------------

/// Per-shard load distribution of one sharded run — reported so partition
/// skew is visible instead of silently averaged away.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardLoadStats {
    /// Host sub-requests routed to each shard, in shard order.
    pub requests: Vec<u64>,
    /// User page accesses served by each shard, in shard order.
    pub page_accesses: Vec<u64>,
    /// Busiest shard's page accesses over the per-shard mean (1.0 =
    /// perfectly balanced; the run's wall clock tracks the busiest shard).
    pub imbalance: f64,
}

impl ShardLoadStats {
    fn from_reports(per_shard: &[RunReport]) -> Self {
        let page_accesses: Vec<u64> = per_shard
            .iter()
            .map(|r| r.ftl_stats.user_page_accesses())
            .collect();
        let max = page_accesses.iter().copied().max().unwrap_or(0);
        let mean = page_accesses.iter().sum::<u64>() as f64 / page_accesses.len().max(1) as f64;
        Self {
            requests: per_shard.iter().map(|r| r.ftl_stats.requests).collect(),
            page_accesses,
            imbalance: if mean == 0.0 { 1.0 } else { max as f64 / mean },
        }
    }
}

/// The result of a sharded run: the per-shard [`RunReport`]s (in shard
/// order) and their deterministic merge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedRunReport {
    /// Aggregate over all shards. With one shard this is the shard's
    /// report verbatim; otherwise counters are shard-order sums and
    /// `avg_response_us` is the request-weighted mean.
    pub merged: RunReport,
    /// One report per shard, in shard order.
    pub per_shard: Vec<RunReport>,
    /// Load-balance summary of the same run.
    pub load: ShardLoadStats,
}

/// Folds per-shard reports in shard order; see [`ShardedRunReport::merged`].
fn merge_reports(per_shard: &[RunReport]) -> RunReport {
    assert!(!per_shard.is_empty(), "no shard reports to merge");
    if per_shard.len() == 1 {
        return per_shard[0].clone();
    }
    let mut ftl_stats = FtlStats::default();
    let mut flash = FlashStats::default();
    let mut gc = GcStats::default();
    let mut response_weighted = 0.0;
    let mut responses = 0u64;
    let mut cached_entries = 0usize;
    let mut cache_bytes_used = 0usize;
    let mut cache_bytes_total = 0usize;
    // Simulated clocks: shards are parallel devices, so the merged
    // makespan is the latest shard's (shard-order fold of `max`, still
    // deterministic), while device time — occupied device-microseconds —
    // sums like `busy_us`. Percentiles need the sample distribution, not
    // per-shard percentiles; `ShardedSsd::report` fills them from the
    // merged histograms.
    let mut sim = SimTiming {
        channels: per_shard[0].sim.channels,
        ways: per_shard[0].sim.ways,
        ..SimTiming::default()
    };
    let mut sim_resp_weighted = 0.0;
    for r in per_shard {
        ftl_stats.merge_from(&r.ftl_stats);
        flash.merge_from(&r.flash);
        gc.merge_from(&r.gc);
        response_weighted += r.avg_response_us * r.ftl_stats.requests as f64;
        responses += r.ftl_stats.requests;
        cached_entries += r.cached_entries;
        cache_bytes_used += r.cache_bytes_used;
        cache_bytes_total += r.cache_bytes_total;
        sim.device_us += r.sim.device_us;
        sim.makespan_us = sim.makespan_us.max(r.sim.makespan_us);
        sim_resp_weighted += r.sim.resp_avg_us * r.ftl_stats.requests as f64;
    }
    if responses > 0 {
        sim.resp_avg_us = sim_resp_weighted / responses as f64;
    }
    RunReport {
        ftl: per_shard[0].ftl.clone(),
        ftl_stats,
        flash,
        gc,
        avg_response_us: if responses == 0 {
            0.0
        } else {
            response_weighted / responses as f64
        },
        cached_entries,
        cache_bytes_used,
        cache_bytes_total,
        sim,
    }
}

// ---- Open-loop driver types -------------------------------------------------

/// Parameters for one open-loop steady-state run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOpts {
    /// Offered arrival rate, host requests per second. Request `k` is
    /// scheduled at `k / offered_rps` on the wall clock whether or not
    /// the device has kept up.
    pub offered_rps: f64,
    /// Per-shard submission-queue depth in requests (power of two).
    /// Requests beyond it queue host-side without bound.
    pub queue_depth: usize,
}

/// What an open-loop run measured.
///
/// The wall-clock numbers (`achieved_rps`, the `resp_*` percentiles,
/// `doorbells`) vary run to run with machine load; the embedded
/// [`ShardedRunReport`] is the same deterministic, bit-reproducible
/// simulation report a closed-loop run produces.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The configured arrival rate (host requests/s).
    pub offered_rps: f64,
    /// Host requests offered (scheduled and eventually completed).
    pub requests: u64,
    /// Sub-requests after shard splitting; each is measured as its own
    /// completion.
    pub sub_requests: u64,
    /// Wall clock from the first scheduled arrival to the last harvested
    /// completion, in microseconds.
    pub wall_us: f64,
    /// `requests / wall` — equals `offered_rps` while the device keeps
    /// up and collapses to the service rate beyond saturation.
    pub achieved_rps: f64,
    /// Mean wall-clock response (completion − scheduled arrival), µs.
    pub resp_avg_us: f64,
    /// Median wall-clock response, µs.
    pub resp_p50_us: f64,
    /// 99th-percentile wall-clock response, µs.
    pub resp_p99_us: f64,
    /// 99.9th-percentile wall-clock response, µs.
    pub resp_p999_us: f64,
    /// Largest host-side backlog observed (sub-requests waiting for
    /// submission-queue space), a direct overload signal.
    pub backlog_peak: u64,
    /// Park/unpark totals across every ring in the run — idle shards
    /// show up here as parks, not burned CPU.
    pub doorbells: DoorbellStats,
    /// The deterministic simulation-side report (FTL counters, simulated
    /// clocks), merged exactly like a closed-loop run.
    pub report: ShardedRunReport,
}

/// Completion entry of the closed-loop (batch) path.
struct BatchDone {
    failed: bool,
}

/// Completion entry of the open-loop (per-request) path.
enum OpenLoopCqe {
    /// Wall-clock response time vs the scheduled arrival, µs.
    Done(f64),
    /// The shard's serve failed; the worker keeps draining.
    Failed,
}

// ---- The engine -------------------------------------------------------------

/// `N` independent single-queue SSDs behind an LPN-striping splitter —
/// the multi-queue execution engine.
///
/// # Examples
///
/// ```
/// use tpftl_core::ftl::{TpFtl, TpftlConfig};
/// use tpftl_core::SsdConfig;
/// use tpftl_sim::ShardedSsd;
/// use tpftl_trace::SyntheticSpec;
///
/// let config = SsdConfig::paper_default(64 << 20);
/// let mut ssd = ShardedSsd::new(&config, 4, |_, shard_cfg| {
///     TpFtl::new(shard_cfg, TpftlConfig::full())
/// })
/// .unwrap();
/// let spec = SyntheticSpec {
///     requests: 300,
///     address_bytes: 64 << 20,
///     ..SyntheticSpec::default()
/// };
/// let report = ssd.run(spec.iter(42)).unwrap();
/// // Multi-page requests split into one sub-request per shard touched.
/// assert!(report.merged.ftl_stats.requests >= 300);
/// assert_eq!(report.per_shard.len(), 4);
/// ```
pub struct ShardedSsd<F: Ftl + Send> {
    shards: Vec<Ssd<F>>,
    splitter: ShardSplitter,
    last_doorbells: DoorbellStats,
}

impl<F: Ftl + Send> ShardedSsd<F> {
    /// Builds and bootstraps one `1/num_shards`-geometry SSD per shard;
    /// `build` constructs each shard's FTL from `(shard_index, shard_config)`.
    ///
    /// # Panics
    ///
    /// Panics when `config` cannot be partitioned into `num_shards` shards
    /// (see `SsdConfig::supports_shards`).
    pub fn new<B>(config: &SsdConfig, num_shards: u32, build: B) -> Result<Self>
    where
        B: Fn(u32, &SsdConfig) -> Result<F>,
    {
        let shard_config = config.shard_config(num_shards);
        let shards = (0..num_shards)
            .map(|s| Ssd::new(build(s, &shard_config)?, shard_config.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            splitter: ShardSplitter::new(num_shards, PAGE_BYTES),
            last_doorbells: DoorbellStats::default(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.splitter.shards()
    }

    /// Read-only access to one shard's SSD (tests, inspection).
    pub fn shard(&self, index: usize) -> &Ssd<F> {
        &self.shards[index]
    }

    /// Park/unpark totals across all queue-pair doorbells of the most
    /// recent `run`/`run_open_loop` — the proof that idle workers slept
    /// (parks) and were woken by doorbells (wakeups), not by polling.
    pub fn doorbell_stats(&self) -> DoorbellStats {
        self.last_doorbells
    }

    /// Serves an entire trace across the shards — one worker thread per
    /// shard fed through its queue pair in batches of `BATCH_REQUESTS`,
    /// with per-batch completion entries harvested on the submitting
    /// thread — and reports the merged measurements.
    ///
    /// The first shard error (in shard order) is returned; remaining
    /// shards drain their queues so the splitter never blocks on a dead
    /// consumer.
    pub fn run<I>(&mut self, trace: I) -> Result<ShardedRunReport>
    where
        I: IntoIterator<Item = IoRequest>,
    {
        let n = self.shards.len();
        let splitter = self.splitter;
        let pairs: Vec<QueuePair<Vec<IoRequest>, BatchDone>> = (0..n)
            .map(|_| QueuePair::new(SQ_BATCHES, CQ_BATCHES))
            .collect();
        let shards = std::mem::take(&mut self.shards);

        let joined: Vec<(Ssd<F>, Result<()>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(i, ssd)| {
                    let pair = &pairs[i];
                    std::thread::Builder::new()
                        .name(format!("ftl-shard-{i}"))
                        .spawn_scoped(scope, move || shard_worker(ssd, pair))
                        .expect("spawn shard worker")
                })
                .collect();

            // The splitter runs on the submitting thread: route every
            // request, batch per shard, push full batches, and harvest
            // whatever completions have posted in the meantime.
            let mut failed = false;
            let mut pending: Vec<Vec<IoRequest>> =
                (0..n).map(|_| Vec::with_capacity(BATCH_REQUESTS)).collect();
            for req in trace {
                harvest_batches(&pairs, &mut failed);
                if failed {
                    break;
                }
                splitter.split(&req, |shard, sub| pending[shard as usize].push(sub));
                for (batch, pair) in pending.iter_mut().zip(&pairs) {
                    if batch.len() >= BATCH_REQUESTS {
                        let full = std::mem::replace(batch, Vec::with_capacity(BATCH_REQUESTS));
                        // When the submission queue is full the push
                        // keeps harvesting (the worker may be parked
                        // behind a full completion queue) and parks with
                        // a timeout instead of spinning.
                        pair.sq
                            .push_yielding(full, || harvest_batches(&pairs, &mut failed));
                    }
                }
            }
            for (batch, pair) in pending.iter_mut().zip(&pairs) {
                if !batch.is_empty() {
                    pair.sq.push_yielding(std::mem::take(batch), || {
                        harvest_batches(&pairs, &mut failed)
                    });
                }
                pair.sq.close();
            }
            // Final harvest, shard by shard: `pop_blocking` returns
            // `None` exactly when a worker closed its completion queue
            // after draining its submissions, and `CQ_BATCHES` slots are
            // enough for every outstanding batch, so no worker can block
            // while the host sleeps here.
            for pair in &pairs {
                while pair.cq.pop_blocking().is_some() {}
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        self.last_doorbells = pairs
            .iter()
            .map(QueuePair::doorbell_stats)
            .fold(DoorbellStats::default(), DoorbellStats::merge);

        let mut first_err = None;
        let mut ssds = Vec::with_capacity(n);
        for (ssd, res) in joined {
            if let (Err(e), None) = (res, &first_err) {
                first_err = Some(e);
            }
            ssds.push(ssd);
        }
        self.shards = ssds;
        match first_err {
            Some(e) => Err(e),
            None => Ok(self.report()),
        }
    }

    /// Drives the shards at a fixed wall-clock arrival rate (open loop).
    ///
    /// The trace's payloads are kept, its arrivals rewritten to the
    /// `opts.offered_rps` schedule (see `tpftl_trace::fixed_rate`).
    /// Requests are submitted when due — late submission is *caught up*
    /// in a burst, never skipped, so a stalled device accumulates
    /// backlog and the latency distribution shows it (no coordinated
    /// omission). Each sub-request's response time is wall clock at
    /// completion minus its **scheduled** arrival.
    ///
    /// The first shard error (in shard order) is returned, as in
    /// [`run`](Self::run).
    pub fn run_open_loop<I>(&mut self, trace: I, opts: OpenLoopOpts) -> Result<OpenLoopReport>
    where
        I: IntoIterator<Item = IoRequest>,
    {
        assert!(
            opts.queue_depth.is_power_of_two(),
            "queue depth not a power of two"
        );
        let n = self.shards.len();
        let splitter = self.splitter;
        // Completion queues get headroom over the submission depth so a
        // worker rarely waits on the host; the host still harvests on
        // every pacing tick.
        let cq_depth = (opts.queue_depth * 2).max(64);
        let pairs: Vec<QueuePair<IoRequest, OpenLoopCqe>> = (0..n)
            .map(|_| QueuePair::new(opts.queue_depth, cq_depth))
            .collect();
        let shards = std::mem::take(&mut self.shards);
        let epoch = Instant::now();

        struct HostState {
            hist: LatencyHistogram,
            resp_sum_us: f64,
            completed: u64,
            failed: bool,
        }
        let mut host = HostState {
            hist: LatencyHistogram::new(),
            resp_sum_us: 0.0,
            completed: 0,
            failed: false,
        };
        // Harvest every posted completion; returns true on progress.
        fn harvest(pairs: &[QueuePair<IoRequest, OpenLoopCqe>], host: &mut HostState) -> bool {
            let mut progress = false;
            for pair in pairs {
                while let Some(cqe) = pair.cq.try_pop() {
                    progress = true;
                    match cqe {
                        OpenLoopCqe::Done(resp_us) => {
                            host.hist.record(resp_us);
                            host.resp_sum_us += resp_us;
                            host.completed += 1;
                        }
                        OpenLoopCqe::Failed => host.failed = true,
                    }
                }
            }
            progress
        }

        let mut requests = 0u64;
        let mut sub_requests = 0u64;
        let mut backlog_peak = 0u64;
        let mut wall_us = 0.0f64;

        let joined: Vec<(Ssd<F>, Result<()>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(i, ssd)| {
                    let pair = &pairs[i];
                    std::thread::Builder::new()
                        .name(format!("ftl-ol-shard-{i}"))
                        .spawn_scoped(scope, move || open_loop_worker(ssd, pair, epoch))
                        .expect("spawn open-loop worker")
                })
                .collect();

            // Host side: pace by the wall clock, split due requests into
            // per-shard backlogs, feed the submission queues, harvest.
            let mut backlog: Vec<VecDeque<IoRequest>> = (0..n).map(|_| VecDeque::new()).collect();
            let drain = |backlog: &mut Vec<VecDeque<IoRequest>>| {
                for (queue, pair) in backlog.iter_mut().zip(&pairs) {
                    while let Some(&req) = queue.front() {
                        if pair.sq.try_push(req).is_ok() {
                            queue.pop_front();
                        } else {
                            break;
                        }
                    }
                }
            };

            for req in fixed_rate(trace, opts.offered_rps) {
                let due_us = req.arrival_us;
                loop {
                    harvest(&pairs, &mut host);
                    drain(&mut backlog);
                    let now_us = epoch.elapsed().as_secs_f64() * 1e6;
                    if now_us >= due_us {
                        break;
                    }
                    // Sleep in bounded chunks so completions keep being
                    // harvested; close to the deadline, yield instead
                    // (the OS timer is ~50 µs-grained). Oversleep is
                    // harmless: late requests submit in a catch-up
                    // burst and their latency is still measured from
                    // the schedule.
                    let remaining = due_us - now_us;
                    if remaining > 150.0 {
                        std::thread::sleep(Duration::from_micros(
                            remaining.min(500.0) as u64 - 100,
                        ));
                    } else {
                        std::thread::yield_now();
                    }
                }
                if host.failed {
                    break;
                }
                splitter.split(&req, |shard, sub| {
                    backlog[shard as usize].push_back(sub);
                    sub_requests += 1;
                });
                requests += 1;
                drain(&mut backlog);
                let queued: u64 = backlog.iter().map(|q| q.len() as u64).sum();
                backlog_peak = backlog_peak.max(queued);
            }

            // Flush the backlog (overload tail), then close and drain.
            while !host.failed && backlog.iter().any(|q| !q.is_empty()) {
                drain(&mut backlog);
                if !harvest(&pairs, &mut host) {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            for pair in &pairs {
                pair.sq.close();
            }
            loop {
                harvest(&pairs, &mut host);
                if pairs.iter().all(|p| p.cq.is_closed() && p.cq.is_empty()) {
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            wall_us = epoch.elapsed().as_secs_f64() * 1e6;

            handles
                .into_iter()
                .map(|h| h.join().expect("open-loop worker panicked"))
                .collect()
        });

        self.last_doorbells = pairs
            .iter()
            .map(QueuePair::doorbell_stats)
            .fold(DoorbellStats::default(), DoorbellStats::merge);

        let mut first_err = None;
        let mut ssds = Vec::with_capacity(n);
        for (ssd, res) in joined {
            if let (Err(e), None) = (res, &first_err) {
                first_err = Some(e);
            }
            ssds.push(ssd);
        }
        self.shards = ssds;
        if let Some(e) = first_err {
            return Err(e);
        }

        debug_assert_eq!(host.completed, sub_requests);
        Ok(OpenLoopReport {
            offered_rps: opts.offered_rps,
            requests,
            sub_requests,
            wall_us,
            achieved_rps: if wall_us > 0.0 {
                requests as f64 * 1e6 / wall_us
            } else {
                0.0
            },
            resp_avg_us: if host.completed > 0 {
                host.resp_sum_us / host.completed as f64
            } else {
                0.0
            },
            resp_p50_us: host.hist.quantile(0.5),
            resp_p99_us: host.hist.quantile(0.99),
            resp_p999_us: host.hist.p999(),
            backlog_peak,
            doorbells: self.last_doorbells,
            report: self.report(),
        })
    }

    /// The measurements accumulated so far, merged in shard order.
    pub fn report(&self) -> ShardedRunReport {
        let per_shard: Vec<RunReport> = self.shards.iter().map(Ssd::report).collect();
        let mut merged = merge_reports(&per_shard);
        if self.shards.len() > 1 {
            // Exact merged percentiles: histogram counts are integers, so
            // this merge is order-independent and bit-reproducible.
            let mut hist = LatencyHistogram::new();
            for shard in &self.shards {
                hist.merge_from(shard.sim_histogram());
            }
            merged.sim.resp_p50_us = hist.quantile(0.5);
            merged.sim.resp_p99_us = hist.quantile(0.99);
            merged.sim.resp_p999_us = hist.p999();
        }
        ShardedRunReport {
            merged,
            load: ShardLoadStats::from_reports(&per_shard),
            per_shard,
        }
    }
}

/// Drains every closed-loop completion queue, noting failures.
fn harvest_batches(pairs: &[QueuePair<Vec<IoRequest>, BatchDone>], failed: &mut bool) {
    for pair in pairs {
        while let Some(done) = pair.cq.try_pop() {
            if done.failed {
                *failed = true;
            }
        }
    }
}

/// One shard's closed-loop worker: serve batches until the submission
/// queue closes, posting one completion entry per batch. On a serve
/// error the worker posts a failed completion (telling the host to stop
/// submitting), then keeps draining without serving so the bounded queue
/// never wedges the producer.
fn shard_worker<F: Ftl + Send>(
    mut ssd: Ssd<F>,
    pair: &QueuePair<Vec<IoRequest>, BatchDone>,
) -> (Ssd<F>, Result<()>) {
    let mut result = Ok(());
    while let Some(batch) = pair.sq.pop_blocking() {
        let mut done = BatchDone { failed: false };
        if result.is_ok() {
            for req in &batch {
                if let Err(e) = ssd.serve(req) {
                    result = Err(e);
                    done.failed = true;
                    break;
                }
            }
        }
        pair.cq.push_blocking(done);
    }
    pair.cq.close();
    (ssd, result)
}

/// One shard's open-loop worker: serve individual requests, posting each
/// completion with its wall-clock response time measured against the
/// request's scheduled arrival.
fn open_loop_worker<F: Ftl + Send>(
    mut ssd: Ssd<F>,
    pair: &QueuePair<IoRequest, OpenLoopCqe>,
    epoch: Instant,
) -> (Ssd<F>, Result<()>) {
    let mut result = Ok(());
    while let Some(req) = pair.sq.pop_blocking() {
        let cqe = if result.is_ok() {
            match ssd.serve(&req) {
                Ok(_) => {
                    let now_us = epoch.elapsed().as_secs_f64() * 1e6;
                    OpenLoopCqe::Done((now_us - req.arrival_us).max(0.0))
                }
                Err(e) => {
                    result = Err(e);
                    OpenLoopCqe::Failed
                }
            }
        } else {
            OpenLoopCqe::Failed
        };
        pair.cq.push_blocking(cqe);
    }
    pair.cq.close();
    (ssd, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpftl_core::ftl::{OptimalFtl, TpFtl, TpftlConfig};
    use tpftl_trace::{Dir, SyntheticSpec};

    fn spec(requests: usize) -> SyntheticSpec {
        SyntheticSpec {
            requests,
            address_bytes: 64 << 20,
            write_ratio: 0.7,
            mean_req_sectors: 24.0, // multi-page requests exercise the split
            mean_interarrival_us: 300.0,
            ..SyntheticSpec::default()
        }
    }

    fn tp_config() -> SsdConfig {
        let mut config = SsdConfig::paper_default(64 << 20);
        config.cache_bytes = config.gtd_bytes() + 16 * 1024;
        config
    }

    fn build_tp(_: u32, cfg: &SsdConfig) -> Result<TpFtl> {
        TpFtl::new(cfg, TpftlConfig::full())
    }

    #[test]
    fn one_shard_matches_single_queue_bit_for_bit() {
        let config = tp_config();
        let trace: Vec<IoRequest> = spec(1_500).iter(7).collect();

        let ftl = TpFtl::new(&config, TpftlConfig::full()).unwrap();
        let mut single = Ssd::new(ftl, config.clone()).unwrap();
        let single_report = single.run(trace.iter().copied()).unwrap();

        let mut sharded = ShardedSsd::new(&config, 1, build_tp).unwrap();
        let report = sharded.run(trace).unwrap();
        assert_eq!(report.merged, single_report);
        assert_eq!(report.per_shard.len(), 1);
        assert!((report.load.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_shards_are_deterministic_and_conserve_accesses() {
        let config = tp_config();
        let trace: Vec<IoRequest> = spec(2_000).iter(11).collect();

        let ftl = TpFtl::new(&config, TpftlConfig::full()).unwrap();
        let mut single = Ssd::new(ftl, config.clone()).unwrap();
        let single_report = single.run(trace.iter().copied()).unwrap();

        let run = || {
            let mut sharded = ShardedSsd::new(&config, 4, build_tp).unwrap();
            sharded.run(trace.iter().copied()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same trace must merge to identical reports");

        // The partition must conserve work: same page accesses, reads,
        // writes as the single-queue run (requests multiply when split).
        assert_eq!(
            a.merged.ftl_stats.user_page_accesses(),
            single_report.ftl_stats.user_page_accesses()
        );
        assert_eq!(
            a.merged.ftl_stats.user_page_reads,
            single_report.ftl_stats.user_page_reads
        );
        assert_eq!(
            a.merged.ftl_stats.user_page_writes,
            single_report.ftl_stats.user_page_writes
        );
        assert_eq!(
            a.load.page_accesses.iter().sum::<u64>(),
            single_report.ftl_stats.user_page_accesses()
        );
        assert!(a.load.imbalance >= 1.0);
        // Low-bit striping keeps this workload within a few percent of
        // perfectly balanced.
        assert!(a.load.imbalance < 1.1, "imbalance {}", a.load.imbalance);
    }

    #[test]
    fn merge_is_request_weighted() {
        let config = tp_config();
        let mut sharded = ShardedSsd::new(&config, 2, build_tp).unwrap();
        let report = sharded.run(spec(800).iter(3)).unwrap();
        let by_hand: f64 = report
            .per_shard
            .iter()
            .map(|r| r.avg_response_us * r.ftl_stats.requests as f64)
            .sum::<f64>()
            / report
                .per_shard
                .iter()
                .map(|r| r.ftl_stats.requests)
                .sum::<u64>() as f64;
        assert!((report.merged.avg_response_us - by_hand).abs() < 1e-9);
        assert_eq!(
            report.merged.ftl_stats.requests,
            report.per_shard.iter().map(|r| r.ftl_stats.requests).sum()
        );
    }

    #[test]
    fn sim_clocks_merge_deterministically() {
        let config = tp_config();
        let trace: Vec<IoRequest> = spec(1_200).iter(9).collect();
        let mut sharded = ShardedSsd::new(&config, 4, build_tp).unwrap();
        let report = sharded.run(trace).unwrap();
        let m = &report.merged.sim;
        // Makespan is the latest shard; device time the sum of all shards.
        let max_makespan = report
            .per_shard
            .iter()
            .map(|r| r.sim.makespan_us)
            .fold(0.0f64, f64::max);
        let sum_device: f64 = report.per_shard.iter().map(|r| r.sim.device_us).sum();
        assert_eq!(m.makespan_us.to_bits(), max_makespan.to_bits());
        assert_eq!(m.device_us.to_bits(), sum_device.to_bits());
        // Percentiles come from the merged histogram, not a fold of
        // per-shard percentiles.
        let mut hist = LatencyHistogram::new();
        for i in 0..4 {
            hist.merge_from(sharded.shard(i).sim_histogram());
        }
        assert_eq!(m.resp_p50_us, hist.quantile(0.5));
        assert_eq!(m.resp_p99_us, hist.quantile(0.99));
        assert_eq!(m.resp_p999_us, hist.p999());
        assert!(m.resp_p999_us >= m.resp_p99_us);
        assert!(m.resp_p99_us >= m.resp_p50_us);
        assert!(hist.total() > 0);
    }

    #[test]
    fn shard_errors_surface_in_shard_order() {
        let config = SsdConfig::paper_default(64 << 20);
        let mut sharded = ShardedSsd::new(&config, 2, |_, cfg| Ok(OptimalFtl::new(cfg))).unwrap();
        // One shard owns 8192 local pages; address far beyond both shards.
        let bad = IoRequest::new(0.0, 1 << 30, 4096, Dir::Write);
        assert!(sharded.run(std::iter::once(bad)).is_err());
        // The engine survives the error: shards are back and usable.
        let ok = IoRequest::new(0.0, 0, 4096, Dir::Write);
        assert!(sharded.run(std::iter::once(ok)).is_ok());
    }

    #[test]
    fn open_loop_completes_everything_and_reports_sane_latencies() {
        let config = tp_config();
        let mut sharded = ShardedSsd::new(&config, 4, build_tp).unwrap();
        let out = sharded
            .run_open_loop(
                spec(400).iter(21),
                OpenLoopOpts {
                    offered_rps: 100_000.0,
                    queue_depth: 64,
                },
            )
            .unwrap();
        assert_eq!(out.requests, 400);
        assert!(out.sub_requests >= out.requests);
        assert_eq!(
            out.report.merged.ftl_stats.requests, out.sub_requests,
            "every offered sub-request must be served exactly once"
        );
        assert!(out.wall_us > 0.0 && out.achieved_rps > 0.0);
        assert!(
            out.achieved_rps <= out.offered_rps * 1.05,
            "cannot serve faster than offered"
        );
        assert!(out.resp_p50_us <= out.resp_p99_us);
        assert!(out.resp_p99_us <= out.resp_p999_us);
        assert!(out.resp_avg_us >= 0.0);
    }

    #[test]
    fn open_loop_simulation_report_is_deterministic() {
        // Wall-clock latencies vary run to run; the embedded simulation
        // report must not (fixed arrival schedule, shard-order merge).
        let config = tp_config();
        let run = || {
            let mut sharded = ShardedSsd::new(&config, 4, build_tp).unwrap();
            sharded
                .run_open_loop(
                    spec(600).iter(5),
                    OpenLoopOpts {
                        offered_rps: 500_000.0,
                        queue_depth: 64,
                    },
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report);
        assert_eq!((a.requests, a.sub_requests), (b.requests, b.sub_requests));
    }

    #[test]
    fn open_loop_idle_shards_park_instead_of_spinning() {
        // 2 000 req/s over 4 shards leaves every worker idle ~99% of the
        // run; parked workers are the "idle engine consumes ~0% CPU"
        // guarantee. Each worker parks after nearly every request, so
        // parks track the request count, not the spin budget.
        let config = tp_config();
        let mut sharded = ShardedSsd::new(&config, 4, build_tp).unwrap();
        let out = sharded
            .run_open_loop(
                spec(60).iter(13),
                OpenLoopOpts {
                    offered_rps: 2_000.0,
                    queue_depth: 64,
                },
            )
            .unwrap();
        let db = out.doorbells;
        assert!(
            db.parks >= out.requests / 4,
            "workers spun instead of parking: {} parks for {} requests",
            db.parks,
            out.requests
        );
        assert!(db.wakeups >= 1, "doorbells never rang");
        assert_eq!(sharded.doorbell_stats(), db);
    }

    #[test]
    fn open_loop_shard_errors_surface() {
        let config = SsdConfig::paper_default(64 << 20);
        let mut sharded = ShardedSsd::new(&config, 2, |_, cfg| Ok(OptimalFtl::new(cfg))).unwrap();
        let bad = IoRequest::new(0.0, 1 << 30, 4096, Dir::Write);
        let res = sharded.run_open_loop(
            std::iter::once(bad),
            OpenLoopOpts {
                offered_rps: 10_000.0,
                queue_depth: 16,
            },
        );
        assert!(res.is_err());
        let ok = IoRequest::new(0.0, 0, 4096, Dir::Write);
        assert!(sharded
            .run_open_loop(
                std::iter::once(ok),
                OpenLoopOpts {
                    offered_rps: 10_000.0,
                    queue_depth: 16,
                },
            )
            .is_ok());
    }
}
