//! Sharded multi-queue SSD engine: parallel trace replay across
//! LPN-partitioned shards.
//!
//! The single-queue [`Ssd`] serves one page access at a time on one core.
//! This module scales replay across cores the way real NVMe-era SSDs scale
//! across channels/dies: the logical page space is striped over `N`
//! independent shards (`N` a power of two), each shard owning a complete
//! private device — flash arena, block manager, mapping cache, GC state —
//! of `1/N`-th the geometry (see `SsdConfig::shard_config`). One worker
//! thread per shard consumes its own bounded SPSC ring of request batches;
//! a splitter thread routes (and, for multi-page requests, splits) the
//! incoming stream by the low LPN bits (see `tpftl_trace::ShardSplitter`).
//!
//! # Determinism
//!
//! Thread interleaving can never change the result: each shard's
//! sub-request sequence is a *projection* of the trace (same relative
//! order, fixed by the single splitter), each shard's state is private, so
//! every per-shard [`RunReport`] is a pure function of (config, trace,
//! shard index). The merge then folds the per-shard reports **in shard
//! order**, so even the floating-point sums (`busy_us`, the response-time
//! average) are bit-reproducible run to run. With one shard, the splitter
//! emits exactly the original page spans into a single worker, and the
//! merged report is the shard's report verbatim — bit-identical to the
//! single-queue path (pinned by the sharded golden test).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};
use tpftl_core::env::GcStats;
use tpftl_core::ftl::Ftl;
use tpftl_core::{FtlStats, Result, SsdConfig};
use tpftl_flash::FlashStats;
use tpftl_trace::{IoRequest, ShardSplitter};

use crate::{LatencyHistogram, RunReport, SimTiming, Ssd};

/// 4 KB pages everywhere (Table 3).
const PAGE_BYTES: u64 = 4096;

/// Requests per submitted batch (the SPSC ring's item granularity).
const BATCH_REQUESTS: usize = 64;

/// Ring capacity in batches — bounds the per-shard submission queue at
/// `RING_BATCHES * BATCH_REQUESTS` in-flight requests.
const RING_BATCHES: usize = 32;

// ---- Bounded SPSC ring ------------------------------------------------------

/// A bounded single-producer/single-consumer ring buffer.
///
/// The splitter thread is the only pusher, one worker the only popper, so
/// plain acquire/release on two monotone cursors suffices — no locks and no
/// allocation on the queue path (items are pre-batched `Vec`s whose
/// backing storage the producer allocates off the hot loop).
struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer reads; only the consumer advances it.
    head: AtomicUsize,
    /// Next slot the producer writes; only the producer advances it.
    tail: AtomicUsize,
    /// Producer is done; set after its final push.
    closed: AtomicBool,
}

// SAFETY: the ring hands each element from exactly one thread to exactly
// one other; `T: Send` is all that transfer needs.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity not a power of two"
        );
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Producer side: enqueue `v`, or hand it back when the ring is full.
    fn try_push(&self, v: T) -> std::result::Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail - head > self.mask {
            return Err(v);
        }
        // SAFETY: `head <= tail - capacity` was just excluded, so this slot
        // is vacant, and we are the only producer.
        unsafe { (*self.slots[tail & self.mask].get()).write(v) };
        self.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Consumer side: dequeue the next item if one is ready.
    fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so this slot holds an initialized item,
        // and we are the only consumer.
        let v = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.store(head + 1, Ordering::Release);
        Some(v)
    }

    /// Producer side: no more pushes will follow.
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Consumer side: blocking pop; `None` only after the producer closed
    /// the ring *and* it drained empty.
    fn pop_blocking(&self) -> Option<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.closed.load(Ordering::Acquire) {
                // The close happened after every push; one last look.
                return self.try_pop();
            }
            std::thread::yield_now();
        }
    }

    /// Producer side: blocking push (spins while the consumer catches up).
    fn push_blocking(&self, mut v: T) {
        while let Err(back) = self.try_push(v) {
            v = back;
            std::thread::yield_now();
        }
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: exclusive access; slots in `head..tail` are live.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

// ---- Reports ----------------------------------------------------------------

/// Per-shard load distribution of one sharded run — reported so partition
/// skew is visible instead of silently averaged away.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardLoadStats {
    /// Host sub-requests routed to each shard, in shard order.
    pub requests: Vec<u64>,
    /// User page accesses served by each shard, in shard order.
    pub page_accesses: Vec<u64>,
    /// Busiest shard's page accesses over the per-shard mean (1.0 =
    /// perfectly balanced; the run's wall clock tracks the busiest shard).
    pub imbalance: f64,
}

impl ShardLoadStats {
    fn from_reports(per_shard: &[RunReport]) -> Self {
        let page_accesses: Vec<u64> = per_shard
            .iter()
            .map(|r| r.ftl_stats.user_page_accesses())
            .collect();
        let max = page_accesses.iter().copied().max().unwrap_or(0);
        let mean = page_accesses.iter().sum::<u64>() as f64 / page_accesses.len().max(1) as f64;
        Self {
            requests: per_shard.iter().map(|r| r.ftl_stats.requests).collect(),
            page_accesses,
            imbalance: if mean == 0.0 { 1.0 } else { max as f64 / mean },
        }
    }
}

/// The result of a sharded run: the per-shard [`RunReport`]s (in shard
/// order) and their deterministic merge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedRunReport {
    /// Aggregate over all shards. With one shard this is the shard's
    /// report verbatim; otherwise counters are shard-order sums and
    /// `avg_response_us` is the request-weighted mean.
    pub merged: RunReport,
    /// One report per shard, in shard order.
    pub per_shard: Vec<RunReport>,
    /// Load-balance summary of the same run.
    pub load: ShardLoadStats,
}

/// Folds per-shard reports in shard order; see [`ShardedRunReport::merged`].
fn merge_reports(per_shard: &[RunReport]) -> RunReport {
    assert!(!per_shard.is_empty(), "no shard reports to merge");
    if per_shard.len() == 1 {
        return per_shard[0].clone();
    }
    let mut ftl_stats = FtlStats::default();
    let mut flash = FlashStats::default();
    let mut gc = GcStats::default();
    let mut response_weighted = 0.0;
    let mut responses = 0u64;
    let mut cached_entries = 0usize;
    let mut cache_bytes_used = 0usize;
    let mut cache_bytes_total = 0usize;
    // Simulated clocks: shards are parallel devices, so the merged
    // makespan is the latest shard's (shard-order fold of `max`, still
    // deterministic), while device time — occupied device-microseconds —
    // sums like `busy_us`. Percentiles need the sample distribution, not
    // per-shard percentiles; `ShardedSsd::report` fills them from the
    // merged histograms.
    let mut sim = SimTiming {
        channels: per_shard[0].sim.channels,
        ways: per_shard[0].sim.ways,
        ..SimTiming::default()
    };
    let mut sim_resp_weighted = 0.0;
    for r in per_shard {
        ftl_stats.merge_from(&r.ftl_stats);
        flash.merge_from(&r.flash);
        gc.merge_from(&r.gc);
        response_weighted += r.avg_response_us * r.ftl_stats.requests as f64;
        responses += r.ftl_stats.requests;
        cached_entries += r.cached_entries;
        cache_bytes_used += r.cache_bytes_used;
        cache_bytes_total += r.cache_bytes_total;
        sim.device_us += r.sim.device_us;
        sim.makespan_us = sim.makespan_us.max(r.sim.makespan_us);
        sim_resp_weighted += r.sim.resp_avg_us * r.ftl_stats.requests as f64;
    }
    if responses > 0 {
        sim.resp_avg_us = sim_resp_weighted / responses as f64;
    }
    RunReport {
        ftl: per_shard[0].ftl.clone(),
        ftl_stats,
        flash,
        gc,
        avg_response_us: if responses == 0 {
            0.0
        } else {
            response_weighted / responses as f64
        },
        cached_entries,
        cache_bytes_used,
        cache_bytes_total,
        sim,
    }
}

// ---- The engine -------------------------------------------------------------

/// `N` independent single-queue SSDs behind an LPN-striping splitter —
/// the multi-queue execution engine.
///
/// # Examples
///
/// ```
/// use tpftl_core::ftl::{TpFtl, TpftlConfig};
/// use tpftl_core::SsdConfig;
/// use tpftl_sim::ShardedSsd;
/// use tpftl_trace::SyntheticSpec;
///
/// let config = SsdConfig::paper_default(64 << 20);
/// let mut ssd = ShardedSsd::new(&config, 4, |_, shard_cfg| {
///     TpFtl::new(shard_cfg, TpftlConfig::full())
/// })
/// .unwrap();
/// let spec = SyntheticSpec {
///     requests: 300,
///     address_bytes: 64 << 20,
///     ..SyntheticSpec::default()
/// };
/// let report = ssd.run(spec.iter(42)).unwrap();
/// // Multi-page requests split into one sub-request per shard touched.
/// assert!(report.merged.ftl_stats.requests >= 300);
/// assert_eq!(report.per_shard.len(), 4);
/// ```
pub struct ShardedSsd<F: Ftl + Send> {
    shards: Vec<Ssd<F>>,
    splitter: ShardSplitter,
}

impl<F: Ftl + Send> ShardedSsd<F> {
    /// Builds and bootstraps one `1/num_shards`-geometry SSD per shard;
    /// `build` constructs each shard's FTL from `(shard_index, shard_config)`.
    ///
    /// # Panics
    ///
    /// Panics when `config` cannot be partitioned into `num_shards` shards
    /// (see `SsdConfig::supports_shards`).
    pub fn new<B>(config: &SsdConfig, num_shards: u32, build: B) -> Result<Self>
    where
        B: Fn(u32, &SsdConfig) -> Result<F>,
    {
        let shard_config = config.shard_config(num_shards);
        let shards = (0..num_shards)
            .map(|s| Ssd::new(build(s, &shard_config)?, shard_config.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            splitter: ShardSplitter::new(num_shards, PAGE_BYTES),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.splitter.shards()
    }

    /// Read-only access to one shard's SSD (tests, inspection).
    pub fn shard(&self, index: usize) -> &Ssd<F> {
        &self.shards[index]
    }

    /// Serves an entire trace across the shards — one worker thread per
    /// shard fed through its bounded SPSC ring in batches of
    /// `BATCH_REQUESTS` — and reports the merged measurements.
    ///
    /// The first shard error (in shard order) is returned; remaining
    /// shards drain their queues so the splitter never blocks on a dead
    /// consumer.
    pub fn run<I>(&mut self, trace: I) -> Result<ShardedRunReport>
    where
        I: IntoIterator<Item = IoRequest>,
    {
        let n = self.shards.len();
        let splitter = self.splitter;
        let rings: Vec<SpscRing<Vec<IoRequest>>> =
            (0..n).map(|_| SpscRing::new(RING_BATCHES)).collect();
        let abort = AtomicBool::new(false);
        let shards = std::mem::take(&mut self.shards);

        let mut joined: Vec<(Ssd<F>, Result<()>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(i, ssd)| {
                    let ring = &rings[i];
                    let abort = &abort;
                    std::thread::Builder::new()
                        .name(format!("ftl-shard-{i}"))
                        .spawn_scoped(scope, move || shard_worker(ssd, ring, abort))
                        .expect("spawn shard worker")
                })
                .collect();

            // The splitter runs on the submitting thread: route every
            // request, batch per shard, push full batches.
            let mut pending: Vec<Vec<IoRequest>> =
                (0..n).map(|_| Vec::with_capacity(BATCH_REQUESTS)).collect();
            for req in trace {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                splitter.split(&req, |shard, sub| pending[shard as usize].push(sub));
                for (batch, ring) in pending.iter_mut().zip(&rings) {
                    if batch.len() >= BATCH_REQUESTS {
                        let full = std::mem::replace(batch, Vec::with_capacity(BATCH_REQUESTS));
                        ring.push_blocking(full);
                    }
                }
            }
            for (batch, ring) in pending.iter_mut().zip(&rings) {
                if !batch.is_empty() {
                    ring.push_blocking(std::mem::take(batch));
                }
                ring.close();
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        let mut first_err = None;
        let mut ssds = Vec::with_capacity(n);
        for (ssd, res) in joined.drain(..) {
            if let (Err(e), None) = (res, &first_err) {
                first_err = Some(e);
            }
            ssds.push(ssd);
        }
        self.shards = ssds;
        match first_err {
            Some(e) => Err(e),
            None => Ok(self.report()),
        }
    }

    /// The measurements accumulated so far, merged in shard order.
    pub fn report(&self) -> ShardedRunReport {
        let per_shard: Vec<RunReport> = self.shards.iter().map(Ssd::report).collect();
        let mut merged = merge_reports(&per_shard);
        if self.shards.len() > 1 {
            // Exact merged percentiles: histogram counts are integers, so
            // this merge is order-independent and bit-reproducible.
            let mut hist = LatencyHistogram::new();
            for shard in &self.shards {
                hist.merge_from(shard.sim_histogram());
            }
            merged.sim.resp_p50_us = hist.quantile(0.5);
            merged.sim.resp_p99_us = hist.quantile(0.99);
        }
        ShardedRunReport {
            merged,
            load: ShardLoadStats::from_reports(&per_shard),
            per_shard,
        }
    }
}

/// One shard's worker loop: serve batches until the ring closes. On a
/// serve error the worker flags the splitter to stop, then keeps draining
/// (without serving) so the bounded ring never wedges the producer.
fn shard_worker<F: Ftl + Send>(
    mut ssd: Ssd<F>,
    ring: &SpscRing<Vec<IoRequest>>,
    abort: &AtomicBool,
) -> (Ssd<F>, Result<()>) {
    let mut result = Ok(());
    while let Some(batch) = ring.pop_blocking() {
        if result.is_ok() {
            for req in &batch {
                if let Err(e) = ssd.serve(req) {
                    result = Err(e);
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
    (ssd, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpftl_core::ftl::{OptimalFtl, TpFtl, TpftlConfig};
    use tpftl_trace::{Dir, SyntheticSpec};

    fn spec(requests: usize) -> SyntheticSpec {
        SyntheticSpec {
            requests,
            address_bytes: 64 << 20,
            write_ratio: 0.7,
            mean_req_sectors: 24.0, // multi-page requests exercise the split
            mean_interarrival_us: 300.0,
            ..SyntheticSpec::default()
        }
    }

    fn tp_config() -> SsdConfig {
        let mut config = SsdConfig::paper_default(64 << 20);
        config.cache_bytes = config.gtd_bytes() + 16 * 1024;
        config
    }

    fn build_tp(_: u32, cfg: &SsdConfig) -> Result<TpFtl> {
        TpFtl::new(cfg, TpftlConfig::full())
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let ring: SpscRing<u32> = SpscRing::new(4);
        for i in 0..4 {
            assert!(ring.try_push(i).is_ok());
        }
        assert_eq!(ring.try_push(99), Err(99), "fifth push must bounce");
        assert_eq!(ring.try_pop(), Some(0));
        assert!(ring.try_push(4).is_ok());
        assert_eq!(
            (1..5).map(|_| ring.try_pop().unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn ring_close_drains_remaining_items() {
        let ring: SpscRing<u32> = SpscRing::new(8);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        ring.close();
        assert_eq!(ring.pop_blocking(), Some(1));
        assert_eq!(ring.pop_blocking(), Some(2));
        assert_eq!(ring.pop_blocking(), None);
    }

    #[test]
    fn ring_drop_releases_undrained_items() {
        // Drop with live items must run their destructors (miri-style
        // sanity: an Rc's count observes the drop).
        let counter = std::rc::Rc::new(());
        {
            let ring: SpscRing<std::rc::Rc<()>> = SpscRing::new(4);
            ring.try_push(std::rc::Rc::clone(&counter)).unwrap();
            ring.try_push(std::rc::Rc::clone(&counter)).unwrap();
            drop(ring);
        }
        assert_eq!(std::rc::Rc::strong_count(&counter), 1);
    }

    #[test]
    fn ring_transfers_across_threads() {
        let ring: SpscRing<u64> = SpscRing::new(8);
        let total: u64 = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut sum = 0;
                while let Some(v) = ring.pop_blocking() {
                    sum += v;
                }
                sum
            });
            for v in 0..10_000u64 {
                ring.push_blocking(v);
            }
            ring.close();
            consumer.join().unwrap()
        });
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn one_shard_matches_single_queue_bit_for_bit() {
        let config = tp_config();
        let trace: Vec<IoRequest> = spec(1_500).iter(7).collect();

        let ftl = TpFtl::new(&config, TpftlConfig::full()).unwrap();
        let mut single = Ssd::new(ftl, config.clone()).unwrap();
        let single_report = single.run(trace.iter().copied()).unwrap();

        let mut sharded = ShardedSsd::new(&config, 1, build_tp).unwrap();
        let report = sharded.run(trace).unwrap();
        assert_eq!(report.merged, single_report);
        assert_eq!(report.per_shard.len(), 1);
        assert!((report.load.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_shards_are_deterministic_and_conserve_accesses() {
        let config = tp_config();
        let trace: Vec<IoRequest> = spec(2_000).iter(11).collect();

        let ftl = TpFtl::new(&config, TpftlConfig::full()).unwrap();
        let mut single = Ssd::new(ftl, config.clone()).unwrap();
        let single_report = single.run(trace.iter().copied()).unwrap();

        let run = || {
            let mut sharded = ShardedSsd::new(&config, 4, build_tp).unwrap();
            sharded.run(trace.iter().copied()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same trace must merge to identical reports");

        // The partition must conserve work: same page accesses, reads,
        // writes as the single-queue run (requests multiply when split).
        assert_eq!(
            a.merged.ftl_stats.user_page_accesses(),
            single_report.ftl_stats.user_page_accesses()
        );
        assert_eq!(
            a.merged.ftl_stats.user_page_reads,
            single_report.ftl_stats.user_page_reads
        );
        assert_eq!(
            a.merged.ftl_stats.user_page_writes,
            single_report.ftl_stats.user_page_writes
        );
        assert_eq!(
            a.load.page_accesses.iter().sum::<u64>(),
            single_report.ftl_stats.user_page_accesses()
        );
        assert!(a.load.imbalance >= 1.0);
        // Low-bit striping keeps this workload within a few percent of
        // perfectly balanced.
        assert!(a.load.imbalance < 1.1, "imbalance {}", a.load.imbalance);
    }

    #[test]
    fn merge_is_request_weighted() {
        let config = tp_config();
        let mut sharded = ShardedSsd::new(&config, 2, build_tp).unwrap();
        let report = sharded.run(spec(800).iter(3)).unwrap();
        let by_hand: f64 = report
            .per_shard
            .iter()
            .map(|r| r.avg_response_us * r.ftl_stats.requests as f64)
            .sum::<f64>()
            / report
                .per_shard
                .iter()
                .map(|r| r.ftl_stats.requests)
                .sum::<u64>() as f64;
        assert!((report.merged.avg_response_us - by_hand).abs() < 1e-9);
        assert_eq!(
            report.merged.ftl_stats.requests,
            report.per_shard.iter().map(|r| r.ftl_stats.requests).sum()
        );
    }

    #[test]
    fn sim_clocks_merge_deterministically() {
        let config = tp_config();
        let trace: Vec<IoRequest> = spec(1_200).iter(9).collect();
        let mut sharded = ShardedSsd::new(&config, 4, build_tp).unwrap();
        let report = sharded.run(trace).unwrap();
        let m = &report.merged.sim;
        // Makespan is the latest shard; device time the sum of all shards.
        let max_makespan = report
            .per_shard
            .iter()
            .map(|r| r.sim.makespan_us)
            .fold(0.0f64, f64::max);
        let sum_device: f64 = report.per_shard.iter().map(|r| r.sim.device_us).sum();
        assert_eq!(m.makespan_us.to_bits(), max_makespan.to_bits());
        assert_eq!(m.device_us.to_bits(), sum_device.to_bits());
        // Percentiles come from the merged histogram, not a fold of
        // per-shard percentiles.
        let mut hist = LatencyHistogram::new();
        for i in 0..4 {
            hist.merge_from(sharded.shard(i).sim_histogram());
        }
        assert_eq!(m.resp_p50_us, hist.quantile(0.5));
        assert_eq!(m.resp_p99_us, hist.quantile(0.99));
        assert!(m.resp_p99_us >= m.resp_p50_us);
        assert!(hist.total() > 0);
    }

    #[test]
    fn shard_errors_surface_in_shard_order() {
        let config = SsdConfig::paper_default(64 << 20);
        let mut sharded = ShardedSsd::new(&config, 2, |_, cfg| Ok(OptimalFtl::new(cfg))).unwrap();
        // One shard owns 8192 local pages; address far beyond both shards.
        let bad = IoRequest::new(0.0, 1 << 30, 4096, Dir::Write);
        assert!(sharded.run(std::iter::once(bad)).is_err());
        // The engine survives the error: shards are back and usable.
        let ok = IoRequest::new(0.0, 0, 4096, Dir::Write);
        assert!(sharded.run(std::iter::once(ok)).is_ok());
    }
}
