//! Differential power-loss crash testing.
//!
//! [`CrashHarness`] replays one fixed trace against an FTL, kills the
//! device at an injected fault point (see `tpftl_flash::FaultPlan`),
//! remounts with [`tpftl_core::recovery::crash_mount`], and runs the
//! durability oracle: every *acknowledged* write — a host request `serve`
//! returned `Ok` for — must still be readable from the persisted mapping
//! table after recovery, and the remounted table must pass the full
//! [`tpftl_core::recovery::verify`] consistency check.
//!
//! Everything is deterministic: the same config, trace, FTL, and fault
//! plan produce a bit-identical [`CrashOutcome`], so sweeps can compare
//! serialized outcomes across replays.

use std::collections::HashMap;
use std::path::Path;

use serde::{Deserialize, Serialize};
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::Ftl;
use tpftl_core::recovery::{self, InterruptedOp, RecoveryReport, VerifyReport};
use tpftl_core::{FtlError, Result, SsdConfig};
use tpftl_flash::{FaultPlan, Flash, FlashError, Lpn, Ppn};
use tpftl_trace::IoRequest;

use crate::Ssd;

/// 4 KB pages everywhere (Table 3).
const PAGE_BYTES: u64 = 4096;

/// What one crash-and-remount run observed.
///
/// Bit-identical across replays of the same (config, trace, FTL, plan):
/// compare with `==` or via serialization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashOutcome {
    /// Name of the FTL under test.
    pub ftl: String,
    /// Whether the whole trace (and the final flush) completed before the
    /// fault fired — i.e. the plan's trigger lay beyond the run.
    pub completed_trace: bool,
    /// Host requests acknowledged (served `Ok`) before the power loss.
    pub requests_acknowledged: u64,
    /// Distinct logical pages with acknowledged content (trace writes
    /// plus the bootstrap pre-fill) the oracle checked.
    pub pages_checked: u64,
    /// What `crash_mount` found and repaired.
    pub recovery: RecoveryReport,
    /// Post-recovery mapping-table consistency check.
    pub verify: VerifyReport,
    /// Durability violations: acknowledged pages that are unmapped or
    /// mis-mapped after recovery, in LPN order. Empty means no
    /// acknowledged write was lost.
    pub violations: Vec<String>,
}

impl CrashOutcome {
    /// No acknowledged write lost and the remounted table is consistent.
    pub fn is_durable(&self) -> bool {
        self.violations.is_empty() && self.verify.is_clean()
    }

    /// Panics with every violation and verify error if not durable.
    ///
    /// # Panics
    ///
    /// See above.
    pub fn assert_durable(&self) {
        assert!(
            self.violations.is_empty(),
            "{}: {} durability violations after crash at {:?}:\n{}",
            self.ftl,
            self.violations.len(),
            self.recovery.interrupted,
            self.violations.join("\n")
        );
        self.verify.assert_clean();
    }
}

/// Replays one trace against fresh FTL instances under injected power
/// loss. The harness owns the config and the trace so every run (and
/// every FTL) sees exactly the same request stream.
pub struct CrashHarness {
    config: SsdConfig,
    trace: Vec<IoRequest>,
}

impl CrashHarness {
    /// Builds a harness over `trace` for devices configured by `config`.
    pub fn new(config: SsdConfig, trace: Vec<IoRequest>) -> Self {
        Self { config, trace }
    }

    /// The device configuration every run uses.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Runs the trace (plus the clean-unmount flush) against `ftl` with a
    /// fault plan that never fires, and returns the number of flash
    /// operations the run issued — the sweep horizon: a crash injected at
    /// any op index below this value interrupts the run somewhere real.
    pub fn baseline_ops<F: Ftl>(&self, ftl: F) -> Result<u64> {
        let mut ssd = Ssd::new(ftl, self.config.clone())?;
        ssd.arm_faults(FaultPlan::at_op(u64::MAX));
        for req in &self.trace {
            ssd.serve(req)?;
        }
        ssd.flush()?;
        let mut flash = ssd.into_env().into_flash();
        let plan = flash.disarm_faults().expect("plan was armed");
        Ok(plan.ops_observed())
    }

    /// The full crash experiment: bootstrap `ftl` cleanly, arm `plan`,
    /// replay the trace until the power fails (or the trace ends), drop
    /// all RAM state, `crash_mount` the flash image, and check the
    /// durability oracle against every acknowledged write.
    ///
    /// # Errors
    ///
    /// Propagates any simulator error *other* than the injected
    /// `FlashError::PowerLoss` (which is the point of the experiment).
    pub fn run_to_crash<F: Ftl>(&self, ftl: F, plan: FaultPlan) -> Result<CrashOutcome> {
        // Bootstrap (pre-fill + format) happens before the plan is armed:
        // the power loss strikes during the measured workload, and the
        // pre-filled pages count as acknowledged content.
        let mut ssd = Ssd::new(ftl, self.config.clone())?;
        let (name, mut acked, requests_acknowledged, completed_trace) =
            self.replay_until_crash(&mut ssd, plan)?;

        // Power cycle: only the flash array survives.
        let flash = ssd.into_env().into_flash();
        let (env, recovery) = recovery::crash_mount(flash, self.config.clone())?;
        Ok(self.judge(
            env,
            recovery,
            name,
            &mut acked,
            requests_acknowledged,
            completed_trace,
        ))
    }

    /// [`CrashHarness::run_to_crash`] against a *file-backed* device: the
    /// run mirrors every flash transition to a fresh device file at
    /// `path`, the power cycle drops **all** RAM state (the file handle
    /// included), and recovery starts from `Flash::open_file` — the
    /// remount reads the on-device layout alone, exactly like a fresh
    /// process after `kill -9` would.
    ///
    /// # Errors
    ///
    /// Propagates any simulator error other than the injected power loss,
    /// plus `FlashError::Media` I/O failures from the device file.
    pub fn run_to_crash_backed<F: Ftl>(
        &self,
        ftl: F,
        plan: FaultPlan,
        path: &Path,
    ) -> Result<CrashOutcome> {
        let flash = Flash::create_file(self.config.geometry(), path)?;
        let mut ssd = Ssd::with_flash(ftl, self.config.clone(), flash)?;
        let (name, mut acked, requests_acknowledged, completed_trace) =
            self.replay_until_crash(&mut ssd, plan)?;

        // The fault plan dies with the RAM state; remember what it killed
        // so the outcome is comparable with the RAM-backed run's.
        let fired = ssd.fault_fired();

        // Power cycle: drop every byte of RAM state. Only the file is
        // left; reopen and reconstruct the device from media.
        drop(ssd.into_env().into_flash());
        let flash = Flash::open_file(path)?;
        let (env, mut recovery) = recovery::crash_mount(flash, self.config.clone())?;
        recovery.interrupted = fired.map(|r| InterruptedOp {
            op_index: r.op_index,
            kind: r.kind,
        });
        Ok(self.judge(
            env,
            recovery,
            name,
            &mut acked,
            requests_acknowledged,
            completed_trace,
        ))
    }

    /// Arms `plan` on a bootstrapped `ssd` and replays the trace until the
    /// plan fires or the trace (plus the unmount flush) completes. Returns
    /// the FTL name, the acknowledged LPNs (pre-fill + `Ok` writes), the
    /// acknowledged request count, and whether the run completed.
    fn replay_until_crash<F: Ftl>(
        &self,
        ssd: &mut Ssd<F>,
        plan: FaultPlan,
    ) -> Result<(String, Vec<Lpn>, u64, bool)> {
        let name = ssd.ftl().name();
        let prefilled = (self.config.logical_pages() as f64 * self.config.prefill_frac) as u64;
        let mut acked: Vec<Lpn> = (0..prefilled as Lpn).collect();

        ssd.arm_faults(plan);
        let mut requests_acknowledged = 0u64;
        let mut died = false;
        for req in &self.trace {
            match ssd.serve(req) {
                Ok(_) => {
                    requests_acknowledged += 1;
                    if req.is_write() {
                        acked.extend(req.pages(PAGE_BYTES).map(|p| p as Lpn));
                    }
                }
                Err(FtlError::Flash(FlashError::PowerLoss)) => {
                    died = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        let mut completed_trace = false;
        if !died {
            // The plan may still fire inside the unmount flush.
            match ssd.flush() {
                Ok(()) => completed_trace = true,
                Err(FtlError::Flash(FlashError::PowerLoss)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok((name, acked, requests_acknowledged, completed_trace))
    }

    /// The durability oracle over a remounted device. A write is
    /// acknowledged only once its whole request returned `Ok`;
    /// program-before-invalidate ordering plus newest-copy election must
    /// make every such page readable again.
    fn judge(
        &self,
        env: SsdEnv,
        recovery: RecoveryReport,
        name: String,
        acked: &mut Vec<Lpn>,
        requests_acknowledged: u64,
        completed_trace: bool,
    ) -> CrashOutcome {
        acked.sort_unstable();
        acked.dedup();
        let live: HashMap<Lpn, Ppn> = env
            .flash()
            .scan_valid()
            .filter(|&(_, _, is_tp)| !is_tp)
            .map(|(ppn, lpn, _)| (lpn, ppn))
            .collect();
        let mut violations = Vec::new();
        for &lpn in acked.iter() {
            match recovery::lookup(&env, lpn) {
                None => violations.push(format!("acknowledged LPN {lpn} unmapped after recovery")),
                Some(ppn) if live.get(&lpn) != Some(&ppn) => violations.push(format!(
                    "acknowledged LPN {lpn} maps to {ppn}, not its live copy {:?}",
                    live.get(&lpn)
                )),
                Some(_) => {}
            }
        }

        CrashOutcome {
            ftl: name,
            completed_trace,
            requests_acknowledged,
            pages_checked: acked.len() as u64,
            recovery,
            verify: recovery::verify(&env),
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpftl_core::ftl::{TpFtl, TpftlConfig};
    use tpftl_trace::SyntheticSpec;

    fn harness() -> CrashHarness {
        let mut config = SsdConfig::paper_default(4 << 20);
        config.cache_bytes = config.gtd_bytes() + 2048;
        let spec = SyntheticSpec {
            requests: 120,
            address_bytes: 4 << 20,
            write_ratio: 0.7,
            mean_req_sectors: 8.0,
            ..SyntheticSpec::default()
        };
        CrashHarness::new(config, spec.iter(11).collect())
    }

    fn tpftl(c: &SsdConfig) -> TpFtl {
        TpFtl::new(c, TpftlConfig::full()).expect("budget")
    }

    #[test]
    fn baseline_counts_ops_without_firing() {
        let h = harness();
        let ops = h.baseline_ops(tpftl(h.config())).expect("baseline");
        assert!(ops > 0);
    }

    #[test]
    fn unfired_plan_completes_and_is_durable() {
        let h = harness();
        let out = h
            .run_to_crash(tpftl(h.config()), FaultPlan::at_op(u64::MAX))
            .expect("run");
        assert!(out.completed_trace);
        assert!(out.recovery.interrupted.is_none());
        assert_eq!(out.requests_acknowledged, 120);
        out.assert_durable();
    }

    #[test]
    fn midway_crash_recovers_every_acknowledged_write() {
        let h = harness();
        let ops = h.baseline_ops(tpftl(h.config())).expect("baseline");
        let out = h
            .run_to_crash(tpftl(h.config()), FaultPlan::at_op(ops / 2))
            .expect("run");
        assert!(!out.completed_trace);
        assert_eq!(out.recovery.interrupted.map(|i| i.op_index), Some(ops / 2));
        out.assert_durable();
    }

    #[test]
    fn four_channel_crash_sweep_spot_check() {
        // The unit-clock timing model is observation-only: a multi-channel
        // topology must not change the op sequence, so a crash injected at
        // the same op index recovers identically — and stays durable.
        let mut wide = harness();
        let serial = harness();
        wide.config.topology.channels = 4;
        wide.config.topology.ways = 2;
        let ops = wide.baseline_ops(tpftl(wide.config())).expect("baseline");
        assert_eq!(
            ops,
            serial
                .baseline_ops(tpftl(serial.config()))
                .expect("baseline"),
            "topology must not change the flash op sequence"
        );
        for at in [ops / 4, ops / 2, 3 * ops / 4] {
            let w = wide
                .run_to_crash(tpftl(wide.config()), FaultPlan::at_op(at))
                .expect("run");
            w.assert_durable();
            let s = serial
                .run_to_crash(tpftl(serial.config()), FaultPlan::at_op(at))
                .expect("run");
            assert_eq!(w, s, "crash at op {at} must not depend on topology");
        }
    }

    #[test]
    fn same_plan_gives_bit_identical_outcome() {
        let h = harness();
        let ops = h.baseline_ops(tpftl(h.config())).expect("baseline");
        let a = h
            .run_to_crash(tpftl(h.config()), FaultPlan::at_op(ops / 3))
            .expect("run");
        let b = h
            .run_to_crash(tpftl(h.config()), FaultPlan::at_op(ops / 3))
            .expect("run");
        assert_eq!(a, b, "crash recovery must be deterministic");
        assert_eq!(
            serde_json::to_string(&a.recovery),
            serde_json::to_string(&b.recovery)
        );
    }
}
