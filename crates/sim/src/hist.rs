//! Deterministic log-bucketed latency histogram.
//!
//! Percentiles of simulated response times must be (a) computable without
//! retaining every sample and (b) bit-reproducible across shard merges in
//! any order. Both follow from integer bucket counts: a sample is placed
//! by the exponent and top three mantissa bits of its `f64` value (a pure
//! bit operation, no float comparisons), and merging histograms is integer
//! addition, which is associative and commutative.
//!
//! Resolution is eight sub-buckets per power of two (≤ 9 % relative error
//! on a reported percentile), over 1 µs .. ~1.1e12 µs, with dedicated
//! under/overflow buckets. Reported percentile values are the *lower edge*
//! of the bucket containing the requested rank.

use serde::{Deserialize, Serialize};

/// Sub-buckets per binade (power of two). The top 3 mantissa bits.
const SUBS: usize = 8;
/// Binades covered: exponents 0..=39 → 1 µs up to ~1.1e12 µs.
const BINADES: usize = 40;
/// Bucket 0 holds everything below 1 µs; the last bucket is overflow.
const BUCKETS: usize = 2 + BINADES * SUBS;

/// Fixed-size log-bucket histogram of microsecond latencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded samples.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    fn bucket_of(v_us: f64) -> usize {
        if v_us < 1.0 || v_us.is_nan() {
            // Negative, NaN or sub-microsecond: underflow bucket.
            return 0;
        }
        let bits = v_us.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if exp >= BINADES as i64 {
            return BUCKETS - 1;
        }
        let sub = ((bits >> 49) & 0x7) as usize;
        1 + (exp as usize) * SUBS + sub
    }

    /// Lower edge of bucket `idx` in microseconds.
    fn lower_edge(idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        if idx >= BUCKETS - 1 {
            return (2.0f64).powi(BINADES as i32);
        }
        let exp = (idx - 1) / SUBS;
        let sub = (idx - 1) % SUBS;
        (2.0f64).powi(exp as i32) * (1.0 + sub as f64 / SUBS as f64)
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, v_us: f64) {
        self.counts[Self::bucket_of(v_us)] += 1;
        self.total += 1;
    }

    /// Adds every count of `other` into `self` (order-independent merge).
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (`quantile(0.999)`) — the tail the open-loop
    /// SLO sweeps report.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the lower edge of the bucket
    /// holding the sample of that rank; `0.0` on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::lower_edge(idx);
            }
        }
        Self::lower_edge(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(25.0);
        }
        h.record(1500.0);
        // p50 sits in 25's bucket: 25 = 2^4 * 1.5625 → sub-bucket edge 25 is
        // between 1.5 and 1.625 → lower edge 24.
        assert_eq!(h.quantile(0.5), 24.0);
        // p99 is still the 25 µs bucket (the 99th of 100 samples)...
        assert_eq!(h.quantile(0.99), 24.0);
        assert_eq!(h.p50(), h.quantile(0.5));
        assert_eq!(h.p99(), h.quantile(0.99));
        // p999 of 100 samples is the rank-100 sample: the outlier.
        assert_eq!(h.p999(), 1408.0);
        // ...and p100 is the erase outlier: 1500 = 2^10 * 1.46 → edge 1408.
        assert_eq!(h.quantile(1.0), 1408.0);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..10_000u64 {
            h.record(i as f64);
        }
        for q in [0.5, 0.9, 0.99] {
            let exact = q * 9_999.0;
            let est = h.quantile(q);
            assert!(
                est <= exact * 1.01 && est > exact * 0.85,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..1000 {
            if i % 3 == 0 {
                a.record(i as f64);
            } else {
                b.record((i * 7) as f64);
            }
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 1000);
    }

    #[test]
    fn degenerate_inputs_hit_edge_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(0.5);
        h.record(f64::NAN);
        assert_eq!(h.quantile(1.0), 0.0); // all in the underflow bucket
        h.record(1e300);
        assert_eq!(h.quantile(1.0), (2.0f64).powi(40));
        // Round-trips through serde (reports embed these).
        let back: LatencyHistogram =
            serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(back, h);
    }
}
