//! `crash-replay` — subprocess kill-9 durability harness.
//!
//! The parent (`sweep` mode, the default) spawns a child copy of this
//! binary per kill point. Each child replays a fixed-seed synthetic trace
//! against a *file-backed* flash device and, on reaching its randomized
//! flash-op index, sends itself `SIGKILL` — no destructors, no flush, no
//! unmount; the op in flight lands as a torn partial record. The parent
//! then remounts the device file in its own process via
//! `recovery::crash_mount` and runs the durability oracle: every write
//! the child acknowledged before dying (logged to a sidecar acks file)
//! must still be readable from the persisted mapping table, and the
//! remounted table must verify clean. A second remount of the same image
//! checks that recovery's own repairs are idempotent.
//!
//! Usage:
//!
//! ```text
//! crash-replay [--quick] [--exhaustive] [--points N] [--requests N]
//!              [--seed N] [--dir DIR] [--out PATH]
//! crash-replay child --img PATH --acks PATH --ftl NAME --kill-at N
//!              --tear N --requests N --seed N
//! ```
//!
//! * `--quick`      — CI smoke mode: 56 kill points, 200 requests.
//! * `--exhaustive` — one child per flash-op index (the full sweep).
//! * `--points`     — randomized kill points across the horizon (default 160).
//! * `--dir`        — directory for device images (default: temp dir; CI
//!   points this at a tmpfs path).
//! * `--out`        — JSON output path (default `CRASH_matrix_file.json`).
//!
//! Kill points round-robin over the five mapping-persisting FTLs (DFTL,
//! CDFTL, S-FTL, TPFTL, LearnedFTL). Exits non-zero on any oracle
//! violation, any child that dies of the wrong signal, or any
//! unmountable image. LearnedFTL's piecewise-linear segments live only
//! in RAM: both remounts implicitly check that recovery rebuilds a
//! correct table with the learned state discarded.

use std::collections::HashMap;
use std::io::Write as _;
use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};

use serde_json::Value;
use tpftl_core::ftl::{Cdftl, Dftl, Ftl, LearnedFtl, Sftl, TpFtl, TpftlConfig};
use tpftl_core::{recovery, FtlError, SsdConfig};
use tpftl_flash::{FaultPlan, Flash, FlashError, Lpn, Ppn};
use tpftl_sim::{CrashHarness, Ssd};
use tpftl_trace::{IoRequest, SyntheticSpec};

const PAGE_BYTES: u64 = 4096;

/// The mapping-persisting FTLs (Optimal keeps no state on flash, so a
/// kill-9 durability oracle does not apply to it).
const FTL_NAMES: [&str; 5] = ["dftl", "cdftl", "sftl", "tpftl", "learned"];

/// Small starved device with prefill high enough that GC runs mid-trace
/// (same shape as the in-RAM crash matrix).
fn config() -> SsdConfig {
    let mut c = SsdConfig::paper_default(4 << 20);
    c.cache_bytes = c.gtd_bytes() + 10 * 1024;
    c.prefill_frac = 0.6;
    c
}

fn trace(requests: usize, seed: u64) -> Vec<IoRequest> {
    let spec = SyntheticSpec {
        requests,
        address_bytes: 4 << 20,
        write_ratio: 0.7,
        mean_req_sectors: 8.0,
        ..SyntheticSpec::default()
    };
    spec.iter(seed).collect()
}

fn build_ftl(name: &str, c: &SsdConfig) -> Box<dyn Ftl> {
    match name {
        "dftl" => Box::new(Dftl::new(c).expect("budget")),
        "cdftl" => Box::new(Cdftl::new(c).expect("budget")),
        "sftl" => Box::new(Sftl::new(c).expect("budget")),
        "tpftl" => Box::new(TpFtl::new(c, TpftlConfig::full()).expect("budget")),
        "learned" => Box::new(LearnedFtl::new(c).expect("budget")),
        other => {
            eprintln!("unknown FTL {other:?}");
            std::process::exit(2);
        }
    }
}

/// SplitMix64 — the same generator `FaultPlan::seeded` uses, kept inline
/// so the sweep's kill points are reproducible from the seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---- child ----------------------------------------------------------------

/// Sends this process `SIGKILL`: death with no unwinding, no destructors,
/// and no buffered-write flushing — the page cache keeps only what the
/// kernel already accepted. Falls back to an external `kill` if the raw
/// syscall path is unavailable on this target.
fn kill_self_9() -> ! {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    unsafe {
        std::arch::asm!(
            "syscall",
            in("rax") 62u64, // SYS_kill
            in("rdi") std::process::id() as u64,
            in("rsi") 9u64, // SIGKILL
            lateout("rax") _,
            lateout("rcx") _,
            lateout("r11") _,
        );
    }
    let _ = std::process::Command::new("kill")
        .args(["-9", &std::process::id().to_string()])
        .status();
    std::process::abort();
}

struct ChildArgs {
    img: PathBuf,
    acks: PathBuf,
    ftl: String,
    kill_at: u64,
    tear: u64,
    requests: usize,
    seed: u64,
}

/// The child replay: bootstrap a file-backed device, log every
/// acknowledged write to the acks file, and die by `SIGKILL` at the
/// configured flash-op index (the fault plan marks the instant; the tear
/// budget decides how much of the in-flight record hit the disk).
fn run_child(a: ChildArgs) -> ! {
    let c = config();
    let reqs = trace(a.requests, a.seed);
    let flash = Flash::create_file(c.geometry(), &a.img).expect("create device file");
    let ftl = build_ftl(&a.ftl, &c);
    let mut ssd = Ssd::with_flash(ftl, c.clone(), flash).expect("bootstrap");

    let mut acks = std::fs::File::create(&a.acks).expect("create acks file");
    let mut log = |lpns: &[Lpn]| {
        let mut bytes = Vec::with_capacity(lpns.len() * 4);
        for l in lpns {
            bytes.extend_from_slice(&l.to_le_bytes());
        }
        acks.write_all(&bytes).expect("log acks");
    };
    let prefilled = (c.logical_pages() as f64 * c.prefill_frac) as u64;
    log(&(0..prefilled as Lpn).collect::<Vec<_>>());

    ssd.arm_faults(FaultPlan::at_op(a.kill_at).with_tear(a.tear));
    for req in &reqs {
        match ssd.serve(req) {
            Ok(_) => {
                if req.is_write() {
                    log(&req.pages(PAGE_BYTES).map(|p| p as Lpn).collect::<Vec<_>>());
                }
            }
            Err(FtlError::Flash(FlashError::PowerLoss)) => kill_self_9(),
            Err(e) => {
                eprintln!("child: unexpected error: {e}");
                std::process::exit(3);
            }
        }
    }
    match ssd.flush() {
        Ok(()) => std::process::exit(0), // kill point beyond the run
        Err(FtlError::Flash(FlashError::PowerLoss)) => kill_self_9(),
        Err(e) => {
            eprintln!("child: flush error: {e}");
            std::process::exit(3);
        }
    }
}

fn parse_child_args(mut args: std::env::Args) -> ChildArgs {
    let mut a = ChildArgs {
        img: PathBuf::new(),
        acks: PathBuf::new(),
        ftl: String::new(),
        kill_at: 0,
        tear: 0,
        requests: 0,
        seed: 0,
    };
    let next = |args: &mut std::env::Args, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--img" => a.img = next(&mut args, "--img").into(),
            "--acks" => a.acks = next(&mut args, "--acks").into(),
            "--ftl" => a.ftl = next(&mut args, "--ftl"),
            "--kill-at" => a.kill_at = next(&mut args, "--kill-at").parse().expect("number"),
            "--tear" => a.tear = next(&mut args, "--tear").parse().expect("number"),
            "--requests" => a.requests = next(&mut args, "--requests").parse().expect("number"),
            "--seed" => a.seed = next(&mut args, "--seed").parse().expect("number"),
            other => {
                eprintln!("child: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    a
}

// ---- parent ---------------------------------------------------------------

struct Opts {
    quick: bool,
    exhaustive: bool,
    points: u64,
    requests: usize,
    seed: u64,
    dir: PathBuf,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        exhaustive: false,
        points: 160,
        requests: 500,
        seed: 42,
        dir: std::env::temp_dir(),
        out: "CRASH_matrix_file.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--exhaustive" => opts.exhaustive = true,
            "--points" => opts.points = next(&mut args, "--points").parse().expect("number"),
            "--requests" => opts.requests = next(&mut args, "--requests").parse().expect("number"),
            "--seed" => opts.seed = next(&mut args, "--seed").parse().expect("number"),
            "--dir" => opts.dir = next(&mut args, "--dir").into(),
            "--out" => opts.out = next(&mut args, "--out"),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: crash-replay [--quick] [--exhaustive] [--points N] \
                     [--requests N] [--seed N] [--dir DIR] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.quick {
        // Still >= 50 kill points, per the durability-suite contract.
        opts.points = opts.points.min(56);
        opts.requests = opts.requests.min(200);
    }
    opts
}

/// Acked LPNs the child logged before dying. A `SIGKILL` can land mid
/// 4-byte record; the partial tail is exactly an unacknowledged write, so
/// it is ignored.
fn read_acks(path: &Path) -> Vec<Lpn> {
    let bytes = std::fs::read(path).expect("read acks file");
    let mut acked: Vec<Lpn> = bytes
        .chunks_exact(4)
        .map(|c| Lpn::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    acked.sort_unstable();
    acked.dedup();
    acked
}

/// The durability oracle over a freshly remounted image (same contract as
/// `CrashHarness`): every acked LPN must map to its live newest copy, and
/// the remounted table must verify clean. Returns violations.
fn judge_image(img: &Path, acked: &[Lpn], label: &str) -> Vec<String> {
    let c = config();
    let flash = match Flash::open_file(img) {
        Ok(f) => f,
        Err(e) => return vec![format!("{label}: image does not mount: {e}")],
    };
    let (env, _recovery) = match recovery::crash_mount(flash, c) {
        Ok(x) => x,
        Err(e) => return vec![format!("{label}: crash_mount failed: {e}")],
    };
    let live: HashMap<Lpn, Ppn> = env
        .flash()
        .scan_valid()
        .filter(|&(_, _, is_tp)| !is_tp)
        .map(|(ppn, lpn, _)| (lpn, ppn))
        .collect();
    let mut violations = Vec::new();
    for &lpn in acked {
        match recovery::lookup(&env, lpn) {
            None => violations.push(format!("{label}: acked LPN {lpn} unmapped after kill -9")),
            Some(ppn) if live.get(&lpn) != Some(&ppn) => violations.push(format!(
                "{label}: acked LPN {lpn} maps to {ppn}, not its live copy {:?}",
                live.get(&lpn)
            )),
            Some(_) => {}
        }
    }
    for e in &recovery::verify(&env).errors {
        violations.push(format!("{label}: verify: {e}"));
    }
    violations
}

struct PointResult {
    ftl: String,
    kill_at: u64,
    killed: bool,
    violations: Vec<String>,
}

fn run_point(exe: &Path, opts: &Opts, ftl: &str, kill_at: u64, tear: u64) -> PointResult {
    let img = opts.dir.join(format!(
        "tpftl_kill9_{}_{ftl}_{kill_at}.img",
        std::process::id()
    ));
    let acks = img.with_extension("acks");
    let _ = std::fs::remove_file(&img);
    let _ = std::fs::remove_file(&acks);

    let status = std::process::Command::new(exe)
        .arg("child")
        .args(["--img", &img.display().to_string()])
        .args(["--acks", &acks.display().to_string()])
        .args(["--ftl", ftl])
        .args(["--kill-at", &kill_at.to_string()])
        .args(["--tear", &tear.to_string()])
        .args(["--requests", &opts.requests.to_string()])
        .args(["--seed", &opts.seed.to_string()])
        .status()
        .expect("spawn child");

    let label = format!("{ftl} op {kill_at}");
    let killed = status.signal() == Some(9);
    let mut violations = Vec::new();
    if !killed && !status.success() {
        violations.push(format!(
            "{label}: child died abnormally (status {status:?}, expected SIGKILL or clean exit)"
        ));
    } else {
        let acked = read_acks(&acks);
        // First remount: a fresh process reads the device file alone.
        violations.extend(judge_image(&img, &acked, &label));
        // Second remount: recovery's own mirrored repairs must leave an
        // image that mounts to the same durable answer (idempotence).
        if violations.is_empty() {
            violations.extend(judge_image(&img, &acked, &format!("{label} (2nd mount)")));
        }
    }
    let _ = std::fs::remove_file(&img);
    let _ = std::fs::remove_file(&acks);
    PointResult {
        ftl: ftl.to_string(),
        kill_at,
        killed,
        violations,
    }
}

fn main() {
    let mut args = std::env::args();
    let _exe = args.next();
    if let Some(first) = args.next() {
        if first == "child" {
            run_child(parse_child_args(args));
        }
    }
    // Not child mode: reparse everything as sweep options.
    let opts = parse_opts();
    let exe = std::env::current_exe().expect("current exe");
    let c = config();
    let harness = CrashHarness::new(c.clone(), trace(opts.requests, opts.seed));

    // The op horizon per FTL bounds the randomized kill points.
    let mut horizons: HashMap<&str, u64> = HashMap::new();
    for name in FTL_NAMES {
        let ops = harness
            .baseline_ops(build_ftl(name, &c))
            .expect("baseline run");
        horizons.insert(name, ops);
    }

    let record_len = c.geometry().page_bytes as u64 + 64;
    let mut rng = opts.seed ^ 0x4B49_4C4C; // "KILL"
    let mut results: Vec<PointResult> = Vec::new();
    let mut killed = 0u64;
    if opts.exhaustive {
        for name in FTL_NAMES {
            for op in 0..horizons[name] {
                let tear = splitmix64(&mut rng) % record_len;
                results.push(run_point(&exe, &opts, name, op, tear));
            }
        }
    } else {
        for i in 0..opts.points {
            let name = FTL_NAMES[(i % FTL_NAMES.len() as u64) as usize];
            let op = splitmix64(&mut rng) % horizons[name];
            let tear = splitmix64(&mut rng) % record_len;
            results.push(run_point(&exe, &opts, name, op, tear));
        }
    }

    let mut violations: Vec<String> = Vec::new();
    for r in &results {
        killed += r.killed as u64;
        violations.extend(r.violations.iter().cloned());
    }
    println!(
        "{} kill points ({} SIGKILLed children, {} completed), {} violations",
        results.len(),
        killed,
        results.len() as u64 - killed,
        violations.len()
    );
    for v in &violations {
        eprintln!("  VIOLATION {v}");
    }

    let json = Value::Object(vec![
        (
            "schema".to_string(),
            Value::Str("crash-replay-file-v1".to_string()),
        ),
        ("quick".to_string(), Value::Bool(opts.quick)),
        ("exhaustive".to_string(), Value::Bool(opts.exhaustive)),
        ("seed".to_string(), Value::UInt(opts.seed)),
        ("requests".to_string(), Value::UInt(opts.requests as u64)),
        ("kill_points".to_string(), Value::UInt(results.len() as u64)),
        ("children_sigkilled".to_string(), Value::UInt(killed)),
        (
            "horizons".to_string(),
            Value::Object(
                FTL_NAMES
                    .iter()
                    .map(|&n| (n.to_string(), Value::UInt(horizons[n])))
                    .collect(),
            ),
        ),
        (
            "results".to_string(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("ftl".to_string(), Value::Str(r.ftl.clone())),
                            ("kill_at_op".to_string(), Value::UInt(r.kill_at)),
                            ("sigkilled".to_string(), Value::Bool(r.killed)),
                            (
                                "violations".to_string(),
                                Value::Array(
                                    r.violations.iter().map(|v| Value::Str(v.clone())).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let text = serde_json::to_string_pretty(&json).expect("render JSON");
    if let Err(e) = std::fs::write(&opts.out, text + "\n") {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", opts.out);
    if !violations.is_empty() {
        eprintln!("kill-9 sweep found durability violations");
        std::process::exit(1);
    }
}
