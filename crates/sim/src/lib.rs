#![warn(missing_docs)]

//! Trace-driven SSD simulator for the TPFTL reproduction.
//!
//! Binds together the flash device model ([`tpftl_flash`]), the FTL
//! framework ([`tpftl_core`]) and the workloads ([`tpftl_trace`]) the way
//! FlashSim does in the paper: requests are split into 4 KB page accesses
//! and served in arrival order by a single device whose service time is the
//! sum of the flash-operation latencies each access incurs (address
//! translation, user data access, and garbage collection). The *system
//! response time* therefore includes the queuing delay, exactly the metric
//! of Figure 6(e).

mod buffer;
mod crash;
mod hist;
pub mod queue;
mod report;
mod sampler;
mod shard;
mod ssd;

pub use buffer::{BufferStats, WriteBuffer};
pub use crash::{CrashHarness, CrashOutcome};
pub use hist::LatencyHistogram;
pub use queue::{DoorbellRing, DoorbellStats, QueuePair};
pub use report::{RunReport, SimTiming};
pub use sampler::{CacheSample, CacheSampler, MAX_DIRTY_BUCKET};
pub use shard::{OpenLoopOpts, OpenLoopReport, ShardLoadStats, ShardedRunReport, ShardedSsd};
pub use ssd::Ssd;

pub use tpftl_core::Result;
