//! An optional host write buffer in front of the FTL.
//!
//! Section 2.1 of the paper: "The internal RAM serves as both a data
//! buffer and mapping cache ... As a data buffer, the RAM not only
//! accelerates data access speed, but also improves the write sequentiality
//! and reduces writes in flash memory". This component models the simplest
//! useful form — an LRU write-back page cache: rewrites of buffered pages
//! are absorbed in RAM, reads of buffered pages are served from RAM, and
//! only LRU evictions reach the FTL. The paper's evaluation runs *without*
//! a data buffer (the cache budget is all mapping cache), so this stays an
//! opt-in extension ([`crate::Ssd::with_write_buffer`]).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tpftl_core::lru::{LruIdx, LruList};
use tpftl_flash::Lpn;

/// Write-buffer event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Writes absorbed by an already-buffered page (no flash traffic).
    pub write_absorbed: u64,
    /// Writes that inserted a new buffered page.
    pub write_inserted: u64,
    /// Reads served from the buffer.
    pub read_hits: u64,
    /// Pages evicted (and therefore written to flash).
    pub evictions: u64,
}

/// An LRU write-back buffer of dirty host pages.
#[derive(Debug)]
pub struct WriteBuffer {
    cap_pages: usize,
    map: HashMap<Lpn, LruIdx>,
    lru: LruList<Lpn>,
    /// Event counters.
    pub stats: BufferStats,
}

impl WriteBuffer {
    /// Creates a buffer holding up to `cap_pages` dirty 4 KB pages.
    ///
    /// # Panics
    ///
    /// Panics if `cap_pages` is zero.
    pub fn new(cap_pages: usize) -> Self {
        assert!(cap_pages > 0, "buffer needs capacity");
        Self {
            cap_pages,
            map: HashMap::new(),
            lru: LruList::new(),
            stats: BufferStats::default(),
        }
    }

    /// Number of dirty pages currently buffered.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Buffers a host write to `lpn`; returns a page that must now be
    /// written to flash (the LRU eviction), if any.
    pub fn write(&mut self, lpn: Lpn) -> Option<Lpn> {
        if let Some(&idx) = self.map.get(&lpn) {
            self.lru.touch(idx);
            self.stats.write_absorbed += 1;
            return None;
        }
        self.stats.write_inserted += 1;
        let evicted = if self.lru.len() >= self.cap_pages {
            let victim = self.lru.pop_lru().expect("buffer full implies non-empty");
            self.map.remove(&victim);
            self.stats.evictions += 1;
            Some(victim)
        } else {
            None
        };
        let idx = self.lru.push_mru(lpn);
        self.map.insert(lpn, idx);
        evicted
    }

    /// Whether a read of `lpn` is served from the buffer (counts a hit).
    pub fn read_hit(&mut self, lpn: Lpn) -> bool {
        if let Some(&idx) = self.map.get(&lpn) {
            self.lru.touch(idx);
            self.stats.read_hits += 1;
            true
        } else {
            false
        }
    }

    /// Drains every buffered page (flush at unmount), LRU first.
    pub fn drain(&mut self) -> Vec<Lpn> {
        let mut out = Vec::with_capacity(self.lru.len());
        while let Some(lpn) = self.lru.pop_lru() {
            self.map.remove(&lpn);
            out.push(lpn);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_rewrites() {
        let mut b = WriteBuffer::new(4);
        assert_eq!(b.write(1), None);
        assert_eq!(b.write(1), None);
        assert_eq!(b.write(1), None);
        assert_eq!(b.stats.write_absorbed, 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn evicts_lru_when_full() {
        let mut b = WriteBuffer::new(2);
        b.write(1);
        b.write(2);
        // Touch 1 so 2 becomes LRU.
        assert!(b.read_hit(1));
        assert_eq!(b.write(3), Some(2));
        assert_eq!(b.stats.evictions, 1);
        assert!(b.read_hit(1));
        assert!(!b.read_hit(2));
    }

    #[test]
    fn drain_returns_everything_lru_first() {
        let mut b = WriteBuffer::new(4);
        for lpn in [5u32, 6, 7] {
            b.write(lpn);
        }
        b.read_hit(5); // 5 becomes MRU
        assert_eq!(b.drain(), vec![6, 7, 5]);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = WriteBuffer::new(0);
    }
}
