//! NVMe-style bounded SPSC queues with doorbell wakeups.
//!
//! The sharded engine's original rings (PR 4) `yield_now`-spun on both
//! ends: an idle worker burned a full core polling an empty submission
//! queue, and a host blocked on a full ring pegged another. This module
//! keeps the lock-free fast path — two monotone cursors with
//! acquire/release ordering over a power-of-two slot array — and adds a
//! **doorbell** per direction, modelled on how an NVMe driver sleeps on a
//! completion interrupt instead of polling the CQ head:
//!
//! * `not_empty` — rung by the producer after every push (and on close);
//!   the consumer parks on it when the ring stays empty past a bounded
//!   spin.
//! * `not_full` — rung by the consumer after every pop; the producer
//!   parks on it when the ring stays full.
//!
//! Ringing is one relaxed load on the fast path (checking whether anyone
//! is waiting); the slow path hands the parked [`std::thread::Thread`]
//! an unpark. The wait protocol is the classic two-phase check:
//!
//! 1. publish intent (`waiting = true`), with a `SeqCst` fence ordering
//!    the flag store before the re-check,
//! 2. re-check the ring; if progress happened, cancel and retry,
//! 3. otherwise `park()`.
//!
//! The signaler orders its cursor store before loading `waiting` with the
//! mirror-image fence, so at least one side always observes the other —
//! a lost-wakeup needs both loads to miss, which the two fences exclude
//! (store-buffering litmus). Spurious unparks are benign: every park sits
//! in a loop that re-checks the ring.
//!
//! Parks and wakeups are counted ([`DoorbellStats`]) so tests can assert
//! an idle engine actually sleeps instead of trusting a CPU meter.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Thread;
use std::time::Duration;

/// Fast-path iterations (with `spin_loop` hints) before a waiter
/// escalates to parking. Long enough to ride out a peer that is mid-op,
/// short enough that a genuinely idle queue sleeps within microseconds.
const SPIN_LIMIT: u32 = 128;

/// One waitable side of a ring (consumer waits on `not_empty`, producer
/// on `not_full`).
struct Doorbell {
    /// True while a thread is committed to parking (or already parked).
    waiting: AtomicBool,
    /// The parked thread's handle, for `unpark`.
    sleeper: Mutex<Option<Thread>>,
    parks: AtomicU64,
    wakeups: AtomicU64,
}

impl Doorbell {
    fn new() -> Self {
        Self {
            waiting: AtomicBool::new(false),
            sleeper: Mutex::new(None),
            parks: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        }
    }

    /// Signaler side. Call *after* publishing progress (cursor store);
    /// a `SeqCst` fence must sit between that store and this call.
    fn ring(&self) {
        if self.waiting.load(Ordering::Relaxed) && self.waiting.swap(false, Ordering::AcqRel) {
            self.wakeups.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = self.sleeper.lock().unwrap().take() {
                t.unpark();
            }
        }
    }

    /// Waiter side: sleep until rung, unless `ready()` already holds.
    /// May wake spuriously — callers loop around their own re-check.
    fn park_unless<C: Fn() -> bool>(&self, ready: C, timeout: Option<Duration>) {
        *self.sleeper.lock().unwrap() = Some(std::thread::current());
        self.waiting.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        if ready() {
            self.waiting.store(false, Ordering::Relaxed);
            return;
        }
        self.parks.fetch_add(1, Ordering::Relaxed);
        match timeout {
            None => std::thread::park(),
            Some(d) => std::thread::park_timeout(d),
        }
        // Clear a flag left set by a spurious or timed-out wake so the
        // peer's fast path goes back to a single relaxed load.
        self.waiting.store(false, Ordering::Relaxed);
    }
}

/// Park/wakeup counters for one ring, summed over both doorbells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DoorbellStats {
    /// Times a thread went to sleep on this ring.
    pub parks: u64,
    /// Times a signaler found a sleeper and unparked it.
    pub wakeups: u64,
}

impl DoorbellStats {
    /// Component-wise sum.
    pub fn merge(self, other: DoorbellStats) -> DoorbellStats {
        DoorbellStats {
            parks: self.parks + other.parks,
            wakeups: self.wakeups + other.wakeups,
        }
    }
}

/// A bounded single-producer/single-consumer ring with doorbell wakeups
/// on both ends.
///
/// The queue path is lock-free: `try_push`/`try_pop` are two atomic
/// cursor ops plus one relaxed doorbell check. Blocking ops spin a
/// bounded number of iterations, then park on the direction's doorbell.
pub struct DoorbellRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer reads; only the consumer advances it.
    head: AtomicUsize,
    /// Next slot the producer writes; only the producer advances it.
    tail: AtomicUsize,
    /// Producer is done; set after its final push.
    closed: AtomicBool,
    /// Consumer waits here for items (rung on push and close).
    not_empty: Doorbell,
    /// Producer waits here for space (rung on pop).
    not_full: Doorbell,
}

// SAFETY: the ring hands each element from exactly one thread to exactly
// one other; `T: Send` is all that transfer needs.
unsafe impl<T: Send> Send for DoorbellRing<T> {}
unsafe impl<T: Send> Sync for DoorbellRing<T> {}

impl<T> DoorbellRing<T> {
    /// A ring with `capacity` slots (power of two).
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity not a power of two"
        );
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            not_empty: Doorbell::new(),
            not_full: Doorbell::new(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Producer side: enqueue `v`, or hand it back when the ring is full.
    pub fn try_push(&self, v: T) -> std::result::Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail - head > self.mask {
            return Err(v);
        }
        // SAFETY: `head <= tail - capacity` was just excluded, so this slot
        // is vacant, and we are the only producer.
        unsafe { (*self.slots[tail & self.mask].get()).write(v) };
        self.tail.store(tail + 1, Ordering::Release);
        fence(Ordering::SeqCst);
        self.not_empty.ring();
        Ok(())
    }

    /// Consumer side: dequeue the next item if one is ready.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so this slot holds an initialized item,
        // and we are the only consumer.
        let v = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.store(head + 1, Ordering::Release);
        fence(Ordering::SeqCst);
        self.not_full.ring();
        Some(v)
    }

    /// Producer side: no more pushes will follow.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        self.not_empty.ring();
    }

    /// True once the producer closed the ring (items may still remain).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// True when no item is currently queued.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }

    /// Consumer side: blocking pop; `None` only after the producer closed
    /// the ring *and* it drained empty. Spins briefly, then parks on the
    /// `not_empty` doorbell — an idle consumer costs zero CPU.
    pub fn pop_blocking(&self) -> Option<T> {
        loop {
            for _ in 0..SPIN_LIMIT {
                if let Some(v) = self.try_pop() {
                    return Some(v);
                }
                if self.is_closed() {
                    // The close happened after every push; one last look.
                    return self.try_pop();
                }
                std::hint::spin_loop();
            }
            self.not_empty
                .park_unless(|| !self.is_empty() || self.is_closed(), None);
        }
    }

    /// Producer side: blocking push. Spins briefly, then parks on the
    /// `not_full` doorbell until the consumer makes room — a producer
    /// ahead of a stalled consumer costs zero CPU.
    pub fn push_blocking(&self, mut v: T) {
        loop {
            for _ in 0..SPIN_LIMIT {
                match self.try_push(v) {
                    Ok(()) => return,
                    Err(back) => v = back,
                }
                std::hint::spin_loop();
            }
            let full = || {
                self.tail.load(Ordering::Relaxed) - self.head.load(Ordering::Acquire) > self.mask
            };
            self.not_full.park_unless(|| !full(), None);
        }
    }

    /// Producer side: like [`push_blocking`](Self::push_blocking), but
    /// runs `drain()` between waits and parks with a timeout. For hosts
    /// that must keep harvesting completion queues while a submission
    /// queue is full — an indefinite park there can deadlock (the worker
    /// may itself be parked on a completion ring only this thread
    /// drains).
    pub fn push_yielding<D: FnMut()>(&self, mut v: T, mut drain: D) {
        loop {
            for _ in 0..SPIN_LIMIT {
                match self.try_push(v) {
                    Ok(()) => return,
                    Err(back) => v = back,
                }
                std::hint::spin_loop();
            }
            drain();
            match self.try_push(v) {
                Ok(()) => return,
                Err(back) => v = back,
            }
            let full = || {
                self.tail.load(Ordering::Relaxed) - self.head.load(Ordering::Acquire) > self.mask
            };
            self.not_full
                .park_unless(|| !full(), Some(Duration::from_micros(200)));
        }
    }

    /// Park/wakeup totals over both doorbells.
    pub fn doorbell_stats(&self) -> DoorbellStats {
        DoorbellStats {
            parks: self.not_empty.parks.load(Ordering::Relaxed)
                + self.not_full.parks.load(Ordering::Relaxed),
            wakeups: self.not_empty.wakeups.load(Ordering::Relaxed)
                + self.not_full.wakeups.load(Ordering::Relaxed),
        }
    }
}

impl<T> Drop for DoorbellRing<T> {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: exclusive access; slots in `head..tail` are live.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// One shard's NVMe-style queue pair: a submission queue the host pushes
/// into and a completion queue the worker posts results to. `S` is the
/// submission entry (a request or a batch of requests), `C` the
/// completion entry (a status or a latency sample).
pub struct QueuePair<S, C> {
    /// Host → worker.
    pub sq: DoorbellRing<S>,
    /// Worker → host.
    pub cq: DoorbellRing<C>,
}

impl<S, C> QueuePair<S, C> {
    /// A pair with the given per-direction depths (powers of two).
    pub fn new(sq_depth: usize, cq_depth: usize) -> Self {
        Self {
            sq: DoorbellRing::new(sq_depth),
            cq: DoorbellRing::new(cq_depth),
        }
    }

    /// Park/wakeup totals over both rings.
    pub fn doorbell_stats(&self) -> DoorbellStats {
        self.sq.doorbell_stats().merge(self.cq.doorbell_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn ring_is_fifo_and_bounded() {
        let ring: DoorbellRing<u32> = DoorbellRing::new(4);
        for i in 0..4 {
            assert!(ring.try_push(i).is_ok());
        }
        assert_eq!(ring.try_push(99), Err(99), "fifth push must bounce");
        assert_eq!(ring.try_pop(), Some(0));
        assert!(ring.try_push(4).is_ok());
        assert_eq!(
            (1..5).map(|_| ring.try_pop().unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn ring_close_drains_remaining_items() {
        let ring: DoorbellRing<u32> = DoorbellRing::new(8);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        ring.close();
        assert_eq!(ring.pop_blocking(), Some(1));
        assert_eq!(ring.pop_blocking(), Some(2));
        assert_eq!(ring.pop_blocking(), None);
    }

    #[test]
    fn ring_drop_releases_undrained_items() {
        // Drop with live items must run their destructors (miri-style
        // sanity: an Rc's count observes the drop).
        let counter = std::rc::Rc::new(());
        {
            let ring: DoorbellRing<std::rc::Rc<()>> = DoorbellRing::new(4);
            ring.try_push(std::rc::Rc::clone(&counter)).unwrap();
            ring.try_push(std::rc::Rc::clone(&counter)).unwrap();
            drop(ring);
        }
        assert_eq!(std::rc::Rc::strong_count(&counter), 1);
    }

    #[test]
    fn ring_transfers_across_threads() {
        let ring: DoorbellRing<u64> = DoorbellRing::new(8);
        let total: u64 = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut sum = 0;
                while let Some(v) = ring.pop_blocking() {
                    sum += v;
                }
                sum
            });
            for v in 0..10_000u64 {
                ring.push_blocking(v);
            }
            ring.close();
            consumer.join().unwrap()
        });
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn idle_consumer_parks_instead_of_spinning() {
        let ring: DoorbellRing<u32> = DoorbellRing::new(8);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(v) = ring.pop_blocking() {
                    got.push(v);
                }
                got
            });
            // Let the consumer hit the empty ring, blow its spin budget,
            // and park; it must stay parked across the whole quiet gap.
            std::thread::sleep(Duration::from_millis(100));
            let idle = ring.doorbell_stats();
            assert!(idle.parks >= 1, "idle consumer never parked");
            // A polling loop would rack up thousands of iterations in
            // 100 ms; a parked thread re-parks only on (rare) spurious
            // wakes.
            assert!(
                idle.parks <= 4,
                "idle consumer woke repeatedly ({} parks) — it is polling, not sleeping",
                idle.parks
            );
            ring.try_push(7).unwrap();
            ring.close();
            assert_eq!(consumer.join().unwrap(), vec![7]);
        });
        let after = ring.doorbell_stats();
        assert!(after.wakeups >= 1, "push never rang the doorbell");
    }

    #[test]
    fn producer_parks_on_full_ring_until_pop() {
        let ring: DoorbellRing<u32> = DoorbellRing::new(2);
        ring.try_push(0).unwrap();
        ring.try_push(1).unwrap();
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| {
                let start = Instant::now();
                ring.push_blocking(2); // full: must wait for a pop
                start.elapsed()
            });
            std::thread::sleep(Duration::from_millis(50));
            assert!(
                ring.doorbell_stats().parks >= 1,
                "blocked producer never parked"
            );
            assert_eq!(ring.try_pop(), Some(0));
            let waited = producer.join().unwrap();
            assert!(
                waited >= Duration::from_millis(20),
                "producer returned early"
            );
        });
        assert_eq!(ring.try_pop(), Some(1));
        assert_eq!(ring.try_pop(), Some(2));
    }

    #[test]
    fn push_yielding_runs_the_drain_callback_when_full() {
        let ring: DoorbellRing<u32> = DoorbellRing::new(2);
        ring.try_push(0).unwrap();
        ring.try_push(1).unwrap();
        let mut drained = false;
        // The drain callback is this single-threaded test's only way to
        // free space — push_yielding must invoke it rather than park
        // forever.
        ring.push_yielding(2, || {
            if !drained {
                drained = true;
                assert_eq!(ring.try_pop(), Some(0));
            }
        });
        assert!(drained);
        assert_eq!(ring.try_pop(), Some(1));
        assert_eq!(ring.try_pop(), Some(2));
    }
}
