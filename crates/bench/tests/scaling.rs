//! Multi-core shard-scaling gate.
//!
//! On a runner with at least four cores, a four-shard Financial1 replay
//! must beat the single-shard replay by ≥ 1.5× median throughput —
//! the point of the queue-pair engine is that shards actually scale.
//! On smaller boxes (the common 1-vCPU dev container) the ratio is
//! meaningless — four workers time-slice one core — so the test
//! self-skips and CI falls back to the coarse single-core overhead gate
//! in the sharded-replay bench rows.

use tpftl_bench::scenarios::bench_replay_sharded;
use tpftl_experiments::runner::FtlKind;

#[test]
fn four_shards_scale_on_a_multicore_runner() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping shard-scaling gate: {cores} core(s) < 4");
        return;
    }
    const REQUESTS: usize = 60_000;
    // Best-of-3 medians on both sides: the gate compares capability, not
    // one noisy sample, and 1.5× leaves headroom under CI noise for an
    // engine that scales near-linearly when healthy.
    let s1 = bench_replay_sharded(FtlKind::Tpftl, 3, REQUESTS, 1);
    let s4 = bench_replay_sharded(FtlKind::Tpftl, 3, REQUESTS, 4);
    let ratio = s1.median() / s4.median();
    assert!(
        ratio >= 1.5,
        "4-shard replay only {ratio:.2}x the 1-shard throughput \
         ({:.0} vs {:.0} ns/req) on a {cores}-core runner",
        s4.median(),
        s1.median()
    );
}
