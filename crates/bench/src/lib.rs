//! Benchmark library shared by the `ftlbench` and `bench-diff` binaries.
//!
//! Std-only timing (no criterion, so the workspace builds offline): plain
//! `Instant` with warmup iterations and median-of-k samples. The scenario
//! functions in [`scenarios`] cover the translation hot paths of every
//! cached-mapping FTL, the GC valid-page scan, and a macro trace replay;
//! [`diff`] compares two `ftlbench-v1` reports for the CI regression gate.

pub mod diff;
pub mod scenarios;

use serde_json::Value;

pub use scenarios::{
    run_all, Record, DEFAULT_SHARD_COUNTS, SWEEP_CHANNEL_COUNTS, SWEEP_OPEN_LOOP_DEPTHS,
    SWEEP_OPEN_LOOP_RATES, SWEEP_OPEN_LOOP_SHARDS,
};

/// Renders a slice of records as the `ftlbench-v1` JSON document.
pub fn render_json(records: &[Record], quick: bool) -> Value {
    Value::Object(vec![
        ("schema".to_string(), Value::Str("ftlbench-v1".to_string())),
        ("quick".to_string(), Value::Bool(quick)),
        (
            "results".to_string(),
            Value::Array(records.iter().map(Record::to_json).collect()),
        ),
    ])
}

/// Prints the human-readable results table to stdout.
pub fn print_table(records: &[Record]) {
    let fmt_extra = |r: &Record, key: &str, digits: usize| {
        r.extra
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v.as_f64())
            .map_or_else(|| "-".to_string(), |x| format!("{x:.digits$}"))
    };
    println!(
        "{:<26} {:<14} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "scenario", "ftl", "median ns/op", "min ns/op", "hit ratio", "write amp", "erase cv"
    );
    for r in records {
        println!(
            "{:<26} {:<14} {:>12.1} {:>12.1} {:>10} {:>10} {:>9}",
            r.scenario,
            r.ftl,
            r.median(),
            r.min(),
            fmt_extra(r, "hit_ratio", 4),
            fmt_extra(r, "write_amp", 3),
            fmt_extra(r, "erase_cv", 3),
        );
    }
}
