//! Benchmark crate; the harness lives in `src/bin/ftlbench.rs` (std-only
//! timing, no criterion, so the workspace builds offline).
