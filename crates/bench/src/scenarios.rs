//! The benchmark scenarios and their timing harness.

use std::hint::black_box;
use std::time::Instant;

use serde_json::Value;
use tpftl_core::config::{GcPolicy, StreamCount};
use tpftl_core::driver;
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::{AccessCtx, Ftl};
use tpftl_core::SsdConfig;
use tpftl_experiments::runner::{device_config, FtlKind, SEED};
use tpftl_flash::{Flash, FlashGeometry, FlashTopology, OpPurpose};
use tpftl_sim::{OpenLoopOpts, ShardedSsd, Ssd};
use tpftl_trace::presets::Workload;
use tpftl_trace::{Locality, MultiTenantSpec, SyntheticSpec, TenantSpec};

/// The FTLs under test: the paper's cached-mapping designs plus the
/// LearnedFTL extension.
pub const KINDS: [FtlKind; 5] = [
    FtlKind::Tpftl,
    FtlKind::Dftl,
    FtlKind::Sftl,
    FtlKind::Cdftl,
    FtlKind::Learned,
];

/// Shard counts benchmarked by default (`ftlbench` with no `--shards`).
pub const DEFAULT_SHARD_COUNTS: [u32; 2] = [2, 4];

/// Channel counts of the committed channel-scaling sweep
/// (`ftlbench --channels sweep`). No channel rows run by default: the
/// sweep re-replays the macro trace once per (FTL, channel count).
pub const SWEEP_CHANNEL_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Offered load levels (host requests/second) of the open-loop
/// saturation sweep (`ftlbench --open-loop sweep`): one comfortably
/// below single-core service rate, one near it, one far beyond it.
pub const SWEEP_OPEN_LOOP_RATES: [u64; 3] = [50_000, 250_000, 1_000_000];

/// Queue depths (per-shard submission-queue slots) of the open-loop
/// sweep: shallow enough to backpressure early vs deep enough to absorb
/// arrival bursts.
pub const SWEEP_OPEN_LOOP_DEPTHS: [u32; 2] = [64, 1024];

/// Shard counts of the open-loop TPFTL shard-scaling rows (the all-FTL
/// rows run at the maximum).
pub const SWEEP_OPEN_LOOP_SHARDS: [u32; 3] = [1, 2, 4];

/// One timed record, already reduced over its samples.
pub struct Record {
    pub scenario: String,
    pub ftl: String,
    pub ops_per_iter: u64,
    pub samples: Vec<f64>, // ns per op
    pub extra: Vec<(&'static str, Value)>,
}

impl Record {
    pub fn median(&self) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("scenario", Value::Str(self.scenario.clone())),
            ("ftl", Value::Str(self.ftl.clone())),
            ("ns_per_op", Value::Float(self.median())),
            ("min_ns_per_op", Value::Float(self.min())),
            ("mean_ns_per_op", Value::Float(self.mean())),
            ("ops_per_iter", Value::UInt(self.ops_per_iter)),
            ("samples", Value::UInt(self.samples.len() as u64)),
        ];
        fields.extend(self.extra.iter().cloned());
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

/// Times `iter` (which performs `ops` operations per call): `warmup`
/// unmeasured calls, then `samples` measured ones; returns ns/op per sample.
fn time_samples<F: FnMut()>(warmup: usize, samples: usize, ops: u64, mut iter: F) -> Vec<f64> {
    for _ in 0..warmup {
        iter();
    }
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            iter();
            t.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect()
}

/// A 64 MB device with a 16 KB mapping-cache budget on top of the GTD —
/// small enough to set up quickly, large enough for a real miss stream.
fn micro_config() -> SsdConfig {
    let mut config = SsdConfig::paper_default(64 << 20);
    config.cache_bytes = config.gtd_bytes() + 16 * 1024;
    config
}

fn build(kind: FtlKind, config: &SsdConfig) -> (Box<dyn Ftl + Send>, SsdEnv) {
    let mut ftl = kind.build(config).expect("FTL builds");
    let mut env = SsdEnv::new(config.clone()).expect("env builds");
    driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");
    (ftl, env)
}

/// Cache-hit translation path: one warmed entry translated repeatedly.
pub fn bench_translate_hit(kind: FtlKind, warmup: usize, samples: usize, ops: u64) -> Record {
    let config = micro_config();
    let (mut ftl, mut env) = build(kind, &config);
    driver::serve_page_access(ftl.as_mut(), &mut env, 42, AccessCtx::single(true))
        .expect("warm write");
    let ctx = AccessCtx::single(false);
    let ns = time_samples(warmup, samples, ops, || {
        for _ in 0..ops {
            black_box(ftl.translate(&mut env, black_box(42), &ctx).expect("hit"));
        }
    });
    let hit_ratio = env.stats.hits as f64 / env.stats.lookups as f64;
    Record {
        scenario: "translate_hit".to_string(),
        ftl: ftl.name(),
        ops_per_iter: ops,
        samples: ns,
        extra: vec![("hit_ratio", Value::Float(hit_ratio))],
    }
}

/// Miss-dominated scan: a large-stride cursor defeats the cache, so every
/// translation pays lookup + eviction + translation-page load.
pub fn bench_miss_scan(kind: FtlKind, warmup: usize, samples: usize, ops: u64) -> Record {
    let config = micro_config();
    let pages = config.logical_pages() as u32;
    let (mut ftl, mut env) = build(kind, &config);
    let ctx = AccessCtx::single(false);
    let mut cursor: u32 = 0;
    let ns = time_samples(warmup, samples, ops, || {
        for _ in 0..ops {
            black_box(
                ftl.translate(&mut env, black_box(cursor), &ctx)
                    .expect("translate"),
            );
            cursor = (cursor + 4099) % pages;
        }
    });
    let hit_ratio = env.stats.hits as f64 / env.stats.lookups as f64;
    Record {
        scenario: "miss_scan".to_string(),
        ftl: ftl.name(),
        ops_per_iter: ops,
        samples: ns,
        extra: vec![("hit_ratio", Value::Float(hit_ratio))],
    }
}

/// Write path on a full device: updates dirty the cache and keep garbage
/// collection (data + translation blocks) in the loop.
pub fn bench_write_gc(kind: FtlKind, warmup: usize, samples: usize, ops: u64) -> Record {
    let mut config = micro_config();
    config.prefill_frac = 1.0;
    let window = (config.logical_pages() / 8) as u32;
    let (mut ftl, mut env) = build(kind, &config);
    let ctx = AccessCtx::single(true);
    let mut cursor: u32 = 0;
    let ns = time_samples(warmup, samples, ops, || {
        for _ in 0..ops {
            driver::serve_page_access(ftl.as_mut(), &mut env, cursor, ctx).expect("write");
            cursor = (cursor + 127) % window;
        }
    });
    let hit_ratio = env.stats.hits as f64 / env.stats.lookups as f64;
    Record {
        scenario: "write_gc".to_string(),
        ftl: ftl.name(),
        ops_per_iter: ops,
        samples: ns,
        extra: vec![("hit_ratio", Value::Float(hit_ratio))],
    }
}

/// GC victim scan: iterate every block's valid pages on a device where
/// half the pages are valid — the exact walk `gc::migrate_data_pages`
/// performs when collecting a victim. Exercises `Flash::valid_pages`
/// directly, independent of any FTL.
pub fn bench_gc_valid_scan(warmup: usize, samples: usize) -> Record {
    let geom = FlashGeometry {
        page_bytes: 4096,
        pages_per_block: 64,
        num_blocks: 256,
        read_us: 25.0,
        write_us: 200.0,
        erase_us: 1500.0,
        topology: FlashTopology::default(),
    };
    let num_blocks = geom.num_blocks;
    let total_pages = (geom.num_blocks * geom.pages_per_block) as u64;
    let mut flash = Flash::new(geom).expect("flash builds");
    // Program every page, then invalidate every other one so the scan
    // filters a realistic mix instead of a trivially dense block.
    for b in 0..num_blocks as u32 {
        while let Some(ppn) = flash.next_free_ppn(b) {
            flash
                .program_page(ppn, ppn, OpPurpose::HostData)
                .expect("program");
            if ppn % 2 == 0 {
                flash.invalidate(ppn).expect("invalidate");
            }
        }
    }
    let ns = time_samples(warmup, samples, total_pages, || {
        let mut found = 0usize;
        for b in 0..num_blocks as u32 {
            found += flash.valid_pages(b).count();
        }
        black_box(found);
    });
    Record {
        scenario: "gc_valid_scan".to_string(),
        ftl: "flash".to_string(),
        ops_per_iter: total_pages,
        samples: ns,
        extra: Vec::new(),
    }
}

/// Macro replay: the Financial1 synthetic trace end to end through the
/// simulator (arrival timing, write handling, GC), fresh device per sample.
pub fn bench_replay(kind: FtlKind, samples: usize, requests: usize) -> Record {
    let workload = Workload::Financial1;
    let config = device_config(workload);
    let spec = workload.spec(requests);
    let mut ns = Vec::new();
    let mut last = None;
    for _ in 0..samples {
        let ftl = kind.build(&config).expect("FTL builds");
        let mut ssd = Ssd::new(ftl, config.clone()).expect("ssd builds");
        let t = Instant::now();
        let report = ssd.run(spec.iter(SEED)).expect("replay");
        ns.push(t.elapsed().as_nanos() as f64 / requests as f64);
        last = Some(report);
    }
    let report = last.expect("at least one sample");
    let median = {
        let mut s = ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    };
    Record {
        scenario: "replay_financial1".to_string(),
        ftl: kind.build(&config).expect("FTL builds").name(),
        ops_per_iter: requests as u64,
        samples: ns,
        extra: vec![
            ("requests_per_sec", Value::Float(1e9 / median)),
            ("hit_ratio", Value::Float(report.hit_ratio())),
            ("avg_response_us", Value::Float(report.avg_response_us)),
            ("translation_reads", Value::UInt(report.translation_reads())),
            (
                "translation_writes",
                Value::UInt(report.translation_writes()),
            ),
            ("predict_hits", Value::UInt(report.ftl_stats.predict_hits)),
            ("mispredicts", Value::UInt(report.ftl_stats.mispredicts)),
        ],
    }
}

/// The semi-sequential read trace that showcases the learned mapping:
/// long aligned read streams over a fully pre-filled device, with a thin
/// random-write stream that keeps invalidation in the picture. A
/// piecewise-linear index covers the streams with a handful of segments,
/// so LearnedFTL should serve most translations with zero flash reads
/// where the demand-paged baselines pay a translation-page load per miss.
pub fn semiseq_spec(config: &SsdConfig, requests: usize) -> SyntheticSpec {
    SyntheticSpec {
        name: "semiseq".to_string(),
        requests,
        address_bytes: config.logical_bytes,
        write_ratio: 0.1,
        seq_read_frac: 0.85,
        seq_write_frac: 0.5,
        mean_burst_len: 64.0,
        align_sectors: 8,
        ..SyntheticSpec::default()
    }
}

/// Macro replay of the semi-sequential trace (see [`semiseq_spec`]): the
/// row's payload is translation reads per request next to the learned
/// predictor's hit/mispredict counters, so the zero-read translation win
/// (and its validation cost) is directly visible against the baselines.
pub fn bench_replay_semiseq(kind: FtlKind, samples: usize, requests: usize) -> Record {
    let mut config = micro_config();
    config.prefill_frac = 1.0;
    let spec = semiseq_spec(&config, requests);
    let mut ns = Vec::new();
    let mut last = None;
    for _ in 0..samples {
        let ftl = kind.build(&config).expect("FTL builds");
        let mut ssd = Ssd::new(ftl, config.clone()).expect("ssd builds");
        let t = Instant::now();
        let report = ssd.run(spec.iter(SEED)).expect("replay");
        ns.push(t.elapsed().as_nanos() as f64 / requests as f64);
        last = Some(report);
    }
    let report = last.expect("at least one sample");
    Record {
        scenario: "replay_semiseq".to_string(),
        ftl: kind.build(&config).expect("FTL builds").name(),
        ops_per_iter: requests as u64,
        samples: ns,
        extra: vec![
            ("hit_ratio", Value::Float(report.hit_ratio())),
            ("translation_reads", Value::UInt(report.translation_reads())),
            (
                "translation_reads_per_req",
                Value::Float(report.translation_reads() as f64 / requests as f64),
            ),
            ("predict_hits", Value::UInt(report.ftl_stats.predict_hits)),
            ("mispredicts", Value::UInt(report.ftl_stats.mispredicts)),
        ],
    }
}

/// Macro replay across flash topologies: the Financial1 trace on a device
/// with `channels` channels (one way each, no bus overhead, so the
/// 1-channel row is directly comparable to the serial model). The wall
/// clock is secondary here; the row's payload is the *simulated* timing —
/// device time, makespan and response percentiles from the unit-clock
/// model — which must improve monotonically as channels are added.
pub fn bench_replay_channels(
    kind: FtlKind,
    samples: usize,
    requests: usize,
    channels: u32,
) -> Record {
    let workload = Workload::Financial1;
    let mut config = device_config(workload);
    config.topology.channels = channels;
    let spec = workload.spec(requests);
    let mut ns = Vec::new();
    let mut last = None;
    for _ in 0..samples {
        let ftl = kind.build(&config).expect("FTL builds");
        let mut ssd = Ssd::new(ftl, config.clone()).expect("ssd builds");
        let t = Instant::now();
        let report = ssd.run(spec.iter(SEED)).expect("replay");
        ns.push(t.elapsed().as_nanos() as f64 / requests as f64);
        last = Some(report);
    }
    let report = last.expect("at least one sample");
    Record {
        scenario: format!("replay_financial1_chans{channels}"),
        ftl: kind.build(&config).expect("FTL builds").name(),
        ops_per_iter: requests as u64,
        samples: ns,
        extra: vec![
            ("channels", Value::UInt(channels as u64)),
            ("hit_ratio", Value::Float(report.hit_ratio())),
            ("sim_device_us", Value::Float(report.sim.device_us)),
            ("sim_makespan_us", Value::Float(report.sim.makespan_us)),
            ("sim_resp_avg_us", Value::Float(report.sim.resp_avg_us)),
            ("sim_resp_p50_us", Value::Float(report.sim.resp_p50_us)),
            ("sim_resp_p99_us", Value::Float(report.sim.resp_p99_us)),
            ("sim_resp_p999_us", Value::Float(report.sim.resp_p999_us)),
        ],
    }
}

/// Macro replay on the sharded multi-queue engine: the same Financial1
/// trace as [`bench_replay`], striped over `shards` worker threads (see
/// `tpftl_sim::ShardedSsd`). The record carries the per-shard load split
/// so imbalance is visible next to the throughput number.
pub fn bench_replay_sharded(kind: FtlKind, samples: usize, requests: usize, shards: u32) -> Record {
    let workload = Workload::Financial1;
    let config = device_config(workload);
    let spec = workload.spec(requests);
    let mut ns = Vec::new();
    let mut last = None;
    for _ in 0..samples {
        let mut ssd =
            ShardedSsd::new(&config, shards, |_, c| kind.build(c)).expect("sharded ssd builds");
        let t = Instant::now();
        let report = ssd.run(spec.iter(SEED)).expect("replay");
        ns.push(t.elapsed().as_nanos() as f64 / requests as f64);
        last = Some(report);
    }
    let report = last.expect("at least one sample");
    let median = {
        let mut s = ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    };
    Record {
        scenario: format!("replay_financial1_shards{shards}"),
        ftl: kind.build(&config).expect("FTL builds").name(),
        ops_per_iter: requests as u64,
        samples: ns,
        extra: vec![
            ("requests_per_sec", Value::Float(1e9 / median)),
            ("hit_ratio", Value::Float(report.merged.hit_ratio())),
            (
                "avg_response_us",
                Value::Float(report.merged.avg_response_us),
            ),
            ("shards", Value::UInt(shards as u64)),
            ("load_imbalance", Value::Float(report.load.imbalance)),
        ],
    }
}

/// GC under sharding: a write-only stream over a pre-filled device keeps
/// every shard's garbage collector busy, measuring the engine when each
/// worker is compute-bound rather than queue-bound.
pub fn bench_sharded_write_gc(shards: u32, samples: usize, requests: usize) -> Record {
    let mut config = micro_config();
    config.prefill_frac = 1.0;
    let spec = SyntheticSpec {
        requests,
        address_bytes: config.logical_bytes,
        write_ratio: 1.0,
        ..SyntheticSpec::default()
    };
    let mut ns = Vec::new();
    let mut last = None;
    for _ in 0..samples {
        let mut ssd =
            ShardedSsd::new(&config, shards, |_, c| FtlKind::Tpftl.build(c)).expect("sharded ssd");
        let t = Instant::now();
        let report = ssd.run(spec.iter(SEED)).expect("sharded write gc");
        ns.push(t.elapsed().as_nanos() as f64 / requests as f64);
        last = Some(report);
    }
    let report = last.expect("at least one sample");
    Record {
        scenario: "sharded_write_gc".to_string(),
        ftl: "TPFTL(rsbc)".to_string(),
        ops_per_iter: requests as u64,
        samples: ns,
        extra: vec![
            ("hit_ratio", Value::Float(report.merged.hit_ratio())),
            ("erases", Value::UInt(report.merged.erase_count())),
            ("shards", Value::UInt(shards as u64)),
            ("load_imbalance", Value::Float(report.load.imbalance)),
        ],
    }
}

/// Applies the multi-stream GC configuration measured by the aging and
/// multi-tenant rows: four hot/cold data streams fed by the write-count
/// temperature estimator, windowed cost-benefit victim selection with the
/// wear tiebreak. The single-stream baseline rows keep the defaults
/// (greedy, one stream).
/// GC configuration for the GC-quality rows. `Wear` is the single-stream
/// wear-aware reference the erase-CV acceptance bar is measured against
/// (`Multi` must not spread erases less evenly than it); same
/// `max_wear_delta` as the extensions study.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum GcVariant {
    Greedy,
    Multi,
    Wear,
}

impl GcVariant {
    fn label(self) -> &'static str {
        match self {
            GcVariant::Greedy => "greedy",
            GcVariant::Multi => "multi",
            GcVariant::Wear => "wear",
        }
    }

    fn apply(self, config: &mut SsdConfig) {
        match self {
            GcVariant::Greedy => {}
            GcVariant::Multi => {
                config.gc_policy = GcPolicy::Windowed { window: 16 };
                config.streams = StreamCount(4);
            }
            GcVariant::Wear => {
                config.gc_policy = GcPolicy::WearAware { max_wear_delta: 16 };
            }
        }
    }
}

/// The device-aging overwrite stream: write-only, Zipf-skewed over the
/// whole address space, so a small hot set is rewritten constantly while
/// the prefilled cold majority decays slowly — the page-lifetime mix that
/// makes single-stream GC copy cold data over and over.
fn aging_spec(config: &SsdConfig, requests: usize) -> SyntheticSpec {
    SyntheticSpec {
        name: "aging".to_string(),
        requests,
        address_bytes: config.logical_bytes,
        write_ratio: 1.0,
        seq_read_frac: 0.0,
        seq_write_frac: 0.0,
        locality: Locality {
            regions: 1024,
            theta: 1.2,
            active_frac: 1.0,
        },
        ..SyntheticSpec::default()
    }
}

/// Shared replay body of the GC-quality rows: runs `spec_requests` through
/// a fresh device per sample and reports GC copy amplification
/// ([`tpftl_sim::RunReport::write_amp`]) and wear evenness (`erase_cv`)
/// next to the timing.
fn bench_gc_quality(
    scenario: String,
    kind: FtlKind,
    config: SsdConfig,
    samples: usize,
    requests: usize,
    trace: impl Fn(u64) -> Box<dyn Iterator<Item = tpftl_trace::IoRequest>>,
) -> Record {
    let mut ns = Vec::new();
    let mut last = None;
    for _ in 0..samples {
        let ftl = kind.build(&config).expect("FTL builds");
        let mut ssd = Ssd::new(ftl, config.clone()).expect("ssd builds");
        let t = Instant::now();
        let report = ssd.run(trace(SEED)).expect("replay");
        ns.push(t.elapsed().as_nanos() as f64 / requests as f64);
        last = Some(report);
    }
    let report = last.expect("at least one sample");
    Record {
        scenario,
        ftl: kind.build(&config).expect("FTL builds").name(),
        ops_per_iter: requests as u64,
        samples: ns,
        extra: vec![
            ("write_amp", Value::Float(report.write_amp())),
            ("erase_cv", Value::Float(report.erase_cv())),
            ("erases", Value::UInt(report.erase_count())),
            ("hit_ratio", Value::Float(report.hit_ratio())),
        ],
    }
}

/// Device-aging GC row: the device is prefilled to 90% utilization, then
/// the skewed overwrite stream of [`aging_spec`] keeps the collector
/// running for the whole replay. The [`GcVariant`] selects the GC
/// configuration; the scenario name carries it because bench-diff keys
/// rows by (scenario, ftl).
pub fn bench_aging_write_gc(
    kind: FtlKind,
    variant: GcVariant,
    samples: usize,
    requests: usize,
) -> Record {
    let mut config = micro_config();
    config.prefill_frac = 0.9;
    variant.apply(&mut config);
    let spec = aging_spec(&config, requests);
    bench_gc_quality(
        format!("aging_write_gc_{}", variant.label()),
        kind,
        config,
        samples,
        requests,
        move |seed| Box::new(spec.iter(seed)),
    )
}

/// Multi-tenant GC row: a hot small-footprint write-heavy tenant and a
/// cool wide one share a 90%-prefilled device ([`MultiTenantSpec`]), so
/// pages of very different lifetimes arrive interleaved — the workload
/// hot/cold stream separation exists for.
pub fn bench_tenant_mix(
    kind: FtlKind,
    variant: GcVariant,
    samples: usize,
    requests: usize,
) -> Record {
    let mut config = micro_config();
    config.prefill_frac = 0.9;
    variant.apply(&mut config);
    let spec = MultiTenantSpec {
        name: "tenant_mix".to_string(),
        requests,
        address_bytes: config.logical_bytes,
        tenants: vec![
            TenantSpec {
                write_ratio: 0.95,
                theta: 1.2,
                ..TenantSpec::default()
            },
            TenantSpec {
                write_ratio: 0.6,
                theta: 0.2,
                ..TenantSpec::default()
            },
        ],
        ..MultiTenantSpec::default()
    };
    bench_gc_quality(
        format!("tenant_mix_{}", variant.label()),
        kind,
        config,
        samples,
        requests,
        move |seed| Box::new(spec.iter(seed)),
    )
}

/// Open-loop steady-state drive (see `tpftl_sim::ShardedSsd::run_open_loop`):
/// the Financial1 trace's addresses offered at a fixed wall-clock arrival
/// rate through per-shard submission/completion queue pairs. Unlike every
/// other scenario, the payload is not ns/op but **offered vs achieved
/// throughput and wall-clock response percentiles measured against the
/// arrival schedule** (no coordinated omission) — the row's `ns_per_op`
/// (wall ns per offered request) is recorded for the table yet carries
/// machine noise by design, so open-loop rows are excluded from the
/// strict bench-diff gate.
pub fn bench_open_loop(
    kind: FtlKind,
    shards: u32,
    queue_depth: u32,
    offered_rps: u64,
    requests: usize,
) -> Record {
    let workload = Workload::Financial1;
    let mut config = device_config(workload);
    // The paper cache split N ways leaves S-FTL/CDFTL under their fixed
    // per-instance minimum (a worst-case translation page plus buffers),
    // so every open-loop row — same floor for all six FTLs, keeping the
    // comparison fair — guarantees 16 KiB of usable cache per shard.
    config.cache_bytes = config
        .cache_bytes
        .max(config.gtd_bytes() + shards as usize * 16 * 1024);
    let spec = workload.spec(requests);
    let mut ssd = ShardedSsd::new(&config, shards, |_, c| kind.build(c)).expect("sharded ssd");
    let out = ssd
        .run_open_loop(
            spec.iter(SEED),
            OpenLoopOpts {
                offered_rps: offered_rps as f64,
                queue_depth: queue_depth as usize,
            },
        )
        .expect("open-loop run");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    Record {
        scenario: format!("open_loop_s{shards}_qd{queue_depth}_r{offered_rps}"),
        ftl: kind.build(&config).expect("FTL builds").name(),
        ops_per_iter: out.requests,
        samples: vec![out.wall_us * 1e3 / out.requests.max(1) as f64],
        extra: vec![
            ("offered_rps", Value::Float(out.offered_rps)),
            ("achieved_rps", Value::Float(out.achieved_rps)),
            ("resp_avg_us", Value::Float(out.resp_avg_us)),
            ("resp_p50_us", Value::Float(out.resp_p50_us)),
            ("resp_p99_us", Value::Float(out.resp_p99_us)),
            ("resp_p999_us", Value::Float(out.resp_p999_us)),
            ("queue_depth", Value::UInt(queue_depth as u64)),
            ("shards", Value::UInt(shards as u64)),
            ("sub_requests", Value::UInt(out.sub_requests)),
            ("backlog_peak", Value::UInt(out.backlog_peak)),
            ("parks", Value::UInt(out.doorbells.parks)),
            ("wakeups", Value::UInt(out.doorbells.wakeups)),
            ("cores", Value::UInt(cores as u64)),
            ("hit_ratio", Value::Float(out.report.merged.hit_ratio())),
        ],
    }
}

/// Runs the full scenario matrix; `quick` selects the CI smoke sizing.
/// `filter` restricts the run to scenarios whose `scenario/ftl` id
/// contains it — non-matching scenarios are skipped, not run-and-hidden,
/// so a filtered invocation is proportionally fast (and profileable).
/// `shard_counts` selects which sharded-replay rows to run (TPFTL only;
/// pass `&[]` to skip the sharded scenarios entirely). `channel_counts`
/// selects the channel-scaling replay rows (all five FTLs including
/// Optimal, per channel count; `&[]` — the default CLI behaviour — skips
/// them). `open_loop_rates`/`open_loop_depths` select the open-loop
/// saturation sweep: all six FTLs per (rate, depth) at the maximum of
/// [`SWEEP_OPEN_LOOP_SHARDS`], plus TPFTL shard-scaling rows at the
/// middle rate (`&[]` rates — the default — skips the sweep).
pub fn run_all(
    quick: bool,
    filter: Option<&str>,
    shard_counts: &[u32],
    channel_counts: &[u32],
    open_loop_rates: &[u64],
    open_loop_depths: &[u32],
) -> Vec<Record> {
    let (warmup, samples) = if quick { (1, 3) } else { (3, 9) };
    let (hit_ops, miss_ops, write_ops) = if quick {
        (1024, 128, 256)
    } else {
        (4096, 256, 512)
    };
    let replay_requests = if quick { 12_000 } else { 60_000 };

    let wanted =
        |scenario: &str, ftl: &str| filter.is_none_or(|f| format!("{scenario}/{ftl}").contains(f));
    let mut records = Vec::new();
    for kind in KINDS {
        // Static labels (matching `Ftl::name`) so filtering does not have
        // to build an FTL just to learn what it is called.
        let name = match kind {
            FtlKind::Tpftl => "TPFTL(rsbc)",
            FtlKind::Dftl => "DFTL",
            FtlKind::Sftl => "S-FTL",
            FtlKind::Cdftl => "CDFTL",
            FtlKind::Learned => "LearnedFTL(e4)",
            _ => "?",
        };
        if wanted("translate_hit", name) {
            records.push(bench_translate_hit(kind, warmup, samples, hit_ops));
        }
        if wanted("miss_scan", name) {
            records.push(bench_miss_scan(kind, warmup, samples, miss_ops));
        }
        if wanted("write_gc", name) {
            records.push(bench_write_gc(kind, warmup, samples, write_ops));
        }
        if wanted("replay_financial1", name) {
            records.push(bench_replay(kind, samples.min(3), replay_requests));
        }
    }
    for (kind, name) in [
        (FtlKind::Learned, "LearnedFTL(e4)"),
        (FtlKind::Dftl, "DFTL"),
        (FtlKind::Tpftl, "TPFTL(rsbc)"),
    ] {
        if wanted("replay_semiseq", name) {
            records.push(bench_replay_semiseq(kind, samples.min(3), replay_requests));
        }
    }
    if wanted("gc_valid_scan", "flash") {
        records.push(bench_gc_valid_scan(warmup, samples));
    }
    // GC-quality rows: TPFTL and DFTL, single-stream greedy baseline vs
    // the multi-stream windowed configuration (plus the wear-aware
    // reference the erase-CV bar is judged against), on the aging
    // overwrite stream and the multi-tenant mix. Their payload is
    // write_amp / erase_cv rather than ns/op, so CI excludes them from
    // the strict latency gate and compares write_amp separately.
    let gc_requests = if quick { 12_000 } else { 60_000 };
    for (kind, name) in [(FtlKind::Tpftl, "TPFTL(rsbc)"), (FtlKind::Dftl, "DFTL")] {
        for variant in [GcVariant::Greedy, GcVariant::Multi, GcVariant::Wear] {
            if wanted(&format!("aging_write_gc_{}", variant.label()), name) {
                records.push(bench_aging_write_gc(
                    kind,
                    variant,
                    samples.min(3),
                    gc_requests,
                ));
            }
            if wanted(&format!("tenant_mix_{}", variant.label()), name) {
                records.push(bench_tenant_mix(kind, variant, samples.min(3), gc_requests));
            }
        }
    }
    for &shards in shard_counts {
        let label = format!("replay_financial1_shards{shards}");
        if wanted(&label, "TPFTL(rsbc)") {
            records.push(bench_replay_sharded(
                FtlKind::Tpftl,
                samples.min(3),
                replay_requests,
                shards,
            ));
        }
    }
    if let Some(&max_shards) = shard_counts.iter().max() {
        if wanted("sharded_write_gc", "TPFTL(rsbc)") {
            let gc_requests = if quick { 6_000 } else { 30_000 };
            records.push(bench_sharded_write_gc(
                max_shards,
                samples.min(3),
                gc_requests,
            ));
        }
    }
    for &channels in channel_counts {
        let label = format!("replay_financial1_chans{channels}");
        for (kind, name) in [
            (FtlKind::Tpftl, "TPFTL(rsbc)"),
            (FtlKind::Dftl, "DFTL"),
            (FtlKind::Sftl, "S-FTL"),
            (FtlKind::Cdftl, "CDFTL"),
            (FtlKind::Optimal, "Optimal"),
        ] {
            if wanted(&label, name) {
                records.push(bench_replay_channels(
                    kind,
                    samples.min(3),
                    replay_requests,
                    channels,
                ));
            }
        }
    }
    if !open_loop_rates.is_empty() {
        let ol_requests = if quick { 4_000 } else { 20_000 };
        let depths: &[u32] = if open_loop_depths.is_empty() {
            &SWEEP_OPEN_LOOP_DEPTHS
        } else {
            open_loop_depths
        };
        let all_shards = *SWEEP_OPEN_LOOP_SHARDS.last().unwrap();
        // All six FTLs (the five cached-mapping designs plus the Optimal
        // page-map upper bound) at every (rate, depth), full shard count.
        for &rate in open_loop_rates {
            for &depth in depths {
                let label = format!("open_loop_s{all_shards}_qd{depth}_r{rate}");
                for (kind, name) in [
                    (FtlKind::Tpftl, "TPFTL(rsbc)"),
                    (FtlKind::Dftl, "DFTL"),
                    (FtlKind::Sftl, "S-FTL"),
                    (FtlKind::Cdftl, "CDFTL"),
                    (FtlKind::Learned, "LearnedFTL(e4)"),
                    (FtlKind::Optimal, "Optimal"),
                ] {
                    if wanted(&label, name) {
                        records.push(bench_open_loop(kind, all_shards, depth, rate, ol_requests));
                    }
                }
            }
        }
        // Shard-scaling rows: TPFTL at the middle rate across the shard
        // sweep (the maximum is already covered above).
        let mid_rate = open_loop_rates[open_loop_rates.len() / 2];
        for &shards in &SWEEP_OPEN_LOOP_SHARDS {
            if shards == all_shards {
                continue;
            }
            for &depth in depths {
                let label = format!("open_loop_s{shards}_qd{depth}_r{mid_rate}");
                if wanted(&label, "TPFTL(rsbc)") {
                    records.push(bench_open_loop(
                        FtlKind::Tpftl,
                        shards,
                        depth,
                        mid_rate,
                        ol_requests,
                    ));
                }
            }
        }
    }
    records
}
