//! `ftlbench` — std-only FTL benchmark harness.
//!
//! Thin CLI over [`tpftl_bench`]: runs the scenario matrix and writes a
//! machine-readable `BENCH_ftl.json` (`schema: "ftlbench-v1"`). See the
//! library crate for the scenarios and the JSON schema; see `bench-diff`
//! for the regression gate over two such reports.
//!
//! Usage:
//!
//! ```text
//! ftlbench [--quick] [--filter SUBSTR] [--shards LIST] [--channels LIST]
//!          [--open-loop LIST] [--qd LIST] [--out PATH]
//! ```
//!
//! * `--quick`     — fewer samples/ops; the CI smoke configuration.
//! * `--filter`    — run only scenarios whose `scenario/ftl` id contains
//!   SUBSTR.
//! * `--shards`    — comma-separated shard counts for the sharded-replay
//!   rows (powers of two; default `2,4`; `none` skips them).
//! * `--channels`  — channel counts for the channel-scaling replay rows
//!   (all five FTLs per count; `sweep` = `1,2,4,8`; default none).
//! * `--open-loop` — offered load levels (requests/second) for the
//!   open-loop saturation sweep: all six FTLs per (rate, queue depth)
//!   plus TPFTL shard-scaling rows (`sweep` = `50000,250000,1000000`;
//!   default none).
//! * `--qd`        — per-shard submission-queue depths for the open-loop
//!   rows (powers of two; default `64,1024`).
//! * `--out`       — JSON output path (default `BENCH_ftl.json`).

struct Opts {
    quick: bool,
    filter: Option<String>,
    shards: Vec<u32>,
    channels: Vec<u32>,
    open_loop: Vec<u64>,
    qd: Vec<u32>,
    out: String,
}

fn parse_open_loop(raw: &str) -> Vec<u64> {
    if raw == "none" {
        return Vec::new();
    }
    if raw == "sweep" {
        return tpftl_bench::SWEEP_OPEN_LOOP_RATES.to_vec();
    }
    raw.split(',')
        .map(|part| {
            let n: u64 = part.trim().parse().unwrap_or_else(|_| {
                eprintln!("--open-loop needs comma-separated rates (req/s), got {part:?}");
                std::process::exit(2);
            });
            if n == 0 {
                eprintln!("--open-loop rates must be positive");
                std::process::exit(2);
            }
            n
        })
        .collect()
}

fn parse_qd(raw: &str) -> Vec<u32> {
    raw.split(',')
        .map(|part| {
            let n: u32 = part.trim().parse().unwrap_or_else(|_| {
                eprintln!("--qd needs comma-separated depths, got {part:?}");
                std::process::exit(2);
            });
            if !n.is_power_of_two() {
                eprintln!("--qd entries must be powers of two, got {n}");
                std::process::exit(2);
            }
            n
        })
        .collect()
}

fn parse_channels(raw: &str) -> Vec<u32> {
    if raw == "none" {
        return Vec::new();
    }
    if raw == "sweep" {
        return tpftl_bench::SWEEP_CHANNEL_COUNTS.to_vec();
    }
    raw.split(',')
        .map(|part| {
            let n: u32 = part.trim().parse().unwrap_or_else(|_| {
                eprintln!("--channels needs comma-separated numbers, got {part:?}");
                std::process::exit(2);
            });
            if n == 0 {
                eprintln!("--channels entries must be positive");
                std::process::exit(2);
            }
            n
        })
        .collect()
}

fn parse_shards(raw: &str) -> Vec<u32> {
    if raw == "none" {
        return Vec::new();
    }
    raw.split(',')
        .map(|part| {
            let n: u32 = part.trim().parse().unwrap_or_else(|_| {
                eprintln!("--shards needs comma-separated numbers, got {part:?}");
                std::process::exit(2);
            });
            if !n.is_power_of_two() {
                eprintln!("--shards entries must be powers of two, got {n}");
                std::process::exit(2);
            }
            n
        })
        .collect()
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        filter: None,
        shards: tpftl_bench::DEFAULT_SHARD_COUNTS.to_vec(),
        channels: Vec::new(),
        open_loop: Vec::new(),
        qd: tpftl_bench::SWEEP_OPEN_LOOP_DEPTHS.to_vec(),
        out: "BENCH_ftl.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--filter" => opts.filter = args.next(),
            "--shards" => opts.shards = parse_shards(&need(&mut args, "--shards")),
            "--channels" => opts.channels = parse_channels(&need(&mut args, "--channels")),
            "--open-loop" => opts.open_loop = parse_open_loop(&need(&mut args, "--open-loop")),
            "--qd" => opts.qd = parse_qd(&need(&mut args, "--qd")),
            "--out" => opts.out = need(&mut args, "--out"),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: ftlbench [--quick] [--filter SUBSTR] [--shards LIST] \
                     [--channels LIST] [--open-loop LIST] [--qd LIST] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_opts();
    let records = tpftl_bench::run_all(
        opts.quick,
        opts.filter.as_deref(),
        &opts.shards,
        &opts.channels,
        &opts.open_loop,
        &opts.qd,
    );
    tpftl_bench::print_table(&records);
    let json = tpftl_bench::render_json(&records, opts.quick);
    let text = serde_json::to_string_pretty(&json).expect("render JSON");
    if let Err(e) = std::fs::write(&opts.out, text + "\n") {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", opts.out);
}
