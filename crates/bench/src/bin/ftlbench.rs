//! `ftlbench` — std-only FTL benchmark harness.
//!
//! Replaces the old criterion benches (criterion cannot build offline):
//! plain `Instant` timing with warmup iterations and median-of-k samples.
//! Covers the translation hot paths of every cached-mapping FTL plus a
//! macro trace replay, and writes a machine-readable `BENCH_ftl.json`.
//!
//! Usage:
//!
//! ```text
//! ftlbench [--quick] [--filter SUBSTR] [--out PATH]
//! ```
//!
//! * `--quick`  — fewer samples/ops; the CI smoke configuration.
//! * `--filter` — run only scenarios whose `scenario/ftl` id contains SUBSTR.
//! * `--out`    — JSON output path (default `BENCH_ftl.json`).
//!
//! JSON schema (`schema: "ftlbench-v1"`): `results` is a list of records
//! with `scenario`, `ftl`, `ns_per_op` (median), `min_ns_per_op`,
//! `mean_ns_per_op`, `ops_per_iter`, `samples`, and optional scenario
//! extras (`hit_ratio`, `requests_per_sec`, `avg_response_us`,
//! `translation_reads`, `translation_writes`).

use std::hint::black_box;
use std::time::Instant;

use serde_json::Value;
use tpftl_core::driver;
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::{AccessCtx, Ftl};
use tpftl_core::SsdConfig;
use tpftl_experiments::runner::{device_config, FtlKind, SEED};
use tpftl_sim::Ssd;
use tpftl_trace::presets::Workload;

/// The FTLs under test: the paper's cached-mapping designs.
const KINDS: [FtlKind; 4] = [FtlKind::Tpftl, FtlKind::Dftl, FtlKind::Sftl, FtlKind::Cdftl];

struct Opts {
    quick: bool,
    filter: Option<String>,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        filter: None,
        out: "BENCH_ftl.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--filter" => opts.filter = args.next(),
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: ftlbench [--quick] [--filter SUBSTR] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// One timed record, already reduced over its samples.
struct Record {
    scenario: &'static str,
    ftl: String,
    ops_per_iter: u64,
    samples: Vec<f64>, // ns per op
    extra: Vec<(&'static str, Value)>,
}

impl Record {
    fn median(&self) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    }

    fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("scenario", Value::Str(self.scenario.to_string())),
            ("ftl", Value::Str(self.ftl.clone())),
            ("ns_per_op", Value::Float(self.median())),
            ("min_ns_per_op", Value::Float(self.min())),
            ("mean_ns_per_op", Value::Float(self.mean())),
            ("ops_per_iter", Value::UInt(self.ops_per_iter)),
            ("samples", Value::UInt(self.samples.len() as u64)),
        ];
        fields.extend(self.extra.iter().cloned());
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

/// Times `iter` (which performs `ops` operations per call): `warmup`
/// unmeasured calls, then `samples` measured ones; returns ns/op per sample.
fn time_samples<F: FnMut()>(warmup: usize, samples: usize, ops: u64, mut iter: F) -> Vec<f64> {
    for _ in 0..warmup {
        iter();
    }
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            iter();
            t.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect()
}

/// A 64 MB device with a 16 KB mapping-cache budget on top of the GTD —
/// small enough to set up quickly, large enough for a real miss stream.
fn micro_config() -> SsdConfig {
    let mut config = SsdConfig::paper_default(64 << 20);
    config.cache_bytes = config.gtd_bytes() + 16 * 1024;
    config
}

fn build(kind: FtlKind, config: &SsdConfig) -> (Box<dyn Ftl + Send>, SsdEnv) {
    let mut ftl = kind.build(config).expect("FTL builds");
    let mut env = SsdEnv::new(config.clone()).expect("env builds");
    driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");
    (ftl, env)
}

/// Cache-hit translation path: one warmed entry translated repeatedly.
fn bench_translate_hit(kind: FtlKind, warmup: usize, samples: usize, ops: u64) -> Record {
    let config = micro_config();
    let (mut ftl, mut env) = build(kind, &config);
    driver::serve_page_access(ftl.as_mut(), &mut env, 42, AccessCtx::single(true))
        .expect("warm write");
    let ctx = AccessCtx::single(false);
    let ns = time_samples(warmup, samples, ops, || {
        for _ in 0..ops {
            black_box(ftl.translate(&mut env, black_box(42), &ctx).expect("hit"));
        }
    });
    let hit_ratio = env.stats.hits as f64 / env.stats.lookups as f64;
    Record {
        scenario: "translate_hit",
        ftl: ftl.name(),
        ops_per_iter: ops,
        samples: ns,
        extra: vec![("hit_ratio", Value::Float(hit_ratio))],
    }
}

/// Miss-dominated scan: a large-stride cursor defeats the cache, so every
/// translation pays lookup + eviction + translation-page load.
fn bench_miss_scan(kind: FtlKind, warmup: usize, samples: usize, ops: u64) -> Record {
    let config = micro_config();
    let pages = config.logical_pages() as u32;
    let (mut ftl, mut env) = build(kind, &config);
    let ctx = AccessCtx::single(false);
    let mut cursor: u32 = 0;
    let ns = time_samples(warmup, samples, ops, || {
        for _ in 0..ops {
            black_box(
                ftl.translate(&mut env, black_box(cursor), &ctx)
                    .expect("translate"),
            );
            cursor = (cursor + 4099) % pages;
        }
    });
    let hit_ratio = env.stats.hits as f64 / env.stats.lookups as f64;
    Record {
        scenario: "miss_scan",
        ftl: ftl.name(),
        ops_per_iter: ops,
        samples: ns,
        extra: vec![("hit_ratio", Value::Float(hit_ratio))],
    }
}

/// Write path on a full device: updates dirty the cache and keep garbage
/// collection (data + translation blocks) in the loop.
fn bench_write_gc(kind: FtlKind, warmup: usize, samples: usize, ops: u64) -> Record {
    let mut config = micro_config();
    config.prefill_frac = 1.0;
    let window = (config.logical_pages() / 8) as u32;
    let (mut ftl, mut env) = build(kind, &config);
    let ctx = AccessCtx::single(true);
    let mut cursor: u32 = 0;
    let ns = time_samples(warmup, samples, ops, || {
        for _ in 0..ops {
            driver::serve_page_access(ftl.as_mut(), &mut env, cursor, ctx).expect("write");
            cursor = (cursor + 127) % window;
        }
    });
    let hit_ratio = env.stats.hits as f64 / env.stats.lookups as f64;
    Record {
        scenario: "write_gc",
        ftl: ftl.name(),
        ops_per_iter: ops,
        samples: ns,
        extra: vec![("hit_ratio", Value::Float(hit_ratio))],
    }
}

/// Macro replay: the Financial1 synthetic trace end to end through the
/// simulator (arrival timing, write handling, GC), fresh device per sample.
fn bench_replay(kind: FtlKind, samples: usize, requests: usize) -> Record {
    let workload = Workload::Financial1;
    let config = device_config(workload);
    let spec = workload.spec(requests);
    let mut ns = Vec::new();
    let mut last = None;
    for _ in 0..samples {
        let ftl = kind.build(&config).expect("FTL builds");
        let mut ssd = Ssd::new(ftl, config.clone()).expect("ssd builds");
        let t = Instant::now();
        let report = ssd.run(spec.iter(SEED)).expect("replay");
        ns.push(t.elapsed().as_nanos() as f64 / requests as f64);
        last = Some(report);
    }
    let report = last.expect("at least one sample");
    let median = {
        let mut s = ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    };
    Record {
        scenario: "replay_financial1",
        ftl: kind.build(&config).expect("FTL builds").name(),
        ops_per_iter: requests as u64,
        samples: ns,
        extra: vec![
            ("requests_per_sec", Value::Float(1e9 / median)),
            ("hit_ratio", Value::Float(report.hit_ratio())),
            ("avg_response_us", Value::Float(report.avg_response_us)),
            ("translation_reads", Value::UInt(report.translation_reads())),
            (
                "translation_writes",
                Value::UInt(report.translation_writes()),
            ),
        ],
    }
}

fn main() {
    let opts = parse_opts();
    let (warmup, samples) = if opts.quick { (1, 3) } else { (3, 9) };
    let (hit_ops, miss_ops, write_ops) = if opts.quick {
        (1024, 128, 256)
    } else {
        (4096, 256, 512)
    };
    let replay_requests = if opts.quick { 12_000 } else { 60_000 };

    let mut records = Vec::new();
    for kind in KINDS {
        records.push(bench_translate_hit(kind, warmup, samples, hit_ops));
        records.push(bench_miss_scan(kind, warmup, samples, miss_ops));
        records.push(bench_write_gc(kind, warmup, samples, write_ops));
        records.push(bench_replay(kind, samples.min(3), replay_requests));
    }
    if let Some(f) = &opts.filter {
        records.retain(|r| format!("{}/{}", r.scenario, r.ftl).contains(f.as_str()));
    }

    println!(
        "{:<18} {:<14} {:>12} {:>12} {:>10}",
        "scenario", "ftl", "median ns/op", "min ns/op", "hit ratio"
    );
    for r in &records {
        let hit = r
            .extra
            .iter()
            .find(|(k, _)| *k == "hit_ratio")
            .and_then(|(_, v)| v.as_f64())
            .map_or_else(|| "-".to_string(), |h| format!("{h:.4}"));
        println!(
            "{:<18} {:<14} {:>12.1} {:>12.1} {:>10}",
            r.scenario,
            r.ftl,
            r.median(),
            r.min(),
            hit
        );
    }

    let json = Value::Object(vec![
        ("schema".to_string(), Value::Str("ftlbench-v1".to_string())),
        ("quick".to_string(), Value::Bool(opts.quick)),
        (
            "results".to_string(),
            Value::Array(records.iter().map(Record::to_json).collect()),
        ),
    ]);
    let text = serde_json::to_string_pretty(&json).expect("render JSON");
    if let Err(e) = std::fs::write(&opts.out, text + "\n") {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", opts.out);
}
