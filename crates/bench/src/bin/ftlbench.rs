//! `ftlbench` — std-only FTL benchmark harness.
//!
//! Thin CLI over [`tpftl_bench`]: runs the scenario matrix and writes a
//! machine-readable `BENCH_ftl.json` (`schema: "ftlbench-v1"`). See the
//! library crate for the scenarios and the JSON schema; see `bench-diff`
//! for the regression gate over two such reports.
//!
//! Usage:
//!
//! ```text
//! ftlbench [--quick] [--filter SUBSTR] [--out PATH]
//! ```
//!
//! * `--quick`  — fewer samples/ops; the CI smoke configuration.
//! * `--filter` — run only scenarios whose `scenario/ftl` id contains SUBSTR.
//! * `--out`    — JSON output path (default `BENCH_ftl.json`).

struct Opts {
    quick: bool,
    filter: Option<String>,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        filter: None,
        out: "BENCH_ftl.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--filter" => opts.filter = args.next(),
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: ftlbench [--quick] [--filter SUBSTR] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_opts();
    let records = tpftl_bench::run_all(opts.quick, opts.filter.as_deref());
    tpftl_bench::print_table(&records);
    let json = tpftl_bench::render_json(&records, opts.quick);
    let text = serde_json::to_string_pretty(&json).expect("render JSON");
    if let Err(e) = std::fs::write(&opts.out, text + "\n") {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", opts.out);
}
