//! `bench-diff` — the perf-regression gate.
//!
//! Runs the benchmark matrix (or loads a previously written report via
//! `--fresh`) and compares it against the committed `BENCH_ftl.json`
//! baseline. Exits nonzero when any `(scenario, ftl)` median regresses
//! by more than the threshold, or when a baseline scenario is missing
//! from the fresh run — so a perf regression, or a scenario silently
//! dropped from the harness, fails CI instead of landing unnoticed.
//!
//! Usage:
//!
//! ```text
//! bench-diff [--quick] [--baseline PATH] [--fresh PATH]
//!            [--threshold PCT] [--wa-threshold PCT] [--filter SUBSTR]
//!            [--exclude LIST] [--shards LIST] [--channels LIST]
//!            [--update] [--out PATH]
//! ```
//!
//! * `--quick`     — CI smoke sizing for the fresh run (fewer samples/ops).
//! * `--baseline`  — baseline report path (default `BENCH_ftl.json`).
//! * `--fresh`     — compare an existing `ftlbench-v1` report instead of
//!   running the benchmarks.
//! * `--threshold` — regression threshold in percent (default 15).
//! * `--wa-threshold` — write-amp regression threshold in percent
//!   (default 5; the GC-quality rows are deterministic, so this gate is
//!   much tighter than the wall-clock one). Write-amp rows are only
//!   compared when both reports were produced at the same sizing (their
//!   `quick` flags match): GC copy amplification depends on how long the
//!   device has aged, so quick-vs-full comparisons are meaningless.
//! * `--filter`    — restrict both sides to `scenario/ftl` ids containing
//!   SUBSTR.
//! * `--exclude`   — drop `scenario/ftl` ids containing any of the
//!   comma-separated patterns from both sides (for scenarios gated
//!   separately at a different threshold, e.g. `shard,chans`).
//! * `--shards`    — shard counts for the fresh run's sharded-replay rows
//!   (comma-separated powers of two; default `2,4`; `none` skips them).
//! * `--channels`  — channel counts for the fresh run's channel-sweep
//!   replay rows (`sweep` = `1,2,4,8`; default none).
//! * `--update`    — instead of failing, rewrite the regressed and new
//!   rows of the baseline file in place with their fresh measurements
//!   (all other rows keep their committed bytes) and exit 0. Combine with
//!   `--filter`/`--threshold` to refresh one stale row at a time.
//! * `--out`       — diff report JSON path (default `bench_diff.json`).

use serde_json::Value;

struct Opts {
    quick: bool,
    baseline: String,
    fresh: Option<String>,
    threshold: f64,
    wa_threshold: f64,
    filter: Option<String>,
    exclude: Option<String>,
    shards: Vec<u32>,
    channels: Vec<u32>,
    update: bool,
    out: String,
}

fn parse_channels(raw: &str) -> Vec<u32> {
    if raw == "none" {
        return Vec::new();
    }
    if raw == "sweep" {
        return tpftl_bench::SWEEP_CHANNEL_COUNTS.to_vec();
    }
    raw.split(',')
        .map(|part| {
            let n: u32 = part.trim().parse().unwrap_or_else(|_| {
                eprintln!("--channels needs comma-separated numbers, got {part:?}");
                std::process::exit(2);
            });
            if n == 0 {
                eprintln!("--channels entries must be positive");
                std::process::exit(2);
            }
            n
        })
        .collect()
}

fn parse_shards(raw: &str) -> Vec<u32> {
    if raw == "none" {
        return Vec::new();
    }
    raw.split(',')
        .map(|part| {
            let n: u32 = part.trim().parse().unwrap_or_else(|_| {
                eprintln!("--shards needs comma-separated numbers, got {part:?}");
                std::process::exit(2);
            });
            if !n.is_power_of_two() {
                eprintln!("--shards entries must be powers of two, got {n}");
                std::process::exit(2);
            }
            n
        })
        .collect()
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        baseline: "BENCH_ftl.json".to_string(),
        fresh: None,
        threshold: 15.0,
        wa_threshold: 5.0,
        filter: None,
        exclude: None,
        shards: tpftl_bench::DEFAULT_SHARD_COUNTS.to_vec(),
        channels: Vec::new(),
        update: false,
        out: "bench_diff.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--baseline" => opts.baseline = need(&mut args, "--baseline"),
            "--fresh" => opts.fresh = Some(need(&mut args, "--fresh")),
            "--threshold" => {
                let raw = need(&mut args, "--threshold");
                opts.threshold = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--threshold needs a number, got {raw:?}");
                    std::process::exit(2);
                });
            }
            "--wa-threshold" => {
                let raw = need(&mut args, "--wa-threshold");
                opts.wa_threshold = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--wa-threshold needs a number, got {raw:?}");
                    std::process::exit(2);
                });
            }
            "--filter" => opts.filter = Some(need(&mut args, "--filter")),
            "--exclude" => opts.exclude = Some(need(&mut args, "--exclude")),
            "--shards" => opts.shards = parse_shards(&need(&mut args, "--shards")),
            "--channels" => opts.channels = parse_channels(&need(&mut args, "--channels")),
            "--update" => opts.update = true,
            "--out" => opts.out = need(&mut args, "--out"),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: bench-diff [--quick] [--baseline PATH] [--fresh PATH] \
                     [--threshold PCT] [--wa-threshold PCT] [--filter SUBSTR] \
                     [--exclude LIST] [--shards LIST] [--channels LIST] \
                     [--update] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

fn load_report(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse {path}: {e:?}");
        std::process::exit(2);
    })
}

fn main() {
    let opts = parse_opts();
    let baseline = load_report(&opts.baseline);
    let fresh_name = opts.fresh.clone().unwrap_or_else(|| "live run".to_string());
    let fresh = match &opts.fresh {
        Some(path) => load_report(path),
        None => {
            eprintln!(
                "running fresh benchmarks ({} mode)...",
                if opts.quick { "quick" } else { "full" }
            );
            // No open-loop rows in a live gate run: their wall-clock
            // numbers are machine-load-dependent by design and are
            // excluded from the strict gate anyway (CI runs the
            // saturation sweep as a separate artifact job).
            let records = tpftl_bench::run_all(
                opts.quick,
                opts.filter.as_deref(),
                &opts.shards,
                &opts.channels,
                &[],
                &[],
            );
            tpftl_bench::render_json(&records, opts.quick)
        }
    };

    let report = tpftl_bench::diff::diff_reports_named(
        &baseline,
        &fresh,
        opts.threshold,
        opts.filter.as_deref(),
        opts.exclude.as_deref(),
        &format!("baseline {}", opts.baseline),
        &format!("fresh {fresh_name}"),
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    print!("{}", report.render_table());

    // GC-quality gate: only meaningful when both sides aged the device
    // equally long (same `quick` sizing); the live-run side's sizing is
    // opts.quick itself.
    let quick_of = |doc: &Value| doc.get("quick").and_then(Value::as_bool).unwrap_or(false);
    let same_sizing = quick_of(&baseline) == quick_of(&fresh);
    let wa_report = if same_sizing {
        let r = tpftl_bench::diff::diff_write_amp(
            &baseline,
            &fresh,
            opts.wa_threshold,
            opts.filter.as_deref(),
            &format!("baseline {}", opts.baseline),
            &format!("fresh {fresh_name}"),
        )
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        if !r.rows.is_empty() {
            print!("{}", r.render_table());
        }
        Some(r)
    } else {
        eprintln!("note: write-amp gate skipped (baseline and fresh sizing differ)");
        None
    };

    let text = serde_json::to_string_pretty(&report.to_json()).expect("render JSON");
    if let Err(e) = std::fs::write(&opts.out, text + "\n") {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", opts.out);

    if opts.update {
        // Rows only the write-amp gate flagged must be refreshed too, or a
        // deliberate workload retune could never be committed; fold them
        // into the ns-gate report as synthetic regressions before applying.
        let mut gate = report;
        if let Some(wa) = &wa_report {
            for r in wa.rows.iter().filter(|r| r.regressed && r.fresh.is_some()) {
                if !gate
                    .rows
                    .iter()
                    .any(|g| g.scenario == r.scenario && g.ftl == r.ftl)
                {
                    gate.rows.push(tpftl_bench::diff::DiffRow {
                        scenario: r.scenario.clone(),
                        ftl: r.ftl.clone(),
                        baseline_ns: None,
                        fresh_ns: None,
                        delta_pct: None,
                        status: tpftl_bench::diff::RowStatus::Regression,
                    });
                }
            }
        }
        let rewritten = gate
            .rows
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    tpftl_bench::diff::RowStatus::Regression | tpftl_bench::diff::RowStatus::New
                )
            })
            .count();
        let updated =
            tpftl_bench::diff::apply_update(&baseline, &fresh, &gate).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
        let text = serde_json::to_string_pretty(&updated).expect("render JSON");
        if let Err(e) = std::fs::write(&opts.baseline, text + "\n") {
            eprintln!("error: cannot write {}: {e}", opts.baseline);
            std::process::exit(1);
        }
        eprintln!(
            "updated {} ({rewritten} row(s) rewritten from the fresh run)",
            opts.baseline
        );
        return;
    }

    let wa_failed = wa_report.as_ref().is_some_and(|r| r.has_failure());
    if report.has_failure() || wa_failed {
        if wa_failed {
            eprintln!(
                "FAIL: GC copy amplification regressed over {}% vs {}",
                opts.wa_threshold, opts.baseline
            );
        }
        if report.has_failure() {
            eprintln!(
                "FAIL: regression over {}% (or missing scenario) vs {}",
                opts.threshold, opts.baseline
            );
        }
        std::process::exit(1);
    }
    eprintln!("OK: within {}% of {}", opts.threshold, opts.baseline);
}
