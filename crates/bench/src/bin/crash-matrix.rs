//! `crash-matrix` — power-loss crash matrix across FTLs and crash points.
//!
//! For each cached-mapping FTL, replays a fixed-seed synthetic trace,
//! injects a power loss at a set of flash-op indices spread over the run
//! (or at every index with `--exhaustive`), remounts via the crash-mount
//! recovery scan, and checks the durability oracle: no acknowledged write
//! lost, no mapping pointing at a dead or torn page, `recovery::verify`
//! clean. Writes a machine-readable `CRASH_matrix.json` and exits
//! non-zero if any crash point violates the invariant.
//!
//! Usage:
//!
//! ```text
//! crash-matrix [--quick] [--exhaustive] [--points N] [--requests N]
//!              [--seed N] [--threads N] [--backing DIR] [--out PATH]
//! ```
//!
//! * `--quick`      — small trace + few crash points; the CI smoke mode.
//! * `--exhaustive` — every op index (the test-suite sweep, but for all FTLs).
//! * `--points`     — evenly spaced crash points per FTL (default 256).
//! * `--requests`   — trace length in host requests (default 500).
//! * `--seed`       — trace seed (default 42).
//! * `--threads`    — worker threads for the crash-point sweep (default:
//!   one per core). Each crash point is an independent replay, so the
//!   results are merged in op-index order and the output is identical to
//!   a serial run.
//! * `--backing`    — run every crash point against a *file-backed* device
//!   whose image lives under DIR (use a tmpfs path for speed): the power
//!   cycle drops all RAM state and recovery remounts from the on-device
//!   layout alone. Default is the RAM device; outcomes are bit-identical
//!   either way.
//! * `--out`        — JSON output path (default `CRASH_matrix.json`).
//!
//! JSON schema (`schema: "crash-matrix-v1"`): per-FTL records with the
//! sweep horizon, crash points checked, aggregate recovery statistics,
//! and every violation (empty list = durable).

use std::path::PathBuf;

use serde_json::Value;
use tpftl_core::SsdConfig;
use tpftl_experiments::runner::{run_parallel_with, FtlKind};
use tpftl_flash::FaultPlan;
use tpftl_sim::{CrashHarness, CrashOutcome};
use tpftl_trace::SyntheticSpec;

/// The FTLs under test: every cached-mapping design in the tree.
const KINDS: [FtlKind; 5] = [
    FtlKind::Tpftl,
    FtlKind::Dftl,
    FtlKind::Sftl,
    FtlKind::Cdftl,
    FtlKind::Learned,
];

struct Opts {
    quick: bool,
    exhaustive: bool,
    points: u64,
    requests: usize,
    seed: u64,
    threads: Option<usize>,
    backing: Option<PathBuf>,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        exhaustive: false,
        points: 256,
        requests: 500,
        seed: 42,
        threads: None,
        backing: None,
        out: "CRASH_matrix.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    let next_num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a number");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--exhaustive" => opts.exhaustive = true,
            "--points" => opts.points = next_num(&mut args, "--points"),
            "--requests" => opts.requests = next_num(&mut args, "--requests") as usize,
            "--seed" => opts.seed = next_num(&mut args, "--seed"),
            "--threads" => {
                let n = next_num(&mut args, "--threads") as usize;
                if n == 0 {
                    eprintln!("--threads must be at least 1");
                    std::process::exit(2);
                }
                opts.threads = Some(n);
            }
            "--backing" => {
                let dir: PathBuf = args
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--backing needs a directory");
                        std::process::exit(2);
                    })
                    .into();
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("--backing: cannot create {}: {e}", dir.display());
                    std::process::exit(2);
                }
                opts.backing = Some(dir);
            }
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: crash-matrix [--quick] [--exhaustive] [--points N] \
                     [--requests N] [--seed N] [--threads N] [--backing DIR] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.quick {
        opts.points = opts.points.min(24);
        opts.requests = opts.requests.min(200);
    }
    opts
}

/// Small starved device with prefill high enough that GC runs mid-trace.
fn config() -> SsdConfig {
    let mut c = SsdConfig::paper_default(4 << 20);
    c.cache_bytes = c.gtd_bytes() + 10 * 1024;
    c.prefill_frac = 0.6;
    c
}

struct MatrixRow {
    ftl: String,
    horizon: u64,
    crash_points: u64,
    torn_pages: u64,
    duplicates_discarded: u64,
    mappings_recovered: u64,
    stale_cleared: u64,
    violations: Vec<String>,
}

impl MatrixRow {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("ftl".to_string(), Value::Str(self.ftl.clone())),
            ("horizon_ops".to_string(), Value::UInt(self.horizon)),
            ("crash_points".to_string(), Value::UInt(self.crash_points)),
            ("torn_pages".to_string(), Value::UInt(self.torn_pages)),
            (
                "duplicates_discarded".to_string(),
                Value::UInt(self.duplicates_discarded),
            ),
            (
                "mappings_recovered".to_string(),
                Value::UInt(self.mappings_recovered),
            ),
            ("stale_cleared".to_string(), Value::UInt(self.stale_cleared)),
            (
                "violations".to_string(),
                Value::Array(
                    self.violations
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn sweep(harness: &CrashHarness, kind: FtlKind, opts: &Opts) -> MatrixRow {
    let build = || kind.build(harness.config()).expect("FTL builds");
    let horizon = harness.baseline_ops(build()).expect("baseline run");
    let points: Vec<u64> = if opts.exhaustive {
        (0..horizon).collect()
    } else {
        // Evenly spaced, always including op 0 and the last op.
        let n = opts.points.clamp(1, horizon);
        (0..n).map(|i| i * (horizon - 1) / n.max(1)).collect()
    };

    let mut row = MatrixRow {
        ftl: build().name(),
        horizon,
        crash_points: points.len() as u64,
        torn_pages: 0,
        duplicates_discarded: 0,
        mappings_recovered: 0,
        stale_cleared: 0,
        violations: Vec::new(),
    };
    // Every crash point is an independent replay on its own device, so
    // the sweep fans out across workers; zipping the results back against
    // `points` keeps the aggregation (and violation order) identical to a
    // serial loop.
    let ftl_name = row.ftl.clone();
    let outcomes: Vec<CrashOutcome> = run_parallel_with(points.clone(), opts.threads, |&op| {
        let result = match &opts.backing {
            None => harness.run_to_crash(build(), FaultPlan::at_op(op)),
            Some(dir) => {
                // One image per worker thread (workers drain their shard
                // serially, so the path is never shared concurrently).
                let path = dir.join(format!(
                    "tpftl_crash_{}_{:?}_{}.img",
                    std::process::id(),
                    std::thread::current().id(),
                    ftl_name.replace(['(', ')', ' ', '-'], "_"),
                ));
                let out = harness.run_to_crash_backed(build(), FaultPlan::at_op(op), &path);
                let _ = std::fs::remove_file(&path);
                out
            }
        };
        result.unwrap_or_else(|e| panic!("{ftl_name} op {op}: harness error {e}"))
    });
    for (&op, out) in points.iter().zip(&outcomes) {
        row.torn_pages += out.recovery.torn_pages;
        row.duplicates_discarded +=
            out.recovery.duplicate_data_discarded + out.recovery.duplicate_translation_discarded;
        row.mappings_recovered += out.recovery.mappings_recovered;
        row.stale_cleared += out.recovery.stale_cleared;
        for v in &out.violations {
            row.violations.push(format!("op {op}: {v}"));
        }
        for e in &out.verify.errors {
            row.violations.push(format!("op {op}: verify: {e}"));
        }
    }
    row
}

fn main() {
    let opts = parse_opts();
    let config = config();
    let spec = SyntheticSpec {
        requests: opts.requests,
        address_bytes: 4 << 20,
        write_ratio: 0.7,
        mean_req_sectors: 8.0,
        ..SyntheticSpec::default()
    };
    let harness = CrashHarness::new(config, spec.iter(opts.seed).collect());

    println!(
        "{:<14} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "ftl", "horizon", "points", "torn", "dups", "recovered", "violations"
    );
    let mut rows = Vec::new();
    let mut failed = false;
    for kind in KINDS {
        let row = sweep(&harness, kind, &opts);
        println!(
            "{:<14} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
            row.ftl,
            row.horizon,
            row.crash_points,
            row.torn_pages,
            row.duplicates_discarded,
            row.mappings_recovered,
            row.violations.len()
        );
        for v in &row.violations {
            eprintln!("  VIOLATION [{}] {v}", row.ftl);
        }
        failed |= !row.violations.is_empty();
        rows.push(row);
    }

    let json = Value::Object(vec![
        (
            "schema".to_string(),
            Value::Str("crash-matrix-v1".to_string()),
        ),
        ("quick".to_string(), Value::Bool(opts.quick)),
        ("exhaustive".to_string(), Value::Bool(opts.exhaustive)),
        ("seed".to_string(), Value::UInt(opts.seed)),
        ("requests".to_string(), Value::UInt(opts.requests as u64)),
        (
            "file_backed".to_string(),
            Value::Bool(opts.backing.is_some()),
        ),
        (
            "results".to_string(),
            Value::Array(rows.iter().map(MatrixRow::to_json).collect()),
        ),
    ]);
    let text = serde_json::to_string_pretty(&json).expect("render JSON");
    if let Err(e) = std::fs::write(&opts.out, text + "\n") {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", opts.out);
    if failed {
        eprintln!("crash matrix found durability violations");
        std::process::exit(1);
    }
}
