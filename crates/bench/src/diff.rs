//! Comparison of two `ftlbench-v1` reports — the perf-regression gate.
//!
//! The baseline is the committed `BENCH_ftl.json`; the fresh side is
//! either a live run or a previously written report. A row regresses
//! when its fresh median exceeds the baseline median by more than the
//! threshold percentage; a baseline row absent from the fresh report is
//! also a failure (a silently dropped scenario must not pass the gate).
//! Fresh rows with no baseline counterpart are reported as `new` and do
//! not fail the gate, so adding a scenario does not require a lockstep
//! baseline refresh.

use serde_json::Value;

/// Verdict for one `(scenario, ftl)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// Within the threshold (including improvements).
    Ok,
    /// Fresh median exceeds baseline by more than the threshold.
    Regression,
    /// Present only in the fresh report.
    New,
    /// Present only in the baseline — the scenario silently disappeared.
    Missing,
}

impl RowStatus {
    fn as_str(self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::Regression => "REGRESSION",
            RowStatus::New => "new",
            RowStatus::Missing => "MISSING",
        }
    }
}

/// One compared `(scenario, ftl)` pair.
#[derive(Debug, Clone)]
pub struct DiffRow {
    pub scenario: String,
    pub ftl: String,
    pub baseline_ns: Option<f64>,
    pub fresh_ns: Option<f64>,
    /// `(fresh - baseline) / baseline * 100`; `None` for one-sided rows.
    pub delta_pct: Option<f64>,
    pub status: RowStatus,
}

/// The full comparison, ready to render or serialize.
#[derive(Debug)]
pub struct DiffReport {
    pub threshold_pct: f64,
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// True when any row regressed or went missing — the gate's exit code.
    pub fn has_failure(&self) -> bool {
        self.rows
            .iter()
            .any(|r| matches!(r.status, RowStatus::Regression | RowStatus::Missing))
    }

    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::Str("ftlbench-diff-v1".to_string()),
            ),
            (
                "threshold_pct".to_string(),
                Value::Float(self.threshold_pct),
            ),
            ("failed".to_string(), Value::Bool(self.has_failure())),
            (
                "rows".to_string(),
                Value::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            let opt = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
                            Value::Object(vec![
                                ("scenario".to_string(), Value::Str(r.scenario.clone())),
                                ("ftl".to_string(), Value::Str(r.ftl.clone())),
                                ("baseline_ns_per_op".to_string(), opt(r.baseline_ns)),
                                ("fresh_ns_per_op".to_string(), opt(r.fresh_ns)),
                                ("delta_pct".to_string(), opt(r.delta_pct)),
                                (
                                    "status".to_string(),
                                    Value::Str(r.status.as_str().to_string()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the human-readable comparison table.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<26} {:<14} {:>12} {:>12} {:>8}  {}\n",
            "scenario", "ftl", "baseline", "fresh", "delta", "status"
        );
        let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |n| format!("{n:.1}"));
        for r in &self.rows {
            let delta = r
                .delta_pct
                .map_or_else(|| "-".to_string(), |d| format!("{d:+.1}%"));
            out.push_str(&format!(
                "{:<26} {:<14} {:>12} {:>12} {:>8}  {}\n",
                r.scenario,
                r.ftl,
                fmt(r.baseline_ns),
                fmt(r.fresh_ns),
                delta,
                r.status.as_str()
            ));
        }
        out
    }
}

/// `(scenario, ftl)` row key paired with its median ns/op.
type IndexedRow = ((String, String), f64);

/// Extracts `(scenario, ftl) -> median ns_per_op` from an `ftlbench-v1`
/// document, in document order. `name` labels the document (which file or
/// side) so a malformed report is identifiable from the error alone.
fn index_report(report: &Value, name: &str) -> Result<Vec<IndexedRow>, String> {
    let results = report
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{name}: report has no `results` array"))?;
    results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            // Identify the offending record by scenario name when it has
            // one, by position otherwise.
            let ident = || match r.get("scenario").and_then(Value::as_str) {
                Some(s) => format!("{name}: result record {i} (scenario `{s}`)"),
                None => format!("{name}: result record {i}"),
            };
            let field = |k: &str| {
                r.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("{} missing `{k}`", ident()))
            };
            let ns = r
                .get("ns_per_op")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{} missing `ns_per_op`", ident()))?;
            Ok(((field("scenario")?, field("ftl")?), ns))
        })
        .collect()
}

/// Compares `fresh` against `baseline` with the given regression
/// threshold (percent). `filter` restricts both sides to rows whose
/// `scenario/ftl` id contains it, so a filtered fresh run is not
/// penalized for the baseline rows it never attempted.
pub fn diff_reports(
    baseline: &Value,
    fresh: &Value,
    threshold_pct: f64,
    filter: Option<&str>,
) -> Result<DiffReport, String> {
    diff_reports_named(
        baseline,
        fresh,
        threshold_pct,
        filter,
        None,
        "baseline",
        "fresh",
    )
}

/// [`diff_reports`] with an exclusion list and explicit document labels
/// (typically file paths) so errors name the offending report. `exclude`
/// is a comma-separated list of patterns; a row whose `scenario/ftl` id
/// contains any of them is dropped from *both* sides — for scenarios
/// gated separately (e.g. `shard,chans`: the sharded-replay and
/// channel-sweep rows, whose wall clock on an oversubscribed CI runner is
/// too noisy for the strict threshold that the single-queue rows hold).
pub fn diff_reports_named(
    baseline: &Value,
    fresh: &Value,
    threshold_pct: f64,
    filter: Option<&str>,
    exclude: Option<&str>,
    baseline_name: &str,
    fresh_name: &str,
) -> Result<DiffReport, String> {
    // Validate the exclusion list up front: a stray comma (`"shard,,chan"`)
    // yields an empty item, which is always a typo — rejecting it loudly
    // beats silently ignoring a pattern the caller thought was active.
    let exclude_pats: Vec<&str> = match exclude {
        None => Vec::new(),
        Some(list) => {
            let pats: Vec<&str> = list.split(',').map(str::trim).collect();
            if pats.iter().any(|p| p.is_empty()) {
                return Err(format!(
                    "exclude list {list:?} contains an empty pattern \
                     (stray leading, trailing, or doubled comma?)"
                ));
            }
            pats
        }
    };
    let keep = |key: &(String, String)| {
        let id = format!("{}/{}", key.0, key.1);
        filter.is_none_or(|f| id.contains(f)) && !exclude_pats.iter().any(|pat| id.contains(pat))
    };
    let base: Vec<_> = index_report(baseline, baseline_name)?
        .into_iter()
        .filter(|(k, _)| keep(k))
        .collect();
    let new: Vec<_> = index_report(fresh, fresh_name)?
        .into_iter()
        .filter(|(k, _)| keep(k))
        .collect();

    let mut rows = Vec::new();
    for ((scenario, ftl), base_ns) in &base {
        let fresh_ns = new
            .iter()
            .find(|((s, f), _)| s == scenario && f == ftl)
            .map(|&(_, ns)| ns);
        let (delta_pct, status) = match fresh_ns {
            Some(ns) => {
                let delta = (ns - base_ns) / base_ns * 100.0;
                let status = if delta > threshold_pct {
                    RowStatus::Regression
                } else {
                    RowStatus::Ok
                };
                (Some(delta), status)
            }
            None => (None, RowStatus::Missing),
        };
        rows.push(DiffRow {
            scenario: scenario.clone(),
            ftl: ftl.clone(),
            baseline_ns: Some(*base_ns),
            fresh_ns,
            delta_pct,
            status,
        });
    }
    for ((scenario, ftl), ns) in &new {
        if !base.iter().any(|((s, f), _)| s == scenario && f == ftl) {
            rows.push(DiffRow {
                scenario: scenario.clone(),
                ftl: ftl.clone(),
                baseline_ns: None,
                fresh_ns: Some(*ns),
                delta_pct: None,
                status: RowStatus::New,
            });
        }
    }
    Ok(DiffReport {
        threshold_pct,
        rows,
    })
}

/// One compared GC-quality row of the write-amp gate.
#[derive(Debug, Clone)]
pub struct WriteAmpRow {
    pub scenario: String,
    pub ftl: String,
    pub baseline: f64,
    /// `None` when the fresh report dropped the row.
    pub fresh: Option<f64>,
    pub delta_pct: Option<f64>,
    pub regressed: bool,
}

/// The write-amp comparison: the GC-quality counterpart of the ns/op gate.
#[derive(Debug)]
pub struct WriteAmpReport {
    pub threshold_pct: f64,
    pub rows: Vec<WriteAmpRow>,
}

impl WriteAmpReport {
    /// True when any row's GC copy amplification regressed or vanished.
    pub fn has_failure(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// Renders the human-readable write-amp table.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<26} {:<14} {:>9} {:>9} {:>8}  {}\n",
            "scenario", "ftl", "base wa", "fresh wa", "delta", "status"
        );
        for r in &self.rows {
            let fresh = r
                .fresh
                .map_or_else(|| "-".to_string(), |v| format!("{v:.3}"));
            let delta = r
                .delta_pct
                .map_or_else(|| "-".to_string(), |d| format!("{d:+.1}%"));
            let status = match (r.regressed, r.fresh) {
                (false, _) => "ok",
                (true, Some(_)) => "REGRESSION",
                (true, None) => "MISSING",
            };
            out.push_str(&format!(
                "{:<26} {:<14} {:>9.3} {:>9} {:>8}  {status}\n",
                r.scenario, r.ftl, r.baseline, fresh, delta
            ));
        }
        out
    }
}

/// Extracts `(scenario, ftl) -> write_amp` from the rows that carry the
/// GC copy-amplification payload (the aging/tenant GC-quality rows).
fn index_write_amp(report: &Value, name: &str) -> Result<Vec<IndexedRow>, String> {
    let results = report
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{name}: report has no `results` array"))?;
    Ok(results
        .iter()
        .filter_map(|r| {
            let (scenario, ftl) = record_key(r)?;
            let wa = r.get("write_amp")?.as_f64()?;
            Some(((scenario.to_string(), ftl.to_string()), wa))
        })
        .collect())
}

/// Dedicated write-amp regression gate: every baseline row carrying a
/// `write_amp` field must stay within `threshold_pct` of its committed GC
/// copy amplification (missing rows fail, fresh-only rows are ignored as
/// new). The simulation is deterministic, so unlike the wall-clock ns/op
/// gate this threshold can be tight — it exists to absorb intentional
/// small workload retunes, not machine noise. Reports with no write-amp
/// rows produce an empty (passing) result, so the gate is safe to run
/// unconditionally.
pub fn diff_write_amp(
    baseline: &Value,
    fresh: &Value,
    threshold_pct: f64,
    filter: Option<&str>,
    baseline_name: &str,
    fresh_name: &str,
) -> Result<WriteAmpReport, String> {
    let keep =
        |key: &(String, String)| filter.is_none_or(|f| format!("{}/{}", key.0, key.1).contains(f));
    let base: Vec<_> = index_write_amp(baseline, baseline_name)?
        .into_iter()
        .filter(|(k, _)| keep(k))
        .collect();
    let new = index_write_amp(fresh, fresh_name)?;
    let rows = base
        .into_iter()
        .map(|((scenario, ftl), baseline)| {
            let fresh = new
                .iter()
                .find(|((s, f), _)| *s == scenario && *f == ftl)
                .map(|&(_, wa)| wa);
            let (delta_pct, regressed) = match fresh {
                // An absolute floor of 0.01 keeps near-zero baselines from
                // turning round-off into a percentage explosion.
                Some(wa) => {
                    let delta = (wa - baseline) / baseline.max(0.01) * 100.0;
                    (Some(delta), delta > threshold_pct)
                }
                None => (None, true),
            };
            WriteAmpRow {
                scenario,
                ftl,
                baseline,
                fresh,
                delta_pct,
                regressed,
            }
        })
        .collect();
    Ok(WriteAmpReport {
        threshold_pct,
        rows,
    })
}

/// The `(scenario, ftl)` key of one result record, if it has both fields.
fn record_key(record: &Value) -> Option<(&str, &str)> {
    Some((
        record.get("scenario")?.as_str()?,
        record.get("ftl")?.as_str()?,
    ))
}

/// Implements `bench-diff --update`: returns a copy of `baseline` in which
/// every row the diff flagged `Regression` or `New` is replaced by (or, for
/// new rows, appended from) its full fresh record. Rows the diff left `Ok`
/// — and rows it never saw because of `--filter`/`--exclude` — keep their
/// baseline values untouched, so refreshing one drifted row does not churn
/// the rest of the committed baseline. Refreshing a below-threshold drift
/// is a matter of tightening `--threshold` (and usually `--filter`) until
/// the stale row regresses.
pub fn apply_update(baseline: &Value, fresh: &Value, report: &DiffReport) -> Result<Value, String> {
    let stale: Vec<(&str, &str)> = report
        .rows
        .iter()
        .filter(|r| matches!(r.status, RowStatus::Regression | RowStatus::New))
        .map(|r| (r.scenario.as_str(), r.ftl.as_str()))
        .collect();
    let fresh_results = fresh
        .get("results")
        .and_then(Value::as_array)
        .ok_or("fresh report has no `results` array")?;
    let fresh_record = |key: (&str, &str)| {
        fresh_results
            .iter()
            .find(|r| record_key(r) == Some(key))
            .cloned()
            .ok_or_else(|| format!("fresh report lost row {}/{}", key.0, key.1))
    };

    let Value::Object(fields) = baseline else {
        return Err("baseline report is not an object".to_string());
    };
    let mut updated = Vec::with_capacity(fields.len());
    for (name, value) in fields {
        if name != "results" {
            updated.push((name.clone(), value.clone()));
            continue;
        }
        let records = value
            .as_array()
            .ok_or("baseline `results` is not an array")?;
        let mut new_records = Vec::with_capacity(records.len());
        for record in records {
            match record_key(record) {
                Some(key) if stale.contains(&key) => new_records.push(fresh_record(key)?),
                _ => new_records.push(record.clone()),
            }
        }
        // Brand-new rows (no baseline counterpart) append in fresh order.
        for record in fresh_results {
            if let Some(key) = record_key(record) {
                if stale.contains(&key) && !records.iter().any(|r| record_key(r) == Some(key)) {
                    new_records.push(record.clone());
                }
            }
        }
        updated.push((name.clone(), Value::Array(new_records)));
    }
    Ok(Value::Object(updated))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, &str, f64)]) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::Str("ftlbench-v1".to_string())),
            (
                "results".to_string(),
                Value::Array(
                    rows.iter()
                        .map(|(s, f, ns)| {
                            Value::Object(vec![
                                ("scenario".to_string(), Value::Str(s.to_string())),
                                ("ftl".to_string(), Value::Str(f.to_string())),
                                ("ns_per_op".to_string(), Value::Float(*ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The negative test for the gate: a synthetic +50% regression on one
    /// row must fail the report while the in-threshold rows stay ok.
    #[test]
    fn synthetic_regression_fails_the_gate() {
        let base = report(&[("miss_scan", "TPFTL", 100.0), ("write_gc", "TPFTL", 80.0)]);
        let fresh = report(&[
            ("miss_scan", "TPFTL", 150.0), // +50%: regression
            ("write_gc", "TPFTL", 88.0),   // +10%: within threshold
        ]);
        let d = diff_reports(&base, &fresh, 15.0, None).unwrap();
        assert!(d.has_failure());
        assert_eq!(d.rows[0].status, RowStatus::Regression);
        assert!((d.rows[0].delta_pct.unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(d.rows[1].status, RowStatus::Ok);
    }

    #[test]
    fn improvement_and_exact_threshold_pass() {
        let base = report(&[("a", "x", 100.0), ("b", "x", 100.0)]);
        let fresh = report(&[("a", "x", 40.0), ("b", "x", 115.0)]);
        let d = diff_reports(&base, &fresh, 15.0, None).unwrap();
        assert!(!d.has_failure());
        assert!(d.rows.iter().all(|r| r.status == RowStatus::Ok));
    }

    #[test]
    fn missing_scenario_fails_but_new_scenario_passes() {
        let base = report(&[("a", "x", 100.0)]);
        let fresh = report(&[("b", "x", 10.0)]);
        let d = diff_reports(&base, &fresh, 15.0, None).unwrap();
        assert!(d.has_failure());
        assert_eq!(d.rows[0].status, RowStatus::Missing);
        assert_eq!(d.rows[1].status, RowStatus::New);

        let only_new = diff_reports(&report(&[]), &fresh, 15.0, None).unwrap();
        assert!(!only_new.has_failure());
    }

    #[test]
    fn filter_restricts_both_sides() {
        let base = report(&[("a", "x", 100.0), ("b", "x", 100.0)]);
        let fresh = report(&[("a", "x", 101.0)]); // "b" never attempted
        let d = diff_reports(&base, &fresh, 15.0, Some("a/")).unwrap();
        assert!(!d.has_failure());
        assert_eq!(d.rows.len(), 1);
    }

    #[test]
    fn exclude_drops_rows_from_both_sides() {
        let base = report(&[("a", "x", 100.0), ("a_shards4", "x", 100.0)]);
        let fresh = report(&[
            ("a", "x", 101.0),
            ("a_shards4", "x", 300.0), // would regress, but excluded
            ("b_shards2", "x", 10.0),  // would be `new`, but excluded
        ]);
        let d = diff_reports_named(&base, &fresh, 15.0, None, Some("shards"), "b", "f").unwrap();
        assert!(!d.has_failure());
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0].scenario, "a");
    }

    #[test]
    fn exclude_takes_a_comma_separated_list() {
        let base = report(&[("a", "x", 100.0), ("a_shards4", "x", 100.0)]);
        let fresh = report(&[
            ("a", "x", 101.0),
            ("a_shards4", "x", 300.0),     // excluded via "shards"
            ("replay_chans4", "x", 300.0), // excluded via "chans"
        ]);
        let d =
            diff_reports_named(&base, &fresh, 15.0, None, Some("shards,chans"), "b", "f").unwrap();
        assert!(!d.has_failure());
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0].scenario, "a");
    }

    #[test]
    fn exclude_rejects_empty_patterns() {
        let base = report(&[("a", "x", 100.0)]);
        let fresh = report(&[("a", "x", 101.0)]);
        let err = diff_reports_named(&base, &fresh, 15.0, None, Some("shard,,chan"), "b", "f")
            .unwrap_err();
        assert!(err.contains("shard,,chan"), "got: {err}");
        assert!(err.contains("empty pattern"), "got: {err}");
        // A whitespace-only item trims to empty and is rejected too.
        let err =
            diff_reports_named(&base, &fresh, 15.0, None, Some("shard, "), "b", "f").unwrap_err();
        assert!(err.contains("empty pattern"), "got: {err}");
        // Items are trimmed, so a spaced-out but well-formed list works.
        let ok = diff_reports_named(&base, &fresh, 15.0, None, Some(" shard , chan "), "b", "f")
            .unwrap();
        assert!(!ok.has_failure());
        assert_eq!(ok.rows.len(), 1);
    }

    #[test]
    fn update_rewrites_only_regressed_and_new_rows() {
        let base = report(&[
            ("a", "x", 100.0), // drifts +50%: rewritten
            ("b", "x", 80.0),  // within threshold: kept byte for byte
        ]);
        let fresh = report(&[
            ("a", "x", 150.0),
            ("b", "x", 85.0),
            ("c", "x", 10.0), // new: appended
        ]);
        let d = diff_reports(&base, &fresh, 15.0, None).unwrap();
        let updated = apply_update(&base, &fresh, &d).unwrap();
        let rows = updated.get("results").unwrap().as_array().unwrap();
        let ns = |i: usize| rows[i].get("ns_per_op").unwrap().as_f64().unwrap();
        let scenario = |i: usize| rows[i].get("scenario").unwrap().as_str().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!((scenario(0), ns(0)), ("a", 150.0));
        assert_eq!((scenario(1), ns(1)), ("b", 80.0), "ok row untouched");
        assert_eq!((scenario(2), ns(2)), ("c", 10.0), "new row appended");
        // The updated baseline passes the gate against the same fresh run.
        let regate = diff_reports(&updated, &fresh, 15.0, None).unwrap();
        assert!(!regate.has_failure());
    }

    /// Report builder whose rows also carry the GC-quality payload.
    fn gc_report(rows: &[(&str, &str, f64, f64)]) -> Value {
        Value::Object(vec![(
            "results".to_string(),
            Value::Array(
                rows.iter()
                    .map(|(s, f, ns, wa)| {
                        Value::Object(vec![
                            ("scenario".to_string(), Value::Str(s.to_string())),
                            ("ftl".to_string(), Value::Str(f.to_string())),
                            ("ns_per_op".to_string(), Value::Float(*ns)),
                            ("write_amp".to_string(), Value::Float(*wa)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    #[test]
    fn write_amp_gate_catches_copy_regressions() {
        let base = gc_report(&[
            ("aging_write_gc_multi", "TPFTL", 500.0, 0.5),
            ("aging_write_gc_greedy", "TPFTL", 500.0, 1.0),
        ]);
        let fresh = gc_report(&[
            ("aging_write_gc_multi", "TPFTL", 900.0, 0.8), // +60% wa: fails
            ("aging_write_gc_greedy", "TPFTL", 400.0, 1.02), // +2%: ok
        ]);
        let d = diff_write_amp(&base, &fresh, 5.0, None, "b", "f").unwrap();
        assert!(d.has_failure());
        assert!(d.rows[0].regressed);
        assert!((d.rows[0].delta_pct.unwrap() - 60.0).abs() < 1e-9);
        assert!(!d.rows[1].regressed);
        // The wall-clock change alone never trips this gate; only the
        // write_amp payload does.
        let better = gc_report(&[
            ("aging_write_gc_multi", "TPFTL", 9000.0, 0.4),
            ("aging_write_gc_greedy", "TPFTL", 9000.0, 1.0),
        ]);
        let d = diff_write_amp(&base, &better, 5.0, None, "b", "f").unwrap();
        assert!(!d.has_failure());
    }

    #[test]
    fn write_amp_gate_ignores_rows_without_the_payload() {
        // Plain latency rows (no write_amp field) are invisible to the
        // gate, so ordinary reports pass vacuously...
        let base = report(&[("miss_scan", "TPFTL", 100.0)]);
        let fresh = report(&[("miss_scan", "TPFTL", 400.0)]);
        let d = diff_write_amp(&base, &fresh, 5.0, None, "b", "f").unwrap();
        assert!(d.rows.is_empty());
        assert!(!d.has_failure());
        // ...but a baseline GC-quality row silently dropped from the
        // fresh report fails, exactly like the ns/op gate's MISSING.
        let base = gc_report(&[("tenant_mix_multi", "DFTL", 500.0, 0.9)]);
        let d = diff_write_amp(&base, &fresh, 5.0, None, "b", "f").unwrap();
        assert!(d.has_failure());
        assert!(d.rows[0].fresh.is_none());
    }

    #[test]
    fn malformed_report_is_an_error() {
        let bad = Value::Object(vec![("schema".to_string(), Value::Str("x".to_string()))]);
        assert!(diff_reports(&bad, &report(&[]), 15.0, None).is_err());
    }

    #[test]
    fn errors_name_the_offending_report_and_record() {
        let bad = Value::Object(vec![("schema".to_string(), Value::Str("x".to_string()))]);
        let err = diff_reports_named(
            &bad,
            &report(&[]),
            15.0,
            None,
            None,
            "BENCH_ftl.json",
            "fresh",
        )
        .unwrap_err();
        assert!(err.contains("BENCH_ftl.json"), "got: {err}");

        // A record missing `ns_per_op` is identified by side, position,
        // and scenario name.
        let broken = Value::Object(vec![(
            "results".to_string(),
            Value::Array(vec![
                Value::Object(vec![
                    ("scenario".to_string(), Value::Str("a".to_string())),
                    ("ftl".to_string(), Value::Str("x".to_string())),
                    ("ns_per_op".to_string(), Value::Float(1.0)),
                ]),
                Value::Object(vec![(
                    "scenario".to_string(),
                    Value::Str("miss_scan".to_string()),
                )]),
            ]),
        )]);
        let err = diff_reports_named(
            &report(&[]),
            &broken,
            15.0,
            None,
            None,
            "base",
            "fresh.json",
        )
        .unwrap_err();
        assert!(err.contains("fresh.json"), "got: {err}");
        assert!(err.contains("record 1"), "got: {err}");
        assert!(err.contains("miss_scan"), "got: {err}");
        assert!(err.contains("ns_per_op"), "got: {err}");
    }
}
