//! Component microbenchmarks and design-choice ablations called out in
//! DESIGN.md:
//!
//! * `LruList` primitive operations;
//! * the page-level hotness index: balanced tree (our choice) vs the naive
//!   linear repositioning a literal reading of the paper implies;
//! * the Zipf-region sampler and the synthetic trace generator;
//! * S-FTL's incremental run-count update vs a full recount.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpftl_core::lru::LruList;
use tpftl_trace::presets::Workload;
use tpftl_trace::ZipfRegions;

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_list");
    g.throughput(Throughput::Elements(1));
    let mut list = LruList::new();
    let idxs: Vec<_> = (0..10_000u32).map(|i| list.push_mru(i)).collect();
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_function("touch_random", |b| {
        b.iter(|| {
            let i = rng.gen_range(0..idxs.len());
            list.touch(idxs[i]);
        })
    });
    g.bench_function("push_pop_cycle", |b| {
        b.iter(|| {
            let idx = list.push_mru(u32::MAX);
            list.remove(idx);
        })
    });
    g.finish();
}

/// Hotness-index ablation. TPFTL orders TP nodes by average hotness; we
/// keep the order in a `BTreeSet` keyed by (hotness, vtpn). The alternative
/// is a plain vector re-sorted by linear repositioning on every access —
/// O(n) per update. This bench quantifies the gap at realistic node counts
/// (the MSR configuration caches up to ~4096 translation pages).
fn bench_hotness_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotness_index_update");
    g.throughput(Throughput::Elements(1));
    for n in [128usize, 1024, 4096] {
        // Balanced tree: remove + insert, O(log n). Like the real TPFTL
        // code, each node remembers its current key, so no search is
        // needed to locate it.
        let mut tree: BTreeSet<(u64, u32)> = (0..n as u32).map(|v| (v as u64 * 10, v)).collect();
        let mut keys: Vec<u64> = (0..n as u64).map(|v| v * 10).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut clock: u64 = 1_000_000;
        g.bench_with_input(BenchmarkId::new("btree", n), &n, |b, &n| {
            b.iter(|| {
                let v = rng.gen_range(0..n as u32);
                tree.remove(&(keys[v as usize], v));
                clock += 1;
                keys[v as usize] = clock;
                tree.insert((clock, v));
            })
        });
        // Linear list repositioning, O(n).
        let mut vec: Vec<(u64, u32)> = (0..n as u32).map(|v| (v as u64 * 10, v)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut clock: u64 = 1_000_000;
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |b, &n| {
            b.iter(|| {
                let v = rng.gen_range(0..n as u32);
                let pos = vec.iter().position(|&(_, vv)| vv == v).expect("present");
                let mut node = vec.remove(pos);
                clock += 1;
                node.0 = clock;
                let insert_at = vec.partition_point(|&(k, _)| k < node.0);
                vec.insert(insert_at, node);
            })
        });
    }
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let zipf = ZipfRegions::new(1 << 22, 8192, 1.3, 1.0, &mut rng);
    let mut g = c.benchmark_group("zipf_sampler");
    g.throughput(Throughput::Elements(1));
    g.bench_function("sample", |b| b.iter(|| zipf.sample(&mut rng)));
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generator");
    for w in [Workload::Financial1, Workload::MsrTs] {
        let spec = w.spec(10_000);
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(BenchmarkId::from_parameter(w.name()), &spec, |b, spec| {
            b.iter(|| spec.generate(7))
        });
    }
    g.finish();
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(30);
    targets = bench_lru, bench_hotness_index, bench_zipf, bench_generator
);
criterion_main!(components);
