//! Per-FTL microbenchmarks: address-translation throughput on the hit
//! path, the miss/eviction path, and the GC-heavy write path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpftl_core::driver;
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::{AccessCtx, Cdftl, Dftl, Ftl, OptimalFtl, Sftl, TpFtl, TpftlConfig};
use tpftl_core::SsdConfig;

const LOGICAL: u64 = 64 << 20; // 16 K pages, 16 translation pages

fn build(kind: &str, config: &SsdConfig) -> Box<dyn Ftl> {
    match kind {
        "optimal" => Box::new(OptimalFtl::new(config)),
        "dftl" => Box::new(Dftl::new(config).expect("budget")),
        "sftl" => Box::new(Sftl::new(config).expect("budget")),
        "cdftl" => Box::new(Cdftl::new(config).expect("budget")),
        "tpftl" => Box::new(TpFtl::new(config, TpftlConfig::full()).expect("budget")),
        other => unreachable!("unknown FTL {other}"),
    }
}

fn config() -> SsdConfig {
    let mut c = SsdConfig::paper_default(LOGICAL);
    c.cache_bytes = c.gtd_bytes() + 16 * 1024;
    c
}

/// Steady-state hit path: one hot entry translated repeatedly.
fn bench_hit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate_hit");
    g.throughput(Throughput::Elements(1));
    for kind in ["optimal", "dftl", "sftl", "cdftl", "tpftl"] {
        let cfg = config();
        let mut ftl = build(kind, &cfg);
        let mut env = SsdEnv::new(cfg).expect("env");
        driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");
        driver::serve_page_access(ftl.as_mut(), &mut env, 42, AccessCtx::single(true))
            .expect("warm");
        g.bench_with_input(BenchmarkId::from_parameter(kind), kind, |b, _| {
            b.iter(|| {
                ftl.translate(&mut env, 42, &AccessCtx::single(false))
                    .expect("hit")
            });
        });
    }
    g.finish();
}

/// Miss/eviction path: a strided scan that defeats every cache.
fn bench_miss_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate_miss_scan");
    g.throughput(Throughput::Elements(256));
    for kind in ["dftl", "sftl", "cdftl", "tpftl"] {
        let cfg = config();
        let mut ftl = build(kind, &cfg);
        let mut env = SsdEnv::new(cfg.clone()).expect("env");
        driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");
        let pages = cfg.logical_pages() as u32;
        let mut cursor: u32 = 0;
        g.bench_with_input(BenchmarkId::from_parameter(kind), kind, |b, _| {
            b.iter(|| {
                for _ in 0..256 {
                    cursor = (cursor.wrapping_add(4099)) % pages;
                    driver::serve_page_access(
                        ftl.as_mut(),
                        &mut env,
                        cursor,
                        AccessCtx::single(false),
                    )
                    .expect("serve");
                }
            });
        });
    }
    g.finish();
}

/// Write path under GC pressure: hot overwrites on a pre-filled device.
fn bench_write_gc_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_with_gc");
    g.throughput(Throughput::Elements(256));
    for kind in ["optimal", "dftl", "tpftl"] {
        let mut cfg = config();
        cfg.prefill_frac = 1.0;
        let mut ftl = build(kind, &cfg);
        let mut env = SsdEnv::new(cfg.clone()).expect("env");
        driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");
        let pages = cfg.logical_pages() as u32;
        let mut cursor: u32 = 0;
        g.bench_with_input(BenchmarkId::from_parameter(kind), kind, |b, _| {
            b.iter(|| {
                for _ in 0..256 {
                    cursor = (cursor.wrapping_add(127)) % (pages / 8);
                    driver::serve_page_access(
                        ftl.as_mut(),
                        &mut env,
                        cursor,
                        AccessCtx::single(true),
                    )
                    .expect("serve");
                }
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_hit_path, bench_miss_path, bench_write_gc_path
);
criterion_main!(micro);
