//! Criterion benches, one group per paper table/figure family.
//!
//! Each bench times the experiment kernel at a reduced scale (the full
//! regeneration is the `repro` binary's job); together they keep every
//! experiment path exercised and allow regression-tracking the simulator's
//! throughput per experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpftl_experiments::runner::{device_config, run_one, FtlKind, Scale};
use tpftl_experiments::{ablation, cachesweep, fig1, fig10, fig2, fig6, models, table2, table4};
use tpftl_trace::presets::Workload;

/// Tiny but non-trivial scale: 4,000 / 5,000 requests per run.
const SCALE: Scale = Scale(0.002);

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/dftl_vs_optimal", |b| b.iter(|| table2::run(SCALE)));
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4/trace_characteristics", |b| {
        b.iter(|| table4::run(SCALE))
    });
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1/cache_distribution", |b| b.iter(|| fig1::run(SCALE)));
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2/spatial_locality", |b| b.iter(|| fig2::run(SCALE)));
}

/// Figure 6: bench each (workload, FTL) cell separately so per-FTL
/// simulation cost is visible, plus the whole grid.
fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    for workload in [Workload::Financial1, Workload::MsrTs] {
        for kind in FtlKind::FIG6 {
            let config = device_config(workload);
            let id = BenchmarkId::new(
                workload.name(),
                format!("{:?}", kind).replace("TpftlVariant", "TpftlV"),
            );
            g.bench_with_input(id, &(workload, kind), |b, &(w, k)| {
                b.iter(|| run_one(k, w, SCALE, &config).expect("run"));
            });
        }
    }
    g.finish();
    c.bench_function("fig6/full_grid", |b| b.iter(|| fig6::run(SCALE, false)));
}

fn bench_fig7_8(c: &mut Criterion) {
    c.bench_function("fig7_8/ablation", |b| b.iter(|| ablation::run(SCALE)));
}

fn bench_fig8c_9(c: &mut Criterion) {
    // The sweep's largest point holds a full mapping table; bench one
    // representative small and one large fraction instead of all eight.
    let mut g = c.benchmark_group("fig8c_9");
    for frac in [1.0 / 128.0, 1.0 / 8.0] {
        let w = Workload::Financial1;
        let config = device_config(w).with_cache_fraction(frac);
        g.bench_with_input(
            BenchmarkId::new("tpftl_cache_fraction", format!("1/{:.0}", 1.0 / frac)),
            &frac,
            |b, _| {
                b.iter(|| run_one(FtlKind::Tpftl, w, SCALE, &config).expect("run"));
            },
        );
    }
    g.finish();
    c.bench_function("fig8c_9/full_sweep", |b| {
        b.iter(|| cachesweep::run(Scale(0.0008)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10/space_utilization", |b| {
        b.iter(|| fig10::run(Scale(0.0008)))
    });
}

fn bench_models(c: &mut Criterion) {
    c.bench_function("models/section3_validation", |b| {
        b.iter(|| models::run(SCALE))
    });
}

criterion_group!(
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_table2,
    bench_table4,
    bench_fig1,
    bench_fig2,
    bench_fig6,
    bench_fig7_8,
    bench_fig8c_9,
    bench_fig10,
    bench_models
);
criterion_main!(paper);
