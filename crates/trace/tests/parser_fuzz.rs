//! Property tests for the trace parsers: write/parse round-trips over
//! arbitrary request streams, and robustness against malformed input
//! (errors, never panics).

use proptest::prelude::*;
use tpftl_trace::{parse, Dir, IoRequest, SECTOR_BYTES};

fn request_strategy() -> impl Strategy<Value = IoRequest> {
    (
        0.0f64..1e12,
        0u64..(1u64 << 41) / SECTOR_BYTES, // sector index within 2 TB
        1u32..65_536,
        any::<bool>(),
    )
        .prop_map(|(t, sector, len, w)| {
            IoRequest::new(
                t,
                sector * SECTOR_BYTES,
                len,
                if w { Dir::Write } else { Dir::Read },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SPC round trip: offsets are sector-granular, timestamps carry
    /// microsecond precision (the writer emits 6 decimal places).
    #[test]
    fn spc_roundtrip(reqs in proptest::collection::vec(request_strategy(), 1..100)) {
        // Normalize: SPC timestamps are relative to the first record, and
        // the writer emits sorted-ish arbitrary times as-is.
        let mut buf = Vec::new();
        parse::write_spc(&mut buf, &reqs).expect("write");
        let parsed = parse::parse_spc(&buf[..]).expect("parse");
        prop_assert_eq!(parsed.len(), reqs.len());
        let t0 = reqs[0].arrival_us;
        for (a, b) in reqs.iter().zip(&parsed) {
            prop_assert_eq!(a.offset, b.offset);
            prop_assert_eq!(a.len, b.len);
            prop_assert_eq!(a.dir, b.dir);
            // Seconds with 6 decimals -> within 1 µs after normalization.
            prop_assert!(((a.arrival_us - t0) - b.arrival_us).abs() <= 1.0);
        }
    }

    /// MSR round trip: byte offsets, 100 ns tick timestamps.
    #[test]
    fn msr_roundtrip(reqs in proptest::collection::vec(request_strategy(), 1..100)) {
        let mut buf = Vec::new();
        parse::write_msr(&mut buf, &reqs).expect("write");
        let parsed = parse::parse_msr(&buf[..]).expect("parse");
        prop_assert_eq!(parsed.len(), reqs.len());
        let t0 = (reqs[0].arrival_us * 10.0).round() / 10.0;
        for (a, b) in reqs.iter().zip(&parsed) {
            prop_assert_eq!(a.offset, b.offset);
            prop_assert_eq!(a.len, b.len);
            prop_assert_eq!(a.dir, b.dir);
            prop_assert!(((a.arrival_us - t0) - b.arrival_us).abs() <= 0.2);
        }
    }

    /// Arbitrary garbage input never panics: it parses or errors cleanly.
    #[test]
    fn parsers_never_panic(input in "\\PC{0,400}") {
        let _ = parse::parse_spc(input.as_bytes());
        let _ = parse::parse_msr(input.as_bytes());
        let _ = parse::parse_auto(&input);
    }

    /// Line-shaped garbage (comma-separated fields) never panics either.
    #[test]
    fn csv_shaped_garbage_never_panics(
        lines in proptest::collection::vec(
            proptest::collection::vec("[-0-9a-zA-Z.]{0,12}", 0..9),
            0..20,
        )
    ) {
        let text: String = lines
            .iter()
            .map(|fields| fields.join(","))
            .collect::<Vec<_>>()
            .join("\n");
        let _ = parse::parse_spc(text.as_bytes());
        let _ = parse::parse_msr(text.as_bytes());
        let _ = parse::parse_auto(&text);
    }
}
