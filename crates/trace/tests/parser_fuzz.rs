//! Randomized tests for the trace parsers: write/parse round-trips over
//! arbitrary request streams, and robustness against malformed input
//! (errors, never panics).
//!
//! Driven by the in-tree seeded PRNG (proptest is unavailable offline);
//! every case replays deterministically from its seed.

use tpftl_rng::Rng64;
use tpftl_trace::{parse, Dir, IoRequest, SECTOR_BYTES};

fn random_request(rng: &mut Rng64) -> IoRequest {
    let t = rng.range_f64(0.0, 1e12);
    let sector = rng.range_u64(0, (1u64 << 41) / SECTOR_BYTES); // within 2 TB
    let len = rng.range_u32(1, 65_536);
    let dir = if rng.gen_bool(0.5) {
        Dir::Write
    } else {
        Dir::Read
    };
    IoRequest::new(t, sector * SECTOR_BYTES, len, dir)
}

fn random_requests(rng: &mut Rng64) -> Vec<IoRequest> {
    let n = rng.range_usize(1, 100);
    (0..n).map(|_| random_request(rng)).collect()
}

/// SPC round trip: offsets are sector-granular, timestamps carry
/// microsecond precision (the writer emits 6 decimal places).
#[test]
fn spc_roundtrip() {
    for seed in 0..256u64 {
        let reqs = random_requests(&mut Rng64::seed_from_u64(0x59C + seed));
        // Normalize: SPC timestamps are relative to the first record, and
        // the writer emits sorted-ish arbitrary times as-is.
        let mut buf = Vec::new();
        parse::write_spc(&mut buf, &reqs).expect("write");
        let parsed = parse::parse_spc(&buf[..]).expect("parse");
        assert_eq!(parsed.len(), reqs.len(), "seed {seed}");
        let t0 = reqs[0].arrival_us;
        for (a, b) in reqs.iter().zip(&parsed) {
            assert_eq!(a.offset, b.offset, "seed {seed}");
            assert_eq!(a.len, b.len, "seed {seed}");
            assert_eq!(a.dir, b.dir, "seed {seed}");
            // Seconds with 6 decimals -> within 1 µs after normalization.
            assert!(
                ((a.arrival_us - t0) - b.arrival_us).abs() <= 1.0,
                "seed {seed}"
            );
        }
    }
}

/// MSR round trip: byte offsets, 100 ns tick timestamps.
#[test]
fn msr_roundtrip() {
    for seed in 0..256u64 {
        let reqs = random_requests(&mut Rng64::seed_from_u64(0x359 + seed));
        let mut buf = Vec::new();
        parse::write_msr(&mut buf, &reqs).expect("write");
        let parsed = parse::parse_msr(&buf[..]).expect("parse");
        assert_eq!(parsed.len(), reqs.len(), "seed {seed}");
        let t0 = (reqs[0].arrival_us * 10.0).round() / 10.0;
        for (a, b) in reqs.iter().zip(&parsed) {
            assert_eq!(a.offset, b.offset, "seed {seed}");
            assert_eq!(a.len, b.len, "seed {seed}");
            assert_eq!(a.dir, b.dir, "seed {seed}");
            assert!(
                ((a.arrival_us - t0) - b.arrival_us).abs() <= 0.2,
                "seed {seed}"
            );
        }
    }
}

/// A grab-bag of printable characters (ASCII plus a few multibyte ones)
/// for garbage inputs — roughly proptest's `\PC` class.
fn random_printable(rng: &mut Rng64, max_len: usize) -> String {
    const EXOTIC: [char; 6] = ['é', 'λ', '中', '\u{1F600}', '°', 'ß'];
    let len = rng.range_usize(0, max_len + 1);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.9) {
                // Printable ASCII, space through tilde.
                (rng.range_u32(0x20, 0x7F) as u8) as char
            } else {
                EXOTIC[rng.range_usize(0, EXOTIC.len())]
            }
        })
        .collect()
}

/// Arbitrary garbage input never panics: it parses or errors cleanly.
#[test]
fn parsers_never_panic() {
    for seed in 0..256u64 {
        let mut rng = Rng64::seed_from_u64(0x6AB + seed);
        let input = random_printable(&mut rng, 400);
        let _ = parse::parse_spc(input.as_bytes());
        let _ = parse::parse_msr(input.as_bytes());
        let _ = parse::parse_auto(&input);
    }
}

/// Line-shaped garbage (comma-separated fields) never panics either. The
/// fields draw from number-ish characters, so many lines are near-misses of
/// real records — the interesting corner of the input space.
#[test]
fn csv_shaped_garbage_never_panics() {
    const FIELD_CHARS: &[u8] = b"-0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ.";
    for seed in 0..256u64 {
        let mut rng = Rng64::seed_from_u64(0xC57 + seed);
        let n_lines = rng.range_usize(0, 20);
        let text: String = (0..n_lines)
            .map(|_| {
                let n_fields = rng.range_usize(0, 9);
                (0..n_fields)
                    .map(|_| {
                        let len = rng.range_usize(0, 13);
                        rng.ascii_string(FIELD_CHARS, len)
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let _ = parse::parse_spc(text.as_bytes());
        let _ = parse::parse_msr(text.as_bytes());
        let _ = parse::parse_auto(&text);
    }
}
