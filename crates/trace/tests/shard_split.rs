//! Property test: the LPN→shard mapping is a partition of the page space,
//! and [`ShardSplitter::split`] conserves it — every page of a request
//! lands on exactly one shard, as exactly one shard-local page, and maps
//! back to the original global page.

use tpftl_rng::Rng64;
use tpftl_trace::{Dir, IoRequest, ShardSplitter};

const PAGE: u64 = 4096;

/// Every page in `0..pages` belongs to exactly one shard, and the
/// (shard, local) renumbering is a bijection onto `0..pages`.
#[test]
fn lpn_to_shard_is_a_partition() {
    for shards in [1u32, 2, 4, 8, 32] {
        let s = ShardSplitter::new(shards, PAGE);
        let pages = 4096u64;
        let mut seen = vec![false; pages as usize];
        for shard in 0..shards {
            for local in 0..pages / shards as u64 {
                let global = s.global_page(shard, local);
                assert!(global < pages, "{shards} shards: page {global} escaped");
                assert!(
                    !seen[global as usize],
                    "{shards} shards: page {global} owned twice"
                );
                seen[global as usize] = true;
                assert_eq!(s.shard_of(global), shard);
                assert_eq!(s.local_page(global), local);
            }
        }
        assert!(
            seen.iter().all(|&v| v),
            "{shards} shards: some page unowned"
        );
    }
}

/// Splitting random requests (aligned and unaligned, 1..64 pages) loses
/// no page, duplicates no page, and keeps arrival/direction intact; each
/// shard receives at most one contiguous sub-request.
#[test]
fn split_conserves_every_page() {
    let mut rng = Rng64::seed_from_u64(0xD15C);
    for shards in [1u32, 2, 4, 8] {
        let s = ShardSplitter::new(shards, PAGE);
        for _ in 0..2_000 {
            let offset = rng.below(1 << 30);
            let len = rng.range_u64(1, 64 * PAGE) as u32;
            let dir = if rng.gen_bool(0.5) {
                Dir::Write
            } else {
                Dir::Read
            };
            let req = IoRequest::new(rng.next_f64() * 1e6, offset, len, dir);

            let mut emitted: Vec<u64> = Vec::new();
            let mut per_shard_subs = vec![0u32; shards as usize];
            s.split(&req, |shard, sub| {
                per_shard_subs[shard as usize] += 1;
                assert_eq!(sub.arrival_us, req.arrival_us);
                assert_eq!(sub.dir, req.dir);
                assert_eq!(sub.offset % PAGE, 0, "sub-requests are page-aligned");
                for local in sub.pages(PAGE) {
                    let global = s.global_page(shard, local);
                    assert_eq!(s.shard_of(global), shard, "page routed to wrong shard");
                    emitted.push(global);
                }
            });
            assert!(
                per_shard_subs.iter().all(|&c| c <= 1),
                "a stride-N progression must stay one contiguous local range"
            );

            let mut expected: Vec<u64> = req.pages(PAGE).collect();
            expected.sort_unstable();
            emitted.sort_unstable();
            assert_eq!(
                emitted, expected,
                "split of {req:?} over {shards} shards lost or duplicated pages"
            );
        }
    }
}
