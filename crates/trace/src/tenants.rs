//! Multi-tenant synthetic workloads: N concurrent Zipf streams.
//!
//! The aging/multi-tenant GC evaluation needs a workload where tenants
//! with *different* temperatures share one device: a skewed tenant keeps
//! rewriting a small hot set while a cold tenant sprays uniform writes,
//! so blocks fill with pages of mixed lifetimes unless the FTL separates
//! streams. Each tenant owns a disjoint contiguous slice of the logical
//! address space (the way a namespace or partition would), draws request
//! starts from its own [`ZipfRegions`] distribution with its own skew and
//! write ratio, and arrives as an independent Poisson process. The merged
//! trace interleaves tenants **deterministically by arrival time** (ties
//! broken by tenant index), so a fixed seed always yields the same
//! request sequence regardless of iteration batching.

use serde::{Deserialize, Serialize};
use tpftl_rng::Rng64;

use crate::{Dir, IoRequest, ZipfRegions, SECTOR_BYTES};

/// One tenant's traffic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Probability that a request is a write.
    pub write_ratio: f64,
    /// Zipf skew over the tenant's slice (0 = uniform, higher = hotter).
    pub theta: f64,
    /// Mean request size in sectors (geometric distribution).
    pub mean_req_sectors: f64,
    /// Mean inter-arrival time in microseconds (exponential).
    pub mean_interarrival_us: f64,
}

impl Default for TenantSpec {
    fn default() -> Self {
        Self {
            write_ratio: 0.5,
            theta: 0.0,
            mean_req_sectors: 8.0,
            mean_interarrival_us: 500.0,
        }
    }
}

/// A multi-tenant workload: concurrent [`TenantSpec`] streams over
/// disjoint slices of one logical address space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantSpec {
    /// Human-readable workload name.
    pub name: String,
    /// Total number of requests across all tenants.
    pub requests: usize,
    /// Logical address space in bytes, split evenly among tenants.
    pub address_bytes: u64,
    /// Alignment of request starts in sectors (8 = 4 KB pages).
    pub align_sectors: u64,
    /// The tenants. Tenant `i` owns the `i`-th of `tenants.len()` equal
    /// contiguous slices of the address space.
    pub tenants: Vec<TenantSpec>,
}

impl Default for MultiTenantSpec {
    fn default() -> Self {
        Self {
            name: "multi_tenant".to_string(),
            requests: 100_000,
            address_bytes: 512 << 20,
            align_sectors: 8,
            tenants: vec![
                // A hot, write-heavy tenant and a cool, balanced one.
                TenantSpec {
                    write_ratio: 0.9,
                    theta: 1.1,
                    ..TenantSpec::default()
                },
                TenantSpec {
                    write_ratio: 0.5,
                    theta: 0.2,
                    ..TenantSpec::default()
                },
            ],
        }
    }
}

impl MultiTenantSpec {
    /// Slice of the sector space owned by tenant `i`: `[base, base+len)`.
    fn slice_sectors(&self, i: usize) -> (u64, u64) {
        let total = self.address_bytes / SECTOR_BYTES;
        let len = total / self.tenants.len() as u64;
        (i as u64 * len, len)
    }

    /// Generates the merged trace deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (no tenants, slices below one
    /// sector, or probabilities outside `[0, 1]`).
    pub fn generate(&self, seed: u64) -> Vec<IoRequest> {
        self.iter(seed).collect()
    }

    /// Streaming variant of [`MultiTenantSpec::generate`].
    pub fn iter(&self, seed: u64) -> MultiTenantIter {
        assert!(!self.tenants.is_empty(), "need at least one tenant");
        let (_, slice) = self.slice_sectors(0);
        assert!(slice >= 1, "address space too small for tenant slices");
        for t in &self.tenants {
            assert!(
                (0.0..=1.0).contains(&t.write_ratio),
                "write ratio {} out of range",
                t.write_ratio
            );
            assert!(t.mean_req_sectors >= 1.0, "mean request below one sector");
        }
        let mut states: Vec<TenantState> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                // Independent per-tenant RNG streams: reordering or adding
                // tenants never perturbs another tenant's request sequence.
                let mut rng = Rng64::seed_from_u64(seed.wrapping_add(i as u64 + 1));
                let (base, len) = self.slice_sectors(i);
                let zipf = ZipfRegions::new(len, 256, spec.theta, 1.0, &mut rng);
                TenantState {
                    spec,
                    rng,
                    zipf,
                    base_sector: base,
                    slice_len: len,
                    clock_us: 0.0,
                    next: None,
                }
            })
            .collect();
        let align = self.align_sectors.max(1);
        for s in &mut states {
            s.advance(align);
        }
        MultiTenantIter {
            states,
            align,
            remaining: self.requests,
        }
    }
}

struct TenantState {
    spec: TenantSpec,
    rng: Rng64,
    zipf: ZipfRegions,
    base_sector: u64,
    slice_len: u64,
    clock_us: f64,
    /// The tenant's next pending request (its head of queue).
    next: Option<IoRequest>,
}

impl TenantState {
    /// Draws the tenant's next request and parks it in `next`.
    fn advance(&mut self, align: u64) {
        let mean = self.spec.mean_req_sectors;
        let len = if mean <= 1.0 {
            1
        } else {
            let p = 1.0 / mean;
            let u = self.rng.range_f64(f64::EPSILON, 1.0);
            (u.ln() / (1.0 - p).ln()).floor() as u64 + 1
        }
        .min(self.slice_len);
        let s = self.zipf.sample(&mut self.rng);
        let s = s - s % align;
        let start = self.base_sector + s.min(self.slice_len - len);
        let dir = if self.rng.gen_bool(self.spec.write_ratio) {
            Dir::Write
        } else {
            Dir::Read
        };
        let dt = -self.spec.mean_interarrival_us * self.rng.range_f64(f64::EPSILON, 1.0).ln();
        self.clock_us += dt;
        self.next = Some(IoRequest::new(
            self.clock_us,
            start * SECTOR_BYTES,
            (len * SECTOR_BYTES) as u32,
            dir,
        ));
    }
}

/// Iterator producing the merged requests of a [`MultiTenantSpec`].
pub struct MultiTenantIter {
    states: Vec<TenantState>,
    align: u64,
    remaining: usize,
}

impl Iterator for MultiTenantIter {
    type Item = IoRequest;

    fn next(&mut self) -> Option<IoRequest> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Earliest pending arrival wins; the lowest tenant index breaks
        // exact ties, so the interleave is a pure function of the seed.
        let i = self
            .states
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let (a, b) = (a.next.as_ref().unwrap(), b.next.as_ref().unwrap());
                a.arrival_us.total_cmp(&b.arrival_us)
            })
            .map(|(i, _)| i)
            .unwrap();
        let req = self.states[i].next.take().unwrap();
        self.states[i].advance(self.align);
        Some(req)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = MultiTenantSpec {
            requests: 2000,
            ..MultiTenantSpec::default()
        };
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn tenants_stay_in_their_slices() {
        let spec = MultiTenantSpec {
            requests: 20_000,
            address_bytes: 64 << 20,
            tenants: vec![
                TenantSpec {
                    theta: 1.2,
                    write_ratio: 1.0,
                    ..TenantSpec::default()
                },
                TenantSpec::default(),
                TenantSpec {
                    theta: 0.5,
                    write_ratio: 0.2,
                    ..TenantSpec::default()
                },
            ],
            ..MultiTenantSpec::default()
        };
        let slice_bytes = (64u64 << 20) / 3 / SECTOR_BYTES * SECTOR_BYTES;
        let mut seen = [false; 3];
        for r in spec.generate(11) {
            let tenant = (r.offset / slice_bytes).min(2) as usize;
            let base = tenant as u64 * slice_bytes;
            assert!(r.offset >= base, "request {r:?} before its slice");
            assert!(
                r.end() <= base + slice_bytes,
                "request {r:?} crosses out of tenant {tenant}'s slice"
            );
            seen[tenant] = true;
        }
        assert_eq!(seen, [true; 3], "every tenant produced traffic");
    }

    #[test]
    fn merged_arrivals_are_monotone_and_mixed() {
        let spec = MultiTenantSpec {
            requests: 10_000,
            ..MultiTenantSpec::default()
        };
        let trace = spec.generate(3);
        let mut prev = -1.0;
        for r in &trace {
            assert!(r.arrival_us >= prev, "arrival order violated at {r:?}");
            prev = r.arrival_us;
        }
        // Both default tenants emit at the same mean rate, so neither
        // should dominate the merged stream.
        let half = (512u64 << 20) / 2;
        let first = trace.iter().filter(|r| r.offset < half).count();
        let frac = first as f64 / trace.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "tenant share skewed: {frac}");
    }

    #[test]
    fn per_tenant_write_ratios_hold() {
        let spec = MultiTenantSpec {
            requests: 30_000,
            tenants: vec![
                TenantSpec {
                    write_ratio: 0.9,
                    ..TenantSpec::default()
                },
                TenantSpec {
                    write_ratio: 0.1,
                    ..TenantSpec::default()
                },
            ],
            ..MultiTenantSpec::default()
        };
        let half = (512u64 << 20) / 2;
        let (mut w, mut n) = ([0u32; 2], [0u32; 2]);
        for r in spec.generate(5) {
            let t = usize::from(r.offset >= half);
            n[t] += 1;
            w[t] += u32::from(r.dir == Dir::Write);
        }
        let wr0 = f64::from(w[0]) / f64::from(n[0]);
        let wr1 = f64::from(w[1]) / f64::from(n[1]);
        assert!((wr0 - 0.9).abs() < 0.02, "tenant 0 wr={wr0}");
        assert!((wr1 - 0.1).abs() < 0.02, "tenant 1 wr={wr1}");
    }

    #[test]
    fn skewed_tenant_has_smaller_footprint() {
        let spec = MultiTenantSpec {
            requests: 30_000,
            address_bytes: 64 << 20,
            tenants: vec![
                TenantSpec {
                    theta: 1.3,
                    ..TenantSpec::default()
                },
                TenantSpec {
                    theta: 0.0,
                    ..TenantSpec::default()
                },
            ],
            ..MultiTenantSpec::default()
        };
        let half = (64u64 << 20) / 2;
        let mut pages = [std::collections::BTreeSet::new(), Default::default()];
        for r in spec.generate(13) {
            let t = usize::from(r.offset >= half);
            pages[t].insert(r.offset / 4096);
        }
        assert!(
            pages[0].len() * 2 < pages[1].len(),
            "hot tenant footprint {} not clearly under cold {}",
            pages[0].len(),
            pages[1].len()
        );
    }
}
