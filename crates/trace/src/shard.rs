//! Shard-aware request splitting for the multi-queue sharded engine.
//!
//! The sharded SSD engine partitions the logical page space across `N`
//! shards (N a power of two) by the *low* LPN bits — page `p` belongs to
//! shard `p & (N - 1)` — so sequential runs stripe round-robin across
//! shards instead of landing on one. Within a shard, pages are renumbered
//! densely: global page `p` becomes shard-local page `p >> log2(N)`.
//!
//! [`ShardSplitter`] routes whole [`IoRequest`]s under that partition: a
//! multi-page request is split into at most one sub-request per shard, and
//! because the shard's pages form an arithmetic progression of stride `N`,
//! each sub-request covers a *contiguous* shard-local page range. With
//! `N = 1` the single sub-request covers exactly the original request's
//! pages, which is what makes the one-shard engine bit-identical to the
//! single-queue simulator.

use crate::IoRequest;

/// Routes logical pages and I/O requests onto `N` LPN-partitioned shards.
///
/// # Examples
///
/// ```
/// use tpftl_trace::{Dir, IoRequest, ShardSplitter};
///
/// let splitter = ShardSplitter::new(4, 4096);
/// // Pages 5..=10 stripe over all four shards.
/// let req = IoRequest::new(0.0, 5 * 4096, 6 * 4096, Dir::Write);
/// let mut parts = Vec::new();
/// splitter.split(&req, |shard, sub| parts.push((shard, sub.page_count(4096))));
/// // Six pages over four shards: two shards own two pages, two own one.
/// assert_eq!(parts.iter().map(|&(_, c)| c).sum::<usize>(), 6);
/// assert_eq!(parts.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSplitter {
    shards: u32,
    shard_bits: u32,
    page_bytes: u64,
}

impl ShardSplitter {
    /// Creates a splitter over `shards` shards of `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics unless `shards` is a nonzero power of two (the routing is a
    /// mask of the low LPN bits) and `page_bytes` is nonzero.
    pub fn new(shards: u32, page_bytes: u64) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        assert!(page_bytes > 0, "page size must be nonzero");
        Self {
            shards,
            shard_bits: shards.trailing_zeros(),
            page_bytes,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning global logical page `page`.
    #[inline]
    pub fn shard_of(&self, page: u64) -> u32 {
        (page & (self.shards as u64 - 1)) as u32
    }

    /// Shard-local page number of global page `page` (within
    /// [`ShardSplitter::shard_of`]`(page)`).
    #[inline]
    pub fn local_page(&self, page: u64) -> u64 {
        page >> self.shard_bits
    }

    /// Inverse of the partition: the global page for `local` on `shard`.
    #[inline]
    pub fn global_page(&self, shard: u32, local: u64) -> u64 {
        (local << self.shard_bits) | shard as u64
    }

    /// Splits `req` by shard, calling `emit(shard, sub_request)` once per
    /// shard that owns at least one of the request's pages, in ascending
    /// shard order. Each sub-request is page-aligned in its shard's local
    /// address space, covers exactly the request's pages owned by that
    /// shard, and inherits the arrival time and direction.
    pub fn split<E: FnMut(u32, IoRequest)>(&self, req: &IoRequest, mut emit: E) {
        let n = self.shards as u64;
        let first = req.offset / self.page_bytes;
        let last = (req.end() - 1) / self.page_bytes;
        for shard in 0..n {
            // First page >= `first` owned by this shard.
            let shard_first = first + ((shard + n - (first % n)) % n);
            if shard_first > last {
                continue;
            }
            let count = (last - shard_first) / n + 1;
            let local_first = self.local_page(shard_first);
            emit(
                shard as u32,
                IoRequest::new(
                    req.arrival_us,
                    local_first * self.page_bytes,
                    (count * self.page_bytes) as u32,
                    req.dir,
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dir;

    const PAGE: u64 = 4096;

    #[test]
    fn routing_is_low_bits() {
        let s = ShardSplitter::new(4, PAGE);
        assert_eq!(s.shard_of(0), 0);
        assert_eq!(s.shard_of(5), 1);
        assert_eq!(s.shard_of(7), 3);
        assert_eq!(s.local_page(7), 1);
        assert_eq!(s.global_page(3, 1), 7);
        for p in 0..64u64 {
            assert_eq!(s.global_page(s.shard_of(p), s.local_page(p)), p);
        }
    }

    #[test]
    fn single_shard_is_identity_on_pages() {
        let s = ShardSplitter::new(1, PAGE);
        // Unaligned request straddling pages 0 and 1.
        let req = IoRequest::new(3.5, 4095, 2, Dir::Read);
        let mut parts = Vec::new();
        s.split(&req, |shard, sub| parts.push((shard, sub)));
        assert_eq!(parts.len(), 1);
        let (shard, sub) = parts[0];
        assert_eq!(shard, 0);
        assert_eq!(sub.arrival_us, 3.5);
        assert_eq!(sub.dir, Dir::Read);
        assert_eq!(
            sub.pages(PAGE).collect::<Vec<_>>(),
            req.pages(PAGE).collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_page_request_stripes_contiguously() {
        let s = ShardSplitter::new(4, PAGE);
        // Pages 6..=13: shard 0 gets {8,12}, 1 gets {9,13}, 2 gets {6,10},
        // 3 gets {7,11} — locally contiguous ranges in every case.
        let req = IoRequest::new(0.0, 6 * PAGE, 8 * PAGE as u32, Dir::Write);
        let mut got = vec![None; 4];
        s.split(&req, |shard, sub| {
            got[shard as usize] = Some(sub.pages(PAGE).collect::<Vec<_>>());
        });
        assert_eq!(got[0].take().unwrap(), vec![2, 3]); // global 8, 12
        assert_eq!(got[1].take().unwrap(), vec![2, 3]); // global 9, 13
        assert_eq!(got[2].take().unwrap(), vec![1, 2]); // global 6, 10
        assert_eq!(got[3].take().unwrap(), vec![1, 2]); // global 7, 11
    }

    #[test]
    fn small_request_skips_unowned_shards() {
        let s = ShardSplitter::new(8, PAGE);
        let req = IoRequest::new(0.0, 13 * PAGE, PAGE as u32, Dir::Read);
        let mut parts = Vec::new();
        s.split(&req, |shard, sub| parts.push((shard, sub)));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].0, 5); // 13 & 7
        assert_eq!(parts[0].1.pages(PAGE).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panic() {
        let _ = ShardSplitter::new(3, PAGE);
    }
}
