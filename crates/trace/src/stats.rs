//! Trace characterization, reproducing the metrics of the paper's Table 4.
//!
//! Sequentiality follows the common trace-analysis definition (cf.
//! Li et al., "Assert(!Defined(Sequential I/O))", HotStorage'14, cited by
//! the paper): a request is *sequential* if it starts exactly where one of
//! the recent requests of the same direction ended. Table 4 reports
//! "Seq. Read" and "Seq. Write" as fractions of reads and writes
//! respectively; we do the same.

use std::collections::HashSet;
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{Dir, IoRequest};

/// Window of recent end-offsets consulted for the sequentiality test.
const SEQ_WINDOW: usize = 16;

/// Summary statistics of a trace, mirroring Table 4 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of requests.
    pub requests: u64,
    /// Fraction of requests that are writes.
    pub write_ratio: f64,
    /// Mean request size in bytes.
    pub avg_req_bytes: f64,
    /// Fraction of read requests contiguous with a recent read.
    pub seq_read_frac: f64,
    /// Fraction of write requests contiguous with a recent write.
    pub seq_write_frac: f64,
    /// Highest byte offset touched plus one (the trace's address space).
    pub address_space: u64,
    /// Number of distinct 4 KB pages touched (working-set footprint).
    pub unique_pages: u64,
    /// Total page accesses after 4 KB splitting (the paper's `N_pa`).
    pub page_accesses: u64,
    /// Fraction of page accesses that are writes (the paper's `R_w`).
    pub page_write_ratio: f64,
    /// Trace duration in microseconds (last arrival minus first).
    pub duration_us: f64,
}

/// Computes [`TraceStats`] over `requests` with 4 KB pages.
pub fn analyze(requests: &[IoRequest]) -> TraceStats {
    analyze_with_page(requests, 4096)
}

/// Computes [`TraceStats`] with an explicit page size.
pub fn analyze_with_page(requests: &[IoRequest], page_bytes: u64) -> TraceStats {
    let mut writes = 0u64;
    let mut bytes = 0u128;
    let mut seq_reads = 0u64;
    let mut seq_writes = 0u64;
    let mut reads = 0u64;
    let mut address_space = 0u64;
    let mut pages = HashSet::new();
    let mut page_accesses = 0u64;
    let mut page_writes = 0u64;
    let mut recent_read_ends: VecDeque<u64> = VecDeque::with_capacity(SEQ_WINDOW);
    let mut recent_write_ends: VecDeque<u64> = VecDeque::with_capacity(SEQ_WINDOW);
    let mut first_arrival = f64::INFINITY;
    let mut last_arrival = f64::NEG_INFINITY;

    for r in requests {
        bytes += r.len as u128;
        address_space = address_space.max(r.end());
        first_arrival = first_arrival.min(r.arrival_us);
        last_arrival = last_arrival.max(r.arrival_us);
        let recent = match r.dir {
            Dir::Read => {
                reads += 1;
                &mut recent_read_ends
            }
            Dir::Write => {
                writes += 1;
                &mut recent_write_ends
            }
        };
        if recent.contains(&r.offset) {
            match r.dir {
                Dir::Read => seq_reads += 1,
                Dir::Write => seq_writes += 1,
            }
        }
        if recent.len() == SEQ_WINDOW {
            recent.pop_front();
        }
        recent.push_back(r.end());
        for p in r.pages(page_bytes) {
            pages.insert(p);
            page_accesses += 1;
            if r.is_write() {
                page_writes += 1;
            }
        }
    }

    let n = requests.len() as u64;
    let frac = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    TraceStats {
        requests: n,
        write_ratio: frac(writes, n),
        avg_req_bytes: if n == 0 { 0.0 } else { bytes as f64 / n as f64 },
        seq_read_frac: frac(seq_reads, reads),
        seq_write_frac: frac(seq_writes, writes),
        address_space,
        unique_pages: pages.len() as u64,
        page_accesses,
        page_write_ratio: frac(page_writes, page_accesses),
        duration_us: if n == 0 {
            0.0
        } else {
            last_arrival - first_arrival
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(off: u64, len: u32, dir: Dir) -> IoRequest {
        IoRequest::new(0.0, off, len, dir)
    }

    #[test]
    fn empty_trace() {
        let s = analyze(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.write_ratio, 0.0);
        assert_eq!(s.page_accesses, 0);
    }

    #[test]
    fn write_ratio_and_sizes() {
        let t = vec![
            req(0, 4096, Dir::Write),
            req(8192, 4096, Dir::Write),
            req(0, 8192, Dir::Read),
            req(4096 * 10, 4096, Dir::Write),
        ];
        let s = analyze(&t);
        assert_eq!(s.requests, 4);
        assert!((s.write_ratio - 0.75).abs() < 1e-12);
        assert!((s.avg_req_bytes - 5120.0).abs() < 1e-9);
        assert_eq!(s.address_space, 4096 * 11);
        // Pages touched: {0}, {2}, {0, 1}, {10} -> 4 unique, 5 accesses.
        assert_eq!(s.unique_pages, 4);
        assert_eq!(s.page_accesses, 5);
        assert!((s.page_write_ratio - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sequential_detection_same_direction() {
        // Three writes forming one run; the first is not counted sequential.
        let t = vec![
            req(0, 4096, Dir::Write),
            req(4096, 4096, Dir::Write),
            req(8192, 4096, Dir::Write),
            // A read starting at a *write* end is not sequential.
            req(12288, 4096, Dir::Read),
        ];
        let s = analyze(&t);
        assert!((s.seq_write_frac - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.seq_read_frac, 0.0);
    }

    #[test]
    fn sequential_detection_interleaved() {
        // A sequential read run interleaved with random writes is still
        // detected thanks to the window.
        let t = vec![
            req(0, 4096, Dir::Read),
            req(1 << 20, 512, Dir::Write),
            req(4096, 4096, Dir::Read),
            req(2 << 20, 512, Dir::Write),
            req(8192, 4096, Dir::Read),
        ];
        let s = analyze(&t);
        assert!((s.seq_read_frac - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.seq_write_frac, 0.0);
    }

    #[test]
    fn duration_is_arrival_span() {
        let mut t = vec![
            IoRequest::new(100.0, 0, 512, Dir::Read),
            IoRequest::new(500.0, 0, 512, Dir::Read),
        ];
        t.push(IoRequest::new(1600.0, 0, 512, Dir::Write));
        let s = analyze(&t);
        assert!((s.duration_us - 1500.0).abs() < 1e-9);
    }
}
