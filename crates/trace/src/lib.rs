#![warn(missing_docs)]

//! I/O traces for the TPFTL reproduction: request model, trace-file parsers
//! and synthetic workload generators.
//!
//! The paper evaluates with four enterprise traces (Table 4): the UMass
//! `Financial1`/`Financial2` OLTP traces (SPC format) and the MSR Cambridge
//! `ts`/`src` server traces (CSV format). Those traces are not
//! redistributable, so this crate provides both:
//!
//! * [`parse`] — parsers for the two on-disk formats, for users who have the
//!   original files, and
//! * [`synth`] + [`presets`] — synthetic generators whose output matches the
//!   Table 4 characteristics (write ratio, average request size, sequential
//!   read/write fractions, address-space footprint) plus a configurable
//!   skewed temporal locality, verified by the [`stats`] analyzer.

mod openloop;
mod request;
mod shard;
mod zipf;

pub mod parse;
pub mod presets;
pub mod stats;
pub mod synth;
pub mod tenants;

pub use openloop::{fixed_rate, FixedRate};
pub use request::{Dir, IoRequest};
pub use shard::ShardSplitter;
pub use stats::TraceStats;
pub use synth::{Locality, SyntheticSpec};
pub use tenants::{MultiTenantSpec, TenantSpec};
pub use zipf::ZipfRegions;

/// Bytes per disk sector; trace LBAs are sector-granular.
pub const SECTOR_BYTES: u64 = 512;
