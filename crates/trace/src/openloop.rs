//! Open-loop arrival scheduling: rewrite a trace's arrival times to a
//! fixed offered rate.
//!
//! A *closed-loop* driver (everything `ftlbench` measured before PR 9)
//! submits the next request only when the previous one finishes, so a
//! slow device silently throttles its own load and the latency
//! distribution never shows the queueing a steady stream would build up —
//! the classic *coordinated omission* trap. An *open-loop* driver fixes
//! the arrival schedule up front: request `k` arrives at `k / rate`
//! whether or not the device has kept up, and its response time is
//! measured against that **scheduled** arrival. Backlog therefore shows
//! up as latency, exactly as it would for independent users.
//!
//! [`FixedRate`] is the schedule half: it passes a trace's payloads
//! (offset, length, direction) through untouched and replaces each
//! arrival time with the fixed-rate schedule. The driving half — pacing
//! submission by the wall clock and harvesting completions — lives in
//! `tpftl_sim` (`ShardedSsd::run_open_loop`).

use crate::IoRequest;

/// Iterator adapter that re-times a trace to a fixed arrival rate.
///
/// Request `k` (zero-based) is stamped `arrival_us = k * 1e6 / rate`.
/// Payloads are preserved, so the address pattern (and therefore every
/// deterministic FTL counter) is identical to the source trace.
///
/// # Examples
///
/// ```
/// use tpftl_trace::{fixed_rate, Dir, IoRequest};
///
/// let trace = (0..3).map(|i| IoRequest::new(999.0, i * 4096, 4096, Dir::Write));
/// let arrivals: Vec<f64> = fixed_rate(trace, 50_000.0).map(|r| r.arrival_us).collect();
/// assert_eq!(arrivals, vec![0.0, 20.0, 40.0]); // 50k req/s = one per 20 µs
/// ```
#[derive(Debug, Clone)]
pub struct FixedRate<I> {
    inner: I,
    interarrival_us: f64,
    index: u64,
}

impl<I: Iterator<Item = IoRequest>> Iterator for FixedRate<I> {
    type Item = IoRequest;

    fn next(&mut self) -> Option<IoRequest> {
        let mut req = self.inner.next()?;
        req.arrival_us = self.index as f64 * self.interarrival_us;
        self.index += 1;
        Some(req)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Wraps `trace` so arrivals follow a fixed `rate_rps` (requests per
/// second) schedule starting at time zero.
///
/// # Panics
///
/// Panics when `rate_rps` is not finite and positive.
pub fn fixed_rate<I>(trace: I, rate_rps: f64) -> FixedRate<I::IntoIter>
where
    I: IntoIterator<Item = IoRequest>,
{
    assert!(
        rate_rps.is_finite() && rate_rps > 0.0,
        "offered rate must be a positive, finite requests/second"
    );
    FixedRate {
        inner: trace.into_iter(),
        interarrival_us: 1e6 / rate_rps,
        index: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dir, SyntheticSpec};

    #[test]
    fn schedule_is_exact_and_payloads_survive() {
        let src: Vec<IoRequest> = (0..100)
            .map(|i| IoRequest::new(i as f64 * 3.5, i * 8192, 512, Dir::Read))
            .collect();
        let out: Vec<IoRequest> = fixed_rate(src.iter().copied(), 250_000.0).collect();
        assert_eq!(out.len(), src.len());
        for (k, (orig, re)) in src.iter().zip(&out).enumerate() {
            assert_eq!(re.arrival_us, k as f64 * 4.0, "250k req/s = 4 µs apart");
            assert_eq!(
                (re.offset, re.len, re.dir),
                (orig.offset, orig.len, orig.dir)
            );
        }
    }

    #[test]
    fn retiming_a_synthetic_trace_keeps_the_address_stream() {
        let spec = SyntheticSpec {
            requests: 500,
            address_bytes: 64 << 20,
            ..SyntheticSpec::default()
        };
        let plain: Vec<IoRequest> = spec.iter(42).collect();
        let paced: Vec<IoRequest> = fixed_rate(spec.iter(42), 10_000.0).collect();
        assert_eq!(plain.len(), paced.len());
        assert!(plain
            .iter()
            .zip(&paced)
            .all(|(a, b)| (a.offset, a.len, a.dir) == (b.offset, b.len, b.dir)));
        // Arrivals are the only difference, and they are exactly linear.
        assert!(paced
            .iter()
            .enumerate()
            .all(|(k, r)| r.arrival_us == k as f64 * 100.0));
    }

    #[test]
    #[should_panic(expected = "positive, finite")]
    fn zero_rate_is_rejected() {
        let _ = fixed_rate(std::iter::empty::<IoRequest>(), 0.0);
    }
}
