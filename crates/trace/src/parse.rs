//! Parsers and writers for the two on-disk trace formats the paper uses.
//!
//! * **SPC** (UMass trace repository, `Financial1`/`Financial2`):
//!   `ASU,LBA,Size,Opcode,Timestamp` — LBA in 512-byte sectors, size in
//!   bytes, opcode `R`/`W` (case-insensitive), timestamp in seconds.
//! * **MSR Cambridge** (`ts`/`src` and friends):
//!   `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime` —
//!   timestamp in Windows 100 ns ticks, offset/size in bytes, type
//!   `Read`/`Write`.
//!
//! Timestamps are normalized so the first request arrives at 0 µs. Writers
//! for both formats support round-trip tests and shipping small sample
//! traces with the examples.

use std::io::{BufRead, Write};

use crate::{Dir, IoRequest, SECTOR_BYTES};

/// Errors produced while parsing a trace file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with its 1-based line number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: String,
    },
    /// The file contains no parsable records.
    Empty,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Malformed { line, what } => write!(f, "line {line}: {what}"),
            Self::Empty => write!(f, "trace contains no records"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn malformed(line: usize, what: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        what: what.into(),
    }
}

/// Parses an SPC-format trace (UMass Financial traces).
///
/// Blank lines are skipped; any other malformed line is an error.
///
/// # Examples
///
/// ```
/// use tpftl_trace::parse::parse_spc;
///
/// let text = "0,16,4096,W,0.0\n1,24,512,r,0.5\n";
/// let reqs = parse_spc(text.as_bytes()).unwrap();
/// assert_eq!(reqs.len(), 2);
/// assert_eq!(reqs[0].offset, 16 * 512);
/// assert_eq!(reqs[1].arrival_us, 500_000.0);
/// ```
pub fn parse_spc<R: BufRead>(reader: R) -> Result<Vec<IoRequest>, ParseError> {
    let mut out = Vec::new();
    let mut first_ts: Option<f64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        let _asu: u32 = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing ASU"))?
            .parse()
            .map_err(|_| malformed(lineno, "bad ASU"))?;
        let lba: u64 = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing LBA"))?
            .parse()
            .map_err(|_| malformed(lineno, "bad LBA"))?;
        let size: u32 = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing size"))?
            .parse()
            .map_err(|_| malformed(lineno, "bad size"))?;
        let opcode = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing opcode"))?;
        let dir = match opcode {
            "R" | "r" => Dir::Read,
            "W" | "w" => Dir::Write,
            other => return Err(malformed(lineno, format!("bad opcode {other:?}"))),
        };
        let ts_s: f64 = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing timestamp"))?
            .parse()
            .map_err(|_| malformed(lineno, "bad timestamp"))?;
        let base = *first_ts.get_or_insert(ts_s);
        out.push(IoRequest::new(
            (ts_s - base) * 1e6,
            lba * SECTOR_BYTES,
            size,
            dir,
        ));
    }
    if out.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(out)
}

/// Parses an MSR Cambridge-format trace.
///
/// # Examples
///
/// ```
/// use tpftl_trace::parse::parse_msr;
///
/// let text = "128166372003061629,ts,0,Read,383496192,32768,1137\n\
///             128166372013061629,ts,0,Write,0,4096,900\n";
/// let reqs = parse_msr(text.as_bytes()).unwrap();
/// assert_eq!(reqs[0].len, 32768);
/// assert_eq!(reqs[1].arrival_us, 1_000_000.0);
/// ```
pub fn parse_msr<R: BufRead>(reader: R) -> Result<Vec<IoRequest>, ParseError> {
    let mut out = Vec::new();
    let mut first_ts: Option<u64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        let ts_ticks: u64 = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing timestamp"))?
            .parse()
            .map_err(|_| malformed(lineno, "bad timestamp"))?;
        let _host = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing hostname"))?;
        let _disk = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing disk"))?;
        let dir = match fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing type"))?
        {
            "Read" | "read" | "R" => Dir::Read,
            "Write" | "write" | "W" => Dir::Write,
            other => return Err(malformed(lineno, format!("bad type {other:?}"))),
        };
        let offset: u64 = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing offset"))?
            .parse()
            .map_err(|_| malformed(lineno, "bad offset"))?;
        let size: u32 = fields
            .next()
            .ok_or_else(|| malformed(lineno, "missing size"))?
            .parse()
            .map_err(|_| malformed(lineno, "bad size"))?;
        let base = *first_ts.get_or_insert(ts_ticks);
        // 100 ns ticks -> µs. Out-of-order records (rare but present in
        // real captures) yield negative relative arrivals rather than a
        // u64 underflow.
        out.push(IoRequest::new(
            (ts_ticks as f64 - base as f64) / 10.0,
            offset,
            size,
            dir,
        ));
    }
    if out.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(out)
}

/// Guesses the trace format from its first non-empty line and parses it.
///
/// MSR records have 7 fields and a `Read`/`Write` type in field 4; SPC
/// records have 5 fields with a one-letter opcode in field 4.
pub fn parse_auto(content: &str) -> Result<Vec<IoRequest>, ParseError> {
    let first = content
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty())
        .ok_or(ParseError::Empty)?;
    let fields: Vec<&str> = first.split(',').collect();
    if fields.len() >= 7 {
        parse_msr(content.as_bytes())
    } else {
        parse_spc(content.as_bytes())
    }
}

/// Writes `requests` in SPC format (inverse of [`parse_spc`]).
///
/// Offsets are rounded down to sector boundaries, as SPC LBAs are
/// sector-granular.
pub fn write_spc<W: Write>(mut w: W, requests: &[IoRequest]) -> std::io::Result<()> {
    for r in requests {
        writeln!(
            w,
            "0,{},{},{},{:.6}",
            r.offset / SECTOR_BYTES,
            r.len,
            if r.is_write() { 'W' } else { 'R' },
            r.arrival_us / 1e6,
        )?;
    }
    Ok(())
}

/// Writes `requests` in MSR Cambridge format (inverse of [`parse_msr`]).
pub fn write_msr<W: Write>(mut w: W, requests: &[IoRequest]) -> std::io::Result<()> {
    for r in requests {
        writeln!(
            w,
            "{},synth,0,{},{},{},0",
            (r.arrival_us * 10.0).round() as u64,
            if r.is_write() { "Write" } else { "Read" },
            r.offset,
            r.len,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spc_roundtrip() {
        let text = "0,100,4096,W,1.0\n0,108,8192,R,1.5\n0,50,512,w,2.0\n";
        let reqs = parse_spc(text.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].offset, 100 * 512);
        assert_eq!(reqs[0].dir, Dir::Write);
        assert_eq!(reqs[1].dir, Dir::Read);
        assert_eq!(reqs[1].arrival_us, 500_000.0);
        let mut buf = Vec::new();
        write_spc(&mut buf, &reqs).unwrap();
        let again = parse_spc(&buf[..]).unwrap();
        assert_eq!(reqs, again);
    }

    #[test]
    fn msr_roundtrip() {
        let text = "1000,ts,0,Read,8192,4096,77\n2000,ts,0,Write,0,512,88\n";
        let reqs = parse_msr(text.as_bytes()).unwrap();
        assert_eq!(reqs[0].offset, 8192);
        assert_eq!(reqs[1].arrival_us, 100.0);
        let mut buf = Vec::new();
        write_msr(&mut buf, &reqs).unwrap();
        assert_eq!(parse_msr(&buf[..]).unwrap(), reqs);
    }

    #[test]
    fn autodetect() {
        let spc = "0,100,4096,W,1.0\n";
        let msr = "1000,ts,0,Read,8192,4096,77\n";
        assert_eq!(parse_auto(spc).unwrap()[0].dir, Dir::Write);
        assert_eq!(parse_auto(msr).unwrap()[0].dir, Dir::Read);
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let text = "0,100,4096,W,1.0\n0,abc,4096,W,1.0\n";
        match parse_spc(text.as_bytes()) {
            Err(ParseError::Malformed { line, what }) => {
                assert_eq!(line, 2);
                assert!(what.contains("LBA"));
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
        let text2 = "0,100,4096,X,1.0\n";
        assert!(matches!(
            parse_spc(text2.as_bytes()),
            Err(ParseError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn empty_and_blank_files() {
        assert!(matches!(parse_spc(&b""[..]), Err(ParseError::Empty)));
        assert!(matches!(parse_spc(&b"\n\n"[..]), Err(ParseError::Empty)));
        assert!(matches!(parse_auto("  \n"), Err(ParseError::Empty)));
    }

    #[test]
    fn timestamps_normalized_to_zero() {
        let text = "0,1,512,R,100.0\n0,2,512,R,100.5\n";
        let reqs = parse_spc(text.as_bytes()).unwrap();
        assert_eq!(reqs[0].arrival_us, 0.0);
        assert_eq!(reqs[1].arrival_us, 500_000.0);
    }
}
