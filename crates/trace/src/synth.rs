//! Synthetic workload generation calibrated to Table 4 of the paper.
//!
//! The generator models an enterprise block workload as a superposition of
//! four mechanisms the paper's analysis depends on:
//!
//! 1. **Direction mix** — each request is a write with probability
//!    `write_ratio`.
//! 2. **Sequential bursts** — sequential accesses arrive in *runs*: a read
//!    (write) request occasionally starts a burst whose following
//!    `mean_burst_len − 1` same-direction requests continue where the
//!    previous one ended. Burst starts are *deficit-paced*: every request of
//!    a direction earns that direction `seq_read_frac` (`seq_write_frac`)
//!    units of credit, each burst continuation spends one unit, and a new
//!    burst only launches once the balance funds a full mean-length burst.
//!    The overall fraction of sequential reads (writes) therefore matches
//!    the Table 4 definition with low variance even over short windows —
//!    randomly seeded rare bursts would make short traces a lottery.
//!    Bursty (rather than uniformly sprinkled) sequentiality is what
//!    produces the diagonal runs of Figure 2(a) and what TPFTL's selective
//!    prefetching exploits ("sequential accesses are often interspersed
//!    with random accesses", Section 4.3).
//! 3. **Skewed temporal locality** — random jump targets are drawn from a
//!    [`ZipfRegions`] distribution; `active_frac < 1` limits the footprint
//!    the way the MSR traces use only part of their 16 GB volume.
//! 4. **Request sizes** — geometric in sectors with the Table 4 mean;
//!    arrivals are Poisson with mean `mean_interarrival_us`.

use serde::{Deserialize, Serialize};
use tpftl_rng::Rng64;

use crate::{Dir, IoRequest, ZipfRegions, SECTOR_BYTES};

/// Temporal-locality model for random (non-sequential) accesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Locality {
    /// Number of popularity regions the address space is divided into.
    pub regions: usize,
    /// Zipf skew across regions (0 = uniform).
    pub theta: f64,
    /// Fraction of regions ever accessed (footprint limiter).
    pub active_frac: f64,
}

impl Default for Locality {
    fn default() -> Self {
        Self {
            regions: 1024,
            theta: 0.0,
            active_frac: 1.0,
        }
    }
}

/// Parameters of a synthetic workload.
///
/// # Examples
///
/// ```
/// use tpftl_trace::{stats, SyntheticSpec};
///
/// let spec = SyntheticSpec {
///     requests: 20_000,
///     write_ratio: 0.8,
///     ..SyntheticSpec::default()
/// };
/// let trace = spec.generate(7);
/// let s = stats::analyze(&trace);
/// assert!((s.write_ratio - 0.8).abs() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Human-readable workload name.
    pub name: String,
    /// Number of requests to generate.
    pub requests: usize,
    /// Logical address space in bytes.
    pub address_bytes: u64,
    /// Probability that a request is a write.
    pub write_ratio: f64,
    /// Probability that a read continues the current read stream.
    pub seq_read_frac: f64,
    /// Probability that a write continues the current write stream.
    pub seq_write_frac: f64,
    /// Mean request size in sectors (geometric distribution).
    pub mean_req_sectors: f64,
    /// Mean sequential-burst length in requests (geometric; must be > 1).
    pub mean_burst_len: f64,
    /// Alignment of random request starts, in sectors (1 = none; 8 aligns
    /// to 4 KB pages, typical of OLTP and MSR block traces). Burst
    /// continuations remain exactly contiguous regardless.
    pub align_sectors: u64,
    /// Temporal-locality model for random jumps.
    pub locality: Locality,
    /// Mean inter-arrival time in microseconds (exponential).
    pub mean_interarrival_us: f64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            name: "synthetic".to_string(),
            requests: 100_000,
            address_bytes: 512 << 20,
            write_ratio: 0.5,
            seq_read_frac: 0.05,
            seq_write_frac: 0.05,
            mean_req_sectors: 8.0,
            mean_burst_len: 24.0,
            align_sectors: 1,
            locality: Locality::default(),
            mean_interarrival_us: 500.0,
        }
    }
}

impl SyntheticSpec {
    /// Generates the trace deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero address space, zero mean
    /// request size, or probabilities outside `[0, 1]`).
    pub fn generate(&self, seed: u64) -> Vec<IoRequest> {
        self.iter(seed).collect()
    }

    /// Streaming variant of [`SyntheticSpec::generate`].
    pub fn iter(&self, seed: u64) -> SyntheticIter {
        assert!(
            self.address_bytes >= SECTOR_BYTES,
            "address space too small"
        );
        assert!(
            self.mean_req_sectors >= 1.0,
            "mean request below one sector"
        );
        for p in [self.write_ratio, self.seq_read_frac, self.seq_write_frac] {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        if self.seq_read_frac > 0.0 || self.seq_write_frac > 0.0 {
            assert!(
                self.mean_burst_len > 1.0,
                "bursts need a mean length above one"
            );
        }
        let mut rng = Rng64::seed_from_u64(seed);
        let sectors = self.address_bytes / SECTOR_BYTES;
        let zipf = ZipfRegions::new(
            sectors,
            self.locality.regions,
            self.locality.theta,
            self.locality.active_frac,
            &mut rng,
        );
        // Bursts occupy whole stretches of the request stream with one
        // direction, so the per-request direction draw is compensated to
        // keep the overall write ratio on target.
        let read_burst_frac = (1.0 - self.write_ratio) * self.seq_read_frac;
        let write_burst_frac = self.write_ratio * self.seq_write_frac;
        let base_write_ratio = ((self.write_ratio - write_burst_frac)
            / (1.0 - read_burst_frac - write_burst_frac).max(f64::EPSILON))
        .clamp(0.0, 1.0);
        SyntheticIter {
            read_credit: 0.0,
            write_credit: 0.0,
            base_write_ratio,
            spec: self.clone(),
            rng,
            zipf,
            sectors,
            remaining: self.requests,
            clock_us: 0.0,
            burst_dir: Dir::Read,
            burst_left: 0,
            burst_end: 0,
        }
    }
}

/// Iterator producing the requests of a [`SyntheticSpec`].
pub struct SyntheticIter {
    spec: SyntheticSpec,
    rng: Rng64,
    zipf: ZipfRegions,
    sectors: u64,
    remaining: usize,
    clock_us: f64,
    /// Sequentiality credit balances, in burst-continuation units. Each
    /// request of a direction earns its `seq_*_frac`; each emitted burst
    /// continuation spends one unit, so the continuation fraction converges
    /// to the spec value regardless of burst lengths or truncation.
    read_credit: f64,
    write_credit: f64,
    /// Direction mix for non-burst requests, compensated so that the
    /// overall write ratio (bursts included) matches the spec.
    base_write_ratio: f64,
    burst_dir: Dir,
    burst_left: u32,
    burst_end: u64,
}

impl SyntheticIter {
    /// Geometric sample on `{1, 2, ...}` with the given mean.
    fn sample_geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u = self.rng.range_f64(f64::EPSILON, 1.0);
        (u.ln() / (1.0 - p).ln()).floor() as u64 + 1
    }

    /// Geometric request length in sectors with the configured mean.
    fn sample_len_sectors(&mut self) -> u64 {
        let mean = self.spec.mean_req_sectors;
        self.sample_geometric(mean).min(self.sectors)
    }
}

impl Iterator for SyntheticIter {
    type Item = IoRequest;

    fn next(&mut self) -> Option<IoRequest> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;

        let len_sectors = self.sample_len_sectors();
        let burst_len_mean = self.spec.mean_burst_len;

        let (dir, start_sector) =
            if self.burst_left > 0 && self.burst_end + len_sectors <= self.sectors {
                // Continue the current sequential burst: same direction,
                // back-to-back in both address and time, as real scans are.
                // Each continuation spends one unit of sequentiality credit.
                self.burst_left -= 1;
                match self.burst_dir {
                    Dir::Read => self.read_credit -= 1.0,
                    Dir::Write => self.write_credit -= 1.0,
                }
                let start = self.burst_end;
                self.burst_end += len_sectors;
                (self.burst_dir, start)
            } else {
                self.burst_left = 0; // a truncated burst forfeits its remainder
                let dir = if self.rng.gen_bool(self.base_write_ratio) {
                    Dir::Write
                } else {
                    Dir::Read
                };
                // Random placement; seed a new burst once the direction's
                // accrued credit funds a full mean-length one. The length is
                // still geometric, but capped at what the balance funds (a
                // continuation nets 1 − f: it spends 1 and earns f back).
                let f = match dir {
                    Dir::Read => self.spec.seq_read_frac,
                    Dir::Write => self.spec.seq_write_frac,
                };
                let credit = match dir {
                    Dir::Read => self.read_credit,
                    Dir::Write => self.write_credit,
                };
                let net_cost = (1.0 - f).max(f64::EPSILON);
                self.burst_left = if f > 0.0 && credit >= (burst_len_mean - 1.0) * net_cost {
                    let funded = (credit / net_cost).floor() as u64;
                    (self.sample_geometric(burst_len_mean) - 1).min(funded) as u32
                } else {
                    0
                };
                let s = self.zipf.sample(&mut self.rng);
                let s = s - s % self.spec.align_sectors.max(1);
                let start = s.min(self.sectors - len_sectors.min(self.sectors));
                self.burst_dir = dir;
                self.burst_end = start + len_sectors;
                (dir, start)
            };
        // Every request of a direction earns it credit at the target rate.
        match dir {
            Dir::Read => self.read_credit += self.spec.seq_read_frac,
            Dir::Write => self.write_credit += self.spec.seq_write_frac,
        }

        let dt = -self.spec.mean_interarrival_us * self.rng.range_f64(f64::EPSILON, 1.0).ln();
        self.clock_us += dt;

        Some(IoRequest::new(
            self.clock_us,
            start_sector * SECTOR_BYTES,
            (len_sectors * SECTOR_BYTES) as u32,
            dir,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn deterministic_per_seed() {
        let spec = SyntheticSpec {
            requests: 1000,
            ..SyntheticSpec::default()
        };
        assert_eq!(spec.generate(1), spec.generate(1));
        assert_ne!(spec.generate(1), spec.generate(2));
    }

    #[test]
    fn matches_spec_statistics() {
        let spec = SyntheticSpec {
            requests: 50_000,
            write_ratio: 0.779,
            seq_read_frac: 0.3,
            seq_write_frac: 0.1,
            mean_req_sectors: 7.0,
            ..SyntheticSpec::default()
        };
        let trace = spec.generate(42);
        let s = stats::analyze(&trace);
        assert!((s.write_ratio - 0.779).abs() < 0.02, "wr={}", s.write_ratio);
        let mean_sectors = s.avg_req_bytes / SECTOR_BYTES as f64;
        assert!((mean_sectors - 7.0).abs() < 0.3, "mean={mean_sectors}");
        // Measured sequentiality tracks the stream-continue probability.
        assert!(
            (s.seq_read_frac - 0.3).abs() < 0.05,
            "sr={}",
            s.seq_read_frac
        );
        assert!(
            (s.seq_write_frac - 0.1).abs() < 0.03,
            "sw={}",
            s.seq_write_frac
        );
    }

    #[test]
    fn requests_stay_in_address_space() {
        let spec = SyntheticSpec {
            requests: 20_000,
            address_bytes: 1 << 20, // tiny space stresses the clamping
            mean_req_sectors: 64.0,
            seq_read_frac: 0.9,
            seq_write_frac: 0.9,
            ..SyntheticSpec::default()
        };
        for r in spec.generate(3) {
            assert!(r.end() <= 1 << 20, "request {r:?} escapes address space");
        }
    }

    #[test]
    fn arrivals_are_monotone_with_expected_mean() {
        let spec = SyntheticSpec {
            requests: 20_000,
            mean_interarrival_us: 250.0,
            ..SyntheticSpec::default()
        };
        let t = spec.generate(9);
        let mut prev = -1.0;
        for r in &t {
            assert!(r.arrival_us > prev);
            prev = r.arrival_us;
        }
        let mean = t.last().unwrap().arrival_us / t.len() as f64;
        assert!((mean - 250.0).abs() < 10.0, "mean={mean}");
    }

    #[test]
    fn footprint_limited_by_active_frac() {
        let spec = SyntheticSpec {
            requests: 30_000,
            address_bytes: 256 << 20,
            locality: Locality {
                regions: 256,
                theta: 0.0,
                active_frac: 0.25,
            },
            seq_read_frac: 0.0,
            seq_write_frac: 0.0,
            ..SyntheticSpec::default()
        };
        let s = stats::analyze(&spec.generate(11));
        let total_pages = (256u64 << 20) / 4096;
        // Only ~1/4 of the space is reachable.
        assert!(
            s.unique_pages < total_pages / 3,
            "unique={} total={}",
            s.unique_pages,
            total_pages
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let spec = SyntheticSpec {
            write_ratio: 1.5,
            ..SyntheticSpec::default()
        };
        let _ = spec.generate(0);
    }
}
