//! The four paper workloads (Table 4) as calibrated synthetic specs.
//!
//! | Workload   | Write ratio | Avg. req. | Seq. read | Seq. write | Space  |
//! |------------|-------------|-----------|-----------|------------|--------|
//! | Financial1 | 77.9 %      | 3.5 KB    | 1.5 %     | 1.8 %      | 512 MB |
//! | Financial2 | 18 %        | 2.4 KB    | 0.8 %     | 0.5 %      | 512 MB |
//! | MSR-ts     | 82.4 %      | 9 KB      | 47.2 %    | 6 %        | 16 GB  |
//! | MSR-src    | 88.7 %      | 7.2 KB    | 22.6 %    | 7.1 %      | 16 GB  |
//!
//! Knobs Table 4 does not pin down (temporal-locality skew, footprint
//! fraction, arrival rate) are calibrated so the simulator reproduces the
//! qualitative cache behaviour the paper reports: Financial traces have
//! "large working sets" and random-dominant traffic; MSR traces have strong
//! sequentiality, a footprint far below their 16 GB volume, and mapping-
//! cache hit ratios above 90 %.

use serde::{Deserialize, Serialize};

use crate::synth::{Locality, SyntheticSpec};

/// Identifier for the four paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// UMass Financial1: random-dominant, write-intensive OLTP.
    Financial1,
    /// UMass Financial2: random-dominant, read-intensive OLTP.
    Financial2,
    /// MSR Cambridge `ts`: write-dominant, strongly sequential reads.
    MsrTs,
    /// MSR Cambridge `src`: write-dominant, moderately sequential.
    MsrSrc,
}

impl Workload {
    /// All four workloads in the paper's plotting order.
    pub const ALL: [Workload; 4] = [
        Workload::Financial1,
        Workload::Financial2,
        Workload::MsrTs,
        Workload::MsrSrc,
    ];

    /// Display name used in tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Financial1 => "Financial1",
            Workload::Financial2 => "Financial2",
            Workload::MsrTs => "MSR-ts",
            Workload::MsrSrc => "MSR-src",
        }
    }

    /// Logical address space of the trace (Table 4).
    pub fn address_bytes(&self) -> u64 {
        match self {
            Workload::Financial1 | Workload::Financial2 => 512 << 20,
            Workload::MsrTs | Workload::MsrSrc => 16 << 30,
        }
    }

    /// Builds the calibrated synthetic spec generating `requests` requests.
    pub fn spec(&self, requests: usize) -> SyntheticSpec {
        match self {
            Workload::Financial1 => SyntheticSpec {
                name: self.name().to_string(),
                requests,
                address_bytes: self.address_bytes(),
                write_ratio: 0.779,
                seq_read_frac: 0.015,
                seq_write_frac: 0.018,
                mean_req_sectors: 7.0, // 3.5 KB
                mean_burst_len: 200.0,
                align_sectors: 8,
                locality: Locality {
                    regions: 8192,
                    theta: 1.38,
                    active_frac: 1.0,
                },
                mean_interarrival_us: 3800.0,
            },
            Workload::Financial2 => SyntheticSpec {
                name: self.name().to_string(),
                requests,
                address_bytes: self.address_bytes(),
                write_ratio: 0.18,
                seq_read_frac: 0.008,
                seq_write_frac: 0.005,
                mean_req_sectors: 4.7, // 2.4 KB
                mean_burst_len: 200.0,
                align_sectors: 8,
                locality: Locality {
                    regions: 8192,
                    theta: 1.38,
                    active_frac: 1.0,
                },
                mean_interarrival_us: 3800.0,
            },
            Workload::MsrTs => SyntheticSpec {
                name: self.name().to_string(),
                requests,
                address_bytes: self.address_bytes(),
                write_ratio: 0.824,
                seq_read_frac: 0.472,
                seq_write_frac: 0.06,
                mean_req_sectors: 18.0, // 9 KB
                mean_burst_len: 24.0,
                align_sectors: 8,
                locality: Locality {
                    regions: 8192,
                    theta: 1.4,
                    active_frac: 0.05,
                },
                mean_interarrival_us: 650.0,
            },
            Workload::MsrSrc => SyntheticSpec {
                name: self.name().to_string(),
                requests,
                address_bytes: self.address_bytes(),
                write_ratio: 0.887,
                seq_read_frac: 0.226,
                seq_write_frac: 0.071,
                mean_req_sectors: 14.4, // 7.2 KB
                mean_burst_len: 24.0,
                align_sectors: 8,
                locality: Locality {
                    regions: 8192,
                    theta: 1.4,
                    active_frac: 0.05,
                },
                mean_interarrival_us: 650.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn names_and_spaces() {
        assert_eq!(Workload::Financial1.name(), "Financial1");
        assert_eq!(Workload::Financial1.address_bytes(), 512 << 20);
        assert_eq!(Workload::MsrTs.address_bytes(), 16 << 30);
        assert_eq!(Workload::ALL.len(), 4);
    }

    /// Generated traces must match Table 4 within tolerance — this is the
    /// calibration contract of the trace substitution in DESIGN.md.
    #[test]
    fn table4_calibration() {
        let cases = [
            (Workload::Financial1, 0.779, 3.5 * 1024.0, 0.015, 0.018),
            (Workload::Financial2, 0.18, 2.4 * 1024.0, 0.008, 0.005),
            (Workload::MsrTs, 0.824, 9.0 * 1024.0, 0.472, 0.06),
            (Workload::MsrSrc, 0.887, 7.2 * 1024.0, 0.226, 0.071),
        ];
        for (w, wr, avg_bytes, sr, sw) in cases {
            let s = stats::analyze(&w.spec(150_000).generate(2015));
            assert!(
                (s.write_ratio - wr).abs() < 0.01,
                "{}: wr={}",
                w.name(),
                s.write_ratio
            );
            assert!(
                (s.avg_req_bytes - avg_bytes).abs() / avg_bytes < 0.05,
                "{}: avg={}",
                w.name(),
                s.avg_req_bytes
            );
            assert!(
                (s.seq_read_frac - sr).abs() < 0.04,
                "{}: seq_read={}",
                w.name(),
                s.seq_read_frac
            );
            // Hot-region concentration plus 4 KB alignment produces some
            // accidental adjacency on top of the injected bursts, so the
            // measured fractions sit slightly above the Table 4 targets.
            assert!(
                (s.seq_write_frac - sw).abs() < 0.03,
                "{}: seq_write={}",
                w.name(),
                s.seq_write_frac
            );
        }
    }

    #[test]
    fn msr_footprint_is_partial() {
        let s = stats::analyze(&Workload::MsrTs.spec(30_000).generate(7));
        let total_pages = (16u64 << 30) / 4096;
        assert!(s.unique_pages < total_pages / 10);
    }
}
