//! A region-based Zipfian address sampler.
//!
//! Sampling a true Zipf distribution over millions of pages is expensive and
//! unnecessary: what matters for mapping-cache behaviour is the skew of the
//! *page popularity* distribution. We divide the address space into a fixed
//! number of regions, give region ranks Zipfian probabilities
//! `P(rank k) ∝ 1/k^theta` with a random rank-to-region permutation (so hot
//! regions are scattered over the address space, as in real traces), and
//! sample uniformly within a region.

use tpftl_rng::Rng64;

/// Zipf-over-regions sampler for skewed address distributions.
#[derive(Debug, Clone)]
pub struct ZipfRegions {
    /// Cumulative probability per popularity rank.
    cdf: Vec<f64>,
    /// `perm[rank]` = region index holding that popularity rank.
    perm: Vec<u32>,
    /// Total number of addressable units.
    total: u64,
}

impl ZipfRegions {
    /// Creates a sampler over `total` units with `regions` regions and skew
    /// `theta` (0 = uniform; 0.99 ≈ classic Zipf; larger = more skewed).
    ///
    /// Only the `active_frac` most popular ranks receive non-zero weight,
    /// which models workloads whose footprint covers just part of the
    /// address space (the MSR traces touch a fraction of their 16 GB
    /// volume). The rank permutation still scatters the active regions over
    /// the whole space.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`, `regions == 0`, `theta < 0`, or
    /// `active_frac` is not in `(0, 1]`.
    pub fn new(total: u64, regions: usize, theta: f64, active_frac: f64, rng: &mut Rng64) -> Self {
        assert!(total > 0 && regions > 0, "empty address space");
        assert!(theta >= 0.0, "negative skew");
        assert!(
            active_frac > 0.0 && active_frac <= 1.0,
            "active_frac must be in (0, 1]"
        );
        let regions = regions.min(total as usize);
        let active = ((regions as f64 * active_frac).ceil() as usize).clamp(1, regions);
        let mut weights: Vec<f64> = (1..=regions)
            .map(|k| {
                if k <= active {
                    1.0 / (k as f64).powf(theta)
                } else {
                    0.0
                }
            })
            .collect();
        let sum: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / sum;
            *w = acc;
        }
        // Guard against floating-point drift.
        *weights.last_mut().expect("regions > 0") = 1.0;
        let mut perm: Vec<u32> = (0..regions as u32).collect();
        rng.shuffle(&mut perm);
        Self {
            cdf: weights,
            perm,
            total,
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.cdf.len()
    }

    /// Samples one unit index in `0..total`.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let u = rng.next_f64();
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        let region = self.perm[rank] as u64;
        let n = self.cdf.len() as u64;
        let base = region * self.total / n;
        let end = (region + 1) * self.total / n;
        let span = (end - base).max(1);
        base + rng.below(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn samples_in_range() {
        let mut rng = Rng64::seed_from_u64(1);
        let z = ZipfRegions::new(1000, 16, 1.0, 1.0, &mut rng);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn uniform_when_theta_zero() {
        let mut rng = Rng64::seed_from_u64(2);
        let z = ZipfRegions::new(1 << 20, 64, 0.0, 1.0, &mut rng);
        let mut counts = vec![0u32; 64];
        let region_span = (1u64 << 20) / 64;
        for _ in 0..64_000 {
            counts[(z.sample(&mut rng) / region_span) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // Each region expects 1000 samples; allow generous statistical slack.
        assert!(*min > 700 && *max < 1300, "min={min} max={max}");
    }

    #[test]
    fn skewed_when_theta_large() {
        let mut rng = Rng64::seed_from_u64(3);
        let z = ZipfRegions::new(1 << 20, 64, 1.2, 1.0, &mut rng);
        let region_span = (1u64 << 20) / 64;
        let mut counts = vec![0u32; 64];
        for _ in 0..64_000 {
            counts[(z.sample(&mut rng) / region_span) as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top8: u32 = counts[..8].iter().sum();
        // With theta=1.2 the top 8 of 64 regions take the large majority.
        assert!(top8 as f64 > 0.6 * 64_000.0, "top8={top8}");
    }

    #[test]
    fn active_frac_limits_footprint() {
        let mut rng = Rng64::seed_from_u64(5);
        let z = ZipfRegions::new(1 << 20, 64, 0.0, 0.25, &mut rng);
        let region_span = (1u64 << 20) / 64;
        let mut touched = std::collections::HashSet::new();
        for _ in 0..64_000 {
            touched.insert(z.sample(&mut rng) / region_span);
        }
        // Exactly 16 of 64 regions are reachable.
        assert_eq!(touched.len(), 16);
    }

    #[test]
    fn more_regions_than_units_is_clamped() {
        let mut rng = Rng64::seed_from_u64(4);
        let z = ZipfRegions::new(5, 64, 1.0, 1.0, &mut rng);
        assert_eq!(z.regions(), 5);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
