//! The host I/O request model.

use serde::{Deserialize, Serialize};

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

/// One host I/O request as the FTL sees it.
///
/// Addresses and lengths are byte-granular (trace files are sector-granular;
/// parsers convert). The FTL splits a request into 4 KB page accesses with
/// [`IoRequest::pages`], exactly as the paper describes ("The FTL splits I/O
/// requests into page accesses").
///
/// # Examples
///
/// ```
/// use tpftl_trace::{Dir, IoRequest};
///
/// let req = IoRequest::new(0.0, 4095, 2, Dir::Write);
/// // Bytes 4095..4097 straddle the page boundary: two page accesses.
/// assert_eq!(req.pages(4096).collect::<Vec<_>>(), vec![0, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Arrival time in microseconds from trace start.
    pub arrival_us: f64,
    /// Start offset in bytes.
    pub offset: u64,
    /// Length in bytes (>= 1).
    pub len: u32,
    /// Read or write.
    pub dir: Dir,
}

impl IoRequest {
    /// Creates a request. `len` is clamped to at least one byte so that a
    /// malformed zero-length trace record still touches one page.
    pub fn new(arrival_us: f64, offset: u64, len: u32, dir: Dir) -> Self {
        Self {
            arrival_us,
            offset,
            len: len.max(1),
            dir,
        }
    }

    /// Whether this is a write.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.dir == Dir::Write
    }

    /// End offset (exclusive) in bytes.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }

    /// The 4 KB-aligned logical pages this request touches.
    #[inline]
    pub fn pages(&self, page_bytes: u64) -> impl Iterator<Item = u64> {
        let first = self.offset / page_bytes;
        let last = (self.end() - 1) / page_bytes;
        first..=last
    }

    /// Number of page accesses this request splits into.
    #[inline]
    pub fn page_count(&self, page_bytes: u64) -> usize {
        let first = self.offset / page_bytes;
        let last = (self.end() - 1) / page_bytes;
        (last - first + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_split_single_page() {
        let r = IoRequest::new(0.0, 0, 4096, Dir::Read);
        assert_eq!(r.pages(4096).collect::<Vec<_>>(), vec![0]);
        assert_eq!(r.page_count(4096), 1);
    }

    #[test]
    fn page_split_unaligned() {
        let r = IoRequest::new(0.0, 4000, 200, Dir::Read);
        assert_eq!(r.pages(4096).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn page_split_large() {
        let r = IoRequest::new(0.0, 8192, 3 * 4096, Dir::Write);
        assert_eq!(r.pages(4096).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.page_count(4096), 3);
    }

    #[test]
    fn zero_length_clamped() {
        let r = IoRequest::new(0.0, 100, 0, Dir::Read);
        assert_eq!(r.len, 1);
        assert_eq!(r.page_count(4096), 1);
    }

    #[test]
    fn end_offset() {
        let r = IoRequest::new(0.0, 10, 5, Dir::Read);
        assert_eq!(r.end(), 15);
        assert!(!r.is_write());
    }
}
