//! The write-amplification model (Eqs. 12–13 of Section 3.1).

use crate::{counts, ModelParams};

/// Eq. 12/13: overall write amplification,
/// `A = (N_pa·R_w + N_tw + N_md + N_dt + N_mt) / (N_pa·R_w)`,
/// composed exactly from the Eq. 2–9 operation counts.
///
/// # Panics
///
/// Panics if the workload is read-only (`R_w = 0`), for which the paper's
/// model is undefined.
pub fn write_amplification(p: &ModelParams) -> f64 {
    p.assert_valid();
    assert!(
        p.rw > 0.0,
        "write amplification is undefined for read-only workloads"
    );
    let user_writes = p.npa * p.rw;
    1.0 + (counts::ntw(p) + counts::nmd(p) + counts::ndt(p) + counts::nmt(p)) / user_writes
}

/// The closed form the paper prints as Eq. 13; equal to
/// [`write_amplification`] (verified by tests).
pub fn write_amplification_closed_form(p: &ModelParams) -> f64 {
    p.assert_valid();
    assert!(
        p.rw > 0.0,
        "write amplification is undefined for read-only workloads"
    );
    1.0 + (1.0 - p.hr) * p.prd * p.np / ((p.np - p.vt) * p.rw)
        + (1.0 + (1.0 - p.hgcr) * p.np / (p.np - p.vt)) * p.vd / (p.np - p.vd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams {
            hr: 0.65,
            prd: 0.55,
            rw: 0.779,
            hgcr: 0.45,
            vd: 22.0,
            vt: 30.0,
            np: 64.0,
            npa: 1_000_000.0,
        }
    }

    #[test]
    fn closed_form_matches_composition() {
        for hr in [0.0, 0.3, 0.9] {
            for prd in [0.0, 0.5, 1.0] {
                for hgcr in [0.0, 0.6, 1.0] {
                    let p = ModelParams {
                        hr,
                        prd,
                        hgcr,
                        ..params()
                    };
                    let a = write_amplification(&p);
                    let c = write_amplification_closed_form(&p);
                    assert!(
                        (a - c).abs() < 1e-9,
                        "hr={hr} prd={prd} hgcr={hgcr}: {a} vs {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn ideal_cache_and_gc_gives_unity() {
        let p = ModelParams {
            hr: 1.0,
            prd: 0.0,
            hgcr: 1.0,
            vd: 0.0,
            vt: 0.0,
            ..params()
        };
        assert!((write_amplification(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wa_decreases_with_hit_ratio_and_increases_with_prd() {
        let mut prev = f64::INFINITY;
        for hr in [0.0, 0.5, 1.0] {
            let a = write_amplification(&ModelParams { hr, ..params() });
            assert!(a < prev);
            prev = a;
        }
        let mut prev = -1.0;
        for prd in [0.0, 0.5, 1.0] {
            let a = write_amplification(&ModelParams { prd, ..params() });
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn read_only_rejected() {
        let _ = write_amplification(&ModelParams {
            rw: 0.0,
            ..params()
        });
    }
}
