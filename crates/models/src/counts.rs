//! Operation-count equations (Eqs. 2, 3, 5, 7, 8, 9 of Section 3.1).

use crate::ModelParams;

/// Eq. 8: translation page writes during the address-translation phase,
/// `N_tw = (1 − H_r) · P_rd · N_pa`.
pub fn ntw(p: &ModelParams) -> f64 {
    (1.0 - p.hr) * p.prd * p.npa
}

/// Eq. 7: data-block GC operations,
/// `N_gcd = N_pa · R_w / (N_p − V_d)` (the SSD in full use).
pub fn ngcd(p: &ModelParams) -> f64 {
    p.npa * p.rw / (p.np - p.vd)
}

/// Eq. 2: data-page writes from migrating valid data pages,
/// `N_md = N_gcd · V_d`.
pub fn nmd(p: &ModelParams) -> f64 {
    ngcd(p) * p.vd
}

/// Eq. 3: translation page writes from updating migrated pages' entries,
/// `N_dt = N_gcd · V_d · (1 − H_gcr)`.
pub fn ndt(p: &ModelParams) -> f64 {
    ngcd(p) * p.vd * (1.0 - p.hgcr)
}

/// Eq. 9: translation-block GC operations,
/// `N_gct = (N_tw + N_dt) / (N_p − V_t)`.
pub fn ngct(p: &ModelParams) -> f64 {
    (ntw(p) + ndt(p)) / (p.np - p.vt)
}

/// Eq. 5: translation-page writes from migrating valid translation pages,
/// `N_mt = N_gct · V_t`.
pub fn nmt(p: &ModelParams) -> f64 {
    ngct(p) * p.vt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams {
            hr: 0.8,
            prd: 0.5,
            rw: 0.75,
            hgcr: 0.6,
            vd: 16.0,
            vt: 32.0,
            np: 64.0,
            npa: 1_000_000.0,
        }
    }

    #[test]
    fn hand_computed_values() {
        let p = params();
        // Ntw = 0.2 * 0.5 * 1e6 = 100_000.
        assert!((ntw(&p) - 100_000.0).abs() < 1e-6);
        // Ngcd = 750_000 / 48 = 15_625.
        assert!((ngcd(&p) - 15_625.0).abs() < 1e-6);
        // Nmd = 15_625 * 16 = 250_000.
        assert!((nmd(&p) - 250_000.0).abs() < 1e-6);
        // Ndt = 250_000 * 0.4 = 100_000.
        assert!((ndt(&p) - 100_000.0).abs() < 1e-6);
        // Ngct = (100_000 + 100_000) / 32 = 6_250.
        assert!((ngct(&p) - 6_250.0).abs() < 1e-6);
        // Nmt = 6_250 * 32 = 200_000.
        assert!((nmt(&p) - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn perfect_cache_eliminates_translation_writes() {
        let mut p = params();
        p.hr = 1.0;
        p.hgcr = 1.0;
        assert_eq!(ntw(&p), 0.0);
        assert_eq!(ndt(&p), 0.0);
        assert_eq!(ngct(&p), 0.0);
        assert_eq!(nmt(&p), 0.0);
        // Data GC is workload-driven and remains.
        assert!(ngcd(&p) > 0.0);
    }
}
