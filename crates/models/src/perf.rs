//! The performance model (Eqs. 1, 4/10, 6/11 of Section 3.1).

use crate::{counts, ModelParams, Timing};

/// Eq. 1: average time of an LPN-to-PPN address translation,
/// `T_at = (1 − H_r) · [T_fr + P_rd · (T_fr + T_fw)]`.
pub fn tat(t: &Timing, p: &ModelParams) -> f64 {
    (1.0 - p.hr) * (t.read_us + p.prd * (t.read_us + t.write_us))
}

/// Eq. 10 (= Eq. 4 with Eq. 7): average time of collecting data blocks per
/// user page access,
/// `T_gcd = R_w · [V_d · (2 − H_gcr) · (T_fr + T_fw) + T_fe] / (N_p − V_d)`.
pub fn tgcd(t: &Timing, p: &ModelParams) -> f64 {
    p.rw * (p.vd * (2.0 - p.hgcr) * (t.read_us + t.write_us) + t.erase_us) / (p.np - p.vd)
}

/// Eq. 11 (= Eq. 6 with Eqs. 3, 8, 9): average time of collecting
/// translation blocks per user page access.
pub fn tgct(t: &Timing, p: &ModelParams) -> f64 {
    ((1.0 - p.hr) * p.prd + p.rw * p.vd * (1.0 - p.hgcr) / (p.np - p.vd))
        * (p.vt * (t.read_us + t.write_us) + t.erase_us)
        / (p.np - p.vt)
}

/// Full per-page-access time breakdown predicted by the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfBreakdown {
    /// Address translation time (Eq. 1).
    pub tat_us: f64,
    /// User page access time (`R_w · T_fw + (1 − R_w) · T_fr`).
    pub user_us: f64,
    /// Data-block GC time per access (Eq. 10).
    pub tgcd_us: f64,
    /// Translation-block GC time per access (Eq. 11).
    pub tgct_us: f64,
}

impl PerfBreakdown {
    /// Total predicted device time per user page access.
    pub fn total_us(&self) -> f64 {
        self.tat_us + self.user_us + self.tgcd_us + self.tgct_us
    }

    /// Fraction of the total that is address-translation overhead (direct
    /// plus translation-block GC) — the cost TPFTL removes.
    pub fn translation_overhead_frac(&self) -> f64 {
        if self.total_us() == 0.0 {
            0.0
        } else {
            (self.tat_us + self.tgct_us) / self.total_us()
        }
    }
}

/// Evaluates the complete performance model.
pub fn breakdown(t: &Timing, p: &ModelParams) -> PerfBreakdown {
    p.assert_valid();
    PerfBreakdown {
        tat_us: tat(t, p),
        user_us: p.rw * t.write_us + (1.0 - p.rw) * t.read_us,
        tgcd_us: tgcd(t, p),
        tgct_us: tgct(t, p),
    }
}

/// Consistency check used by tests: Eq. 10 equals Eq. 4 evaluated from the
/// operation counts, and Eq. 11 equals Eq. 6 likewise.
pub fn tgcd_from_counts(t: &Timing, p: &ModelParams) -> f64 {
    let ngcd = counts::ngcd(p);
    ngcd * (p.vd * (2.0 - p.hgcr) * (t.read_us + t.write_us) + t.erase_us) / p.npa
}

/// Eq. 6 evaluated from Eq. 5/9 counts.
pub fn tgct_from_counts(t: &Timing, p: &ModelParams) -> f64 {
    let ngct = counts::ngct(p);
    ngct * (p.vt * (t.read_us + t.write_us) + t.erase_us) / p.npa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams {
            hr: 0.7,
            prd: 0.4,
            rw: 0.779,
            hgcr: 0.5,
            vd: 20.0,
            vt: 24.0,
            np: 64.0,
            npa: 2_000_000.0,
        }
    }

    #[test]
    fn eq1_hand_computed() {
        let t = Timing::default();
        let p = params();
        // Tat = 0.3 * (25 + 0.4 * 225) = 0.3 * 115 = 34.5.
        assert!((tat(&t, &p) - 34.5).abs() < 1e-9);
        // A perfect cache translates for free.
        let perfect = ModelParams { hr: 1.0, ..p };
        assert_eq!(tat(&t, &perfect), 0.0);
    }

    #[test]
    fn closed_forms_match_count_compositions() {
        let t = Timing::default();
        let p = params();
        assert!((tgcd(&t, &p) - tgcd_from_counts(&t, &p)).abs() < 1e-9);
        assert!((tgct(&t, &p) - tgct_from_counts(&t, &p)).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals() {
        let t = Timing::default();
        let p = params();
        let b = breakdown(&t, &p);
        assert!(b.total_us() > b.user_us);
        assert!(b.translation_overhead_frac() > 0.0);
        assert!(b.translation_overhead_frac() < 1.0);
    }

    #[test]
    fn monotone_in_hit_ratio() {
        // Higher Hr -> strictly less address-translation cost.
        let t = Timing::default();
        let mut prev = f64::INFINITY;
        for hr in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = ModelParams { hr, ..params() };
            let cost = tat(&t, &p) + tgct(&t, &p);
            assert!(cost < prev);
            prev = cost;
        }
    }

    #[test]
    fn monotone_in_prd() {
        let t = Timing::default();
        let mut prev = -1.0;
        for prd in [0.0, 0.3, 0.6, 0.9] {
            let p = ModelParams { prd, ..params() };
            let cost = tat(&t, &p) + tgct(&t, &p);
            assert!(cost > prev);
            prev = cost;
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_params_rejected() {
        let p = ModelParams {
            hr: 1.5,
            ..params()
        };
        let _ = breakdown(&Timing::default(), &p);
    }
}
