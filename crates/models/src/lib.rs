#![warn(missing_docs)]

//! The analytical models of Section 3.1 of the TPFTL paper.
//!
//! Two models quantify how address translation in a demand-based
//! page-level FTL costs performance and lifetime:
//!
//! * the **performance model** — Equations 1–11: the average time of an
//!   address translation ([`perf::tat`]) and the average per-access time
//!   spent collecting data blocks ([`perf::tgcd`], Eq. 10) and translation
//!   blocks ([`perf::tgct`], Eq. 11);
//! * the **write-amplification model** — Equations 12–13
//!   ([`wa::write_amplification`]), composed exactly from the operation
//!   counts of Equations 2–9 ([`counts`]).
//!
//! Both models conclude the same thing (the paper's motivation): the extra
//! cost is governed by the cache hit ratio `H_r` and the probability of
//! replacing a dirty entry `P_rd` — the two quantities TPFTL attacks.
//!
//! The structs mirror Table 1's symbols; the integration tests validate the
//! models against the simulator's measured counters.

use serde::{Deserialize, Serialize};

pub mod counts;
pub mod perf;
pub mod wa;

/// Flash timing parameters (Table 1's `T_fr`, `T_fw`, `T_fe`; defaults per
/// Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Timing {
    /// Page read latency `T_fr` in µs.
    pub read_us: f64,
    /// Page write latency `T_fw` in µs.
    pub write_us: f64,
    /// Block erase latency `T_fe` in µs.
    pub erase_us: f64,
}

impl Default for Timing {
    fn default() -> Self {
        Self {
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
        }
    }
}

/// Workload- and device-dependent model inputs (Table 1 symbols).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Cache hit ratio of address translation, `H_r`.
    pub hr: f64,
    /// Probability of replacing a dirty entry, `P_rd`.
    pub prd: f64,
    /// Page-level write ratio, `R_w`.
    pub rw: f64,
    /// GC hit ratio of migrated pages' entries, `H_gcr`.
    pub hgcr: f64,
    /// Mean valid pages in collected data blocks, `V_d`.
    pub vd: f64,
    /// Mean valid pages in collected translation blocks, `V_t`.
    pub vt: f64,
    /// Pages per flash block, `N_p`.
    pub np: f64,
    /// User page accesses in the workload, `N_pa`.
    pub npa: f64,
}

impl ModelParams {
    /// Validates that every parameter is in its mathematical domain.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain values (a misuse, not a runtime condition).
    pub fn assert_valid(&self) {
        for (name, p) in [
            ("hr", self.hr),
            ("prd", self.prd),
            ("rw", self.rw),
            ("hgcr", self.hgcr),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name}={p} out of [0,1]");
        }
        assert!(self.np > 0.0, "np must be positive");
        assert!(self.vd >= 0.0 && self.vd < self.np, "vd must be in [0, np)");
        assert!(self.vt >= 0.0 && self.vt < self.np, "vt must be in [0, np)");
        assert!(self.npa >= 0.0, "npa must be non-negative");
    }
}
