//! Model-vs-simulation validation (the Section 3.1 contract).
//!
//! Run the simulator, extract the measured Table 1 parameters (`H_r`,
//! `P_rd`, `R_w`, `H_gcr`, `V_d`, `V_t`), plug them into the analytical
//! models, and check the models' predictions against the simulator's own
//! counters.
//!
//! Two of the equations are exact identities on the measured counters and
//! must agree tightly (Eq. 8's `N_tw`, Eq. 5/9's `N_mt`/`N_gct`). Two are
//! deliberate upper bounds: Eq. 3 charges one translation-page update per
//! GC miss although DFTL batches misses sharing a translation page, and
//! Eq. 7's "SSD in full use" steady state ignores the warm-up free blocks
//! the over-provisioning provides — the paper uses the model to show what
//! overhead address translation *can* incur, so the simulator must come in
//! at or below it.

use tpftl_core::ftl::{Dftl, TpFtl, TpftlConfig};
use tpftl_core::SsdConfig;
use tpftl_flash::OpPurpose;
use tpftl_models::{counts, wa, ModelParams};
use tpftl_sim::{RunReport, Ssd};
use tpftl_trace::presets::Workload;

fn run(workload: Workload, dftl: bool, requests: usize) -> RunReport {
    let mut config = SsdConfig::paper_default(workload.address_bytes());
    config.prefill_frac = 1.0;
    let spec = workload.spec(requests);
    if dftl {
        let ftl = Dftl::new(&config).unwrap();
        Ssd::new(ftl, config).unwrap().run(spec.iter(7)).unwrap()
    } else {
        let ftl = TpFtl::new(&config, TpftlConfig::full()).unwrap();
        Ssd::new(ftl, config).unwrap().run(spec.iter(7)).unwrap()
    }
}

fn params_from(report: &RunReport) -> ModelParams {
    ModelParams {
        hr: report.hit_ratio(),
        prd: report.dirty_replacement_prob(),
        rw: report.ftl_stats.page_write_ratio(),
        hgcr: report.ftl_stats.gc_hit_ratio(),
        vd: report.gc.vd_mean(),
        vt: report.gc.vt_mean(),
        np: 64.0,
        npa: report.ftl_stats.user_page_accesses() as f64,
    }
}

/// Eq. 8 is a near-identity on the simulator's counters for DFTL (every
/// dirty replacement writes exactly one translation page); the small slack
/// covers the warm-up phase before the cache is full.
#[test]
fn eq8_ntw_matches_dftl_simulation() {
    let report = run(Workload::Financial1, true, 150_000);
    let p = params_from(&report);
    let predicted = counts::ntw(&p);
    let measured = report.ntw() as f64;
    let rel = (predicted - measured).abs() / measured.max(1.0);
    assert!(
        rel < 0.06,
        "Ntw: model {predicted:.0} vs sim {measured:.0} (rel {rel:.3})"
    );
}

/// Eqs. 5/9 are identities given the measured `N_tw + N_dt`: the number of
/// translation-block GC operations and migrations they predict must match
/// the simulator's direct counts closely.
#[test]
fn eq9_eq5_translation_gc_identities() {
    let report = run(Workload::Financial1, true, 60_000);
    let vt = report.gc.vt_mean();
    let ntw = report.flash.of(OpPurpose::Translation).writes as f64;
    let gct_writes = report.flash.of(OpPurpose::GcTranslation).writes as f64;
    let nmt = report.gc.trans_pages_migrated as f64;
    let ndt = gct_writes - nmt;
    let predicted_ngct = (ntw + ndt) / (64.0 - vt);
    let measured_ngct = report.gc.trans_victims as f64;
    let rel = (predicted_ngct - measured_ngct).abs() / measured_ngct.max(1.0);
    assert!(
        rel < 0.05,
        "Ngct: model {predicted_ngct:.0} vs sim {measured_ngct:.0} (rel {rel:.3})"
    );
    let predicted_nmt = predicted_ngct * vt;
    let rel = (predicted_nmt - nmt).abs() / nmt.max(1.0);
    assert!(
        rel < 0.05,
        "Nmt: model {predicted_nmt:.0} vs sim {nmt:.0} (rel {rel:.3})"
    );
}

/// Eq. 3 upper-bounds `N_dt`: DFTL batches GC misses sharing a translation
/// page, so the measured updates are at most one per miss.
#[test]
fn eq3_ndt_is_an_upper_bound_due_to_gc_batching() {
    let report = run(Workload::Financial1, true, 60_000);
    let gc_misses = (report.ftl_stats.gc_updates - report.ftl_stats.gc_hits) as f64;
    let nmt = report.gc.trans_pages_migrated as f64;
    let measured_ndt = report.flash.of(OpPurpose::GcTranslation).writes as f64 - nmt;
    assert!(
        measured_ndt <= gc_misses + 1.0,
        "batching cannot exceed one update per miss: {measured_ndt} vs {gc_misses}"
    );
    assert!(measured_ndt > 0.0, "GC misses must force some updates");
}

/// The WA model upper-bounds the simulator (GC batching + warm-up) while
/// staying within a factor that keeps it useful, and both agree once the
/// simulator's actual `N_dt` is substituted for the Eq. 3 bound.
#[test]
fn wa_model_bounds_and_tracks_dftl_simulation() {
    let report = run(Workload::Financial1, true, 60_000);
    let p = params_from(&report);
    let predicted = wa::write_amplification(&p);
    let measured = report.write_amplification();
    assert!(
        predicted >= measured * 0.98,
        "the model must not undershoot: model {predicted:.3} vs sim {measured:.3}"
    );
    assert!(
        predicted <= measured * 2.0,
        "the bound should stay useful: model {predicted:.3} vs sim {measured:.3}"
    );

    // Substitute the measured counts for the two bounding equations
    // (Eq. 3's Ndt and Eq. 7's Ngcd) and the model must land on the sim.
    let user_writes = report.ftl_stats.user_page_writes as f64;
    let ntw = report.flash.of(OpPurpose::Translation).writes as f64;
    let nmd = report.flash.of(OpPurpose::GcData).writes as f64;
    let nmt = report.gc.trans_pages_migrated as f64;
    let ndt = report.flash.of(OpPurpose::GcTranslation).writes as f64 - nmt;
    let recomposed = 1.0 + (ntw + nmd + ndt + nmt) / user_writes;
    let rel = (recomposed - measured).abs() / measured;
    assert!(
        rel < 0.01,
        "Eq. 12 recomposition must be exact: {recomposed:.3} vs {measured:.3}"
    );
}

/// The models' headline monotonicity claim, checked end-to-end: TPFTL's
/// higher Hr and lower Prd must yield a lower modeled AND measured WA than
/// DFTL on the same workload.
#[test]
fn better_cache_parameters_mean_lower_wa() {
    let dftl = run(Workload::Financial1, true, 60_000);
    let tpftl = run(Workload::Financial1, false, 60_000);
    assert!(tpftl.hit_ratio() > dftl.hit_ratio());
    assert!(tpftl.dirty_replacement_prob() < dftl.dirty_replacement_prob());
    assert!(tpftl.write_amplification() < dftl.write_amplification());
    let wa_d = wa::write_amplification(&params_from(&dftl));
    let wa_t = wa::write_amplification(&params_from(&tpftl));
    assert!(wa_t < wa_d, "model disagrees with simulation ranking");
}
