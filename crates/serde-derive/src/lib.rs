//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree serde
//! shim, written directly against `proc_macro` (this workspace builds
//! offline, so `syn`/`quote` are unavailable).
//!
//! Supported shapes — exactly what the workspace uses:
//!
//! * structs with named fields (including private fields);
//! * enums whose variants are unit (`Greedy`) or struct-like
//!   (`WearAware { max_wear_delta: u64 }`), encoded externally tagged the
//!   way serde does: `"Greedy"` / `{"WearAware": {"max_wear_delta": 7}}`;
//! * the field attribute `#[serde(default)]`.
//!
//! Anything else (tuple structs/variants, generics, other attributes)
//! produces a compile error naming the limitation.
//!
//! Generated impls live in `const _: () = { extern crate serde as _serde; … }`
//! so they resolve the *consumer's* `serde` dependency (the alias for
//! `tpftl-serde`) without polluting its namespace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's `to_json`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize` (the shim's `from_json`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("::core::compile_error!({msg:?});")
                .parse()
                .expect("compile_error literal parses");
        }
    };
    let body = match (&item.shape, which) {
        (Shape::Struct(fields), Which::Serialize) => struct_serialize(&item.name, fields),
        (Shape::Struct(fields), Which::Deserialize) => struct_deserialize(&item.name, fields),
        (Shape::Newtype, Which::Serialize) => newtype_serialize(&item.name),
        (Shape::Newtype, Which::Deserialize) => newtype_deserialize(&item.name),
        (Shape::Enum(variants), Which::Serialize) => enum_serialize(&item.name, variants),
        (Shape::Enum(variants), Which::Deserialize) => enum_deserialize(&item.name, variants),
    };
    let code = format!("const _: () = {{\n    extern crate serde as _serde;\n{body}\n}};");
    code.parse()
        .unwrap_or_else(|e| panic!("generated code failed to parse: {e}\n{code}"))
}

// ---- item model --------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]`: absent keys deserialize via `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    /// `None` for a unit variant, `Some(fields)` for a struct variant.
    fields: Option<Vec<Field>>,
}

enum Shape {
    Struct(Vec<Field>),
    /// Single-field tuple struct: serializes transparently as its inner
    /// value, matching serde's newtype behavior.
    Newtype,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---- parsing -----------------------------------------------------------------

/// Attribute info we care about while skipping attribute tokens.
#[derive(Default)]
struct AttrInfo {
    serde_default: bool,
}

/// Skips `#[...]` / `#![...]` runs starting at `i`; returns the index after
/// them and whether `#[serde(default)]` was among them.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, AttrInfo) {
    let mut info = AttrInfo::default();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                // Inner attribute `#!` (doc comments on modules) — skip `!`.
                if let Some(TokenTree::Punct(p2)) = tokens.get(i) {
                    if p2.as_char() == '!' {
                        i += 1;
                    }
                }
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if attr_is_serde_default(&g.stream()) {
                        info.serde_default = true;
                    }
                    i += 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, info)
}

fn attr_is_serde_default(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize/Deserialize): expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize/Deserialize): expected a type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive(Serialize/Deserialize) on `{name}`: generic types are not \
                 supported by the in-tree shim"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && kw == "struct" => {
            if count_tuple_fields(g.stream()) != 1 {
                return Err(format!(
                    "derive(Serialize/Deserialize) on `{name}`: tuple structs are \
                     only supported as single-field newtypes"
                ));
            }
            return Ok(Item {
                name,
                shape: Shape::Newtype,
            });
        }
        _ => {
            return Err(format!(
                "derive(Serialize/Deserialize) on `{name}`: only brace-bodied \
                 structs/enums (or newtype structs) are supported"
            ))
        }
    };

    let shape = match kw.as_str() {
        "struct" => Shape::Struct(parse_fields(body, &name)?),
        "enum" => Shape::Enum(parse_variants(body, &name)?),
        other => {
            return Err(format!(
                "derive(Serialize/Deserialize): expected `struct` or `enum`, found `{other}`"
            ))
        }
    };
    Ok(Item { name, shape })
}

/// Number of top-level comma-separated fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    fields + usize::from(saw_token)
}

/// Parses `name: Type, ...` out of a struct (or struct-variant) body.
fn parse_fields(stream: TokenStream, ty: &str) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, info) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, j);
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "derive on `{ty}`: expected a field name, found `{other}` \
                     (tuple fields are not supported)"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("derive on `{ty}`: expected `:` after `{fname}`")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if tokens.get(i).is_some() {
            i += 1; // the comma
        }
        fields.push(Field {
            name: fname,
            default: info.serde_default,
        });
    }
    Ok(fields)
}

/// Parses `Unit, Struct { .. }, ...` out of an enum body.
fn parse_variants(stream: TokenStream, ty: &str) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(&tokens, i);
        i = j;
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "derive on `{ty}`: expected a variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_fields(g.stream(), ty)?;
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "derive on `{ty}`: tuple variant `{vname}` is not supported by \
                     the in-tree shim"
                ))
            }
            _ => None,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => {
                return Err(format!(
                    "derive on `{ty}`: unexpected `{other}` after variant `{vname}` \
                     (discriminants are not supported)"
                ))
            }
        }
        variants.push(Variant {
            name: vname,
            fields,
        });
    }
    Ok(variants)
}

// ---- code generation ---------------------------------------------------------

/// `__obj.push(("f", _serde::Serialize::to_json(<expr>)));` lines.
fn push_fields(out: &mut String, fields: &[Field], expr: impl Fn(&str) -> String) {
    for f in fields {
        out.push_str(&format!(
            "            __obj.push(({:?}.to_string(), _serde::Serialize::to_json(&{})));\n",
            f.name,
            expr(&f.name)
        ));
    }
}

/// `f: match __v.get("f") {{ ... }},` initializer lines.
fn field_initializers(out: &mut String, ty: &str, fields: &[Field]) {
    for f in fields {
        let missing = if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(_serde::Error::missing_field({:?}, {ty:?}))",
                f.name
            )
        };
        out.push_str(&format!(
            "                {name}: match __v.get({name:?}) {{\n\
             \x20                   ::core::option::Option::Some(__x) => _serde::Deserialize::from_json(__x)?,\n\
             \x20                   ::core::option::Option::None => {missing},\n\
             \x20               }},\n",
            name = f.name,
        ));
    }
}

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    push_fields(&mut body, fields, |f| format!("self.{f}"));
    format!(
        "    impl _serde::Serialize for {name} {{\n\
         \x20       fn to_json(&self) -> _serde::Value {{\n\
         \x20           let mut __obj: ::std::vec::Vec<(::std::string::String, _serde::Value)> = ::std::vec::Vec::new();\n\
         {body}\
         \x20           _serde::Value::Object(__obj)\n\
         \x20       }}\n\
         \x20   }}"
    )
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    field_initializers(&mut inits, name, fields);
    format!(
        "    impl _serde::Deserialize for {name} {{\n\
         \x20       fn from_json(__v: &_serde::Value) -> ::core::result::Result<Self, _serde::Error> {{\n\
         \x20           if !__v.is_object() {{\n\
         \x20               return ::core::result::Result::Err(_serde::Error::expected(\"an object\", __v));\n\
         \x20           }}\n\
         \x20           ::core::result::Result::Ok({name} {{\n\
         {inits}\
         \x20           }})\n\
         \x20       }}\n\
         \x20   }}"
    )
}

fn newtype_serialize(name: &str) -> String {
    format!(
        "    impl _serde::Serialize for {name} {{\n\
         \x20       fn to_json(&self) -> _serde::Value {{\n\
         \x20           _serde::Serialize::to_json(&self.0)\n\
         \x20       }}\n\
         \x20   }}"
    )
}

fn newtype_deserialize(name: &str) -> String {
    format!(
        "    impl _serde::Deserialize for {name} {{\n\
         \x20       fn from_json(__v: &_serde::Value) -> ::core::result::Result<Self, _serde::Error> {{\n\
         \x20           ::core::result::Result::Ok({name}(_serde::Deserialize::from_json(__v)?))\n\
         \x20       }}\n\
         \x20   }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => arms.push_str(&format!(
                "                {name}::{v} => _serde::Value::Str({v:?}.to_string()),\n",
                v = v.name
            )),
            Some(fields) => {
                let bindings: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut pushes = String::new();
                push_fields(&mut pushes, fields, |f| f.to_string());
                arms.push_str(&format!(
                    "                {name}::{v} {{ {binds} }} => {{\n\
                     \x20                   let mut __obj: ::std::vec::Vec<(::std::string::String, _serde::Value)> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     \x20                   _serde::Value::Object(::std::vec![({v:?}.to_string(), _serde::Value::Object(__obj))])\n\
                     \x20               }}\n",
                    v = v.name,
                    binds = bindings.join(", "),
                ));
            }
        }
    }
    format!(
        "    impl _serde::Serialize for {name} {{\n\
         \x20       fn to_json(&self) -> _serde::Value {{\n\
         \x20           match self {{\n\
         {arms}\
         \x20           }}\n\
         \x20       }}\n\
         \x20   }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        match &v.fields {
            None => unit_arms.push_str(&format!(
                "                    {v:?} => ::core::result::Result::Ok({name}::{v}),\n",
                v = v.name
            )),
            Some(fields) => {
                let mut inits = String::new();
                field_initializers(&mut inits, name, fields);
                // Struct-variant field lookups read from the inner object.
                let inits = inits.replace("__v.get(", "__inner.get(");
                tagged_arms.push_str(&format!(
                    "                    {v:?} => ::core::result::Result::Ok({name}::{v} {{\n\
                     {inits}\
                     \x20                   }}),\n",
                    v = v.name,
                ));
            }
        }
    }
    format!(
        "    impl _serde::Deserialize for {name} {{\n\
         \x20       fn from_json(__v: &_serde::Value) -> ::core::result::Result<Self, _serde::Error> {{\n\
         \x20           match __v {{\n\
         \x20               _serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         \x20                   __other => ::core::result::Result::Err(_serde::Error::custom(\n\
         \x20                       ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         \x20               }},\n\
         \x20               _serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
         \x20                   let (__tag, __inner) = &__entries[0];\n\
         \x20                   match __tag.as_str() {{\n\
         {tagged_arms}\
         \x20                       __other => ::core::result::Result::Err(_serde::Error::custom(\n\
         \x20                           ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
         \x20                   }}\n\
         \x20               }}\n\
         \x20               __other => ::core::result::Result::Err(_serde::Error::expected(\n\
         \x20                   \"a variant string or single-key object\", __other)),\n\
         \x20           }}\n\
         \x20       }}\n\
         \x20   }}"
    )
}
