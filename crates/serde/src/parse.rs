//! A recursive-descent JSON parser.
//!
//! Accepts standard JSON (RFC 8259). Never panics on malformed input —
//! errors carry a byte offset. Depth is bounded to keep adversarial inputs
//! from overflowing the stack.

use crate::{Error, Value};

const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Copy one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (plus a low surrogate pair if the
    /// first unit is a high surrogate). `self.pos` sits on the first digit.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u')?;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected hex digit")),
            };
            n = n * 16 + d;
            self.pos += 1;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            // Fall through: integers beyond u64 degrade to f64.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("2.5e-1").unwrap(), Value::Float(0.25));
        assert_eq!(
            parse(r#""a\nb\u0041\ud83d\ude00""#).unwrap(),
            Value::Str("a\nbA\u{1F600}".into())
        );
    }

    #[test]
    fn parses_containers() {
        assert_eq!(
            parse(r#"{"a": [1, {"b": null}], "c": false}"#).unwrap(),
            Value::Object(vec![
                (
                    "a".into(),
                    Value::Array(vec![
                        Value::Int(1),
                        Value::Object(vec![("b".into(), Value::Null)]),
                    ])
                ),
                ("c".into(), Value::Bool(false)),
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "+1",
            "01",
            "1.",
            "\"\\q\"",
            "\"unterminated",
            "nul",
            "[1 2]",
            "{1: 2}",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn print_parse_roundtrip() {
        let v = Value::Object(vec![
            ("i".into(), Value::Int(-3)),
            ("u".into(), Value::UInt(u64::MAX)),
            ("f".into(), Value::Float(0.1)),
            (
                "s".into(),
                Value::Str("tab\tnew\nline \"q\" \u{1F600}".into()),
            ),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(parse(&crate::print::to_compact(&v)).unwrap(), v);
        assert_eq!(parse(&crate::print::to_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }
}
