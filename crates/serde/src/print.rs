//! JSON text emission (compact and pretty).

use crate::Value;
use std::fmt::Write;

/// Compact one-line JSON.
pub fn to_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Pretty-printed JSON with two-space indentation.
pub fn to_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, x, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

/// Floats print via `{:?}` — the shortest representation that round-trips,
/// always containing a `.` or exponent so the parser reads a Float back.
/// Non-finite values have no JSON form and print as `null` (serde_json's
/// behavior for its lossy printers).
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("n".into(), Value::Int(3)),
            ("f".into(), Value::Float(1.0)),
            ("s".into(), Value::Str("a\"b".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_compact(&v),
            r#"{"n":3,"f":1.0,"s":"a\"b","xs":[true,null],"empty":[]}"#
        );
        let pretty = to_pretty(&v);
        assert!(pretty.contains("\n  \"n\": 3"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn floats_roundtrip_textually() {
        for f in [0.1, 1.0, -2.5e-7, 1e300, f64::MAX, 123456.789] {
            let mut s = String::new();
            write_float(&mut s, f);
            assert_eq!(s.parse::<f64>().unwrap(), f, "{s}");
            assert!(
                s.contains('.') || s.contains('e') || s.contains('E'),
                "float text {s} must not look like an integer"
            );
        }
    }
}
