//! The JSON tree.

use std::fmt;

/// A parsed or constructed JSON value.
///
/// Integers are kept exact: values that fit `i64` canonicalize to
/// [`Value::Int`], larger unsigned values to [`Value::UInt`] (so `u64::MAX`
/// round-trips bit-exactly, which `f64` could not provide). Objects preserve
/// insertion order — key lookup is a linear scan, which is fine for the
/// small report objects this workspace serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer representable as `i64` (canonical form for those).
    Int(i64),
    /// Integers above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Canonicalizes an integer: `Int` if it fits `i64`, else `UInt`.
    pub fn from_i128(n: i128) -> Value {
        if let Ok(i) = i64::try_from(n) {
            Value::Int(i)
        } else if let Ok(u) = u64::try_from(n) {
            Value::UInt(u)
        } else {
            // Unreachable from the `impl_int!` types (all fit i128 and
            // either i64 or u64); kept total for safety.
            Value::Float(n as f64)
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup: `Some` for the first entry named `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The exact integer, if this is one (floats are *not* coerced).
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i as i128),
            Value::UInt(u) => Some(*u as i128),
            _ => None,
        }
    }

    /// The integer as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|n| u64::try_from(n).ok())
    }

    /// The integer as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_i128().and_then(|n| i64::try_from(n).ok())
    }

    /// The number as `f64` (integers coerce; strings do not).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::print::to_compact(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_integers() {
        assert_eq!(Value::from_i128(5), Value::Int(5));
        assert_eq!(Value::from_i128(-5), Value::Int(-5));
        assert_eq!(Value::from_i128(u64::MAX as i128), Value::UInt(u64::MAX));
    }

    #[test]
    fn accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Null])),
        ]);
        assert!(v.is_object());
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").unwrap().is_array());
        assert!(v.get("missing").is_none());
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Int(-1).as_u64(), None);
    }
}
