//! In-tree JSON serialization shim.
//!
//! This workspace builds in fully offline environments where crates.io is
//! unreachable, so `serde`/`serde_json` cannot be fetched. This crate (and
//! its sibling `tpftl-serde-json`) provide the small slice of their API the
//! workspace actually uses — `#[derive(Serialize, Deserialize)]` on
//! named-field structs and on enums with unit or struct variants
//! (externally tagged, like serde), a JSON [`Value`] tree, and a
//! text parser/printer. Consumer crates alias it under the name `serde`
//! via cargo dependency renaming, so call sites read identically to the
//! real thing.
//!
//! Deliberately unsupported (nothing in-tree needs them): tuple structs,
//! tuple enum variants, generics on derived types, non-string map keys,
//! and every `#[serde(...)]` attribute except `#[serde(default)]`.

pub mod parse;
pub mod print;
mod value;

pub use tpftl_serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::fmt;

/// Serialization/deserialization error.
///
/// Serializing to a [`Value`] cannot fail; the error covers parse errors
/// and shape mismatches during deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A "missing field" error, used by the derive macro.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// A shape-mismatch error ("expected X, got Y"), used by impls below.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Converts a value into its JSON tree representation.
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Reconstructs a value from its JSON tree representation.
pub trait Deserialize: Sized {
    /// Parses `self` out of `v`, failing on shape mismatches.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

// ---- impls for primitives and std containers --------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::from_i128(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i128()
                    .ok_or_else(|| Error::expected("an integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::expected("a number", v))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("a boolean", v))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("a string", v))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("an array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("an array", v))?;
        if arr.len() != 2 {
            return Err(Error::custom("expected a 2-element array"));
        }
        Ok((A::from_json(&arr[0])?, B::from_json(&arr[1])?))
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_json(&42u64.to_json()).unwrap(), 42);
        assert_eq!(i64::from_json(&(-7i64).to_json()).unwrap(), -7);
        assert_eq!(
            u64::from_json(&u64::MAX.to_json()).unwrap(),
            u64::MAX,
            "u64 values beyond i64::MAX survive"
        );
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert!(bool::from_json(&true.to_json()).unwrap());
        assert_eq!(
            String::from_json(&"hi".to_json()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Vec::<u32>::from_json(&vec![1u32, 2, 3].to_json()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u32>::from_json(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&5u32.to_json()).unwrap(), Some(5));
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u64::from_json(&Value::Str("x".into())).is_err());
        assert!(u8::from_json(&Value::Int(300)).is_err());
        assert!(u64::from_json(&Value::Int(-1)).is_err());
        assert!(bool::from_json(&Value::Int(1)).is_err());
        assert!(Vec::<u32>::from_json(&Value::Bool(true)).is_err());
    }

    #[test]
    fn integral_floats_do_not_become_integers() {
        // Counters are always emitted as Int; strictness catches drift.
        assert!(u64::from_json(&Value::Float(3.0)).is_err());
    }
}
