//! Slab-backed store for translation-page payloads.
//!
//! Payloads live in one contiguous arena of fixed-size slots (one slot =
//! `entries_per_translation_page` PPNs) with a free-list and a dense
//! `Ppn -> slot` index, so programming, reading and dropping a payload is
//! index arithmetic — no hashing, no per-page heap allocation in steady
//! state. A slot exists exactly while its page is `Valid`: invalidation
//! recycles the slot, and a block erase never finds one because erases
//! require zero valid pages.

use crate::Ppn;

const SLOT_NONE: u32 = u32::MAX;

/// Arena of translation payloads indexed by physical page number.
#[derive(Debug, Clone)]
pub(crate) struct TpSlab {
    /// PPNs per slot (= mapping entries per translation page).
    entries: usize,
    /// Slot payloads back to back; slot `s` is `arena[s*entries..][..entries]`.
    arena: Vec<Ppn>,
    /// Dense page index: the slot bound to `ppn`, or `SLOT_NONE`.
    slot_of: Vec<u32>,
    /// Recycled slot indices awaiting reuse.
    free: Vec<u32>,
}

impl TpSlab {
    pub(crate) fn new(total_pages: usize, entries: usize) -> Self {
        Self {
            entries,
            arena: Vec::new(),
            slot_of: vec![SLOT_NONE; total_pages],
            free: Vec::new(),
        }
    }

    /// Whether `ppn` holds a translation payload.
    #[inline]
    pub(crate) fn contains(&self, ppn: Ppn) -> bool {
        self.slot_of[ppn as usize] != SLOT_NONE
    }

    /// The payload bound to `ppn`, if any.
    #[inline]
    pub(crate) fn get(&self, ppn: Ppn) -> Option<&[Ppn]> {
        let slot = self.slot_of[ppn as usize];
        (slot != SLOT_NONE).then(|| &self.arena[slot as usize * self.entries..][..self.entries])
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(slot) => slot as usize,
            None => {
                let slot = self.arena.len() / self.entries;
                self.arena.resize(self.arena.len() + self.entries, 0);
                slot
            }
        }
    }

    /// Binds a fresh slot to `ppn`, filled from `payload`.
    pub(crate) fn insert(&mut self, ppn: Ppn, payload: &[Ppn]) {
        debug_assert_eq!(payload.len(), self.entries);
        debug_assert!(!self.contains(ppn), "page already holds a payload");
        let slot = self.alloc_slot();
        self.arena[slot * self.entries..][..self.entries].copy_from_slice(payload);
        self.slot_of[ppn as usize] = slot as u32;
    }

    /// Binds a fresh slot to `dst`, filled from `src`'s payload with
    /// `updates` patched in — the read-modify-write path: one arena-internal
    /// copy, no allocation.
    pub(crate) fn insert_copy(&mut self, dst: Ppn, src: Ppn, updates: &[(u16, Ppn)]) {
        debug_assert!(!self.contains(dst), "page already holds a payload");
        let src_slot = self.slot_of[src as usize];
        debug_assert_ne!(src_slot, SLOT_NONE, "source page has no payload");
        let src_base = src_slot as usize * self.entries;
        let slot = self.alloc_slot();
        self.arena
            .copy_within(src_base..src_base + self.entries, slot * self.entries);
        let out = &mut self.arena[slot * self.entries..][..self.entries];
        for &(off, ppn) in updates {
            out[off as usize] = ppn;
        }
        self.slot_of[dst as usize] = slot as u32;
    }

    /// Unbinds `ppn`'s slot, if any, and recycles it.
    pub(crate) fn remove(&mut self, ppn: Ppn) {
        let slot = std::mem::replace(&mut self.slot_of[ppn as usize], SLOT_NONE);
        if slot != SLOT_NONE {
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_recycled() {
        let mut slab = TpSlab::new(8, 4);
        slab.insert(0, &[1, 2, 3, 4]);
        slab.insert(1, &[5, 6, 7, 8]);
        assert_eq!(slab.arena.len(), 8);
        slab.remove(0);
        assert!(!slab.contains(0));
        // The freed slot is reused: the arena does not grow.
        slab.insert(2, &[9, 9, 9, 9]);
        assert_eq!(slab.arena.len(), 8);
        assert_eq!(slab.get(2).unwrap(), &[9, 9, 9, 9]);
        assert_eq!(slab.get(1).unwrap(), &[5, 6, 7, 8]);
    }

    #[test]
    fn insert_copy_patches_without_growing_past_two_slots() {
        let mut slab = TpSlab::new(8, 4);
        slab.insert(3, &[10, 11, 12, 13]);
        slab.insert_copy(4, 3, &[(1, 99), (3, 77)]);
        assert_eq!(slab.get(4).unwrap(), &[10, 99, 12, 77]);
        assert_eq!(slab.get(3).unwrap(), &[10, 11, 12, 13], "source untouched");
        // Steady-state RMW churn (copy to new, then drop old — the
        // program-before-invalidate order) settles at one extra slot.
        slab.remove(3);
        let mut old = 4u32;
        for dst in [5u32, 6, 7] {
            slab.insert_copy(dst, old, &[(0, dst)]);
            slab.remove(old);
            old = dst;
        }
        assert_eq!(slab.arena.len(), 2 * 4, "free-list reuse caps the arena");
        assert_eq!(slab.get(7).unwrap()[0], 7);
    }

    #[test]
    fn remove_absent_is_a_noop() {
        let mut slab = TpSlab::new(4, 2);
        slab.remove(1);
        assert!(slab.get(1).is_none());
    }
}
