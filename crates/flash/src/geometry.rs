//! Device geometry and timing parameters.

use serde::{Deserialize, Serialize};

use crate::{BlockId, Ppn};

/// Channel/way parallelism of a simulated flash device.
///
/// The device exposes `channels * ways` independent flash units; erase
/// blocks are striped across units (`block % units`), ops on distinct
/// units overlap in simulated time, and ops on the same unit serialize.
/// `bus_us` models the channel bus transfer of one page separately from
/// the cell read/program time: reads occupy the bus *after* the cell
/// sense, programs occupy it *before* the cell program, so a translation
/// read on one unit can pipeline behind a data transfer on another.
///
/// The default (`1` channel, `1` way, no bus cost) reproduces the serial
/// single-unit timing model bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashTopology {
    /// Number of channels (independent buses).
    pub channels: u32,
    /// Number of ways (dies) per channel.
    pub ways: u32,
    /// Bus transfer time of one page in microseconds (0 folds the bus
    /// into the cell latency, as the serial model did).
    pub bus_us: f64,
}

impl Default for FlashTopology {
    fn default() -> Self {
        FlashTopology {
            channels: 1,
            ways: 1,
            bus_us: 0.0,
        }
    }
}

impl FlashTopology {
    /// Total number of independent flash units.
    #[inline]
    pub fn units(&self) -> usize {
        (self.channels as usize) * (self.ways as usize)
    }

    /// The unit serving `block` (blocks are striped round-robin).
    #[inline]
    pub fn unit_of_block(&self, block: BlockId) -> usize {
        (block as usize) % self.units()
    }

    /// The channel a unit's bus traffic goes through.
    #[inline]
    pub fn channel_of_unit(&self, unit: usize) -> usize {
        unit % (self.channels as usize)
    }

    /// Checks the topology is usable.
    pub fn validate(&self) -> crate::Result<()> {
        if self.channels == 0 || self.ways == 0 || !self.bus_us.is_finite() || self.bus_us < 0.0 {
            return Err(crate::FlashError::InvalidGeometry);
        }
        Ok(())
    }
}

/// Geometry and latency parameters of a simulated flash device.
///
/// Defaults follow Table 3 of the paper (taken from Agrawal et al.,
/// USENIX ATC'08): 4 KB pages, 256 KB blocks, 25 µs page read, 200 µs page
/// write, 1.5 ms block erase.
///
/// # Examples
///
/// ```
/// use tpftl_flash::FlashGeometry;
///
/// let geom = FlashGeometry::paper_default(512 << 20, 0.15);
/// assert_eq!(geom.page_bytes, 4096);
/// assert_eq!(geom.pages_per_block, 64);
/// // 512 MB of logical space + 15% over-provisioning (rounded up).
/// assert_eq!(geom.num_blocks, 2048 + 308);
/// // Serial single-unit timing unless a topology is configured.
/// assert_eq!(geom.topology.units(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Size of a flash page in bytes (the unit of read/program).
    pub page_bytes: usize,
    /// Number of pages per erase block.
    pub pages_per_block: usize,
    /// Total number of erase blocks in the device (including
    /// over-provisioned ones).
    pub num_blocks: usize,
    /// Page read latency in microseconds.
    pub read_us: f64,
    /// Page program latency in microseconds.
    pub write_us: f64,
    /// Block erase latency in microseconds.
    pub erase_us: f64,
    /// Channel/way parallelism (defaults to a single serial unit).
    #[serde(default)]
    pub topology: FlashTopology,
}

impl FlashGeometry {
    /// Builds the paper's Table 3 configuration for a device exporting
    /// `logical_bytes` of host-visible capacity with `over_provision`
    /// (e.g. `0.15`) extra physical space.
    ///
    /// # Panics
    ///
    /// Panics if `logical_bytes` is not a multiple of the 256 KB block size
    /// or if `over_provision` is negative.
    pub fn paper_default(logical_bytes: u64, over_provision: f64) -> Self {
        assert!(over_provision >= 0.0, "over-provisioning must be >= 0");
        let page_bytes = 4096usize;
        let pages_per_block = 64usize; // 256 KB / 4 KB.
        let block_bytes = (page_bytes * pages_per_block) as u64;
        assert!(
            logical_bytes.is_multiple_of(block_bytes),
            "logical capacity must be a multiple of the block size"
        );
        let logical_blocks = (logical_bytes / block_bytes) as usize;
        let extra = ((logical_blocks as f64) * over_provision).ceil() as usize;
        Self {
            page_bytes,
            pages_per_block,
            num_blocks: logical_blocks + extra,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: FlashTopology::default(),
        }
    }

    /// Total number of physical pages in the device.
    #[inline]
    pub fn total_pages(&self) -> usize {
        self.num_blocks * self.pages_per_block
    }

    /// Bytes per erase block.
    #[inline]
    pub fn block_bytes(&self) -> usize {
        self.page_bytes * self.pages_per_block
    }

    /// The erase block that `ppn` belongs to.
    #[inline]
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        ppn / self.pages_per_block as u32
    }

    /// Offset of `ppn` within its erase block.
    #[inline]
    pub fn offset_in_block(&self, ppn: Ppn) -> usize {
        (ppn as usize) % self.pages_per_block
    }

    /// First physical page of block `block`.
    #[inline]
    pub fn first_ppn(&self, block: BlockId) -> Ppn {
        block * self.pages_per_block as u32
    }

    /// Validates internal consistency; used by constructors of dependent
    /// structures.
    pub fn validate(&self) -> crate::Result<()> {
        if self.page_bytes == 0
            || self.pages_per_block == 0
            || self.num_blocks == 0
            || self.total_pages() > (u32::MAX as usize)
        {
            return Err(crate::FlashError::InvalidGeometry);
        }
        self.topology.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_512mb() {
        let g = FlashGeometry::paper_default(512 << 20, 0.15);
        assert_eq!(g.page_bytes, 4096);
        assert_eq!(g.pages_per_block, 64);
        assert_eq!(g.block_bytes(), 256 * 1024);
        // 512 MB -> 2048 logical blocks, 15% OP -> 308 extra (ceil of 307.2).
        assert_eq!(g.num_blocks, 2048 + 308);
        assert_eq!(g.total_pages(), (2048 + 308) * 64);
        assert_eq!(g.read_us, 25.0);
        assert_eq!(g.write_us, 200.0);
        assert_eq!(g.erase_us, 1500.0);
        g.validate().unwrap();
    }

    #[test]
    fn paper_default_16gb() {
        let g = FlashGeometry::paper_default(16u64 << 30, 0.15);
        assert_eq!(g.num_blocks, 65536 + 9831);
        g.validate().unwrap();
    }

    #[test]
    fn address_helpers_roundtrip() {
        let g = FlashGeometry::paper_default(512 << 20, 0.0);
        for ppn in [0u32, 1, 63, 64, 65, 4095, 4096] {
            let b = g.block_of(ppn);
            let off = g.offset_in_block(ppn);
            assert_eq!(g.first_ppn(b) + off as u32, ppn);
            assert!(off < g.pages_per_block);
        }
    }

    #[test]
    fn invalid_geometry_detected() {
        let mut g = FlashGeometry::paper_default(512 << 20, 0.0);
        g.num_blocks = 0;
        assert!(g.validate().is_err());
        let mut g2 = FlashGeometry::paper_default(512 << 20, 0.0);
        g2.num_blocks = usize::MAX / 64;
        assert!(g2.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "multiple of the block size")]
    fn unaligned_capacity_panics() {
        let _ = FlashGeometry::paper_default((512 << 20) + 1, 0.15);
    }

    #[test]
    fn topology_defaults_to_serial_unit() {
        let t = FlashTopology::default();
        assert_eq!(t.units(), 1);
        assert_eq!(t.unit_of_block(17), 0);
        assert_eq!(t.bus_us, 0.0);
        t.validate().unwrap();
    }

    #[test]
    fn topology_striping_and_channels() {
        let t = FlashTopology {
            channels: 4,
            ways: 2,
            bus_us: 10.0,
        };
        assert_eq!(t.units(), 8);
        // Blocks stripe round-robin over the 8 units.
        assert_eq!(t.unit_of_block(0), 0);
        assert_eq!(t.unit_of_block(7), 7);
        assert_eq!(t.unit_of_block(8), 0);
        // Units 0..4 sit on channels 0..4, units 4..8 wrap around.
        assert_eq!(t.channel_of_unit(3), 3);
        assert_eq!(t.channel_of_unit(5), 1);
        t.validate().unwrap();
    }

    #[test]
    fn invalid_topology_detected() {
        for t in [
            FlashTopology {
                channels: 0,
                ways: 1,
                bus_us: 0.0,
            },
            FlashTopology {
                channels: 1,
                ways: 0,
                bus_us: 0.0,
            },
            FlashTopology {
                channels: 1,
                ways: 1,
                bus_us: -1.0,
            },
            FlashTopology {
                channels: 1,
                ways: 1,
                bus_us: f64::NAN,
            },
        ] {
            assert!(t.validate().is_err());
            let mut g = FlashGeometry::paper_default(512 << 20, 0.0);
            g.topology = t;
            assert!(g.validate().is_err());
        }
    }

    #[test]
    fn topology_deserializes_with_default() {
        // Old configs without a `topology` key must load as serial.
        let json = r#"{"page_bytes":4096,"pages_per_block":64,"num_blocks":2048,
                       "read_us":25.0,"write_us":200.0,"erase_us":1500.0}"#;
        let g: FlashGeometry = serde_json::from_str(json).unwrap();
        assert_eq!(g.topology, FlashTopology::default());
        // And round-trip with one set.
        let mut g2 = g.clone();
        g2.topology.channels = 8;
        g2.topology.bus_us = 12.5;
        let back: FlashGeometry =
            serde_json::from_str(&serde_json::to_string(&g2).unwrap()).unwrap();
        assert_eq!(back, g2);
    }
}
