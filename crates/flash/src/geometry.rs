//! Device geometry and timing parameters.

use serde::{Deserialize, Serialize};

use crate::{BlockId, Ppn};

/// Geometry and latency parameters of a simulated flash device.
///
/// Defaults follow Table 3 of the paper (taken from Agrawal et al.,
/// USENIX ATC'08): 4 KB pages, 256 KB blocks, 25 µs page read, 200 µs page
/// write, 1.5 ms block erase.
///
/// # Examples
///
/// ```
/// use tpftl_flash::FlashGeometry;
///
/// let geom = FlashGeometry::paper_default(512 << 20, 0.15);
/// assert_eq!(geom.page_bytes, 4096);
/// assert_eq!(geom.pages_per_block, 64);
/// // 512 MB of logical space + 15% over-provisioning (rounded up).
/// assert_eq!(geom.num_blocks, 2048 + 308);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Size of a flash page in bytes (the unit of read/program).
    pub page_bytes: usize,
    /// Number of pages per erase block.
    pub pages_per_block: usize,
    /// Total number of erase blocks in the device (including
    /// over-provisioned ones).
    pub num_blocks: usize,
    /// Page read latency in microseconds.
    pub read_us: f64,
    /// Page program latency in microseconds.
    pub write_us: f64,
    /// Block erase latency in microseconds.
    pub erase_us: f64,
}

impl FlashGeometry {
    /// Builds the paper's Table 3 configuration for a device exporting
    /// `logical_bytes` of host-visible capacity with `over_provision`
    /// (e.g. `0.15`) extra physical space.
    ///
    /// # Panics
    ///
    /// Panics if `logical_bytes` is not a multiple of the 256 KB block size
    /// or if `over_provision` is negative.
    pub fn paper_default(logical_bytes: u64, over_provision: f64) -> Self {
        assert!(over_provision >= 0.0, "over-provisioning must be >= 0");
        let page_bytes = 4096usize;
        let pages_per_block = 64usize; // 256 KB / 4 KB.
        let block_bytes = (page_bytes * pages_per_block) as u64;
        assert!(
            logical_bytes.is_multiple_of(block_bytes),
            "logical capacity must be a multiple of the block size"
        );
        let logical_blocks = (logical_bytes / block_bytes) as usize;
        let extra = ((logical_blocks as f64) * over_provision).ceil() as usize;
        Self {
            page_bytes,
            pages_per_block,
            num_blocks: logical_blocks + extra,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
        }
    }

    /// Total number of physical pages in the device.
    #[inline]
    pub fn total_pages(&self) -> usize {
        self.num_blocks * self.pages_per_block
    }

    /// Bytes per erase block.
    #[inline]
    pub fn block_bytes(&self) -> usize {
        self.page_bytes * self.pages_per_block
    }

    /// The erase block that `ppn` belongs to.
    #[inline]
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        ppn / self.pages_per_block as u32
    }

    /// Offset of `ppn` within its erase block.
    #[inline]
    pub fn offset_in_block(&self, ppn: Ppn) -> usize {
        (ppn as usize) % self.pages_per_block
    }

    /// First physical page of block `block`.
    #[inline]
    pub fn first_ppn(&self, block: BlockId) -> Ppn {
        block * self.pages_per_block as u32
    }

    /// Validates internal consistency; used by constructors of dependent
    /// structures.
    pub fn validate(&self) -> crate::Result<()> {
        if self.page_bytes == 0
            || self.pages_per_block == 0
            || self.num_blocks == 0
            || self.total_pages() > (u32::MAX as usize)
        {
            return Err(crate::FlashError::InvalidGeometry);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_512mb() {
        let g = FlashGeometry::paper_default(512 << 20, 0.15);
        assert_eq!(g.page_bytes, 4096);
        assert_eq!(g.pages_per_block, 64);
        assert_eq!(g.block_bytes(), 256 * 1024);
        // 512 MB -> 2048 logical blocks, 15% OP -> 308 extra (ceil of 307.2).
        assert_eq!(g.num_blocks, 2048 + 308);
        assert_eq!(g.total_pages(), (2048 + 308) * 64);
        assert_eq!(g.read_us, 25.0);
        assert_eq!(g.write_us, 200.0);
        assert_eq!(g.erase_us, 1500.0);
        g.validate().unwrap();
    }

    #[test]
    fn paper_default_16gb() {
        let g = FlashGeometry::paper_default(16u64 << 30, 0.15);
        assert_eq!(g.num_blocks, 65536 + 9831);
        g.validate().unwrap();
    }

    #[test]
    fn address_helpers_roundtrip() {
        let g = FlashGeometry::paper_default(512 << 20, 0.0);
        for ppn in [0u32, 1, 63, 64, 65, 4095, 4096] {
            let b = g.block_of(ppn);
            let off = g.offset_in_block(ppn);
            assert_eq!(g.first_ppn(b) + off as u32, ppn);
            assert!(off < g.pages_per_block);
        }
    }

    #[test]
    fn invalid_geometry_detected() {
        let mut g = FlashGeometry::paper_default(512 << 20, 0.0);
        g.num_blocks = 0;
        assert!(g.validate().is_err());
        let mut g2 = FlashGeometry::paper_default(512 << 20, 0.0);
        g2.num_blocks = usize::MAX / 64;
        assert!(g2.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "multiple of the block size")]
    fn unaligned_capacity_panics() {
        let _ = FlashGeometry::paper_default((512 << 20) + 1, 0.15);
    }
}
