//! Operation accounting.
//!
//! The paper's models (Table 1) distinguish flash operations by *why* they
//! were issued: user data accesses, translation-page accesses during address
//! translation, and both kinds again during garbage collection. The
//! simulator needs exactly that split to compute `N_tw`, `N_md`, `N_dt`,
//! `N_mt`, write amplification, and the response-time breakdown, so every
//! flash operation carries an [`OpPurpose`].

use serde::{Deserialize, Serialize};

/// The kind of a physical flash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Page read.
    Read,
    /// Page program.
    Write,
    /// Block erase.
    Erase,
}

/// Why an operation was issued; mirrors the cost classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpPurpose {
    /// Host-initiated user-data page access.
    HostData,
    /// Translation-page access during the address translation phase
    /// (cache-miss loads and dirty-entry writebacks). Writes here are the
    /// paper's `N_tw`.
    Translation,
    /// Valid-data-page migration during GC of a data block (`N_md`), and
    /// erases of data blocks.
    GcData,
    /// Translation-page traffic caused by GC: updates for migrated data
    /// pages (`N_dt`), migrations of valid translation pages (`N_mt`), and
    /// erases of translation blocks.
    GcTranslation,
}

impl OpPurpose {
    /// All purposes, for iteration in reports.
    pub const ALL: [OpPurpose; 4] = [
        OpPurpose::HostData,
        OpPurpose::Translation,
        OpPurpose::GcData,
        OpPurpose::GcTranslation,
    ];
}

/// Read/write/erase counters for one [`OpPurpose`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PurposeCounts {
    /// Number of page reads.
    pub reads: u64,
    /// Number of page programs.
    pub writes: u64,
    /// Number of block erases.
    pub erases: u64,
}

/// Aggregate operation and latency accounting for a flash device.
///
/// `busy_us` is the cumulative device-busy time; the simulator reads it
/// before and after serving a request to obtain the request's service time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlashStats {
    host_data: PurposeCounts,
    translation: PurposeCounts,
    gc_data: PurposeCounts,
    gc_translation: PurposeCounts,
    /// Cumulative busy time of the device in microseconds.
    pub busy_us: f64,
}

impl FlashStats {
    /// Counters for `purpose`.
    pub fn of(&self, purpose: OpPurpose) -> &PurposeCounts {
        match purpose {
            OpPurpose::HostData => &self.host_data,
            OpPurpose::Translation => &self.translation,
            OpPurpose::GcData => &self.gc_data,
            OpPurpose::GcTranslation => &self.gc_translation,
        }
    }

    fn of_mut(&mut self, purpose: OpPurpose) -> &mut PurposeCounts {
        match purpose {
            OpPurpose::HostData => &mut self.host_data,
            OpPurpose::Translation => &mut self.translation,
            OpPurpose::GcData => &mut self.gc_data,
            OpPurpose::GcTranslation => &mut self.gc_translation,
        }
    }

    /// Records one operation of `kind` for `purpose` taking `latency_us`.
    pub(crate) fn record(&mut self, kind: OpKind, purpose: OpPurpose, latency_us: f64) {
        let c = self.of_mut(purpose);
        match kind {
            OpKind::Read => c.reads += 1,
            OpKind::Write => c.writes += 1,
            OpKind::Erase => c.erases += 1,
        }
        self.busy_us += latency_us;
    }

    /// Total page writes across all purposes.
    pub fn total_writes(&self) -> u64 {
        OpPurpose::ALL.iter().map(|p| self.of(*p).writes).sum()
    }

    /// Total page reads across all purposes.
    pub fn total_reads(&self) -> u64 {
        OpPurpose::ALL.iter().map(|p| self.of(*p).reads).sum()
    }

    /// Total block erases across all purposes.
    pub fn total_erases(&self) -> u64 {
        OpPurpose::ALL.iter().map(|p| self.of(*p).erases).sum()
    }

    /// Translation-page reads from both the address-translation phase and GC.
    pub fn translation_reads(&self) -> u64 {
        self.translation.reads + self.gc_translation.reads
    }

    /// Translation-page writes from both the address-translation phase
    /// (`N_tw`) and GC (`N_dt + N_mt`).
    pub fn translation_writes(&self) -> u64 {
        self.translation.writes + self.gc_translation.writes
    }

    /// Adds `other`'s counters into `self` — the sharded engine's
    /// deterministic stats merge (callers must accumulate in a fixed shard
    /// order so the `busy_us` float sum is reproducible).
    pub fn merge_from(&mut self, other: &FlashStats) {
        for purpose in OpPurpose::ALL {
            let theirs = *other.of(purpose);
            let ours = self.of_mut(purpose);
            ours.reads += theirs.reads;
            ours.writes += theirs.writes;
            ours.erases += theirs.erases;
        }
        self.busy_us += other.busy_us;
    }

    /// Write amplification relative to `user_page_writes` host page writes
    /// (Eq. 12). Returns `None` for read-only workloads.
    pub fn write_amplification(&self, user_page_writes: u64) -> Option<f64> {
        if user_page_writes == 0 {
            return None;
        }
        Some(self.total_writes() as f64 / user_page_writes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_purpose() {
        let mut s = FlashStats::default();
        s.record(OpKind::Read, OpPurpose::HostData, 25.0);
        s.record(OpKind::Write, OpPurpose::Translation, 200.0);
        s.record(OpKind::Write, OpPurpose::Translation, 200.0);
        s.record(OpKind::Erase, OpPurpose::GcData, 1500.0);
        s.record(OpKind::Write, OpPurpose::GcTranslation, 200.0);
        assert_eq!(s.of(OpPurpose::HostData).reads, 1);
        assert_eq!(s.of(OpPurpose::Translation).writes, 2);
        assert_eq!(s.of(OpPurpose::GcData).erases, 1);
        assert_eq!(s.total_writes(), 3);
        assert_eq!(s.total_reads(), 1);
        assert_eq!(s.total_erases(), 1);
        assert_eq!(s.translation_writes(), 3);
        assert!((s.busy_us - 2125.0).abs() < 1e-9);
    }

    #[test]
    fn merge_from_sums_every_purpose() {
        let mut a = FlashStats::default();
        a.record(OpKind::Read, OpPurpose::HostData, 25.0);
        a.record(OpKind::Write, OpPurpose::GcTranslation, 200.0);
        let mut b = FlashStats::default();
        b.record(OpKind::Read, OpPurpose::HostData, 25.0);
        b.record(OpKind::Erase, OpPurpose::GcData, 1500.0);
        a.merge_from(&b);
        assert_eq!(a.of(OpPurpose::HostData).reads, 2);
        assert_eq!(a.of(OpPurpose::GcTranslation).writes, 1);
        assert_eq!(a.of(OpPurpose::GcData).erases, 1);
        assert!((a.busy_us - 1750.0).abs() < 1e-9);
    }

    #[test]
    fn write_amplification_basic() {
        let mut s = FlashStats::default();
        for _ in 0..10 {
            s.record(OpKind::Write, OpPurpose::HostData, 200.0);
        }
        for _ in 0..5 {
            s.record(OpKind::Write, OpPurpose::GcData, 200.0);
        }
        assert_eq!(s.write_amplification(10), Some(1.5));
        assert_eq!(s.write_amplification(0), None);
    }
}
