#![warn(missing_docs)]

//! NAND flash device model for the TPFTL reproduction.
//!
//! This crate models the flash-memory substrate that every FTL in the
//! workspace runs on: an array of erase blocks, each containing pages that
//! move through the NAND state machine `Free -> Valid -> Invalid -> Free`
//! (the last transition only via a block erase). The model enforces the
//! physical constraints a real NAND chip imposes:
//!
//! * pages are the unit of read and program, blocks the unit of erase;
//! * a page can only be programmed once between erases (erase-before-write);
//! * pages within a block must be programmed sequentially;
//! * a block may only be erased when it holds no valid pages (the garbage
//!   collector must migrate them first — erasing live data is an FTL bug and
//!   is reported as [`FlashError::EraseWithValidPages`]).
//!
//! Every operation is attributed to an [`OpPurpose`] (host data, GC data,
//! translation, GC translation) and accounted in [`FlashStats`] together with
//! the latency from [`FlashGeometry`], so the simulator can split the costs
//! of address translation from the costs of user I/O exactly the way the
//! paper's Table 1 symbols do (`N_tw`, `N_md`, `N_dt`, `N_mt`, ...).
//!
//! Translation pages carry an actual payload: the mapping table is persisted
//! through, and migrated by, the flash model itself rather than being
//! shadow-copied in the FTL, which lets the test suite verify that the
//! on-flash mapping state is always consistent. Payloads live in a
//! slab-backed arena (fixed-size slots, free-list, dense `Ppn -> slot`
//! index), so programming or dropping one is index arithmetic with no
//! per-page heap allocation in steady state.

mod error;
mod fault;
mod flash;
mod geometry;
pub mod media;
mod stats;
mod timing;
mod tpslab;

pub use error::FlashError;
pub use fault::{FaultMode, FaultPlan, FaultRecord};
pub use flash::{Flash, PageInfo, PageState};
pub use geometry::{FlashGeometry, FlashTopology};
pub use media::MediaError;
pub use stats::{FlashStats, OpKind, OpPurpose, PurposeCounts};
pub use timing::UnitClocks;

/// Physical page number: a global index over every page of the device.
pub type Ppn = u32;

/// Logical page number as seen by the host after 4 KB-alignment.
pub type Lpn = u32;

/// Virtual translation-page number: index of a 4 KB chunk of the mapping
/// table (the quotient of an [`Lpn`] and the entries-per-translation-page).
pub type Vtpn = u32;

/// Erase-block index.
pub type BlockId = u32;

/// Sentinel used inside persisted translation pages for "not mapped yet".
///
/// The paper stores 4-byte PPNs inside translation pages; we keep the same
/// 4-byte representation and reserve the all-ones value.
pub const PPN_NONE: Ppn = Ppn::MAX;

/// Convenient `Result` alias for flash operations.
pub type Result<T> = core::result::Result<T, FlashError>;
