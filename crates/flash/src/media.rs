//! On-device persistence: the file-backed flash media layout.
//!
//! A [`crate::Flash`] can mirror every state transition to a regular file
//! with a fixed on-device layout, so a process can be killed at an
//! arbitrary instant and a *fresh* process can remount the device from the
//! file alone:
//!
//! ```text
//! offset 0            : superblock copy 0   (4096 B, checksummed)
//! offset 4096         : superblock copy 1   (4096 B, checksummed)
//! offset 8192         : block-meta table    (16 B per erase block,
//!                                            padded to a 4096 B boundary)
//! records region      : one record per physical page, in PPN order:
//!                         [ data region: page_bytes ][ OOB: 64 B ]
//! ```
//!
//! **Superblock election.** Two redundant copies carry a monotonically
//! increasing sequence number (`sb_seq`), the full device geometry, and a
//! CRC64. Every mount writes a bumped copy to slot `sb_seq % 2`, so the
//! copies alternate and at least one complete copy always survives a torn
//! superblock write. [`elect`] picks the newest valid copy; if both fail
//! to decode the mount fails with a typed [`MediaError`] — never a panic.
//!
//! **Commit ordering.** A page program writes the data region first and
//! the OOB last; the OOB's CRC64 — stored in the *final* 8 bytes of the
//! record and covering the data region plus the OOB header — is the commit
//! point. Any write torn before the record's last byte leaves a checksum
//! mismatch, so a half-programmed page can never read back as validly
//! programmed with wrong contents: it classifies as
//! [`PageState::Torn`] (OOB header present) or stays
//! [`PageState::Free`] (OOB untouched). This preserves the RAM model's
//! program-before-invalidate crash-consistency argument on disk: the
//! invalidation marker of the *old* copy sits outside the checksummed
//! region and is only written after the new copy's OOB commit.
//!
//! **Erase.** A completed erase rewrites every OOB of the block to the
//! erased (all-zero) pattern and bumps the block's persistent erase
//! counter; data regions are left as garbage, which is safe because a page
//! is only trusted after a checksummed OOB commit. An *injected* torn
//! erase stamps every OOB with the torn marker, matching the RAM model's
//! whole-block-torn semantics.
//!
//! **Durability scope.** Writes go through the OS page cache and are never
//! fsync'd by the model ([`crate::Flash::sync_backing`] is available for
//! callers that want a barrier). That makes every completed write durable
//! against `SIGKILL` of the process — the page cache belongs to the
//! surviving kernel — but *not* against host power loss; power-loss
//! atomicity is what the in-RAM fault plans simulate deterministically.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::{BlockId, FlashError, FlashGeometry, PageState, Ppn, Result};

/// Size of one superblock copy in bytes.
pub const SUPERBLOCK_BYTES: usize = 4096;

/// Out-of-band area serialized per page record.
pub const OOB_BYTES: usize = 64;

/// Persistent per-block metadata record size (erase counter + CRC).
pub const BLOCK_META_BYTES: usize = 16;

/// Superblock magic ("TFTLSBLK" in spirit).
const SB_MAGIC: u64 = 0x5446_544C_5342_4C4B;

/// Current on-device layout version.
const SB_VERSION: u32 = 1;

/// Bytes of the superblock covered by its CRC64.
const SB_CRC_COVERS: usize = 96;

/// OOB magic of a committed program.
const OOB_PROGRAMMED: u64 = 0x5446_544C_5047_4D44;

/// OOB magic of an explicitly-marked torn page (injected power loss).
const OOB_TORN: u64 = 0x5446_544C_544F_524E;

/// Invalidation marker value (stored *outside* the checksummed region).
const OOB_INVALID: u64 = 0x5446_544C_494E_564C;

/// Magic of the deterministic stamp at the head of a data page's region.
const DATA_STAMP: u64 = 0x5446_544C_4441_5441;

// ---- CRC64 (ECMA-182, reflected) ------------------------------------------

const fn crc64_table() -> [u64; 256] {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

#[inline]
fn crc64_feed(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state = CRC64_TABLE[((state ^ b as u64) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC64 (ECMA-182, reflected) of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    !crc64_feed(!0u64, bytes)
}

// ---- Errors ----------------------------------------------------------------

/// Typed failures of the file-backed media layer.
///
/// Kept `Copy` (like every [`FlashError`]) by carrying the
/// [`std::io::ErrorKind`] instead of the allocated OS error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaError {
    /// An underlying file operation failed.
    Io(std::io::ErrorKind),
    /// Neither superblock copy decodes; the file is not a device image
    /// (or both copies were corrupted).
    NoValidSuperblock,
    /// A structurally sound superblock declares a layout version this
    /// build does not understand.
    UnsupportedVersion(u32),
    /// One superblock copy fails its magic, checksum, or geometry check.
    BadSuperblock,
    /// The file's length does not match the layout its superblock
    /// describes.
    SizeMismatch {
        /// Length the elected superblock's geometry implies.
        expected: u64,
        /// Actual file length.
        got: u64,
    },
    /// A device image's geometry disagrees with the caller's configuration.
    GeometryMismatch,
}

impl core::fmt::Display for MediaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(kind) => write!(f, "backing-file I/O error: {kind}"),
            Self::NoValidSuperblock => write!(f, "no valid superblock copy on the device"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported on-device layout version {v}"),
            Self::BadSuperblock => write!(f, "superblock copy is corrupt"),
            Self::SizeMismatch { expected, got } => {
                write!(f, "device file is {got} bytes, layout expects {expected}")
            }
            Self::GeometryMismatch => {
                write!(f, "device image geometry disagrees with the configuration")
            }
        }
    }
}

impl From<std::io::Error> for MediaError {
    fn from(e: std::io::Error) -> Self {
        MediaError::Io(e.kind())
    }
}

impl From<std::io::Error> for FlashError {
    fn from(e: std::io::Error) -> Self {
        FlashError::Media(MediaError::Io(e.kind()))
    }
}

// ---- Superblock ------------------------------------------------------------

/// The versioned, checksummed mount record stored twice at the head of a
/// device file.
#[derive(Debug, Clone, PartialEq)]
pub struct Superblock {
    /// Full device geometry (including channel/way topology).
    pub geometry: FlashGeometry,
    /// Monotonic superblock sequence number; the copy with the higher
    /// value is newer and wins the mount-time election.
    pub sb_seq: u64,
    /// Number of completed mounts (diagnostic; bumped with `sb_seq`).
    pub mounts: u64,
}

#[inline]
fn get_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

#[inline]
fn get_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

#[inline]
fn get_f64(b: &[u8], off: usize) -> f64 {
    f64::from_bits(get_u64(b, off))
}

impl Superblock {
    /// Serializes the superblock into one [`SUPERBLOCK_BYTES`] copy.
    pub fn encode(&self) -> Vec<u8> {
        let g = &self.geometry;
        let mut b = vec![0u8; SUPERBLOCK_BYTES];
        b[0..8].copy_from_slice(&SB_MAGIC.to_le_bytes());
        b[8..12].copy_from_slice(&SB_VERSION.to_le_bytes());
        // 12..16 reserved.
        b[16..24].copy_from_slice(&self.sb_seq.to_le_bytes());
        b[24..32].copy_from_slice(&self.mounts.to_le_bytes());
        b[32..40].copy_from_slice(&(g.page_bytes as u64).to_le_bytes());
        b[40..48].copy_from_slice(&(g.pages_per_block as u64).to_le_bytes());
        b[48..56].copy_from_slice(&(g.num_blocks as u64).to_le_bytes());
        b[56..64].copy_from_slice(&g.read_us.to_bits().to_le_bytes());
        b[64..72].copy_from_slice(&g.write_us.to_bits().to_le_bytes());
        b[72..80].copy_from_slice(&g.erase_us.to_bits().to_le_bytes());
        b[80..84].copy_from_slice(&g.topology.channels.to_le_bytes());
        b[84..88].copy_from_slice(&g.topology.ways.to_le_bytes());
        b[88..96].copy_from_slice(&g.topology.bus_us.to_bits().to_le_bytes());
        let crc = crc64(&b[..SB_CRC_COVERS]);
        b[SB_CRC_COVERS..SB_CRC_COVERS + 8].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Decodes and validates one superblock copy.
    ///
    /// # Errors
    ///
    /// [`MediaError::BadSuperblock`] on a magic, checksum, length, or
    /// geometry failure; [`MediaError::UnsupportedVersion`] when a
    /// checksummed copy declares an unknown layout version.
    pub fn decode(b: &[u8]) -> core::result::Result<Self, MediaError> {
        if b.len() < SUPERBLOCK_BYTES {
            return Err(MediaError::BadSuperblock);
        }
        if get_u64(b, 0) != SB_MAGIC {
            return Err(MediaError::BadSuperblock);
        }
        if crc64(&b[..SB_CRC_COVERS]) != get_u64(b, SB_CRC_COVERS) {
            return Err(MediaError::BadSuperblock);
        }
        let version = get_u32(b, 8);
        if version != SB_VERSION {
            return Err(MediaError::UnsupportedVersion(version));
        }
        let geometry = FlashGeometry {
            page_bytes: get_u64(b, 32) as usize,
            pages_per_block: get_u64(b, 40) as usize,
            num_blocks: get_u64(b, 48) as usize,
            read_us: get_f64(b, 56),
            write_us: get_f64(b, 64),
            erase_us: get_f64(b, 72),
            topology: crate::FlashTopology {
                channels: get_u32(b, 80),
                ways: get_u32(b, 84),
                bus_us: get_f64(b, 88),
            },
        };
        if geometry.validate().is_err() {
            return Err(MediaError::BadSuperblock);
        }
        Ok(Self {
            geometry,
            sb_seq: get_u64(b, 16),
            mounts: get_u64(b, 24),
        })
    }
}

/// Elects the newest valid superblock copy: both valid → higher `sb_seq`
/// wins (ties go to copy 0); one valid → that copy; neither →
/// [`MediaError::NoValidSuperblock`] (or the more specific
/// [`MediaError::UnsupportedVersion`] if a copy was intact but too new).
/// Never panics, whatever the bytes.
pub fn elect(copy0: &[u8], copy1: &[u8]) -> core::result::Result<(usize, Superblock), MediaError> {
    match (Superblock::decode(copy0), Superblock::decode(copy1)) {
        (Ok(a), Ok(b)) => {
            if b.sb_seq > a.sb_seq {
                Ok((1, b))
            } else {
                Ok((0, a))
            }
        }
        (Ok(a), Err(_)) => Ok((0, a)),
        (Err(_), Ok(b)) => Ok((1, b)),
        (Err(ea), Err(eb)) => match (ea, eb) {
            (MediaError::UnsupportedVersion(v), _) | (_, MediaError::UnsupportedVersion(v)) => {
                Err(MediaError::UnsupportedVersion(v))
            }
            _ => Err(MediaError::NoValidSuperblock),
        },
    }
}

// ---- Layout ----------------------------------------------------------------

/// Byte offsets of every region, derived from the geometry alone.
#[derive(Debug, Clone, Copy)]
struct Layout {
    page_bytes: u64,
    pages_per_block: u64,
    records_off: u64,
    record_len: u64,
    meta_off: u64,
    total_len: u64,
}

fn layout_of(geom: &FlashGeometry) -> Layout {
    let meta_off = (2 * SUPERBLOCK_BYTES) as u64;
    let meta_len = (geom.num_blocks * BLOCK_META_BYTES) as u64;
    let records_off =
        meta_off + meta_len.div_ceil(SUPERBLOCK_BYTES as u64) * SUPERBLOCK_BYTES as u64;
    let record_len = (geom.page_bytes + OOB_BYTES) as u64;
    Layout {
        page_bytes: geom.page_bytes as u64,
        pages_per_block: geom.pages_per_block as u64,
        records_off,
        record_len,
        meta_off,
        total_len: records_off + geom.total_pages() as u64 * record_len,
    }
}

/// Byte range `(offset, length)` of `ppn`'s record — data region followed
/// by its OOB — inside a device file of geometry `geom`. Exposed so
/// corruption tests can tear or flip bytes at arbitrary offsets within a
/// record without re-deriving the layout.
pub fn page_record_range(geom: &FlashGeometry, ppn: Ppn) -> (u64, u64) {
    let l = layout_of(geom);
    (l.records_off + ppn as u64 * l.record_len, l.record_len)
}

/// Total file length of a device image with geometry `geom`.
pub fn device_file_len(geom: &FlashGeometry) -> u64 {
    layout_of(geom).total_len
}

// ---- Per-page classification ----------------------------------------------

/// One page's reconstructed metadata after classification.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PageMeta {
    pub state: PageState,
    pub tag: u32,
    pub seq: u64,
    pub is_translation: bool,
}

// ---- FileBacking -----------------------------------------------------------

/// The open device file plus the derived layout and a reusable record
/// buffer (no per-op allocation on the mirror path).
#[derive(Debug)]
pub(crate) struct FileBacking {
    file: File,
    path: PathBuf,
    layout: Layout,
    buf: Vec<u8>,
}

impl FileBacking {
    fn rec_off(&self, ppn: Ppn) -> u64 {
        self.layout.records_off + ppn as u64 * self.layout.record_len
    }

    fn oob_off(&self, ppn: Ppn) -> u64 {
        self.rec_off(ppn) + self.layout.page_bytes
    }

    /// Creates a fresh device file: sparse zeros (every OOB reads as
    /// erased) plus two identical `sb_seq = 0` superblock copies.
    pub(crate) fn create(path: &Path, geom: &FlashGeometry) -> Result<Self> {
        geom.validate()?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let layout = layout_of(geom);
        file.set_len(layout.total_len)?;
        let sb = Superblock {
            geometry: geom.clone(),
            sb_seq: 0,
            mounts: 0,
        };
        let enc = sb.encode();
        file.write_all_at(&enc, 0)?;
        file.write_all_at(&enc, SUPERBLOCK_BYTES as u64)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            layout,
            buf: vec![0u8; layout.record_len as usize],
        })
    }

    /// Opens an existing device file: reads both superblock copies, elects
    /// the newest valid one, checks the file length against its layout,
    /// and stamps a bumped copy into slot `sb_seq % 2` (the mount record).
    pub(crate) fn open(path: &Path) -> Result<(Self, Superblock)> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut copy0 = vec![0u8; SUPERBLOCK_BYTES];
        let mut copy1 = vec![0u8; SUPERBLOCK_BYTES];
        file.read_exact_at(&mut copy0, 0)?;
        file.read_exact_at(&mut copy1, SUPERBLOCK_BYTES as u64)?;
        let (_, winner) = elect(&copy0, &copy1).map_err(FlashError::Media)?;
        let layout = layout_of(&winner.geometry);
        let got = file.metadata()?.len();
        if got != layout.total_len {
            return Err(FlashError::Media(MediaError::SizeMismatch {
                expected: layout.total_len,
                got,
            }));
        }
        let next = Superblock {
            geometry: winner.geometry.clone(),
            sb_seq: winner.sb_seq + 1,
            mounts: winner.mounts + 1,
        };
        let slot = (next.sb_seq % 2) * SUPERBLOCK_BYTES as u64;
        file.write_all_at(&next.encode(), slot)?;
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                layout,
                buf: vec![0u8; layout.record_len as usize],
            },
            next,
        ))
    }

    /// Path of the device file.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes the file's dirty pages to stable storage.
    pub(crate) fn sync(&self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Reads and classifies every page record. Classification never fails
    /// on page contents (arbitrary corruption degrades to
    /// [`PageState::Torn`]); only real I/O errors propagate.
    pub(crate) fn load_pages(&mut self, total_pages: usize) -> Result<Vec<PageMeta>> {
        let pb = self.layout.page_bytes as usize;
        let mut out = Vec::with_capacity(total_pages);
        for ppn in 0..total_pages as Ppn {
            let off = self.rec_off(ppn);
            self.file.read_exact_at(&mut self.buf, off)?;
            out.push(classify(&self.buf, pb));
        }
        Ok(out)
    }

    /// Reads the persistent per-block erase counters. An all-zero record
    /// means zero erases (fresh sparse file); any other record must pass
    /// its CRC or the counter conservatively reads as zero.
    pub(crate) fn load_erase_counts(&self, num_blocks: usize) -> Result<Vec<u32>> {
        let mut meta = vec![0u8; num_blocks * BLOCK_META_BYTES];
        self.file.read_exact_at(&mut meta, self.layout.meta_off)?;
        let mut out = Vec::with_capacity(num_blocks);
        for rec in meta.chunks_exact(BLOCK_META_BYTES) {
            let count = get_u32(rec, 0);
            let ok = rec.iter().all(|&b| b == 0) || crc64(&rec[..8]) == get_u64(rec, 8);
            out.push(if ok { count } else { 0 });
        }
        Ok(out)
    }

    /// Reads the translation payload of a page already classified as a
    /// committed translation page.
    pub(crate) fn read_payload_into(&mut self, ppn: Ppn, out: &mut Vec<Ppn>) -> Result<()> {
        let pb = self.layout.page_bytes as usize;
        let off = self.rec_off(ppn);
        self.file.read_exact_at(&mut self.buf[..pb], off)?;
        out.clear();
        out.extend(
            self.buf[..pb]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))),
        );
        Ok(())
    }

    /// Builds `ppn`'s full record (data region + OOB) into `self.buf`.
    fn build_record(&mut self, tag: u32, seq: u64, payload: Option<&[Ppn]>) {
        let pb = self.layout.page_bytes as usize;
        match payload {
            Some(entries) => {
                for (chunk, &p) in self.buf[..pb].chunks_exact_mut(4).zip(entries) {
                    chunk.copy_from_slice(&p.to_le_bytes());
                }
            }
            None => {
                // Deterministic data stamp: the simulator carries no host
                // payload, so the region holds {magic, seq, lpn} + zeros.
                self.buf[..pb].fill(0);
                self.buf[0..8].copy_from_slice(&DATA_STAMP.to_le_bytes());
                self.buf[8..16].copy_from_slice(&seq.to_le_bytes());
                self.buf[16..20].copy_from_slice(&tag.to_le_bytes());
            }
        }
        let oob = &mut self.buf[pb..];
        oob.fill(0);
        oob[0..8].copy_from_slice(&OOB_PROGRAMMED.to_le_bytes());
        oob[8..16].copy_from_slice(&seq.to_le_bytes());
        oob[16..20].copy_from_slice(&tag.to_le_bytes());
        oob[20] = payload.is_some() as u8;
        // 24..32 invalid marker: zero (live). 32..56 reserved.
        let crc = {
            let state = crc64_feed(!0u64, &self.buf[..pb]);
            !crc64_feed(state, &self.buf[pb..pb + 24])
        };
        self.buf[pb + 56..pb + 64].copy_from_slice(&crc.to_le_bytes());
    }

    /// Mirrors a completed program: data region first, OOB (the commit
    /// point) last.
    pub(crate) fn program(
        &mut self,
        ppn: Ppn,
        tag: u32,
        seq: u64,
        payload: Option<&[Ppn]>,
    ) -> Result<()> {
        self.build_record(tag, seq, payload);
        let pb = self.layout.page_bytes as usize;
        let off = self.rec_off(ppn);
        self.file.write_all_at(&self.buf[..pb], off)?;
        self.file.write_all_at(&self.buf[pb..], off + pb as u64)?;
        Ok(())
    }

    /// Mirrors an *interrupted* program. Without a tear budget the page is
    /// stamped with the torn OOB marker (the RAM model's deterministic
    /// post-crash state). With `tear = Some(n)`, the first
    /// `n % record_len` bytes of the record the program *would* have
    /// written land on disk and nothing else — the torn-write case a real
    /// power loss produces; the missing CRC tail keeps the page from ever
    /// committing.
    pub(crate) fn torn_program(
        &mut self,
        ppn: Ppn,
        tag: u32,
        seq: u64,
        payload: Option<&[Ppn]>,
        tear: Option<u64>,
    ) -> Result<()> {
        match tear {
            None => self.write_torn_marker(ppn),
            Some(n) => {
                self.build_record(tag, seq, payload);
                let len = (n % self.layout.record_len) as usize;
                self.file
                    .write_all_at(&self.buf[..len], self.rec_off(ppn))?;
                Ok(())
            }
        }
    }

    fn write_torn_marker(&mut self, ppn: Ppn) -> Result<()> {
        let mut oob = [0u8; OOB_BYTES];
        oob[0..8].copy_from_slice(&OOB_TORN.to_le_bytes());
        self.file.write_all_at(&oob, self.oob_off(ppn))?;
        Ok(())
    }

    /// Mirrors an invalidation: one 8-byte marker write outside the
    /// checksummed region, so a torn marker write degrades to "still
    /// valid" and the duplicate is resolved by seq-stamp election.
    pub(crate) fn invalidate(&mut self, ppn: Ppn) -> Result<()> {
        let off = self.oob_off(ppn) + 24;
        self.file.write_all_at(&OOB_INVALID.to_le_bytes(), off)?;
        Ok(())
    }

    /// Mirrors a completed erase: every OOB of the block reverts to the
    /// erased (all-zero) pattern and the persistent erase counter is
    /// rewritten.
    pub(crate) fn erase(&mut self, block: BlockId, erase_count: u32) -> Result<()> {
        let zero = [0u8; OOB_BYTES];
        let first = block as u64 * self.layout.pages_per_block;
        for i in 0..self.layout.pages_per_block {
            self.file
                .write_all_at(&zero, self.oob_off((first + i) as Ppn))?;
        }
        let mut rec = [0u8; BLOCK_META_BYTES];
        rec[0..4].copy_from_slice(&erase_count.to_le_bytes());
        let crc = crc64(&rec[..8]);
        rec[8..16].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all_at(
            &rec,
            self.layout.meta_off + block as u64 * BLOCK_META_BYTES as u64,
        )?;
        Ok(())
    }

    /// Mirrors an *interrupted* erase: every page of the block gets the
    /// torn OOB marker (indeterminate charge), the erase counter stays.
    pub(crate) fn torn_erase(&mut self, block: BlockId) -> Result<()> {
        let first = block as u64 * self.layout.pages_per_block;
        for i in 0..self.layout.pages_per_block {
            self.write_torn_marker((first + i) as Ppn)?;
        }
        Ok(())
    }
}

/// Classifies one record's bytes into a page state. Total: any byte
/// pattern maps to a state, arbitrary corruption degrades to `Torn`.
fn classify(buf: &[u8], page_bytes: usize) -> PageMeta {
    let oob = &buf[page_bytes..];
    let torn = PageMeta {
        state: PageState::Torn,
        tag: 0,
        seq: 0,
        is_translation: false,
    };
    match get_u64(oob, 0) {
        0 => {
            if oob.iter().all(|&b| b == 0) {
                PageMeta {
                    state: PageState::Free,
                    tag: 0,
                    seq: 0,
                    is_translation: false,
                }
            } else {
                // Partial OOB write that never reached the magic: torn.
                torn
            }
        }
        OOB_PROGRAMMED => {
            let stored = get_u64(oob, 56);
            let crc = {
                let state = crc64_feed(!0u64, &buf[..page_bytes]);
                !crc64_feed(state, &oob[..24])
            };
            if crc != stored {
                return torn;
            }
            let invalid = get_u64(oob, 24) == OOB_INVALID;
            PageMeta {
                state: if invalid {
                    PageState::Invalid
                } else {
                    PageState::Valid
                },
                tag: get_u32(oob, 16),
                seq: get_u64(oob, 8),
                is_translation: oob[20] != 0,
            }
        }
        OOB_TORN => torn,
        _ => torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> FlashGeometry {
        FlashGeometry {
            page_bytes: 4096,
            pages_per_block: 64,
            num_blocks: 4,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: crate::FlashTopology::default(),
        }
    }

    #[test]
    fn crc64_known_properties() {
        assert_eq!(crc64(b""), 0);
        assert_ne!(crc64(b"123456789"), 0);
        assert_ne!(crc64(b"abc"), crc64(b"abd"));
        // Chained feeding equals one-shot.
        let one = crc64(b"hello world");
        let chained = {
            let s = crc64_feed(!0u64, b"hello ");
            !crc64_feed(s, b"world")
        };
        assert_eq!(one, chained);
    }

    #[test]
    fn superblock_roundtrip() {
        let mut g = geom();
        g.topology.channels = 4;
        g.topology.bus_us = 12.5;
        let sb = Superblock {
            geometry: g,
            sb_seq: 7,
            mounts: 3,
        };
        let enc = sb.encode();
        assert_eq!(enc.len(), SUPERBLOCK_BYTES);
        let dec = Superblock::decode(&enc).unwrap();
        assert_eq!(dec, sb);
    }

    #[test]
    fn superblock_rejects_corruption_typed() {
        let sb = Superblock {
            geometry: geom(),
            sb_seq: 1,
            mounts: 1,
        };
        let enc = sb.encode();
        // Any single-byte flip in the covered region breaks the CRC.
        for off in [0usize, 5, 17, 40, 95, 99] {
            let mut bad = enc.clone();
            bad[off] ^= 0xFF;
            assert!(Superblock::decode(&bad).is_err(), "flip at {off}");
        }
        // Version bump with a re-sealed CRC is typed as unsupported.
        let mut newer = enc.clone();
        newer[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc64(&newer[..SB_CRC_COVERS]);
        newer[SB_CRC_COVERS..SB_CRC_COVERS + 8].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Superblock::decode(&newer),
            Err(MediaError::UnsupportedVersion(99))
        );
        assert!(Superblock::decode(&[0u8; 10]).is_err());
    }

    #[test]
    fn election_prefers_newer_seq() {
        let mk = |seq| {
            Superblock {
                geometry: geom(),
                sb_seq: seq,
                mounts: seq,
            }
            .encode()
        };
        let (i, w) = elect(&mk(3), &mk(9)).unwrap();
        assert_eq!((i, w.sb_seq), (1, 9));
        let (i, w) = elect(&mk(9), &mk(3)).unwrap();
        assert_eq!((i, w.sb_seq), (0, 9));
        // Tie goes to copy 0.
        let (i, _) = elect(&mk(5), &mk(5)).unwrap();
        assert_eq!(i, 0);
        // One corrupt copy falls back to the other.
        let mut bad = mk(9);
        bad[20] ^= 1;
        let (i, w) = elect(&bad, &mk(3)).unwrap();
        assert_eq!((i, w.sb_seq), (1, 3));
        // Both corrupt fails typed.
        assert_eq!(
            elect(&[0u8; SUPERBLOCK_BYTES], &[0u8; SUPERBLOCK_BYTES]),
            Err(MediaError::NoValidSuperblock)
        );
    }

    #[test]
    fn layout_is_page_aligned_and_covers_device() {
        let g = geom();
        let l = layout_of(&g);
        assert_eq!(l.meta_off, 8192);
        assert_eq!(l.records_off % SUPERBLOCK_BYTES as u64, 0);
        assert_eq!(l.record_len, 4096 + 64);
        let (off, len) = page_record_range(&g, 0);
        assert_eq!(off, l.records_off);
        assert_eq!(len, l.record_len);
        let (last, _) = page_record_range(&g, (g.total_pages() - 1) as Ppn);
        assert_eq!(last + l.record_len, l.total_len);
        assert_eq!(device_file_len(&g), l.total_len);
    }

    #[test]
    fn classify_is_total_over_random_bytes() {
        // Arbitrary garbage in a record must classify (mostly as torn),
        // never panic, and never look validly programmed.
        let pb = 128usize;
        let mut buf = vec![0u8; pb + OOB_BYTES];
        assert_eq!(classify(&buf, pb).state, PageState::Free);
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..2000 {
            for b in buf.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *b = x as u8;
            }
            let m = classify(&buf, pb);
            // A random OOB magic is (essentially) never the committed one
            // with a matching CRC; either way the classifier must not
            // produce a Valid page from garbage.
            assert_ne!(m.state, PageState::Valid);
            assert_ne!(m.state, PageState::Invalid);
        }
    }
}
