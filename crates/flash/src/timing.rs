//! Channel/way unit-clock timing model.
//!
//! [`UnitClocks`] replaces the implicit "one serial unit" timing of
//! `FlashStats::busy_us` with a per-unit next-free-time clock: every flash
//! op is dispatched to the unit owning its block, starts no earlier than
//! both (a) the dependency frontier of the command stream issuing it and
//! (b) the instant its unit is free, and completes after its cell latency
//! plus — for page transfers — a channel bus slot. The whole model is a
//! fixed pair of `f64` arrays and pure arithmetic per op: no heap traffic,
//! no event queue, nothing allocated on the hot path.
//!
//! Dependencies are expressed with a single *frontier* clock: ops issued
//! back to back chain (each op leaves the frontier at its completion
//! time), and callers that know two op chains are independent — pages of
//! one host request, GC migrations of distinct pages, a fire-and-forget
//! translation-page writeback — rewind the frontier with
//! [`UnitClocks::relax_to`] before issuing the second chain. Per-unit
//! serialization still applies after a relax, so independent chains only
//! overlap where the geometry really allows it.
//!
//! With 1 channel, 1 way and no bus cost, every op starts exactly when
//! the previous op finished, so the device clock accumulates `t += l` in
//! the same order `FlashStats::busy_us` does — bit-identical to the
//! serial model (a property test in `tests/timing_props.rs` pins this).

use crate::geometry::FlashTopology;

/// Per-unit next-free-time clocks for the channel/way timing model.
///
/// All times are simulated microseconds since the device clock's origin
/// (reset by [`UnitClocks::reset`], typically after bootstrap/prefill).
#[derive(Debug, Clone)]
pub struct UnitClocks {
    /// When each (channel, way) unit finishes its last accepted op.
    unit_free_us: Box<[f64]>,
    /// When each channel's bus finishes its last page transfer.
    chan_free_us: Box<[f64]>,
    /// Dependency frontier: earliest start time of the next issued op.
    frontier_us: f64,
    /// Device makespan: completion time of the latest op accepted so far.
    done_us: f64,
    /// Number of channels (for unit -> channel mapping).
    channels: usize,
    /// Bus transfer time of one page in microseconds.
    bus_us: f64,
}

impl UnitClocks {
    /// Builds clocks for `topology`, all starting at time zero.
    pub fn new(topology: &FlashTopology) -> Self {
        let units = topology.units().max(1);
        let channels = (topology.channels as usize).max(1);
        UnitClocks {
            unit_free_us: vec![0.0; units].into_boxed_slice(),
            chan_free_us: vec![0.0; channels].into_boxed_slice(),
            frontier_us: 0.0,
            done_us: 0.0,
            channels,
            bus_us: topology.bus_us,
        }
    }

    /// Rewinds every clock to time zero (measurement restart).
    pub fn reset(&mut self) {
        self.unit_free_us.fill(0.0);
        self.chan_free_us.fill(0.0);
        self.frontier_us = 0.0;
        self.done_us = 0.0;
    }

    /// Number of independent units being modeled.
    #[inline]
    pub fn units(&self) -> usize {
        self.unit_free_us.len()
    }

    /// Current dependency frontier (completion time of the last issued
    /// op chain).
    #[inline]
    pub fn frontier_us(&self) -> f64 {
        self.frontier_us
    }

    /// Sets the dependency frontier, letting the next op chain start at
    /// `t` (subject to unit availability). Callers use this to declare
    /// that upcoming ops do not depend on the ops issued since `t`.
    #[inline]
    pub fn relax_to(&mut self, t: f64) {
        self.frontier_us = t;
    }

    /// Completion time of the latest op accepted so far (device makespan).
    #[inline]
    pub fn done_us(&self) -> f64 {
        self.done_us
    }

    /// Accounts a page read on `unit`: cell sense, then a bus transfer on
    /// the unit's channel. Returns the completion time.
    #[inline]
    pub fn read(&mut self, unit: usize, cell_us: f64) -> f64 {
        let start = self.frontier_us.max(self.unit_free_us[unit]);
        let cell_done = start + cell_us;
        let done = if self.bus_us == 0.0 {
            cell_done
        } else {
            // Data leaves the cell register over the channel bus; the die
            // stays busy until its register drains.
            let ch = unit % self.channels;
            let bus_start = cell_done.max(self.chan_free_us[ch]);
            let bus_done = bus_start + self.bus_us;
            self.chan_free_us[ch] = bus_done;
            bus_done
        };
        self.finish(unit, done)
    }

    /// Accounts a page program on `unit`: a bus transfer on the unit's
    /// channel, then the cell program. Returns the completion time.
    #[inline]
    pub fn write(&mut self, unit: usize, cell_us: f64) -> f64 {
        let start = self.frontier_us.max(self.unit_free_us[unit]);
        let cell_start = if self.bus_us == 0.0 {
            start
        } else {
            // The page is shipped to the die's register before programming.
            let ch = unit % self.channels;
            let bus_start = start.max(self.chan_free_us[ch]);
            let bus_done = bus_start + self.bus_us;
            self.chan_free_us[ch] = bus_done;
            bus_done
        };
        let done = cell_start + cell_us;
        self.finish(unit, done)
    }

    /// Accounts a block erase on `unit` (no bus traffic). Returns the
    /// completion time.
    #[inline]
    pub fn erase(&mut self, unit: usize, cell_us: f64) -> f64 {
        let start = self.frontier_us.max(self.unit_free_us[unit]);
        self.finish(unit, start + cell_us)
    }

    #[inline]
    fn finish(&mut self, unit: usize, done: f64) -> f64 {
        self.unit_free_us[unit] = done;
        self.frontier_us = done;
        if done > self.done_us {
            self.done_us = done;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(channels: u32, ways: u32, bus_us: f64) -> FlashTopology {
        FlashTopology {
            channels,
            ways,
            bus_us,
        }
    }

    #[test]
    fn serial_unit_chains_ops() {
        let mut c = UnitClocks::new(&topo(1, 1, 0.0));
        assert_eq!(c.read(0, 25.0), 25.0);
        assert_eq!(c.write(0, 200.0), 225.0);
        assert_eq!(c.erase(0, 1500.0), 1725.0);
        assert_eq!(c.done_us(), 1725.0);
        assert_eq!(c.frontier_us(), 1725.0);
    }

    #[test]
    fn independent_units_overlap_after_relax() {
        let mut c = UnitClocks::new(&topo(2, 1, 0.0));
        let a = c.write(0, 200.0);
        c.relax_to(0.0); // The second write does not depend on the first.
        let b = c.write(1, 200.0);
        assert_eq!(a, 200.0);
        assert_eq!(b, 200.0); // Fully overlapped on the other unit.
        assert_eq!(c.done_us(), 200.0);
    }

    #[test]
    fn same_unit_serializes_even_after_relax() {
        let mut c = UnitClocks::new(&topo(2, 1, 0.0));
        let a = c.write(0, 200.0);
        c.relax_to(0.0);
        let b = c.write(0, 200.0); // Same unit: must wait for the die.
        assert_eq!(a, 200.0);
        assert_eq!(b, 400.0);
    }

    #[test]
    fn read_bus_follows_cell_and_contends_per_channel() {
        // Two ways on one channel: cells overlap, the shared bus serializes.
        let mut c = UnitClocks::new(&topo(1, 2, 10.0));
        let a = c.read(0, 25.0);
        c.relax_to(0.0);
        let b = c.read(1, 25.0);
        // Unit 0: cell 0..25, bus 25..35.
        assert_eq!(a, 35.0);
        // Unit 1: cell 0..25, bus waits for the channel until 35, done 45.
        assert_eq!(b, 45.0);
        assert_eq!(c.done_us(), 45.0);
    }

    #[test]
    fn write_bus_precedes_cell() {
        // One way: transfer 0..10, program 10..210.
        let mut c = UnitClocks::new(&topo(1, 1, 10.0));
        assert_eq!(c.write(0, 200.0), 210.0);
        // A second write to the same die cannot start its transfer until
        // the die is ready to accept it: transfer 210..220, cell 220..420.
        c.relax_to(0.0);
        assert_eq!(c.write(0, 200.0), 420.0);
    }

    #[test]
    fn translation_read_pipelines_behind_data_program() {
        // The FMMU-style win: while unit 0 programs a data page, unit 1
        // serves a translation-page read, overlapping all but bus time.
        let mut c = UnitClocks::new(&topo(2, 1, 10.0));
        let data = c.write(0, 200.0); // bus 0..10, cell 10..210
        c.relax_to(0.0);
        let map = c.read(1, 25.0); // cell 0..25, bus (ch 1) 25..35
        assert_eq!(data, 210.0);
        assert_eq!(map, 35.0);
        assert_eq!(c.done_us(), 210.0);
    }

    #[test]
    fn reset_restarts_the_clock() {
        let mut c = UnitClocks::new(&topo(4, 2, 5.0));
        c.write(3, 200.0);
        c.erase(5, 1500.0);
        c.reset();
        assert_eq!(c.frontier_us(), 0.0);
        assert_eq!(c.done_us(), 0.0);
        assert_eq!(c.read(3, 25.0), 30.0);
    }
}
