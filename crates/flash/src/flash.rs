//! The flash device model proper.

use std::path::Path;

use crate::media::FileBacking;
use crate::timing::UnitClocks;
use crate::tpslab::TpSlab;
use crate::{
    BlockId, FaultPlan, FaultRecord, FlashError, FlashGeometry, FlashStats, OpKind, OpPurpose, Ppn,
    Result,
};

/// State of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageState {
    /// Erased and programmable.
    Free,
    /// Programmed and holding live data.
    Valid,
    /// Programmed but superseded; reclaimable by GC.
    Invalid,
    /// A program or erase was interrupted by power loss: the cells hold
    /// indeterminate charge. Unreadable and unprogrammable (it sits behind
    /// the write pointer) until its block is erased.
    Torn,
}

/// Metadata returned by [`Flash::read_page`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// The out-of-band tag stored at program time (LPN for data pages,
    /// VTPN for translation pages).
    pub tag: u32,
    /// Whether the page carries a translation payload.
    pub is_translation: bool,
}

/// What a program is committing: plain host/GC data, a full translation
/// payload, or a translation RMW copy (source page + patches). Carries
/// everything the file mirror needs to serialize the page — including the
/// page an interrupted program *would* have written.
enum TpContent<'a> {
    Data,
    Tp(&'a [Ppn]),
    TpFrom(Ppn, &'a [(u16, Ppn)]),
}

/// A simulated NAND flash device.
///
/// See the crate-level documentation for the invariants enforced. All state
/// transitions go through the public methods, which makes it possible to
/// property-test the device against a simple oracle.
///
/// # Examples
///
/// ```
/// use tpftl_flash::{Flash, FlashGeometry, OpPurpose, PageState};
///
/// let geom = FlashGeometry::paper_default(512 << 20, 0.15);
/// let mut flash = Flash::new(geom).unwrap();
/// let ppn = flash.next_free_ppn(0).unwrap();
/// flash.program_page(ppn, 42, OpPurpose::HostData).unwrap();
/// assert_eq!(flash.state(ppn).unwrap(), PageState::Valid);
/// assert_eq!(flash.read_page(ppn, OpPurpose::HostData).unwrap().tag, 42);
/// ```
#[derive(Debug)]
pub struct Flash {
    geom: FlashGeometry,
    entries_per_tp: usize,
    state: Vec<PageState>,
    tag: Vec<u32>,
    /// Per block: offset of the next page to program (`pages_per_block`
    /// means the block is fully programmed).
    write_ptr: Vec<u32>,
    valid_count: Vec<u32>,
    erase_count: Vec<u32>,
    /// Slab-backed translation-payload store: payloads for valid
    /// translation pages, addressed by PPN through a dense slot index.
    tp: TpSlab,
    /// Out-of-band program sequence stamp per page (0 = never programmed
    /// since the last erase). Monotonic across the device's life, so crash
    /// recovery can order two valid copies of the same logical page.
    seq: Vec<u64>,
    next_seq: u64,
    faults: Option<FaultPlan>,
    stats: FlashStats,
    /// Channel/way unit clocks (simulated time; see [`UnitClocks`]).
    clocks: UnitClocks,
    /// Cached `geom.topology.units()` so the hot path can skip the unit
    /// computation entirely on the default serial topology.
    units: usize,
    /// Optional file backing: every state transition is mirrored to a
    /// device file with the fixed on-device layout of [`crate::media`],
    /// so the device survives process death. `None` (the default) is the
    /// pure-RAM arena with zero overhead.
    backing: Option<FileBacking>,
}

impl Clone for Flash {
    /// Clones the in-RAM device state. A file backing is **not** cloned:
    /// the clone is a detached RAM snapshot (two handles appending to one
    /// device file would corrupt its append order).
    fn clone(&self) -> Self {
        Self {
            geom: self.geom.clone(),
            entries_per_tp: self.entries_per_tp,
            state: self.state.clone(),
            tag: self.tag.clone(),
            write_ptr: self.write_ptr.clone(),
            valid_count: self.valid_count.clone(),
            erase_count: self.erase_count.clone(),
            tp: self.tp.clone(),
            seq: self.seq.clone(),
            next_seq: self.next_seq,
            faults: self.faults.clone(),
            stats: self.stats.clone(),
            clocks: self.clocks.clone(),
            units: self.units,
            backing: None,
        }
    }
}

impl Flash {
    /// Creates a fully erased device with the given geometry.
    ///
    /// The number of mapping entries per translation page is
    /// `page_bytes / 4` (4-byte PPNs, as in the paper: 1024 entries in a
    /// 4 KB page).
    pub fn new(geom: FlashGeometry) -> Result<Self> {
        geom.validate()?;
        let pages = geom.total_pages();
        let blocks = geom.num_blocks;
        let entries_per_tp = geom.page_bytes / 4;
        Ok(Self {
            entries_per_tp,
            state: vec![PageState::Free; pages],
            tag: vec![0; pages],
            write_ptr: vec![0; blocks],
            valid_count: vec![0; blocks],
            erase_count: vec![0; blocks],
            tp: TpSlab::new(pages, entries_per_tp),
            seq: vec![0; pages],
            next_seq: 1,
            faults: None,
            stats: FlashStats::default(),
            clocks: UnitClocks::new(&geom.topology),
            units: geom.topology.units(),
            geom,
            backing: None,
        })
    }

    /// Creates a fully erased device backed by a fresh device file at
    /// `path` (truncating anything already there). Every subsequent state
    /// transition is mirrored to the file with commit ordering that keeps
    /// the on-disk image crash-consistent at any instant; see
    /// [`crate::media`].
    pub fn create_file<P: AsRef<Path>>(geom: FlashGeometry, path: P) -> Result<Self> {
        let backing = FileBacking::create(path.as_ref(), &geom)?;
        let mut flash = Self::new(geom)?;
        flash.backing = Some(backing);
        Ok(flash)
    }

    /// Opens an existing device file and reconstructs the full device
    /// state from it alone: superblock election picks the newest valid
    /// copy (geometry, mount stamp), every page record is classified from
    /// its checksummed OOB (committed → `Valid`/`Invalid` with its seq
    /// stamp and payload, interrupted → `Torn`, untouched → `Free`), and
    /// per-block write pointers, valid counts, and erase counters are
    /// rebuilt. Typically followed by `recovery::crash_mount` on the
    /// returned device.
    ///
    /// # Errors
    ///
    /// [`FlashError::Media`] when the file is missing, both superblock
    /// copies are corrupt, the layout version is unknown, or the file
    /// length disagrees with the elected geometry. Never panics on
    /// corrupt record bytes — those classify as torn pages.
    pub fn open_file<P: AsRef<Path>>(path: P) -> Result<Self> {
        let (mut backing, sb) = FileBacking::open(path.as_ref())?;
        let geom = sb.geometry;
        let metas = backing.load_pages(geom.total_pages())?;
        let erase_count = backing.load_erase_counts(geom.num_blocks)?;
        let mut flash = Self::new(geom)?;
        flash.erase_count = erase_count;
        let mut scratch: Vec<Ppn> = Vec::new();
        for (i, m) in metas.iter().enumerate() {
            let ppn = i as Ppn;
            let block = flash.geom.block_of(ppn) as usize;
            flash.state[i] = m.state;
            flash.tag[i] = m.tag;
            flash.seq[i] = m.seq;
            if m.state == PageState::Valid {
                flash.valid_count[block] += 1;
                if m.is_translation {
                    backing.read_payload_into(ppn, &mut scratch)?;
                    flash.tp.insert(ppn, &scratch);
                }
            }
            if m.state != PageState::Free {
                let wp = flash.geom.offset_in_block(ppn) as u32 + 1;
                if wp > flash.write_ptr[block] {
                    flash.write_ptr[block] = wp;
                }
            }
        }
        // Only the *relative* order of live stamps matters to recovery, so
        // restarting just past the maximum surviving stamp is safe even if
        // the globally newest page has been erased.
        flash.next_seq = metas.iter().map(|m| m.seq).max().unwrap_or(0) + 1;
        flash.backing = Some(backing);
        Ok(flash)
    }

    /// Path of the backing device file, if this device has one.
    pub fn backing_path(&self) -> Option<&Path> {
        self.backing.as_ref().map(FileBacking::path)
    }

    /// Whether this device mirrors to a backing file.
    pub fn has_backing(&self) -> bool {
        self.backing.is_some()
    }

    /// Flushes the backing file's dirty pages to stable storage (fsync).
    /// A no-op on RAM-only devices. The mirror path itself never syncs —
    /// completed writes are durable against process death (the page cache
    /// survives `SIGKILL`) but need this barrier to survive host power
    /// loss.
    pub fn sync_backing(&mut self) -> Result<()> {
        match &mut self.backing {
            Some(b) => b.sync(),
            None => Ok(()),
        }
    }

    /// The device geometry.
    #[inline]
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    /// Number of mapping entries a translation page holds.
    #[inline]
    pub fn entries_per_translation_page(&self) -> usize {
        self.entries_per_tp
    }

    /// Accumulated operation statistics.
    #[inline]
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Clears the operation statistics (op counts and busy time) and
    /// rewinds the simulated unit clocks to zero, leaving device state and
    /// per-block wear counters untouched. Used after formatting/pre-filling
    /// so measurements cover only the workload.
    pub fn reset_stats(&mut self) {
        self.stats = FlashStats::default();
        self.clocks.reset();
    }

    // ---- Simulated-time clocks ----------------------------------------------

    /// The unit this page's block is served by (0 on the serial topology).
    #[inline]
    fn unit_of(&self, ppn: Ppn) -> usize {
        if self.units == 1 {
            0
        } else {
            (self.geom.block_of(ppn) as usize) % self.units
        }
    }

    /// The channel/way unit clocks (read-only view).
    #[inline]
    pub fn clocks(&self) -> &UnitClocks {
        &self.clocks
    }

    /// Current dependency frontier of the simulated device clock: the
    /// completion time of the last issued op chain, in microseconds.
    #[inline]
    pub fn sim_frontier_us(&self) -> f64 {
        self.clocks.frontier_us()
    }

    /// Declares that the next flash ops depend only on ops completed by
    /// `t`, allowing them to overlap later ops on other units. Per-unit
    /// serialization still applies.
    #[inline]
    pub fn sim_relax_to(&mut self, t: f64) {
        self.clocks.relax_to(t);
    }

    /// Completion time of the latest flash op in simulated microseconds
    /// (device makespan since the last [`Flash::reset_stats`]).
    #[inline]
    pub fn sim_device_done_us(&self) -> f64 {
        self.clocks.done_us()
    }

    // ---- Power-loss fault injection -----------------------------------------

    /// Arms a power-loss [`FaultPlan`]; the corresponding operation will
    /// fail with [`FlashError::PowerLoss`] and the device stays dark (every
    /// later operation also fails) until [`Flash::disarm_faults`].
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes the fault plan (power restored), returning it with its
    /// counters — the first step of a remount.
    pub fn disarm_faults(&mut self) -> Option<FaultPlan> {
        self.faults.take()
    }

    /// The fatal operation, if an armed plan has fired.
    pub fn fault_fired(&self) -> Option<FaultRecord> {
        self.faults.as_ref().and_then(FaultPlan::fired)
    }

    /// Counts one attempted physical op against the armed plan, if any.
    #[inline]
    fn fault_trips(&mut self, kind: OpKind, is_translation_write: bool) -> bool {
        match &mut self.faults {
            None => false,
            Some(fp) => fp.trips(kind, is_translation_write),
        }
    }

    /// Whether the armed plan already fired: the device is dark and every
    /// operation fails without touching state (commands to an unpowered
    /// chip).
    #[inline]
    fn dark(&self) -> bool {
        self.faults.as_ref().is_some_and(|fp| fp.fired().is_some())
    }

    /// Out-of-band program sequence stamp of `ppn` (0 = never programmed
    /// since its block's last erase). Strictly increasing in program order
    /// across the whole device; crash recovery uses it to order two live
    /// copies of the same logical page.
    #[inline]
    pub fn program_seq(&self, ppn: Ppn) -> u64 {
        self.seq[ppn as usize]
    }

    /// Number of torn pages on the device (power-loss damage awaiting an
    /// erase).
    pub fn torn_pages(&self) -> u64 {
        self.state.iter().filter(|&&s| s == PageState::Torn).count() as u64
    }

    fn check_ppn(&self, ppn: Ppn) -> Result<()> {
        if (ppn as usize) < self.state.len() {
            Ok(())
        } else {
            Err(FlashError::OutOfRange(ppn))
        }
    }

    fn check_block(&self, block: BlockId) -> Result<()> {
        if (block as usize) < self.geom.num_blocks {
            Ok(())
        } else {
            Err(FlashError::BlockOutOfRange(block))
        }
    }

    /// Current state of `ppn`.
    pub fn state(&self, ppn: Ppn) -> Result<PageState> {
        self.check_ppn(ppn)?;
        Ok(self.state[ppn as usize])
    }

    /// Out-of-band tag of a valid page.
    pub fn tag(&self, ppn: Ppn) -> Result<u32> {
        self.check_ppn(ppn)?;
        match self.state[ppn as usize] {
            PageState::Valid => Ok(self.tag[ppn as usize]),
            PageState::Free => Err(FlashError::ReadFree(ppn)),
            PageState::Invalid => Err(FlashError::ReadInvalid(ppn)),
            PageState::Torn => Err(FlashError::ReadTorn(ppn)),
        }
    }

    /// The next programmable page of `block`, or `None` if the block is
    /// fully programmed.
    pub fn next_free_ppn(&self, block: BlockId) -> Option<Ppn> {
        self.check_block(block).ok()?;
        let wp = self.write_ptr[block as usize] as usize;
        if wp < self.geom.pages_per_block {
            Some(self.geom.first_ppn(block) + wp as u32)
        } else {
            None
        }
    }

    /// Number of free (programmable) pages left in `block`.
    pub fn free_pages_in(&self, block: BlockId) -> Result<usize> {
        self.check_block(block)?;
        Ok(self.geom.pages_per_block - self.write_ptr[block as usize] as usize)
    }

    /// Number of valid pages in `block`.
    pub fn valid_pages_in(&self, block: BlockId) -> Result<usize> {
        self.check_block(block)?;
        Ok(self.valid_count[block as usize] as usize)
    }

    /// Number of erase cycles `block` has sustained.
    pub fn erase_count(&self, block: BlockId) -> Result<u64> {
        self.check_block(block)?;
        Ok(self.erase_count[block as usize] as u64)
    }

    /// Sum of erase counts across all blocks (equals total erase ops).
    pub fn total_erase_count(&self) -> u64 {
        self.erase_count.iter().map(|&c| c as u64).sum()
    }

    /// Reads page `ppn`, accounting one page-read latency.
    pub fn read_page(&mut self, ppn: Ppn, purpose: OpPurpose) -> Result<PageInfo> {
        if self.dark() {
            return Err(FlashError::PowerLoss);
        }
        self.check_ppn(ppn)?;
        match self.state[ppn as usize] {
            PageState::Valid => {
                if self.fault_trips(OpKind::Read, false) {
                    return Err(FlashError::PowerLoss); // non-destructive
                }
                self.stats.record(OpKind::Read, purpose, self.geom.read_us);
                self.clocks.read(self.unit_of(ppn), self.geom.read_us);
                Ok(PageInfo {
                    tag: self.tag[ppn as usize],
                    is_translation: self.tp.contains(ppn),
                })
            }
            PageState::Free => Err(FlashError::ReadFree(ppn)),
            PageState::Invalid => Err(FlashError::ReadInvalid(ppn)),
            PageState::Torn => Err(FlashError::ReadTorn(ppn)),
        }
    }

    /// Reads the mapping payload of translation page `ppn`, accounting one
    /// page-read latency.
    pub fn read_translation_payload(&mut self, ppn: Ppn, purpose: OpPurpose) -> Result<&[Ppn]> {
        let info = self.read_page(ppn, purpose)?;
        if !info.is_translation {
            return Err(FlashError::NotATranslationPage(ppn));
        }
        // The read above verified the page is valid and holds a payload.
        Ok(self.tp.get(ppn).expect("payload checked above"))
    }

    /// Mirrors a completed program of `ppn` to the backing file, using the
    /// page's just-committed RAM metadata (tag, seq, slab payload).
    #[inline]
    fn mirror_program(&mut self, ppn: Ppn) -> Result<()> {
        let Some(b) = self.backing.as_mut() else {
            return Ok(());
        };
        let i = ppn as usize;
        b.program(ppn, self.tag[i], self.seq[i], self.tp.get(ppn))
    }

    /// Mirrors an *interrupted* program of `ppn` to the backing file: the
    /// torn OOB marker, or — with a tear budget on the fault plan — the
    /// partial prefix of the record the program would have written. The
    /// payload a torn translation RMW *would* have committed is
    /// materialized here on this cold path only (the RAM slab stores
    /// nothing for torn programs).
    fn mirror_torn_program(&mut self, ppn: Ppn, tag: u32, content: &TpContent<'_>) -> Result<()> {
        if self.backing.is_none() {
            return Ok(());
        }
        let tear = self.faults.as_ref().and_then(FaultPlan::tear_bytes);
        // The seq stamp the completed program would have used. RAM leaves
        // `next_seq` unbumped on torn programs, so a later completed
        // program reuses it — harmless: the torn record can never commit.
        let seq = self.next_seq;
        let patched: Vec<Ppn>;
        let payload: Option<&[Ppn]> = match content {
            TpContent::Data => None,
            TpContent::Tp(p) => Some(p),
            TpContent::TpFrom(src, updates) => {
                let mut p = self
                    .tp
                    .get(*src)
                    .expect("source checked by caller")
                    .to_vec();
                for &(off, v) in *updates {
                    p[off as usize] = v;
                }
                patched = p;
                Some(&patched)
            }
        };
        let b = self.backing.as_mut().expect("checked above");
        b.torn_program(ppn, tag, seq, payload, tear)
    }

    fn program_common(
        &mut self,
        ppn: Ppn,
        tag: u32,
        purpose: OpPurpose,
        content: TpContent<'_>,
    ) -> Result<()> {
        if self.dark() {
            return Err(FlashError::PowerLoss);
        }
        self.check_ppn(ppn)?;
        if self.state[ppn as usize] != PageState::Free {
            return Err(FlashError::ProgramNotFree(ppn));
        }
        let block = self.geom.block_of(ppn);
        let expected = self.geom.first_ppn(block) + self.write_ptr[block as usize];
        if ppn != expected {
            return Err(FlashError::NonSequentialProgram {
                requested: ppn,
                expected,
            });
        }
        let is_translation = !matches!(content, TpContent::Data);
        if self.fault_trips(OpKind::Write, is_translation) {
            // The program pulse started: the page is torn (indeterminate
            // charge, behind the write pointer) but never becomes valid.
            self.state[ppn as usize] = PageState::Torn;
            self.write_ptr[block as usize] += 1;
            self.mirror_torn_program(ppn, tag, &content)?;
            return Err(FlashError::PowerLoss);
        }
        self.state[ppn as usize] = PageState::Valid;
        self.tag[ppn as usize] = tag;
        self.seq[ppn as usize] = self.next_seq;
        self.next_seq += 1;
        self.write_ptr[block as usize] += 1;
        self.valid_count[block as usize] += 1;
        match content {
            TpContent::Data => {}
            TpContent::Tp(payload) => self.tp.insert(ppn, payload),
            TpContent::TpFrom(src, updates) => self.tp.insert_copy(ppn, src, updates),
        }
        self.stats
            .record(OpKind::Write, purpose, self.geom.write_us);
        let unit = if self.units == 1 {
            0
        } else {
            (block as usize) % self.units
        };
        self.clocks.write(unit, self.geom.write_us);
        self.mirror_program(ppn)?;
        Ok(())
    }

    /// Programs a data page carrying `tag` (its LPN), accounting one
    /// page-program latency.
    pub fn program_page(&mut self, ppn: Ppn, tag: u32, purpose: OpPurpose) -> Result<()> {
        self.program_common(ppn, tag, purpose, TpContent::Data)
    }

    /// Programs a page at an offset at or beyond the block's write pointer,
    /// skipping intermediate pages. NAND permits programming pages of a
    /// block in ascending order with gaps; skipped pages stay unprogrammed
    /// until the next erase. Needed by block-mapping FTLs, whose page
    /// position within a block is fixed by the logical offset.
    pub fn program_page_at(&mut self, ppn: Ppn, tag: u32, purpose: OpPurpose) -> Result<()> {
        if self.dark() {
            return Err(FlashError::PowerLoss);
        }
        self.check_ppn(ppn)?;
        if self.state[ppn as usize] != PageState::Free {
            return Err(FlashError::ProgramNotFree(ppn));
        }
        let block = self.geom.block_of(ppn);
        let expected = self.geom.first_ppn(block) + self.write_ptr[block as usize];
        if ppn < expected {
            return Err(FlashError::NonSequentialProgram {
                requested: ppn,
                expected,
            });
        }
        if self.fault_trips(OpKind::Write, false) {
            self.state[ppn as usize] = PageState::Torn;
            self.write_ptr[block as usize] = self.geom.offset_in_block(ppn) as u32 + 1;
            self.mirror_torn_program(ppn, tag, &TpContent::Data)?;
            return Err(FlashError::PowerLoss);
        }
        self.state[ppn as usize] = PageState::Valid;
        self.tag[ppn as usize] = tag;
        self.seq[ppn as usize] = self.next_seq;
        self.next_seq += 1;
        self.write_ptr[block as usize] = self.geom.offset_in_block(ppn) as u32 + 1;
        self.valid_count[block as usize] += 1;
        self.stats
            .record(OpKind::Write, purpose, self.geom.write_us);
        let unit = if self.units == 1 {
            0
        } else {
            (block as usize) % self.units
        };
        self.clocks.write(unit, self.geom.write_us);
        self.mirror_program(ppn)?;
        Ok(())
    }

    /// Programs a translation page for `vtpn` with `payload` (one PPN per
    /// mapping entry), accounting one page-program latency.
    pub fn program_translation_page(
        &mut self,
        ppn: Ppn,
        vtpn: u32,
        payload: &[Ppn],
        purpose: OpPurpose,
    ) -> Result<()> {
        if payload.len() != self.entries_per_tp {
            return Err(FlashError::BadPayloadLength {
                got: payload.len(),
                expected: self.entries_per_tp,
            });
        }
        self.program_common(ppn, vtpn, purpose, TpContent::Tp(payload))
    }

    /// Programs a translation page for `vtpn` whose payload is `src`'s
    /// payload with `updates` patched in — the read-modify-write write half.
    /// The payload moves arena-to-arena inside the slab (one copy, no
    /// allocation); `src` itself is left untouched, so the caller keeps the
    /// program-before-invalidate crash-consistency order.
    ///
    /// Accounts one page-program latency; the caller accounts the read of
    /// `src` separately (via [`Flash::read_page`]).
    pub fn program_translation_page_from(
        &mut self,
        ppn: Ppn,
        vtpn: u32,
        src: Ppn,
        updates: &[(u16, Ppn)],
        purpose: OpPurpose,
    ) -> Result<()> {
        self.check_ppn(src)?;
        if !self.tp.contains(src) {
            return Err(FlashError::NotATranslationPage(src));
        }
        self.program_common(ppn, vtpn, purpose, TpContent::TpFrom(src, updates))
    }

    /// Marks a valid page as invalid (superseded). This is a metadata-only
    /// operation with no latency, as in real FTLs where invalidation only
    /// touches RAM-resident block metadata.
    pub fn invalidate(&mut self, ppn: Ppn) -> Result<()> {
        if self.dark() {
            return Err(FlashError::PowerLoss);
        }
        self.check_ppn(ppn)?;
        match self.state[ppn as usize] {
            PageState::Valid => {
                self.state[ppn as usize] = PageState::Invalid;
                let block = self.geom.block_of(ppn);
                self.valid_count[block as usize] -= 1;
                // Stale translation payloads are unreachable in the model
                // (reading invalid pages is an error), so recycle their
                // slab slot eagerly.
                self.tp.remove(ppn);
                if let Some(b) = self.backing.as_mut() {
                    b.invalidate(ppn)?;
                }
                Ok(())
            }
            PageState::Free => Err(FlashError::ReadFree(ppn)),
            PageState::Invalid => Err(FlashError::ReadInvalid(ppn)),
            PageState::Torn => Err(FlashError::ReadTorn(ppn)),
        }
    }

    /// Erases `block`, accounting one block-erase latency.
    ///
    /// All pages of the block must be `Free` or `Invalid`; the garbage
    /// collector must have migrated valid pages beforehand.
    pub fn erase_block(&mut self, block: BlockId, purpose: OpPurpose) -> Result<()> {
        if self.dark() {
            return Err(FlashError::PowerLoss);
        }
        self.check_block(block)?;
        if self.valid_count[block as usize] != 0 {
            return Err(FlashError::EraseWithValidPages(block));
        }
        let first = self.geom.first_ppn(block) as usize;
        if self.fault_trips(OpKind::Erase, false) {
            // The erase pulse was interrupted: every cell of the block holds
            // indeterminate charge, so all of its pages are torn.
            for s in &mut self.state[first..first + self.geom.pages_per_block] {
                *s = PageState::Torn;
            }
            for q in &mut self.seq[first..first + self.geom.pages_per_block] {
                *q = 0;
            }
            self.write_ptr[block as usize] = self.geom.pages_per_block as u32;
            if let Some(b) = self.backing.as_mut() {
                b.torn_erase(block)?;
            }
            return Err(FlashError::PowerLoss);
        }
        for s in &mut self.state[first..first + self.geom.pages_per_block] {
            *s = PageState::Free;
        }
        for q in &mut self.seq[first..first + self.geom.pages_per_block] {
            *q = 0;
        }
        self.write_ptr[block as usize] = 0;
        self.erase_count[block as usize] += 1;
        let count = self.erase_count[block as usize];
        if let Some(b) = self.backing.as_mut() {
            b.erase(block, count)?;
        }
        self.stats
            .record(OpKind::Erase, purpose, self.geom.erase_us);
        let unit = if self.units == 1 {
            0
        } else {
            (block as usize) % self.units
        };
        self.clocks.erase(unit, self.geom.erase_us);
        Ok(())
    }

    /// Iterates over the valid pages of `block` as `(ppn, tag)` pairs.
    ///
    /// The block's state/tag sub-slices are taken once up front, so the
    /// per-page step is a slice walk — no geometry arithmetic or full-array
    /// bounds check per page (this is the GC victim-scan hot path).
    pub fn valid_pages(&self, block: BlockId) -> impl Iterator<Item = (Ppn, u32)> + '_ {
        let first = self.geom.first_ppn(block) as usize;
        let n = self.geom.pages_per_block;
        self.state[first..first + n]
            .iter()
            .zip(&self.tag[first..first + n])
            .enumerate()
            .filter(|(_, (&s, _))| s == PageState::Valid)
            .map(move |(i, (_, &tag))| ((first + i) as Ppn, tag))
    }

    /// Iterates over every valid page of the device as `(ppn, tag,
    /// is_translation)`. Intended for consistency oracles in tests and for
    /// mount-time scans; does not account any latency.
    pub fn scan_valid(&self) -> impl Iterator<Item = (Ppn, u32, bool)> + '_ {
        self.state
            .iter()
            .zip(&self.tag)
            .enumerate()
            .filter(|(_, (&s, _))| s == PageState::Valid)
            .map(|(i, (_, &tag))| (i as Ppn, tag, self.tp.contains(i as Ppn)))
    }

    /// Direct payload access without read accounting; for oracles in tests.
    pub fn peek_translation_payload(&self, ppn: Ppn) -> Option<&[Ppn]> {
        self.tp.get(ppn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Flash {
        // 4 blocks x 64 pages.
        let geom = FlashGeometry {
            page_bytes: 4096,
            pages_per_block: 64,
            num_blocks: 4,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: crate::FlashTopology::default(),
        };
        Flash::new(geom).unwrap()
    }

    #[test]
    fn program_read_invalidate_cycle() {
        let mut f = small();
        let ppn = f.next_free_ppn(0).unwrap();
        assert_eq!(ppn, 0);
        f.program_page(ppn, 7, OpPurpose::HostData).unwrap();
        assert_eq!(f.state(ppn).unwrap(), PageState::Valid);
        assert_eq!(f.read_page(ppn, OpPurpose::HostData).unwrap().tag, 7);
        assert_eq!(f.valid_pages_in(0).unwrap(), 1);
        f.invalidate(ppn).unwrap();
        assert_eq!(f.state(ppn).unwrap(), PageState::Invalid);
        assert_eq!(f.valid_pages_in(0).unwrap(), 0);
        assert_eq!(
            f.read_page(ppn, OpPurpose::HostData),
            Err(FlashError::ReadInvalid(ppn))
        );
    }

    #[test]
    fn sequential_program_enforced() {
        let mut f = small();
        assert_eq!(
            f.program_page(5, 0, OpPurpose::HostData),
            Err(FlashError::NonSequentialProgram {
                requested: 5,
                expected: 0
            })
        );
        f.program_page(0, 0, OpPurpose::HostData).unwrap();
        f.program_page(1, 1, OpPurpose::HostData).unwrap();
        assert_eq!(
            f.program_page(3, 3, OpPurpose::HostData),
            Err(FlashError::NonSequentialProgram {
                requested: 3,
                expected: 2
            })
        );
        // Other blocks have independent write pointers.
        f.program_page(f.geometry().first_ppn(2), 9, OpPurpose::HostData)
            .unwrap();
    }

    #[test]
    fn program_at_allows_skipping_forward_only() {
        let mut f = small();
        f.program_page_at(5, 50, OpPurpose::HostData).unwrap();
        assert_eq!(f.state(5).unwrap(), PageState::Valid);
        // Skipped pages remain free but are behind the write pointer now.
        assert_eq!(f.state(3).unwrap(), PageState::Free);
        assert_eq!(
            f.program_page_at(3, 30, OpPurpose::HostData),
            Err(FlashError::NonSequentialProgram {
                requested: 3,
                expected: 6
            })
        );
        f.program_page_at(6, 60, OpPurpose::HostData).unwrap();
        assert_eq!(f.next_free_ppn(0), Some(7));
        // Erase recovers the skipped pages.
        f.invalidate(5).unwrap();
        f.invalidate(6).unwrap();
        f.erase_block(0, OpPurpose::GcData).unwrap();
        f.program_page(0, 1, OpPurpose::HostData).unwrap();
    }

    #[test]
    fn erase_before_write_enforced() {
        let mut f = small();
        f.program_page(0, 0, OpPurpose::HostData).unwrap();
        assert_eq!(
            f.program_page(0, 0, OpPurpose::HostData),
            Err(FlashError::ProgramNotFree(0))
        );
    }

    #[test]
    fn erase_requires_no_valid_pages() {
        let mut f = small();
        f.program_page(0, 0, OpPurpose::HostData).unwrap();
        assert_eq!(
            f.erase_block(0, OpPurpose::GcData),
            Err(FlashError::EraseWithValidPages(0))
        );
        f.invalidate(0).unwrap();
        f.erase_block(0, OpPurpose::GcData).unwrap();
        assert_eq!(f.state(0).unwrap(), PageState::Free);
        assert_eq!(f.erase_count(0).unwrap(), 1);
        assert_eq!(f.free_pages_in(0).unwrap(), 64);
        // Programmable again from the start.
        f.program_page(0, 3, OpPurpose::HostData).unwrap();
    }

    #[test]
    fn translation_payload_roundtrip() {
        let mut f = small();
        let payload = vec![crate::PPN_NONE; 1024];
        f.program_translation_page(0, 12, &payload, OpPurpose::Translation)
            .unwrap();
        let info = f.read_page(0, OpPurpose::Translation).unwrap();
        assert!(info.is_translation);
        assert_eq!(info.tag, 12);
        let p = f
            .read_translation_payload(0, OpPurpose::Translation)
            .unwrap();
        assert_eq!(p.len(), 1024);
        // Data pages have no payload.
        let mut f2 = small();
        f2.program_page(0, 1, OpPurpose::HostData).unwrap();
        assert_eq!(
            f2.read_translation_payload(0, OpPurpose::Translation),
            Err(FlashError::NotATranslationPage(0))
        );
    }

    #[test]
    fn program_from_copies_and_patches() {
        let mut f = small();
        let mut payload = vec![crate::PPN_NONE; 1024];
        payload[3] = 33;
        f.program_translation_page(0, 9, &payload, OpPurpose::Translation)
            .unwrap();
        f.program_translation_page_from(1, 9, 0, &[(5, 55)], OpPurpose::Translation)
            .unwrap();
        // Source stays intact (program-before-invalidate order).
        assert_eq!(f.peek_translation_payload(0).unwrap()[3], 33);
        let copy = f.peek_translation_payload(1).unwrap();
        assert_eq!(copy[3], 33);
        assert_eq!(copy[5], 55);
        // Copying from a data page (or a page without payload) is an error.
        let mut f2 = small();
        f2.program_page(0, 1, OpPurpose::HostData).unwrap();
        assert_eq!(
            f2.program_translation_page_from(1, 0, 0, &[], OpPurpose::Translation),
            Err(FlashError::NotATranslationPage(0))
        );
    }

    #[test]
    fn torn_program_from_stores_no_payload() {
        let mut f = small();
        f.program_translation_page(0, 4, &vec![0; 1024], OpPurpose::Translation)
            .unwrap();
        f.arm_faults(FaultPlan::on_translation_write(0));
        assert_eq!(
            f.program_translation_page_from(1, 4, 0, &[(0, 1)], OpPurpose::Translation),
            Err(FlashError::PowerLoss)
        );
        f.disarm_faults();
        assert_eq!(f.state(1).unwrap(), PageState::Torn);
        assert!(f.peek_translation_payload(1).is_none());
        // The source copy survives the torn program.
        assert!(f.peek_translation_payload(0).is_some());
    }

    #[test]
    fn bad_payload_length_rejected() {
        let mut f = small();
        assert_eq!(
            f.program_translation_page(0, 0, &[0; 10], OpPurpose::Translation),
            Err(FlashError::BadPayloadLength {
                got: 10,
                expected: 1024
            })
        );
    }

    #[test]
    fn invalidate_drops_payload() {
        let mut f = small();
        f.program_translation_page(0, 0, &vec![0; 1024], OpPurpose::Translation)
            .unwrap();
        f.invalidate(0).unwrap();
        assert!(f.peek_translation_payload(0).is_none());
    }

    #[test]
    fn latency_accounting() {
        let mut f = small();
        f.program_page(0, 0, OpPurpose::HostData).unwrap();
        f.read_page(0, OpPurpose::HostData).unwrap();
        f.invalidate(0).unwrap();
        f.erase_block(0, OpPurpose::GcData).unwrap();
        assert!((f.stats().busy_us - (200.0 + 25.0 + 1500.0)).abs() < 1e-9);
        // On the serial topology the device clock tracks busy time exactly.
        assert_eq!(f.sim_device_done_us(), f.stats().busy_us);
        assert_eq!(f.sim_frontier_us(), f.stats().busy_us);
    }

    #[test]
    fn multi_unit_clock_overlaps_blocks_on_distinct_units() {
        let geom = FlashGeometry {
            page_bytes: 4096,
            pages_per_block: 64,
            num_blocks: 4,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: crate::FlashTopology {
                channels: 2,
                ways: 1,
                bus_us: 0.0,
            },
        };
        geom.validate().unwrap();
        let mut f = Flash::new(geom).unwrap();
        // Blocks 0 and 1 land on units 0 and 1.
        f.program_page(0, 1, OpPurpose::HostData).unwrap();
        f.sim_relax_to(0.0);
        f.program_page(64, 2, OpPurpose::HostData).unwrap();
        // Both programs overlapped: makespan is one program, busy is two.
        assert_eq!(f.sim_device_done_us(), 200.0);
        assert!((f.stats().busy_us - 400.0).abs() < 1e-9);
        // reset_stats rewinds the clocks with the counters.
        f.reset_stats();
        assert_eq!(f.sim_device_done_us(), 0.0);
        assert_eq!(f.sim_frontier_us(), 0.0);
    }

    #[test]
    fn torn_ops_advance_no_clock() {
        let mut f = small();
        f.arm_faults(FaultPlan::at_op(0));
        assert_eq!(
            f.program_page(0, 7, OpPurpose::HostData),
            Err(FlashError::PowerLoss)
        );
        f.disarm_faults();
        // The interrupted program is unaccounted in both busy time and the
        // simulated device clock (matching `FlashStats` behaviour).
        assert_eq!(f.stats().busy_us, 0.0);
        assert_eq!(f.sim_device_done_us(), 0.0);
    }

    #[test]
    fn scan_and_valid_pages_iterators() {
        let mut f = small();
        for i in 0..5u32 {
            f.program_page(i, 100 + i, OpPurpose::HostData).unwrap();
        }
        f.invalidate(2).unwrap();
        let v: Vec<_> = f.valid_pages(0).collect();
        assert_eq!(v, vec![(0, 100), (1, 101), (3, 103), (4, 104)]);
        assert_eq!(f.scan_valid().count(), 4);
    }

    #[test]
    fn out_of_range_checked() {
        let mut f = small();
        let max = f.geometry().total_pages() as Ppn;
        assert_eq!(
            f.read_page(max, OpPurpose::HostData),
            Err(FlashError::OutOfRange(max))
        );
        assert_eq!(
            f.erase_block(4, OpPurpose::GcData),
            Err(FlashError::BlockOutOfRange(4))
        );
        assert!(f.next_free_ppn(4).is_none());
    }

    #[test]
    fn seq_stamps_are_monotonic_and_reset_by_erase() {
        let mut f = small();
        f.program_page(0, 10, OpPurpose::HostData).unwrap();
        f.program_page(1, 11, OpPurpose::HostData).unwrap();
        let (s0, s1) = (f.program_seq(0), f.program_seq(1));
        assert!(s0 > 0 && s1 > s0);
        f.invalidate(0).unwrap();
        f.invalidate(1).unwrap();
        f.erase_block(0, OpPurpose::GcData).unwrap();
        assert_eq!(f.program_seq(0), 0);
        // Stamps keep increasing across erases (device-lifetime clock).
        f.program_page(0, 12, OpPurpose::HostData).unwrap();
        assert!(f.program_seq(0) > s1);
    }

    #[test]
    fn torn_program_leaves_page_unreadable_behind_write_ptr() {
        let mut f = small();
        f.arm_faults(FaultPlan::at_op(1));
        f.program_page(0, 7, OpPurpose::HostData).unwrap();
        let writes_before = f.stats().total_writes();
        assert_eq!(
            f.program_page(1, 8, OpPurpose::HostData),
            Err(FlashError::PowerLoss)
        );
        assert_eq!(f.state(1).unwrap(), PageState::Torn);
        assert_eq!(f.program_seq(1), 0);
        assert_eq!(f.valid_pages_in(0).unwrap(), 1);
        // The torn op was never completed, so it is not accounted.
        assert_eq!(f.stats().total_writes(), writes_before);
        // Dark device: everything fails until the plan is disarmed.
        assert_eq!(
            f.read_page(0, OpPurpose::HostData),
            Err(FlashError::PowerLoss)
        );
        assert_eq!(
            f.erase_block(1, OpPurpose::GcData),
            Err(FlashError::PowerLoss)
        );
        let plan = f.disarm_faults().unwrap();
        assert_eq!(plan.fired().unwrap().op_index, 1);
        // Power restored: the torn page stays unreadable and unprogrammable
        // (it is behind the write pointer) until its block is erased.
        assert_eq!(
            f.read_page(1, OpPurpose::HostData),
            Err(FlashError::ReadTorn(1))
        );
        assert_eq!(f.invalidate(1), Err(FlashError::ReadTorn(1)));
        assert_eq!(f.next_free_ppn(0), Some(2));
        assert_eq!(f.torn_pages(), 1);
        f.invalidate(0).unwrap();
        f.erase_block(0, OpPurpose::GcData).unwrap();
        assert_eq!(f.torn_pages(), 0);
        assert_eq!(f.state(1).unwrap(), PageState::Free);
    }

    #[test]
    fn torn_translation_program_stores_no_payload() {
        let mut f = small();
        f.arm_faults(FaultPlan::on_translation_write(0));
        let payload = vec![crate::PPN_NONE; 1024];
        assert_eq!(
            f.program_translation_page(0, 3, &payload, OpPurpose::Translation),
            Err(FlashError::PowerLoss)
        );
        f.disarm_faults();
        assert_eq!(f.state(0).unwrap(), PageState::Torn);
        assert!(f.peek_translation_payload(0).is_none());
    }

    #[test]
    fn interrupted_erase_tears_whole_block() {
        let mut f = small();
        f.program_page(0, 1, OpPurpose::HostData).unwrap();
        f.invalidate(0).unwrap();
        f.arm_faults(FaultPlan::on_erase(0));
        assert_eq!(
            f.erase_block(0, OpPurpose::GcData),
            Err(FlashError::PowerLoss)
        );
        f.disarm_faults();
        assert_eq!(f.torn_pages(), 64);
        assert_eq!(f.state(63).unwrap(), PageState::Torn);
        assert_eq!(f.erase_count(0).unwrap(), 0);
        assert_eq!(f.next_free_ppn(0), None);
        // A completed erase heals the block.
        f.erase_block(0, OpPurpose::GcData).unwrap();
        assert_eq!(f.torn_pages(), 0);
        f.program_page(0, 2, OpPurpose::HostData).unwrap();
    }

    #[test]
    fn disarmed_plans_cost_nothing_and_skipped_ops_do_not_count() {
        let mut f = small();
        // Fault checks sit after validation, so invalid requests (FTL bugs)
        // still surface as their own errors and do not consume the budget.
        f.arm_faults(FaultPlan::at_op(0));
        assert_eq!(
            f.read_page(0, OpPurpose::HostData),
            Err(FlashError::ReadFree(0))
        );
        let plan = f.disarm_faults().unwrap();
        assert_eq!(plan.ops_observed(), 0);
        assert!(plan.fired().is_none());
    }
}
