//! Deterministic power-loss fault injection.
//!
//! A [`FaultPlan`] armed on a [`crate::Flash`] counts every physical
//! operation the device performs and, at a predetermined point, makes that
//! operation fail with [`crate::FlashError::PowerLoss`] instead of
//! completing:
//!
//! * an interrupted *program* leaves the page [`crate::PageState::Torn`] —
//!   partially charged, unreadable, behind the block's write pointer;
//! * an interrupted *erase* leaves every page of the block torn (the erase
//!   pulse stopped mid-way, so all cells hold indeterminate charge);
//! * an interrupted *read* corrupts nothing (reads are non-destructive) but
//!   still marks the instant of death.
//!
//! After the fault fires the device is dark: every subsequent operation
//! returns `PowerLoss` without touching state, exactly as if the host kept
//! issuing commands to an unpowered chip. Recovery starts by taking the
//! flash array back (the only thing that survives) and mounting it through
//! `tpftl_core::recovery::crash_mount`.
//!
//! Plans are pure counters — no clocks, no global RNG — so the same plan
//! against the same workload kills the device at exactly the same
//! operation, making every crash test replayable bit-for-bit.

use crate::OpKind;

/// When the injected power loss strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Kill the `n`-th physical operation (0-based) of any kind.
    AtOp(u64),
    /// Kill the `k`-th translation-page program (0-based) — the paper's
    /// batch-update write-back path, the most state-laden instant to die.
    OnTranslationWrite(u64),
    /// Kill the `k`-th block erase (0-based) mid-erase.
    OnErase(u64),
}

/// What the fault actually killed, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index of the fatal operation (0-based, counted from arming).
    pub op_index: u64,
    /// Kind of the operation that was interrupted.
    pub kind: OpKind,
}

/// A deterministic plan for one injected power loss.
///
/// # Examples
///
/// ```
/// use tpftl_flash::{FaultPlan, Flash, FlashError, FlashGeometry, OpPurpose, PageState};
///
/// let geom = FlashGeometry::paper_default(512 << 20, 0.15);
/// let mut flash = Flash::new(geom).unwrap();
/// flash.arm_faults(FaultPlan::at_op(1));
/// flash.program_page(0, 7, OpPurpose::HostData).unwrap(); // op 0 survives
/// assert_eq!(
///     flash.program_page(1, 8, OpPurpose::HostData),
///     Err(FlashError::PowerLoss)
/// );
/// assert_eq!(flash.state(1).unwrap(), PageState::Torn);
/// // The device stays dark afterwards.
/// assert_eq!(
///     flash.read_page(0, OpPurpose::HostData),
///     Err(FlashError::PowerLoss)
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    mode: FaultMode,
    ops: u64,
    tp_writes: u64,
    erases: u64,
    fired: Option<FaultRecord>,
    tear_bytes: Option<u64>,
}

impl FaultPlan {
    fn new(mode: FaultMode) -> Self {
        Self {
            mode,
            ops: 0,
            tp_writes: 0,
            erases: 0,
            fired: None,
            tear_bytes: None,
        }
    }

    /// Plan that kills the `n`-th operation (0-based) of any kind.
    pub fn at_op(n: u64) -> Self {
        Self::new(FaultMode::AtOp(n))
    }

    /// Plan that kills the `k`-th translation-page program (0-based).
    pub fn on_translation_write(k: u64) -> Self {
        Self::new(FaultMode::OnTranslationWrite(k))
    }

    /// Plan that kills the `k`-th block erase (0-based), mid-erase.
    pub fn on_erase(k: u64) -> Self {
        Self::new(FaultMode::OnErase(k))
    }

    /// Plan with a seeded operation budget: `seed` deterministically picks
    /// an op index in `0..horizon` (SplitMix64), so sweeps can fan out over
    /// seeds without coordinating indices.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self::at_op(z % horizon.max(1))
    }

    /// When a file backing is attached, tear the fatal program's record at
    /// this byte budget: the first `n % record_len` bytes of the
    /// would-be-written `[data][OOB]` record land on disk and nothing else
    /// — the partial write a real power loss produces. The modulo keeps
    /// the record incomplete at any `n`, so its commit checksum (the final
    /// 8 OOB bytes) can never fully land. RAM-only devices ignore it.
    pub fn with_tear(mut self, n: u64) -> Self {
        self.tear_bytes = Some(n);
        self
    }

    /// The configured tear budget, if any.
    pub fn tear_bytes(&self) -> Option<u64> {
        self.tear_bytes
    }

    /// The configured trigger.
    pub fn mode(&self) -> FaultMode {
        self.mode
    }

    /// The fatal operation, once the plan has fired.
    pub fn fired(&self) -> Option<FaultRecord> {
        self.fired
    }

    /// Operations observed so far (including the fatal one).
    pub fn ops_observed(&self) -> u64 {
        self.ops
    }

    /// Counts one attempted operation; returns `true` if it must fail.
    /// Once fired, every subsequent operation fails (the device is dark).
    pub(crate) fn trips(&mut self, kind: OpKind, is_translation_write: bool) -> bool {
        if self.fired.is_some() {
            return true;
        }
        let op_index = self.ops;
        self.ops += 1;
        let hit = match self.mode {
            FaultMode::AtOp(n) => op_index == n,
            FaultMode::OnTranslationWrite(k) => {
                if is_translation_write {
                    let i = self.tp_writes;
                    self.tp_writes += 1;
                    i == k
                } else {
                    false
                }
            }
            FaultMode::OnErase(k) => {
                if kind == OpKind::Erase {
                    let i = self.erases;
                    self.erases += 1;
                    i == k
                } else {
                    false
                }
            }
        };
        if hit {
            self.fired = Some(FaultRecord { op_index, kind });
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_op_counts_all_kinds() {
        let mut p = FaultPlan::at_op(2);
        assert!(!p.trips(OpKind::Read, false));
        assert!(!p.trips(OpKind::Write, true));
        assert!(p.trips(OpKind::Erase, false));
        assert_eq!(
            p.fired(),
            Some(FaultRecord {
                op_index: 2,
                kind: OpKind::Erase
            })
        );
        // Dark device: everything after fails, counters freeze.
        assert!(p.trips(OpKind::Read, false));
        assert_eq!(p.ops_observed(), 3);
    }

    #[test]
    fn translation_write_mode_skips_other_ops() {
        let mut p = FaultPlan::on_translation_write(1);
        assert!(!p.trips(OpKind::Write, false)); // data write
        assert!(!p.trips(OpKind::Write, true)); // TP write #0
        assert!(!p.trips(OpKind::Read, false));
        assert!(p.trips(OpKind::Write, true)); // TP write #1
        assert_eq!(p.fired().unwrap().op_index, 3);
    }

    #[test]
    fn erase_mode_counts_erases_only() {
        let mut p = FaultPlan::on_erase(0);
        assert!(!p.trips(OpKind::Write, false));
        assert!(p.trips(OpKind::Erase, false));
        assert_eq!(p.fired().unwrap().kind, OpKind::Erase);
    }

    #[test]
    fn seeded_is_deterministic_and_bounded() {
        let a = FaultPlan::seeded(42, 1000);
        let b = FaultPlan::seeded(42, 1000);
        assert_eq!(a, b);
        let FaultMode::AtOp(n) = a.mode() else {
            panic!("seeded plans are op budgets");
        };
        assert!(n < 1000);
        assert_ne!(FaultPlan::seeded(43, 1000), a);
        // Degenerate horizon clamps instead of dividing by zero.
        let FaultMode::AtOp(n0) = FaultPlan::seeded(7, 0).mode() else {
            panic!()
        };
        assert_eq!(n0, 0);
    }
}
