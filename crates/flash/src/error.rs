//! Error type for flash operations.
//!
//! Every variant corresponds to an operation a real NAND device either
//! cannot perform or that would corrupt data; hitting one of them in the
//! simulator indicates an FTL bug, so the FTL layer generally propagates
//! them with `expect`-style panics in tests and `Result` in library code.

use crate::{BlockId, Ppn};

/// Errors returned by the flash device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// The requested page number is outside the device.
    OutOfRange(Ppn),
    /// The requested block number is outside the device.
    BlockOutOfRange(BlockId),
    /// Attempt to read a page that has never been programmed since the last
    /// erase of its block.
    ReadFree(Ppn),
    /// Attempt to read a page that was invalidated (stale data).
    ReadInvalid(Ppn),
    /// Attempt to read or invalidate a page whose program or erase was
    /// interrupted by power loss (indeterminate charge).
    ReadTorn(Ppn),
    /// An injected power loss interrupted this operation; the device is
    /// dark until remounted (see the `fault` module).
    PowerLoss,
    /// Attempt to program a page that is not in the `Free` state
    /// (erase-before-write violation).
    ProgramNotFree(Ppn),
    /// Attempt to program pages of a block out of order. NAND requires
    /// strictly sequential in-block programming.
    NonSequentialProgram {
        /// The page that was requested.
        requested: Ppn,
        /// The page the block's write pointer expected next.
        expected: Ppn,
    },
    /// Attempt to erase a block that still contains valid pages.
    EraseWithValidPages(BlockId),
    /// A translation-page payload was expected but the page holds none
    /// (e.g. reading a data page as a translation page).
    NotATranslationPage(Ppn),
    /// A payload's length does not match the number of mapping entries a
    /// translation page holds.
    BadPayloadLength {
        /// Entries provided by the caller.
        got: usize,
        /// Entries a translation page must hold.
        expected: usize,
    },
    /// Geometry parameters are inconsistent (zero-sized, overflowing, ...).
    InvalidGeometry,
    /// The file-backed media layer failed (I/O error, corrupt or missing
    /// superblock, layout mismatch). See [`crate::media::MediaError`].
    Media(crate::media::MediaError),
}

impl core::fmt::Display for FlashError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::OutOfRange(p) => write!(f, "page {p} is out of range"),
            Self::BlockOutOfRange(b) => write!(f, "block {b} is out of range"),
            Self::ReadFree(p) => write!(f, "read of free (unwritten) page {p}"),
            Self::ReadInvalid(p) => write!(f, "read of invalidated page {p}"),
            Self::ReadTorn(p) => write!(f, "read of torn (interrupted-program) page {p}"),
            Self::PowerLoss => write!(f, "power loss injected; device is offline"),
            Self::ProgramNotFree(p) => {
                write!(f, "program of non-free page {p} (erase-before-write)")
            }
            Self::NonSequentialProgram {
                requested,
                expected,
            } => write!(
                f,
                "non-sequential program: requested page {requested}, expected {expected}"
            ),
            Self::EraseWithValidPages(b) => {
                write!(f, "erase of block {b} which still holds valid pages")
            }
            Self::NotATranslationPage(p) => {
                write!(f, "page {p} holds no translation payload")
            }
            Self::BadPayloadLength { got, expected } => write!(
                f,
                "translation payload holds {got} entries, expected {expected}"
            ),
            Self::InvalidGeometry => write!(f, "invalid flash geometry"),
            Self::Media(e) => write!(f, "media error: {e}"),
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            FlashError::OutOfRange(7).to_string(),
            FlashError::ReadFree(1).to_string(),
            FlashError::NonSequentialProgram {
                requested: 9,
                expected: 8,
            }
            .to_string(),
            FlashError::EraseWithValidPages(3).to_string(),
            FlashError::BadPayloadLength {
                got: 3,
                expected: 1024,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("out of range"));
        assert!(msgs[1].contains("free"));
        assert!(msgs[2].contains('9') && msgs[2].contains('8'));
        assert!(msgs[3].contains("valid pages"));
        assert!(msgs[4].contains("1024"));
    }
}
