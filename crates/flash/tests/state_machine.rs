//! Randomized state-machine test: the flash device against a simple oracle.
//!
//! The oracle tracks per-page states with none of the device's internal
//! bookkeeping (write pointers, valid counts, payload store); random
//! operation sequences must produce identical observable behaviour, and the
//! device's derived counters must match recomputation from oracle state.
//!
//! Driven by the in-tree seeded PRNG (proptest is unavailable offline);
//! every case replays deterministically from its seed.

use tpftl_flash::{Flash, FlashError, FlashGeometry, FlashTopology, OpPurpose, PageState, Ppn};
use tpftl_rng::Rng64;

const BLOCKS: usize = 4;
const PAGES_PER_BLOCK: usize = 8;

fn tiny_geom() -> FlashGeometry {
    FlashGeometry {
        page_bytes: 64, // 16 entries per translation page; keeps payloads small
        pages_per_block: PAGES_PER_BLOCK,
        num_blocks: BLOCKS,
        read_us: 25.0,
        write_us: 200.0,
        erase_us: 1500.0,
        topology: FlashTopology::default(),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Program { block: u8, tag: u32 },
    ProgramTranslation { block: u8, vtpn: u32 },
    Read { ppn: u8 },
    Invalidate { ppn: u8 },
    Erase { block: u8 },
}

fn random_op(rng: &mut Rng64) -> Op {
    let pages = (BLOCKS * PAGES_PER_BLOCK) as u32;
    match rng.range_u32(0, 5) {
        0 => Op::Program {
            block: rng.range_u32(0, BLOCKS as u32) as u8,
            tag: rng.next_u64() as u32,
        },
        1 => Op::ProgramTranslation {
            block: rng.range_u32(0, BLOCKS as u32) as u8,
            vtpn: rng.next_u64() as u32,
        },
        2 => Op::Read {
            ppn: rng.range_u32(0, pages) as u8,
        },
        3 => Op::Invalidate {
            ppn: rng.range_u32(0, pages) as u8,
        },
        _ => Op::Erase {
            block: rng.range_u32(0, BLOCKS as u32) as u8,
        },
    }
}

/// Oracle: plain per-page state plus tags, no clever bookkeeping.
struct Oracle {
    state: Vec<PageState>,
    tag: Vec<u32>,
    is_tp: Vec<bool>,
    programmed: Vec<usize>, // per block, next offset
    erases: u64,
}

impl Oracle {
    fn new() -> Self {
        Self {
            state: vec![PageState::Free; BLOCKS * PAGES_PER_BLOCK],
            tag: vec![0; BLOCKS * PAGES_PER_BLOCK],
            is_tp: vec![false; BLOCKS * PAGES_PER_BLOCK],
            programmed: vec![0; BLOCKS],
            erases: 0,
        }
    }

    fn valid_in(&self, block: usize) -> usize {
        let first = block * PAGES_PER_BLOCK;
        self.state[first..first + PAGES_PER_BLOCK]
            .iter()
            .filter(|s| **s == PageState::Valid)
            .count()
    }
}

#[test]
fn device_matches_oracle() {
    for seed in 0..256u64 {
        let mut rng = Rng64::seed_from_u64(0xF1A5 + seed);
        let n_ops = rng.range_usize(1, 200);
        let mut flash = Flash::new(tiny_geom()).unwrap();
        let entries = flash.entries_per_translation_page();
        let mut oracle = Oracle::new();

        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Program { block, tag } => {
                    let b = block as usize;
                    let res = flash.next_free_ppn(block as u32);
                    if oracle.programmed[b] < PAGES_PER_BLOCK {
                        let ppn = res.expect("oracle says block has room");
                        assert_eq!(
                            ppn as usize,
                            b * PAGES_PER_BLOCK + oracle.programmed[b],
                            "seed {seed}"
                        );
                        flash.program_page(ppn, tag, OpPurpose::HostData).unwrap();
                        oracle.state[ppn as usize] = PageState::Valid;
                        oracle.tag[ppn as usize] = tag;
                        oracle.is_tp[ppn as usize] = false;
                        oracle.programmed[b] += 1;
                    } else {
                        assert!(res.is_none(), "seed {seed}");
                    }
                }
                Op::ProgramTranslation { block, vtpn } => {
                    let b = block as usize;
                    if oracle.programmed[b] < PAGES_PER_BLOCK {
                        let ppn = flash.next_free_ppn(block as u32).unwrap();
                        let payload = vec![vtpn; entries];
                        flash
                            .program_translation_page(ppn, vtpn, &payload, OpPurpose::Translation)
                            .unwrap();
                        oracle.state[ppn as usize] = PageState::Valid;
                        oracle.tag[ppn as usize] = vtpn;
                        oracle.is_tp[ppn as usize] = true;
                        oracle.programmed[b] += 1;
                    }
                }
                Op::Read { ppn } => {
                    let res = flash.read_page(ppn as u32, OpPurpose::HostData);
                    match oracle.state[ppn as usize] {
                        PageState::Valid => {
                            let info = res.unwrap();
                            assert_eq!(info.tag, oracle.tag[ppn as usize], "seed {seed}");
                            assert_eq!(
                                info.is_translation, oracle.is_tp[ppn as usize],
                                "seed {seed}"
                            );
                        }
                        PageState::Free => {
                            assert_eq!(res, Err(FlashError::ReadFree(ppn as u32)), "seed {seed}");
                        }
                        PageState::Invalid => {
                            assert_eq!(
                                res,
                                Err(FlashError::ReadInvalid(ppn as u32)),
                                "seed {seed}"
                            );
                        }
                        // No fault plan is armed in this test, so the oracle
                        // never produces torn pages.
                        PageState::Torn => unreachable!(),
                    }
                }
                Op::Invalidate { ppn } => {
                    let res = flash.invalidate(ppn as u32);
                    if oracle.state[ppn as usize] == PageState::Valid {
                        res.unwrap();
                        oracle.state[ppn as usize] = PageState::Invalid;
                    } else {
                        assert!(res.is_err(), "seed {seed}");
                    }
                }
                Op::Erase { block } => {
                    let b = block as usize;
                    let res = flash.erase_block(block as u32, OpPurpose::GcData);
                    if oracle.valid_in(b) == 0 {
                        res.unwrap();
                        oracle.erases += 1;
                        let first = b * PAGES_PER_BLOCK;
                        for i in first..first + PAGES_PER_BLOCK {
                            oracle.state[i] = PageState::Free;
                            oracle.is_tp[i] = false;
                        }
                        oracle.programmed[b] = 0;
                    } else {
                        assert_eq!(
                            res,
                            Err(FlashError::EraseWithValidPages(block as u32)),
                            "seed {seed}"
                        );
                    }
                }
            }

            // Derived counters always agree with the oracle.
            for b in 0..BLOCKS {
                assert_eq!(
                    flash.valid_pages_in(b as u32).unwrap(),
                    oracle.valid_in(b),
                    "seed {seed}"
                );
                assert_eq!(
                    flash.free_pages_in(b as u32).unwrap(),
                    PAGES_PER_BLOCK - oracle.programmed[b],
                    "seed {seed}"
                );
            }
        }

        assert_eq!(flash.total_erase_count(), oracle.erases, "seed {seed}");
        assert_eq!(flash.stats().total_erases(), oracle.erases, "seed {seed}");
        // scan_valid agrees with the oracle's valid set.
        let scanned: Vec<_> = flash.scan_valid().collect();
        let expect: Vec<_> = oracle
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == PageState::Valid)
            .map(|(i, _)| (i as Ppn, oracle.tag[i], oracle.is_tp[i]))
            .collect();
        assert_eq!(scanned, expect, "seed {seed}");
    }
}
