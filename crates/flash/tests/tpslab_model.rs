//! Property test: the slab-backed translation-payload store against a
//! `HashMap<Ppn, Box<[Ppn]>>` reference model.
//!
//! A seeded random workload of translation/data programs, read-modify-write
//! copies, invalidations and erases — including fault-plan torn writes that
//! must never leave a payload behind — is applied to the device while the
//! model tracks what each valid translation page must hold. After every
//! operation the two stores must agree exactly, which exercises slot
//! recycling through the slab's free list under arbitrary interleavings.

use std::collections::HashMap;

use tpftl_flash::{
    FaultPlan, Flash, FlashError, FlashGeometry, FlashTopology, OpPurpose, PageState, Ppn,
};
use tpftl_rng::Rng64;

const BLOCKS: usize = 4;
const PAGES_PER_BLOCK: usize = 8;
const PAGES: usize = BLOCKS * PAGES_PER_BLOCK;

fn tiny_geom() -> FlashGeometry {
    FlashGeometry {
        page_bytes: 64, // 16 entries per translation page
        pages_per_block: PAGES_PER_BLOCK,
        num_blocks: BLOCKS,
        read_us: 25.0,
        write_us: 200.0,
        erase_us: 1500.0,
        topology: FlashTopology::default(),
    }
}

/// Deterministically picks a random key out of the (unordered) model.
fn pick_tp(model: &HashMap<Ppn, Box<[Ppn]>>, rng: &mut Rng64) -> Option<Ppn> {
    if model.is_empty() {
        return None;
    }
    let mut keys: Vec<Ppn> = model.keys().copied().collect();
    keys.sort_unstable();
    Some(keys[rng.range_usize(0, keys.len())])
}

fn check(flash: &Flash, model: &HashMap<Ppn, Box<[Ppn]>>, seed: u64) {
    for ppn in 0..PAGES as Ppn {
        assert_eq!(
            flash.peek_translation_payload(ppn),
            model.get(&ppn).map(|b| &b[..]),
            "payload mismatch at ppn {ppn}, seed {seed}"
        );
    }
    for (ppn, _tag, is_tp) in flash.scan_valid() {
        assert_eq!(
            is_tp,
            model.contains_key(&ppn),
            "flag mismatch, seed {seed}"
        );
    }
}

#[test]
fn slab_matches_hashmap_model() {
    for seed in 0..192u64 {
        let mut rng = Rng64::seed_from_u64(0x51AB + seed);
        let mut flash = Flash::new(tiny_geom()).unwrap();
        let entries = flash.entries_per_translation_page();
        let mut model: HashMap<Ppn, Box<[Ppn]>> = HashMap::new();
        let n_ops = rng.range_usize(50, 300);

        for _ in 0..n_ops {
            match rng.range_u32(0, 100) {
                // Fresh translation-page program, occasionally torn.
                0..=24 => {
                    let b = rng.range_u32(0, BLOCKS as u32);
                    let Some(ppn) = flash.next_free_ppn(b) else {
                        continue;
                    };
                    let vtpn = rng.range_u32(0, 64);
                    let payload: Vec<Ppn> = (0..entries).map(|_| rng.next_u64() as Ppn).collect();
                    if rng.below(8) == 0 {
                        flash.arm_faults(FaultPlan::on_translation_write(0));
                        assert_eq!(
                            flash.program_translation_page(
                                ppn,
                                vtpn,
                                &payload,
                                OpPurpose::Translation
                            ),
                            Err(FlashError::PowerLoss),
                            "seed {seed}"
                        );
                        flash.disarm_faults();
                        // Torn program: the model keeps no payload.
                    } else {
                        flash
                            .program_translation_page(ppn, vtpn, &payload, OpPurpose::Translation)
                            .unwrap();
                        model.insert(ppn, payload.into_boxed_slice());
                    }
                }
                // Read-modify-write copy from an existing translation page.
                25..=44 => {
                    let Some(src) = pick_tp(&model, &mut rng) else {
                        continue;
                    };
                    let b = rng.range_u32(0, BLOCKS as u32);
                    let Some(dst) = flash.next_free_ppn(b) else {
                        continue;
                    };
                    let n_updates = rng.range_usize(0, 4);
                    let updates: Vec<(u16, Ppn)> = (0..n_updates)
                        .map(|_| {
                            (
                                rng.range_u32(0, entries as u32) as u16,
                                rng.next_u64() as Ppn,
                            )
                        })
                        .collect();
                    let vtpn = rng.range_u32(0, 64);
                    if rng.below(8) == 0 {
                        flash.arm_faults(FaultPlan::on_translation_write(0));
                        assert_eq!(
                            flash.program_translation_page_from(
                                dst,
                                vtpn,
                                src,
                                &updates,
                                OpPurpose::Translation
                            ),
                            Err(FlashError::PowerLoss),
                            "seed {seed}"
                        );
                        flash.disarm_faults();
                    } else {
                        flash
                            .program_translation_page_from(
                                dst,
                                vtpn,
                                src,
                                &updates,
                                OpPurpose::Translation,
                            )
                            .unwrap();
                        let mut payload = model[&src].clone();
                        for &(off, ppn) in &updates {
                            payload[off as usize] = ppn;
                        }
                        model.insert(dst, payload);
                    }
                }
                // Data-page program: valid but carries no payload.
                45..=59 => {
                    let b = rng.range_u32(0, BLOCKS as u32);
                    if let Some(ppn) = flash.next_free_ppn(b) {
                        flash
                            .program_page(ppn, rng.next_u64() as u32, OpPurpose::HostData)
                            .unwrap();
                    }
                }
                // Invalidate a random page; a valid one drops its payload.
                60..=84 => {
                    let ppn = rng.range_u32(0, PAGES as u32);
                    if flash.state(ppn).unwrap() == PageState::Valid {
                        flash.invalidate(ppn).unwrap();
                        model.remove(&ppn);
                    }
                }
                // Erase a block with no valid pages, occasionally torn.
                _ => {
                    let b = rng.range_u32(0, BLOCKS as u32);
                    if flash.valid_pages_in(b).unwrap() != 0 {
                        continue;
                    }
                    if rng.below(8) == 0 {
                        flash.arm_faults(FaultPlan::on_erase(0));
                        assert_eq!(
                            flash.erase_block(b, OpPurpose::GcData),
                            Err(FlashError::PowerLoss),
                            "seed {seed}"
                        );
                        flash.disarm_faults();
                    } else {
                        flash.erase_block(b, OpPurpose::GcData).unwrap();
                    }
                }
            }

            check(&flash, &model, seed);
        }
    }
}
