//! Torn-write and corruption fuzzing of the on-device record format.
//!
//! The invariant under test: **a page record never reads back as validly
//! programmed with wrong contents.** The commit checksum lives in the
//! final 8 bytes of the record and covers the data region plus the OOB
//! header, so a write torn at any byte offset — and arbitrary byte
//! corruption anywhere inside the checksummed region — must either leave
//! the page non-`Valid` or leave its contents bit-identical.
//!
//! The RAM model doubles as the oracle: `Flash::clone()` detaches the
//! backing, giving a pure-RAM snapshot that saw the exact same op
//! sequence.

use std::path::PathBuf;

use tpftl_flash::media::page_record_range;
use tpftl_flash::{
    FaultPlan, Flash, FlashError, FlashGeometry, FlashTopology, OpPurpose, PageState, Ppn,
};
use tpftl_rng::Rng64;

fn geom() -> FlashGeometry {
    FlashGeometry {
        page_bytes: 256,
        pages_per_block: 8,
        num_blocks: 4,
        read_us: 25.0,
        write_us: 200.0,
        erase_us: 1500.0,
        topology: FlashTopology::default(),
    }
}

fn temp_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("tpftl_fuzz_{}_{name}.img", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Drives one random but valid op (program data/TP, RMW, invalidate,
/// erase) against `f`, mirroring the choice deterministically from `rng`.
/// Returns `Err(PowerLoss)` when the armed plan fires.
fn random_op(f: &mut Flash, rng: &mut Rng64, entries: usize) -> tpftl_flash::Result<()> {
    let g = f.geometry().clone();
    match rng.below(10) {
        // Invalidate a random valid page.
        0 | 1 => {
            let valid: Vec<Ppn> = f.scan_valid().map(|(p, _, _)| p).collect();
            if let Some(&p) = valid.get(rng.below(valid.len().max(1) as u64) as usize) {
                f.invalidate(p)?;
            }
            Ok(())
        }
        // Erase a fully-drained block.
        2 => {
            for b in 0..g.num_blocks as u32 {
                if f.valid_pages_in(b).unwrap() == 0 && f.next_free_ppn(b).is_none() {
                    return f.erase_block(b, OpPurpose::GcData);
                }
            }
            Ok(())
        }
        // Program the next free page of a random block.
        n => {
            let b = rng.below(g.num_blocks as u64) as u32;
            let Some(ppn) = f.next_free_ppn(b) else {
                return Ok(());
            };
            if n < 6 {
                f.program_page(ppn, rng.below(1 << 20) as u32, OpPurpose::HostData)
            } else {
                let payload: Vec<Ppn> = (0..entries as Ppn)
                    .map(|_| rng.below(u32::MAX as u64) as Ppn)
                    .collect();
                let srcs: Vec<Ppn> = f
                    .scan_valid()
                    .filter(|&(_, _, tp)| tp)
                    .map(|(p, _, _)| p)
                    .collect();
                if n == 9 && !srcs.is_empty() {
                    let src = srcs[rng.below(srcs.len() as u64) as usize];
                    let patch = [(rng.below(entries as u64) as u16, rng.below(1 << 20) as Ppn)];
                    f.program_translation_page_from(
                        ppn,
                        rng.below(64) as u32,
                        src,
                        &patch,
                        OpPurpose::Translation,
                    )
                } else {
                    f.program_translation_page(
                        ppn,
                        rng.below(64) as u32,
                        &payload,
                        OpPurpose::Translation,
                    )
                }
            }
        }
    }
}

/// Asserts the reopened file image equals the RAM oracle: same valid set,
/// same tags/seqs, bit-identical translation payloads — and the fatal
/// (torn) page is never `Valid` on disk.
fn assert_matches_oracle(reopened: &Flash, oracle: &Flash, seed: u64) {
    let got: Vec<_> = reopened.scan_valid().collect();
    let want: Vec<_> = oracle.scan_valid().collect();
    assert_eq!(got, want, "seed {seed}: valid sets diverge");
    for (ppn, _, is_tp) in got {
        assert_eq!(
            reopened.program_seq(ppn),
            oracle.program_seq(ppn),
            "seed {seed}: seq of ppn {ppn}"
        );
        if is_tp {
            assert_eq!(
                reopened.peek_translation_payload(ppn),
                oracle.peek_translation_payload(ppn),
                "seed {seed}: payload of ppn {ppn}"
            );
        }
    }
}

/// FaultPlan-torn file writes with a random tear budget: the partial
/// record a power loss leaves on disk never commits, for any tear offset.
#[test]
fn torn_file_writes_never_commit() {
    let path = temp_path("torn");
    let g = geom();
    let entries = g.page_bytes / 4;
    for seed in 0..60u64 {
        let mut rng = Rng64::seed_from_u64(0xF022 ^ seed);
        let mut f = Flash::create_file(g.clone(), &path).expect("create");
        let plan = FaultPlan::at_op(10 + rng.below(120))
            .with_tear(rng.below(4 * (g.page_bytes as u64 + 64)));
        f.arm_faults(plan);
        let mut fatal: Option<()> = None;
        for _ in 0..2000 {
            match random_op(&mut f, &mut rng, entries) {
                Ok(()) => {}
                Err(FlashError::PowerLoss) => {
                    fatal = Some(());
                    break;
                }
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
        }
        assert!(fatal.is_some(), "seed {seed}: plan never fired");
        let oracle = f.clone(); // detached RAM snapshot of the dead device
        drop(f);
        let reopened = Flash::open_file(&path).expect("reopen");
        assert_matches_oracle(&reopened, &oracle, seed);
    }
    let _ = std::fs::remove_file(&path);
}

/// Arbitrary byte corruption at random offsets within page+OOB records:
/// a corrupted page either stays bit-identical (corruption missed the
/// meaningfully-decoded bytes) or stops being `Valid` — never valid with
/// wrong contents. The mount itself never panics on any corruption.
#[test]
fn arbitrary_record_corruption_never_yields_wrong_content() {
    let pristine = temp_path("pristine");
    let corrupted = temp_path("corrupted");
    let g = geom();
    let entries = g.page_bytes / 4;

    // Build a device image whose every valid page carries checkable
    // content (translation payloads are fully CRC-covered).
    let mut f = Flash::create_file(g.clone(), &pristine).expect("create");
    let mut rng = Rng64::seed_from_u64(0xC0DE);
    let mut expected: Vec<(Ppn, u32, u64, Vec<Ppn>)> = Vec::new();
    for i in 0..12u32 {
        let payload: Vec<Ppn> = (0..entries as Ppn).map(|e| e * 7 + i).collect();
        f.program_translation_page(i, i, &payload, OpPurpose::Translation)
            .expect("tp");
        expected.push((i, i, f.program_seq(i), payload));
    }
    f.sync_backing().expect("sync");
    drop(f);
    let image = std::fs::read(&pristine).expect("read image");

    for trial in 0..250u64 {
        let mut bytes = image.clone();
        // Corrupt 1..4 random ranges inside random page records.
        for _ in 0..rng.range_usize(1, 5) {
            let ppn = rng.below(g.total_pages() as u64) as Ppn;
            let (off, len) = page_record_range(&g, ppn);
            let start = off as usize + rng.below(len) as usize;
            let n = rng
                .range_usize(1, 64)
                .min(off as usize + len as usize - start);
            for b in &mut bytes[start..start + n] {
                *b = rng.below(256) as u8;
            }
        }
        std::fs::write(&corrupted, &bytes).expect("write corrupted");
        let reopened = Flash::open_file(&corrupted).expect("mount never fails on record bytes");
        for (ppn, tag, seq, payload) in &expected {
            match reopened.state(*ppn).expect("state") {
                PageState::Valid => {
                    // Valid implies bit-identical: tag, seq stamp, payload.
                    let (_, got_tag, is_tp) = reopened
                        .scan_valid()
                        .find(|&(p, _, _)| p == *ppn)
                        .expect("valid page in scan");
                    assert!(is_tp, "trial {trial}: ppn {ppn} lost its payload flag");
                    assert_eq!(got_tag, *tag, "trial {trial}: ppn {ppn} tag");
                    assert_eq!(
                        reopened.program_seq(*ppn),
                        *seq,
                        "trial {trial}: ppn {ppn} seq"
                    );
                    assert_eq!(
                        reopened.peek_translation_payload(*ppn).expect("payload"),
                        payload.as_slice(),
                        "trial {trial}: ppn {ppn} payload corrupted but still valid"
                    );
                }
                // Corruption detected (torn) or the invalid marker landed
                // by chance (still the *right* content, just demoted) —
                // both are safe outcomes.
                PageState::Torn | PageState::Invalid | PageState::Free => {}
            }
        }
    }
    let _ = std::fs::remove_file(&pristine);
    let _ = std::fs::remove_file(&corrupted);
}

/// Truncating a record mid-write by hand (simulating a torn OS write at
/// an arbitrary sector boundary) behaves like the FaultPlan tear: the
/// page never commits.
#[test]
fn prefix_truncation_of_a_record_never_commits() {
    let pristine = temp_path("prefix_base");
    let torn = temp_path("prefix_torn");
    let g = geom();
    let entries = g.page_bytes / 4;
    let mut f = Flash::create_file(g.clone(), &pristine).expect("create");
    let payload: Vec<Ppn> = (0..entries as Ppn).map(|e| e ^ 0xABCD).collect();
    f.program_translation_page(0, 9, &payload, OpPurpose::Translation)
        .expect("tp");
    drop(f);
    let image = std::fs::read(&pristine).expect("read");
    let (off, len) = page_record_range(&g, 0);
    // Every proper prefix of the record, zeroed from `cut` on.
    for cut in 0..len {
        let mut bytes = image.clone();
        for b in &mut bytes[(off + cut) as usize..(off + len) as usize] {
            *b = 0;
        }
        std::fs::write(&torn, &bytes).expect("write");
        let reopened = Flash::open_file(&torn).expect("mount");
        assert_ne!(
            reopened.state(0).expect("state"),
            PageState::Valid,
            "cut at byte {cut} of {len} read back as committed"
        );
    }
    let _ = std::fs::remove_file(&pristine);
    let _ = std::fs::remove_file(&torn);
}
