//! Superblock election and file-backing roundtrip tests.
//!
//! The property test drives mount-time election with random
//! (sequence, corruption) pairs across both superblock copies: the mount
//! must always elect the newest valid copy, fall back to the surviving
//! copy when one is corrupt, and fail with a *typed* error — never a
//! panic — when both are.

use std::fs::OpenOptions;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;

use tpftl_flash::media::{self, Superblock, SUPERBLOCK_BYTES};
use tpftl_flash::{
    Flash, FlashError, FlashGeometry, FlashTopology, MediaError, OpPurpose, PageState,
};
use tpftl_rng::Rng64;

fn geom() -> FlashGeometry {
    FlashGeometry {
        page_bytes: 512,
        pages_per_block: 8,
        num_blocks: 4,
        read_us: 25.0,
        write_us: 200.0,
        erase_us: 1500.0,
        topology: FlashTopology::default(),
    }
}

fn temp_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("tpftl_sb_{}_{name}.img", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Exercises every mirrored transition on a file-backed device, then
/// reopens the file and checks the reconstructed device equals the RAM
/// state (which a detached `clone()` snapshots).
#[test]
fn file_roundtrip_reconstructs_device() {
    let path = temp_path("roundtrip");
    let g = geom();
    let entries = g.page_bytes / 4;
    let mut f = Flash::create_file(g.clone(), &path).expect("create");
    assert!(f.has_backing());
    assert_eq!(f.backing_path(), Some(path.as_path()));

    // Data pages, a translation page, an RMW copy, invalidations, erase.
    for i in 0..6u32 {
        f.program_page(i, 100 + i, OpPurpose::HostData)
            .expect("program");
    }
    let payload: Vec<u32> = (0..entries as u32).collect();
    f.program_translation_page(6, 7, &payload, OpPurpose::Translation)
        .expect("tp");
    f.program_translation_page_from(7, 7, 6, &[(3, 999)], OpPurpose::Translation)
        .expect("rmw");
    f.invalidate(6).expect("invalidate tp");
    f.invalidate(0).expect("invalidate");
    f.invalidate(1).expect("invalidate");
    // Fill + drain block 1, then erase it (erase clears OOBs + bumps the
    // persistent erase counter).
    for i in 8..16u32 {
        f.program_page(i, 200 + i, OpPurpose::HostData)
            .expect("program");
        f.invalidate(i).expect("invalidate");
    }
    f.erase_block(1, OpPurpose::GcData).expect("erase");
    f.program_page(8, 42, OpPurpose::HostData)
        .expect("program after erase");
    f.sync_backing().expect("sync");

    let snapshot = f.clone(); // detached RAM snapshot
    assert!(!snapshot.has_backing());
    drop(f);

    let r = Flash::open_file(&path).expect("open");
    assert_eq!(r.geometry(), &g);
    for ppn in 0..g.total_pages() as u32 {
        assert_eq!(
            r.state(ppn).expect("state"),
            snapshot.state(ppn).expect("state"),
            "state of ppn {ppn}"
        );
        if r.state(ppn).unwrap() != PageState::Free {
            assert_eq!(
                r.program_seq(ppn),
                snapshot.program_seq(ppn),
                "seq of ppn {ppn}"
            );
        }
    }
    let got: Vec<_> = r.scan_valid().collect();
    let want: Vec<_> = snapshot.scan_valid().collect();
    assert_eq!(got, want, "valid pages (ppn, tag, is_tp)");
    assert_eq!(
        r.peek_translation_payload(7).expect("payload"),
        snapshot.peek_translation_payload(7).expect("payload")
    );
    for b in 0..g.num_blocks as u32 {
        assert_eq!(r.erase_count(b).unwrap(), snapshot.erase_count(b).unwrap());
        assert_eq!(r.next_free_ppn(b), snapshot.next_free_ppn(b));
        assert_eq!(
            r.valid_pages_in(b).unwrap(),
            snapshot.valid_pages_in(b).unwrap()
        );
    }
    // The reopened device keeps programming where the old one stopped.
    let mut r = r;
    let next = r.next_free_ppn(1).expect("free page");
    r.program_page(next, 77, OpPurpose::HostData)
        .expect("program");
    assert!(r.program_seq(next) > snapshot.program_seq(8));

    let _ = std::fs::remove_file(&path);
}

/// The election property: random sequence numbers and random corruption
/// on both copies; the mount elects the newest valid copy or fails typed.
#[test]
fn election_elects_newest_valid_or_fails_typed() {
    let path = temp_path("election");
    let g = geom();
    let mut rng = Rng64::seed_from_u64(0xE1EC);
    for trial in 0..300 {
        // A fresh, never-programmed device image.
        drop(Flash::create_file(g.clone(), &path).expect("create"));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .expect("open raw");

        let seq_a = rng.below(16);
        let seq_b = rng.below(16);
        let corrupt_a = rng.gen_bool(0.4);
        let corrupt_b = rng.gen_bool(0.4);
        let mut copies = Vec::new();
        for (slot, seq, corrupt) in [(0u64, seq_a, corrupt_a), (1, seq_b, corrupt_b)] {
            let mut enc = Superblock {
                geometry: g.clone(),
                sb_seq: seq,
                mounts: seq,
            }
            .encode();
            if corrupt {
                // Any flip within the checksummed head (96 B) or the CRC
                // itself (8 B) must invalidate the copy.
                let off = rng.range_usize(0, 104);
                enc[off] ^= 1 << rng.below(8) as u8;
            }
            file.write_all_at(&enc, slot * SUPERBLOCK_BYTES as u64)
                .expect("write sb");
            copies.push(enc);
        }
        // The pure election over the raw bytes...
        let elected = media::elect(&copies[0], &copies[1]);
        match (corrupt_a, corrupt_b) {
            (false, false) => {
                let (slot, w) = elected.expect("both valid");
                assert_eq!(w.sb_seq, seq_a.max(seq_b), "trial {trial}");
                assert_eq!(slot, usize::from(seq_b > seq_a), "trial {trial}");
            }
            (false, true) => {
                let (slot, w) = elected.expect("copy 0 valid");
                assert_eq!((slot, w.sb_seq), (0, seq_a), "trial {trial}");
            }
            (true, false) => {
                let (slot, w) = elected.expect("copy 1 valid");
                assert_eq!((slot, w.sb_seq), (1, seq_b), "trial {trial}");
            }
            (true, true) => {
                assert_eq!(elected, Err(MediaError::NoValidSuperblock), "trial {trial}");
            }
        }
        // ...and the full mount must agree (and never panic).
        drop(file);
        match Flash::open_file(&path) {
            Ok(f) => {
                assert!(
                    !(corrupt_a && corrupt_b),
                    "trial {trial}: mounted a device with two corrupt superblocks"
                );
                assert_eq!(f.geometry(), &g);
            }
            Err(FlashError::Media(MediaError::NoValidSuperblock)) => {
                assert!(corrupt_a && corrupt_b, "trial {trial}: valid copy rejected");
            }
            Err(e) => panic!("trial {trial}: unexpected error {e}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// Every mount bumps the monotonic sequence into the *alternate* copy, so
/// a torn superblock write can never take out the only valid copy.
#[test]
fn mount_stamp_alternates_copies_monotonically() {
    let path = temp_path("alternate");
    let g = geom();
    drop(Flash::create_file(g.clone(), &path).expect("create"));
    let mut last_seq = 0u64;
    for mount in 1..=6u64 {
        drop(Flash::open_file(&path).expect("open"));
        let file = OpenOptions::new().read(true).open(&path).expect("raw");
        let mut a = vec![0u8; SUPERBLOCK_BYTES];
        let mut b = vec![0u8; SUPERBLOCK_BYTES];
        file.read_exact_at(&mut a, 0).expect("read");
        file.read_exact_at(&mut b, SUPERBLOCK_BYTES as u64)
            .expect("read");
        let (slot, w) = media::elect(&a, &b).expect("elect");
        assert_eq!(w.sb_seq, mount, "seq bumps once per mount");
        assert_eq!(w.mounts, mount);
        assert_eq!(slot as u64, mount % 2, "copies alternate");
        assert!(w.sb_seq > last_seq);
        last_seq = w.sb_seq;
    }
    let _ = std::fs::remove_file(&path);
}

/// Structural failures are typed: a truncated image, a future layout
/// version, and a missing file all surface as `FlashError::Media`.
#[test]
fn structural_failures_are_typed() {
    let g = geom();
    // Missing file.
    let missing = temp_path("missing");
    match Flash::open_file(&missing) {
        Err(FlashError::Media(MediaError::Io(_))) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
    // Truncated image: superblocks valid, file too short.
    let path = temp_path("truncated");
    drop(Flash::create_file(g.clone(), &path).expect("create"));
    let full = media::device_file_len(&g);
    let file = OpenOptions::new().write(true).open(&path).expect("raw");
    file.set_len(full - 100).expect("truncate");
    drop(file);
    match Flash::open_file(&path) {
        Err(FlashError::Media(MediaError::SizeMismatch { expected, got })) => {
            assert_eq!(expected, full);
            assert_eq!(got, full - 100);
        }
        other => panic!("expected SizeMismatch, got {other:?}"),
    }
    // Future layout version (CRC re-sealed so the copy is structurally
    // sound): typed as UnsupportedVersion.
    drop(Flash::create_file(g.clone(), &path).expect("create"));
    let mut enc = Superblock {
        geometry: g,
        sb_seq: 5,
        mounts: 5,
    }
    .encode();
    enc[8..12].copy_from_slice(&99u32.to_le_bytes());
    let crc = media::crc64(&enc[..96]);
    enc[96..104].copy_from_slice(&crc.to_le_bytes());
    let file = OpenOptions::new().write(true).open(&path).expect("raw");
    file.write_all_at(&enc, 0).expect("write");
    file.write_all_at(&enc, SUPERBLOCK_BYTES as u64)
        .expect("write");
    drop(file);
    match Flash::open_file(&path) {
        Err(FlashError::Media(MediaError::UnsupportedVersion(99))) => {}
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
