//! Property tests for the channel/way unit-clock timing model.
//!
//! Three invariants, each checked over seeded random op sequences that mix
//! reads, programs, erases and dependency-frontier relaxations:
//!
//! 1. **Serial identity** — with 1 channel / 1 way / no bus cost, the
//!    simulated device clock accumulates exactly the same `t += latency`
//!    sequence as `FlashStats::busy_us`, so the two are bit-identical.
//! 2. **Never faster than physics** — with N units, the makespan is never
//!    below the critical-path bound: the busiest single unit's total
//!    occupancy (cell time plus its bus slots).
//! 3. **Never slower than serial** — parallelism (with zero bus cost) can
//!    only ever help: the N-unit makespan never exceeds the serial sum of
//!    latencies.

use tpftl_flash::{Flash, FlashGeometry, FlashTopology, OpPurpose, Ppn};
use tpftl_rng::Rng64;

const BLOCKS: usize = 16;
const PAGES_PER_BLOCK: usize = 8;

fn geom(channels: u32, ways: u32, bus_us: f64) -> FlashGeometry {
    FlashGeometry {
        page_bytes: 64,
        pages_per_block: PAGES_PER_BLOCK,
        num_blocks: BLOCKS,
        read_us: 25.0,
        write_us: 200.0,
        erase_us: 1500.0,
        topology: FlashTopology {
            channels,
            ways,
            bus_us,
        },
    }
}

/// Per-unit occupancy accumulated by the oracle: every op holds its unit
/// for at least its cell time plus (for page ops with a bus) the transfer.
struct Oracle {
    topology: FlashTopology,
    unit_occupancy_us: Vec<f64>,
    serial_us: f64,
}

impl Oracle {
    fn new(topology: FlashTopology) -> Self {
        Oracle {
            unit_occupancy_us: vec![0.0; topology.units()],
            serial_us: 0.0,
            topology,
        }
    }

    fn account(&mut self, block: u32, cell_us: f64, has_bus: bool) {
        let bus = if has_bus { self.topology.bus_us } else { 0.0 };
        self.unit_occupancy_us[self.topology.unit_of_block(block)] += cell_us + bus;
        self.serial_us += cell_us + bus;
    }

    /// Critical-path lower bound: the busiest unit can never be compressed.
    fn critical_path_us(&self) -> f64 {
        self.unit_occupancy_us.iter().fold(0.0, |a, &b| a.max(b))
    }
}

/// Drives a seeded op sequence against the device, mirroring it into the
/// oracle. Relaxations rewind the frontier to a randomly chosen past
/// completion time, modeling independent command chains.
fn drive(flash: &mut Flash, oracle: &mut Oracle, seed: u64, ops: usize) {
    let mut rng = Rng64::seed_from_u64(seed);
    let g = flash.geometry().clone();
    let mut fences: Vec<f64> = vec![0.0];
    for _ in 0..ops {
        let block = rng.range_usize(0, BLOCKS) as u32;
        match rng.range_usize(0, 10) {
            // Program the next free page of the block, if any.
            0..=4 => {
                if let Some(ppn) = flash.next_free_ppn(block) {
                    flash.program_page(ppn, ppn, OpPurpose::HostData).unwrap();
                    oracle.account(block, g.write_us, true);
                }
            }
            // Read a random valid page of the block, if any.
            5..=7 => {
                let valid: Vec<Ppn> = flash.valid_pages(block).map(|(p, _)| p).collect();
                if !valid.is_empty() {
                    let ppn = valid[rng.range_usize(0, valid.len())];
                    flash.read_page(ppn, OpPurpose::HostData).unwrap();
                    oracle.account(block, g.read_us, true);
                }
            }
            // Invalidate everything and erase (no bus traffic).
            8 => {
                let valid: Vec<Ppn> = flash.valid_pages(block).map(|(p, _)| p).collect();
                for ppn in valid {
                    flash.invalidate(ppn).unwrap();
                }
                if flash.next_free_ppn(block).is_none() || rng.range_usize(0, 2) == 0 {
                    flash.erase_block(block, OpPurpose::GcData).unwrap();
                    oracle.account(block, g.erase_us, false);
                }
            }
            // Start an independent chain at some past completion time.
            _ => {
                let fence = fences[rng.range_usize(0, fences.len())];
                flash.sim_relax_to(fence);
            }
        }
        fences.push(flash.sim_frontier_us());
        if fences.len() > 64 {
            fences.remove(0);
        }
    }
}

#[test]
fn serial_clock_is_bit_identical_to_busy_us() {
    for seed in [1u64, 7, 42, 2015, 0xdead_beef] {
        let mut flash = Flash::new(geom(1, 1, 0.0)).unwrap();
        let mut oracle = Oracle::new(flash.geometry().topology);
        drive(&mut flash, &mut oracle, seed, 4000);
        // Bitwise equality, not approximate: both clocks perform the same
        // `t += latency` additions in the same order.
        assert_eq!(
            flash.sim_device_done_us().to_bits(),
            flash.stats().busy_us.to_bits(),
            "seed {seed}: serial device clock diverged from busy_us"
        );
    }
}

#[test]
fn parallel_clock_bounded_by_critical_path_and_serial_time() {
    for (channels, ways, bus_us) in [(2, 1, 0.0), (4, 1, 0.0), (4, 2, 0.0), (2, 2, 10.0)] {
        for seed in [3u64, 11, 2015] {
            let mut flash = Flash::new(geom(channels, ways, bus_us)).unwrap();
            let mut oracle = Oracle::new(flash.geometry().topology);
            drive(&mut flash, &mut oracle, seed, 4000);
            let makespan = flash.sim_device_done_us();
            let eps = 1e-6;
            assert!(
                makespan + eps >= oracle.critical_path_us(),
                "{channels}x{ways} seed {seed}: makespan {makespan} below \
                 critical path {}",
                oracle.critical_path_us()
            );
            // With no bus contention the serial sum is an upper bound;
            // with a shared bus each op still costs at most cell+bus, so
            // the serial sum of (cell + bus) stays an upper bound.
            assert!(
                makespan <= oracle.serial_us + eps,
                "{channels}x{ways} seed {seed}: makespan {makespan} above \
                 serial time {}",
                oracle.serial_us
            );
        }
    }
}

#[test]
fn relaxation_never_breaks_per_unit_serialization() {
    // Aggressively relax to zero before every op: every op chain is
    // "independent", so the only serialization left is per-unit. The
    // makespan must then equal the busiest unit's occupancy exactly
    // (every unit runs its ops back to back from t = 0).
    let mut flash = Flash::new(geom(4, 2, 0.0)).unwrap();
    let mut oracle = Oracle::new(flash.geometry().topology);
    let mut rng = Rng64::seed_from_u64(99);
    let g = flash.geometry().clone();
    for _ in 0..2000 {
        let block = rng.range_usize(0, BLOCKS) as u32;
        flash.sim_relax_to(0.0);
        if let Some(ppn) = flash.next_free_ppn(block) {
            flash.program_page(ppn, ppn, OpPurpose::HostData).unwrap();
            oracle.account(block, g.write_us, true);
        } else {
            for ppn in flash.valid_pages(block).map(|(p, _)| p).collect::<Vec<_>>() {
                flash.invalidate(ppn).unwrap();
            }
            flash.erase_block(block, OpPurpose::GcData).unwrap();
            oracle.account(block, g.erase_us, false);
        }
    }
    assert!((flash.sim_device_done_us() - oracle.critical_path_us()).abs() < 1e-6);
}
