//! Randomized model tests over the FTL framework.
//!
//! * `LruList` against a `VecDeque` reference model.
//! * Every demand-paging FTL against a shadow mapping oracle under random
//!   workloads with GC pressure: all resolved mappings must point at the
//!   valid flash page holding that LPN, no LPN may own two valid pages, and
//!   cache budgets must hold at every step.
//!
//! The generators are driven by the in-tree seeded PRNG (`tpftl-rng`) —
//! proptest is unavailable offline — so every case is identified by its
//! seed and replays deterministically. Failures print the seed.

use std::collections::VecDeque;

use tpftl_core::driver;
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::{
    AccessCtx, Cdftl, Dftl, FastFtl, Ftl, OptimalFtl, Sftl, TpFtl, TpftlConfig, Zftl,
};
use tpftl_core::lru::LruList;
use tpftl_core::SsdConfig;
use tpftl_rng::Rng64;

// ---- LruList vs VecDeque model ----------------------------------------------

#[derive(Debug, Clone)]
enum LruOp {
    PushMru(u32),
    PushLru(u32),
    TouchNth(usize),
    RemoveNth(usize),
    PopLru,
}

fn lru_op(rng: &mut Rng64) -> LruOp {
    match rng.range_u32(0, 5) {
        0 => LruOp::PushMru(rng.next_u64() as u32),
        1 => LruOp::PushLru(rng.next_u64() as u32),
        2 => LruOp::TouchNth(rng.range_usize(0, 64)),
        3 => LruOp::RemoveNth(rng.range_usize(0, 64)),
        _ => LruOp::PopLru,
    }
}

#[test]
fn lru_list_matches_vecdeque_model() {
    for seed in 0..512u64 {
        let mut rng = Rng64::seed_from_u64(0x1070 + seed);
        let n_ops = rng.range_usize(1, 200);
        let mut list = LruList::new();
        // Model: front = LRU, back = MRU; holds (value, handle).
        let mut model: VecDeque<(u32, tpftl_core::lru::LruIdx)> = VecDeque::new();

        for step in 0..n_ops {
            let op = lru_op(&mut rng);
            match op {
                LruOp::PushMru(v) => {
                    let idx = list.push_mru(v);
                    model.push_back((v, idx));
                }
                LruOp::PushLru(v) => {
                    let idx = list.push_lru(v);
                    model.push_front((v, idx));
                }
                LruOp::TouchNth(n) => {
                    if !model.is_empty() {
                        let n = n % model.len();
                        let (v, idx) = model.remove(n).expect("in range");
                        list.touch(idx);
                        model.push_back((v, idx));
                    }
                }
                LruOp::RemoveNth(n) => {
                    if !model.is_empty() {
                        let n = n % model.len();
                        let (v, idx) = model.remove(n).expect("in range");
                        assert_eq!(list.remove(idx), v, "seed {seed} step {step}");
                    }
                }
                LruOp::PopLru => {
                    let got = list.pop_lru();
                    let want = model.pop_front().map(|(v, _)| v);
                    assert_eq!(got, want, "seed {seed} step {step}");
                }
            }
            assert_eq!(list.len(), model.len(), "seed {seed} step {step}");
            let order: Vec<u32> = list.iter_lru().map(|(_, v)| *v).collect();
            let want: Vec<u32> = model.iter().map(|(v, _)| *v).collect();
            assert_eq!(order, want, "seed {seed} step {step}");
        }
    }
}

/// Handles stay valid while unrelated entries churn: a surviving entry's
/// index must keep resolving to its value no matter how many pushes,
/// removals, and slab-slot reuses happen around it.
#[test]
fn lru_index_stability_under_churn() {
    let mut rng = Rng64::seed_from_u64(0x57AB);
    let mut list = LruList::new();
    let anchors: Vec<(u32, _)> = (0..16u32)
        .map(|v| (v | 0x8000_0000, list.push_mru(v | 0x8000_0000)))
        .collect();
    let mut churn: Vec<_> = Vec::new();
    for step in 0..10_000u32 {
        if churn.is_empty() || rng.gen_bool(0.55) {
            churn.push(list.push_mru(step));
        } else {
            let at = rng.range_usize(0, churn.len());
            list.remove(churn.swap_remove(at));
        }
        if step % 97 == 0 {
            for (v, idx) in &anchors {
                assert_eq!(list.get(*idx), Some(v), "anchor lost at step {step}");
            }
        }
    }
    for (v, idx) in &anchors {
        assert_eq!(list.get(*idx), Some(v));
    }
}

/// The slab recycles freed slots through its free list: steady-state churn
/// must not grow the slot arena beyond its high-water mark, however long it
/// runs.
#[test]
fn lru_free_list_reuses_slots_without_growth() {
    let mut rng = Rng64::seed_from_u64(0xF2EE);
    let mut list = LruList::new();
    let mut live: Vec<_> = (0..64u32).map(|v| list.push_mru(v)).collect();
    let high_water = list.slot_count();
    assert_eq!(high_water, 64);
    for step in 0..10_000u32 {
        // Replace a random entry: the removal frees a slot, the push must
        // take it back instead of extending the slab.
        let at = rng.range_usize(0, live.len());
        list.remove(live.swap_remove(at));
        live.push(list.push_mru(step));
        assert_eq!(list.len(), 64);
        assert_eq!(
            list.slot_count(),
            high_water,
            "slab grew during steady-state churn at step {step}"
        );
    }
    // Growth beyond the high-water mark allocates fresh slots again.
    live.push(list.push_mru(u32::MAX));
    assert_eq!(list.slot_count(), high_water + 1);
}

// ---- FTL mapping consistency under random workloads ---------------------------

#[derive(Debug, Clone, Copy)]
enum FtlKind {
    Optimal,
    Dftl,
    Sftl,
    Cdftl,
    Zftl,
    Fast,
    TpftlFull,
    TpftlBare,
    TpftlB,
    TpftlRs,
}

const ALL_KINDS: [FtlKind; 10] = [
    FtlKind::Optimal,
    FtlKind::Dftl,
    FtlKind::Sftl,
    FtlKind::Cdftl,
    FtlKind::Zftl,
    FtlKind::Fast,
    FtlKind::TpftlFull,
    FtlKind::TpftlBare,
    FtlKind::TpftlB,
    FtlKind::TpftlRs,
];

fn build(kind: FtlKind, config: &SsdConfig) -> Box<dyn Ftl> {
    match kind {
        FtlKind::Optimal => Box::new(OptimalFtl::new(config)),
        FtlKind::Dftl => Box::new(Dftl::new(config).expect("budget fits")),
        FtlKind::Sftl => Box::new(Sftl::new(config).expect("budget fits")),
        FtlKind::Cdftl => Box::new(Cdftl::new(config).expect("budget fits")),
        FtlKind::Zftl => Box::new(Zftl::new(config, 4).expect("budget fits")),
        FtlKind::Fast => Box::new(FastFtl::new(config, 3)),
        FtlKind::TpftlFull => {
            Box::new(TpFtl::new(config, TpftlConfig::full()).expect("budget fits"))
        }
        FtlKind::TpftlBare => {
            Box::new(TpFtl::new(config, TpftlConfig::baseline()).expect("budget fits"))
        }
        FtlKind::TpftlB => {
            Box::new(TpFtl::new(config, TpftlConfig::from_flags("b")).expect("budget fits"))
        }
        FtlKind::TpftlRs => {
            Box::new(TpFtl::new(config, TpftlConfig::from_flags("rs")).expect("budget fits"))
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Access {
    lpn_seed: u32,
    len: u32,
    write: bool,
}

fn access(rng: &mut Rng64) -> Access {
    Access {
        lpn_seed: rng.next_u64() as u32,
        len: rng.range_u32(1, 6),
        write: rng.gen_bool(0.5),
    }
}

fn accesses(rng: &mut Rng64, lo: usize, hi: usize) -> Vec<Access> {
    let n = rng.range_usize(lo, hi);
    (0..n).map(|_| access(rng)).collect()
}

#[test]
fn ftl_mapping_matches_flash_oracle() {
    // Each case runs a few hundred page accesses; keep the count moderate.
    for case in 0..48u64 {
        let mut rng = Rng64::seed_from_u64(0xF71 + case);
        let kind = ALL_KINDS[rng.range_usize(0, ALL_KINDS.len())];
        let prefill = if rng.gen_bool(0.5) { 0.6 } else { 0.0 };
        let accesses = accesses(&mut rng, 50, 250);

        // 8 MB logical space, hot region to force GC and evictions.
        let mut config = SsdConfig::paper_default(8 << 20);
        // Small cache: S-FTL/CDFTL need a whole page + slack.
        config.cache_bytes = config.gtd_bytes() + 10 * 1024;
        // The block-mapping FAST FTL does not support pre-fill.
        config.prefill_frac = if matches!(kind, FtlKind::Fast) {
            0.0
        } else {
            prefill
        };
        let logical_pages = config.logical_pages() as u32;
        let mut env = SsdEnv::new(config.clone()).expect("env");
        let mut ftl = build(kind, &config);
        driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");

        // Shadow oracle of what has been written.
        let mut written = vec![false; logical_pages as usize];
        if config.prefill_frac > 0.0 {
            let n = (logical_pages as f64 * config.prefill_frac) as u32;
            for lpn in 0..n {
                written[lpn as usize] = true;
            }
        }

        for a in &accesses {
            // Concentrate in a hot quarter of the space to trigger GC.
            let start = a.lpn_seed % (logical_pages / 4);
            let len = a.len.min(logical_pages - start);
            driver::serve_request(ftl.as_mut(), &mut env, start, len, a.write).expect("serve");
            if a.write {
                for lpn in start..start + len {
                    written[lpn as usize] = true;
                }
            }
        }

        // Oracle 1: no LPN owns two valid data pages.
        let mut owner = std::collections::HashMap::new();
        for (ppn, tag, is_tp) in env.flash().scan_valid() {
            if !is_tp {
                assert!(
                    owner.insert(tag, ppn).is_none(),
                    "case {case} ({kind:?}): LPN {tag} double-mapped"
                );
            }
        }
        // Oracle 2: every written LPN resolves through the FTL to the
        // page that physically holds it; unwritten LPNs resolve to None.
        for lpn in 0..logical_pages {
            let got = ftl
                .translate(&mut env, lpn, &AccessCtx::single(false))
                .expect("translate");
            match (written[lpn as usize], got) {
                (true, Some(ppn)) => {
                    assert_eq!(
                        owner.get(&lpn).copied(),
                        Some(ppn),
                        "case {case} ({kind:?}): LPN {lpn}"
                    );
                }
                (true, None) => {
                    panic!("case {case} ({kind:?}): written LPN {lpn} lost its mapping")
                }
                (false, Some(_)) => panic!("case {case} ({kind:?}): unwritten LPN {lpn} is mapped"),
                (false, None) => {}
            }
        }
        // Oracle 3: lookup accounting is exact.
        assert_eq!(
            env.stats.lookups,
            accesses
                .iter()
                .map(|a| {
                    let start = a.lpn_seed % (logical_pages / 4);
                    a.len.min(logical_pages - start) as u64
                })
                .sum::<u64>()
                + logical_pages as u64,
            "case {case} ({kind:?})"
        );
    }
}

// ---- TPFTL-specific invariants ------------------------------------------------

/// The cache budget holds after every single access, for arbitrary
/// budgets and multi-page requests (this is the invariant a make-room /
/// insert mismatch violates: the eviction pass can dismantle the target
/// TP node, whose re-creation must be re-accounted).
#[test]
fn tpftl_budget_invariant_under_prefetching() {
    const FLAGS: [&str; 4] = ["rsbc", "rs", "r", ""];
    for case in 0..32u64 {
        let mut rng = Rng64::seed_from_u64(0xB4D6 + case);
        let budget = rng.range_usize(64, 2048);
        let flags = FLAGS[rng.range_usize(0, FLAGS.len())];
        let accesses = accesses(&mut rng, 50, 300);

        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + budget;
        let logical_pages = config.logical_pages() as u32;
        let mut env = SsdEnv::new(config.clone()).expect("env");
        let mut ftl = TpFtl::new(&config, TpftlConfig::from_flags(flags)).expect("ftl");
        driver::bootstrap(&mut ftl, &mut env).expect("bootstrap");
        for a in &accesses {
            let start = a.lpn_seed % logical_pages;
            let len = a.len.min(logical_pages - start);
            driver::serve_request(&mut ftl, &mut env, start, len, a.write).expect("serve");
            assert!(
                ftl.cache_bytes_used() <= budget,
                "case {case}: budget {budget} exceeded: {} (flags {flags:?})",
                ftl.cache_bytes_used()
            );
        }
    }
}

/// One address translation performs at most one translation-page read
/// and at most one translation-page write (Section 4.5's guarantee).
#[test]
fn tpftl_at_most_one_read_and_update_per_translation() {
    for case in 0..32u64 {
        let mut rng = Rng64::seed_from_u64(0xA7F0 + case);
        let accesses = accesses(&mut rng, 30, 150);

        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + 256;
        let logical_pages = config.logical_pages() as u32;
        let mut env = SsdEnv::new(config.clone()).expect("env");
        let mut ftl = TpFtl::new(&config, TpftlConfig::full()).expect("ftl");
        driver::bootstrap(&mut ftl, &mut env).expect("bootstrap");

        for a in &accesses {
            let lpn = a.lpn_seed % logical_pages;
            let before_r = env
                .flash()
                .stats()
                .of(tpftl_flash::OpPurpose::Translation)
                .reads;
            let before_w = env
                .flash()
                .stats()
                .of(tpftl_flash::OpPurpose::Translation)
                .writes;
            let _ = ftl
                .translate(
                    &mut env,
                    lpn,
                    &AccessCtx {
                        is_write: a.write,
                        remaining_in_request: a.len,
                    },
                )
                .expect("translate");
            let dr = env
                .flash()
                .stats()
                .of(tpftl_flash::OpPurpose::Translation)
                .reads
                - before_r;
            let dw = env
                .flash()
                .stats()
                .of(tpftl_flash::OpPurpose::Translation)
                .writes
                - before_w;
            assert!(
                dr <= 2,
                "case {case}: one load plus at most one writeback read, got {dr}"
            );
            assert!(
                dw <= 1,
                "case {case}: at most one translation update, got {dw}"
            );
        }
    }
}
