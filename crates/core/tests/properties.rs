//! Property tests over the FTL framework.
//!
//! * `LruList` against a `VecDeque` reference model.
//! * S-FTL's incremental run accounting against a full recount.
//! * Every demand-paging FTL against a shadow mapping oracle under random
//!   workloads with GC pressure: all resolved mappings must point at the
//!   valid flash page holding that LPN, no LPN may own two valid pages, and
//!   cache budgets must hold at every step.

use proptest::prelude::*;
use std::collections::VecDeque;

use tpftl_core::driver;
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::{
    AccessCtx, Cdftl, Dftl, FastFtl, Ftl, OptimalFtl, Sftl, TpFtl, TpftlConfig, Zftl,
};
use tpftl_core::lru::LruList;
use tpftl_core::SsdConfig;

// ---- LruList vs VecDeque model ----------------------------------------------

#[derive(Debug, Clone)]
enum LruOp {
    PushMru(u32),
    PushLru(u32),
    TouchNth(usize),
    RemoveNth(usize),
    PopLru,
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        any::<u32>().prop_map(LruOp::PushMru),
        any::<u32>().prop_map(LruOp::PushLru),
        (0usize..64).prop_map(LruOp::TouchNth),
        (0usize..64).prop_map(LruOp::RemoveNth),
        Just(LruOp::PopLru),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lru_list_matches_vecdeque_model(ops in proptest::collection::vec(lru_op(), 1..200)) {
        let mut list = LruList::new();
        // Model: front = LRU, back = MRU; holds (value, handle).
        let mut model: VecDeque<(u32, tpftl_core::lru::LruIdx)> = VecDeque::new();

        for op in ops {
            match op {
                LruOp::PushMru(v) => {
                    let idx = list.push_mru(v);
                    model.push_back((v, idx));
                }
                LruOp::PushLru(v) => {
                    let idx = list.push_lru(v);
                    model.push_front((v, idx));
                }
                LruOp::TouchNth(n) => {
                    if !model.is_empty() {
                        let n = n % model.len();
                        let (v, idx) = model.remove(n).expect("in range");
                        list.touch(idx);
                        model.push_back((v, idx));
                    }
                }
                LruOp::RemoveNth(n) => {
                    if !model.is_empty() {
                        let n = n % model.len();
                        let (v, idx) = model.remove(n).expect("in range");
                        prop_assert_eq!(list.remove(idx), v);
                    }
                }
                LruOp::PopLru => {
                    let got = list.pop_lru();
                    let want = model.pop_front().map(|(v, _)| v);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(list.len(), model.len());
            let order: Vec<u32> = list.iter_lru().map(|(_, v)| *v).collect();
            let want: Vec<u32> = model.iter().map(|(v, _)| *v).collect();
            prop_assert_eq!(order, want);
        }
    }
}

// ---- FTL mapping consistency under random workloads ---------------------------

#[derive(Debug, Clone, Copy)]
enum FtlKind {
    Optimal,
    Dftl,
    Sftl,
    Cdftl,
    Zftl,
    Fast,
    TpftlFull,
    TpftlBare,
    TpftlB,
    TpftlRs,
}

fn build(kind: FtlKind, config: &SsdConfig) -> Box<dyn Ftl> {
    match kind {
        FtlKind::Optimal => Box::new(OptimalFtl::new(config)),
        FtlKind::Dftl => Box::new(Dftl::new(config).expect("budget fits")),
        FtlKind::Sftl => Box::new(Sftl::new(config).expect("budget fits")),
        FtlKind::Cdftl => Box::new(Cdftl::new(config).expect("budget fits")),
        FtlKind::Zftl => Box::new(Zftl::new(config, 4).expect("budget fits")),
        FtlKind::Fast => Box::new(FastFtl::new(config, 3)),
        FtlKind::TpftlFull => {
            Box::new(TpFtl::new(config, TpftlConfig::full()).expect("budget fits"))
        }
        FtlKind::TpftlBare => {
            Box::new(TpFtl::new(config, TpftlConfig::baseline()).expect("budget fits"))
        }
        FtlKind::TpftlB => {
            Box::new(TpFtl::new(config, TpftlConfig::from_flags("b")).expect("budget fits"))
        }
        FtlKind::TpftlRs => {
            Box::new(TpFtl::new(config, TpftlConfig::from_flags("rs")).expect("budget fits"))
        }
    }
}

fn ftl_kind() -> impl Strategy<Value = FtlKind> {
    prop_oneof![
        Just(FtlKind::Optimal),
        Just(FtlKind::Dftl),
        Just(FtlKind::Sftl),
        Just(FtlKind::Cdftl),
        Just(FtlKind::Zftl),
        Just(FtlKind::Fast),
        Just(FtlKind::TpftlFull),
        Just(FtlKind::TpftlBare),
        Just(FtlKind::TpftlB),
        Just(FtlKind::TpftlRs),
    ]
}

#[derive(Debug, Clone, Copy)]
struct Access {
    lpn_seed: u32,
    len: u32,
    write: bool,
}

fn access() -> impl Strategy<Value = Access> {
    (any::<u32>(), 1u32..6, any::<bool>()).prop_map(|(lpn_seed, len, write)| Access {
        lpn_seed,
        len,
        write,
    })
}

proptest! {
    // Each case runs a few hundred page accesses; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ftl_mapping_matches_flash_oracle(
        kind in ftl_kind(),
        prefill in prop_oneof![Just(0.0f64), Just(0.6f64)],
        accesses in proptest::collection::vec(access(), 50..250),
    ) {
        // 8 MB logical space, hot region to force GC and evictions.
        let mut config = SsdConfig::paper_default(8 << 20);
        // Small cache: S-FTL/CDFTL need a whole page + slack.
        config.cache_bytes = config.gtd_bytes() + 10 * 1024;
        // The block-mapping FAST FTL does not support pre-fill.
        config.prefill_frac = if matches!(kind, FtlKind::Fast) { 0.0 } else { prefill };
        let logical_pages = config.logical_pages() as u32;
        let mut env = SsdEnv::new(config.clone()).expect("env");
        let mut ftl = build(kind, &config);
        driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");

        // Shadow oracle of what has been written.
        let mut written = vec![false; logical_pages as usize];
        if config.prefill_frac > 0.0 {
            let n = (logical_pages as f64 * config.prefill_frac) as u32;
            for lpn in 0..n {
                written[lpn as usize] = true;
            }
        }

        for a in &accesses {
            // Concentrate in a hot quarter of the space to trigger GC.
            let start = a.lpn_seed % (logical_pages / 4);
            let len = a.len.min(logical_pages - start);
            driver::serve_request(ftl.as_mut(), &mut env, start, len, a.write)
                .expect("serve");
            if a.write {
                for lpn in start..start + len {
                    written[lpn as usize] = true;
                }
            }
        }

        // Oracle 1: no LPN owns two valid data pages.
        let mut owner = std::collections::HashMap::new();
        for (ppn, tag, is_tp) in env.flash().scan_valid() {
            if !is_tp {
                prop_assert!(owner.insert(tag, ppn).is_none(), "LPN {} double-mapped", tag);
            }
        }
        // Oracle 2: every written LPN resolves through the FTL to the
        // page that physically holds it; unwritten LPNs resolve to None.
        for lpn in 0..logical_pages {
            let got = ftl
                .translate(&mut env, lpn, &AccessCtx::single(false))
                .expect("translate");
            match (written[lpn as usize], got) {
                (true, Some(ppn)) => {
                    prop_assert_eq!(owner.get(&lpn).copied(), Some(ppn), "LPN {}", lpn);
                }
                (true, None) => prop_assert!(false, "written LPN {lpn} lost its mapping"),
                (false, Some(_)) => prop_assert!(false, "unwritten LPN {lpn} is mapped"),
                (false, None) => {}
            }
        }
        // Oracle 3: lookup accounting is exact.
        prop_assert_eq!(
            env.stats.lookups,
            accesses.iter().map(|a| {
                let start = a.lpn_seed % (logical_pages / 4);
                a.len.min(logical_pages - start) as u64
            }).sum::<u64>() + logical_pages as u64
        );
    }
}

// ---- TPFTL-specific invariants ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cache budget holds after every single access, for arbitrary
    /// budgets and multi-page requests (this is the invariant a make-room /
    /// insert mismatch violates: the eviction pass can dismantle the target
    /// TP node, whose re-creation must be re-accounted).
    #[test]
    fn tpftl_budget_invariant_under_prefetching(
        budget in 64usize..2048,
        flags in prop_oneof![Just("rsbc"), Just("rs"), Just("r"), Just("")],
        accesses in proptest::collection::vec(access(), 50..300),
    ) {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + budget;
        let logical_pages = config.logical_pages() as u32;
        let mut env = SsdEnv::new(config.clone()).expect("env");
        let mut ftl = TpFtl::new(&config, TpftlConfig::from_flags(flags)).expect("ftl");
        driver::bootstrap(&mut ftl, &mut env).expect("bootstrap");
        for a in &accesses {
            let start = a.lpn_seed % logical_pages;
            let len = a.len.min(logical_pages - start);
            driver::serve_request(&mut ftl, &mut env, start, len, a.write).expect("serve");
            prop_assert!(
                ftl.cache_bytes_used() <= budget,
                "budget {budget} exceeded: {} (flags {flags:?})",
                ftl.cache_bytes_used()
            );
        }
    }

    /// One address translation performs at most one translation-page read
    /// and at most one translation-page write (Section 4.5's guarantee).
    #[test]
    fn tpftl_at_most_one_read_and_update_per_translation(
        accesses in proptest::collection::vec(access(), 30..150),
    ) {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + 256;
        let logical_pages = config.logical_pages() as u32;
        let mut env = SsdEnv::new(config.clone()).expect("env");
        let mut ftl = TpFtl::new(&config, TpftlConfig::full()).expect("ftl");
        driver::bootstrap(&mut ftl, &mut env).expect("bootstrap");

        for a in &accesses {
            let lpn = a.lpn_seed % logical_pages;
            let before_r = env.flash().stats().of(tpftl_flash::OpPurpose::Translation).reads;
            let before_w = env.flash().stats().of(tpftl_flash::OpPurpose::Translation).writes;
            let _ = ftl
                .translate(&mut env, lpn, &AccessCtx { is_write: a.write, remaining_in_request: a.len })
                .expect("translate");
            let dr = env.flash().stats().of(tpftl_flash::OpPurpose::Translation).reads - before_r;
            let dw = env.flash().stats().of(tpftl_flash::OpPurpose::Translation).writes - before_w;
            prop_assert!(dr <= 2, "one load plus at most one writeback read, got {dr}");
            prop_assert!(dw <= 1, "at most one translation update, got {dw}");
        }
    }
}
