//! Flush / unmount / remount integration tests: the full power-cycle story
//! for every demand-paging FTL.

use tpftl_core::driver;
use tpftl_core::env::SsdEnv;
use tpftl_core::ftl::{AccessCtx, Cdftl, Dftl, Ftl, Sftl, TpFtl, TpftlConfig};
use tpftl_core::{gc, recovery, SsdConfig};

fn config() -> SsdConfig {
    let mut c = SsdConfig::paper_default(16 << 20);
    c.cache_bytes = c.gtd_bytes() + 10 * 1024;
    c
}

fn ftls(c: &SsdConfig) -> Vec<Box<dyn Ftl>> {
    vec![
        Box::new(Dftl::new(c).expect("budget")),
        Box::new(TpFtl::new(c, TpftlConfig::full()).expect("budget")),
        Box::new(TpFtl::new(c, TpftlConfig::baseline()).expect("budget")),
        Box::new(Sftl::new(c).expect("budget")),
        Box::new(Cdftl::new(c).expect("budget")),
    ]
}

fn workload(ftl: &mut dyn Ftl, env: &mut SsdEnv, n: u32) -> Vec<u32> {
    let mut written = Vec::new();
    for i in 0..n {
        let lpn = (i.wrapping_mul(2654435761) >> 12) % 4096;
        let write = i % 4 != 3;
        driver::serve_page_access(ftl, env, lpn, AccessCtx::single(write)).expect("serve");
        if write {
            written.push(lpn);
        }
    }
    written.sort_unstable();
    written.dedup();
    written
}

/// After `flush_cache`, the on-flash mapping table alone describes every
/// valid data page (the `verify` oracle), for each FTL.
#[test]
fn flush_persists_every_dirty_mapping() {
    let c = config();
    for mut ftl in ftls(&c) {
        let mut env = SsdEnv::new(c.clone()).expect("env");
        driver::bootstrap(ftl.as_mut(), &mut env).expect("bootstrap");
        let written = workload(ftl.as_mut(), &mut env, 8_000);
        recovery::flush_cache(ftl.as_mut(), &mut env)
            .unwrap_or_else(|e| panic!("{} flush failed: {e}", ftl.name()));
        let report = recovery::verify(&env);
        report.assert_clean();
        assert_eq!(
            report.mapped_entries,
            written.len() as u64,
            "{}: persisted table must reference exactly the written pages",
            ftl.name()
        );
    }
}

/// Full power cycle: run, flush, drop all RAM state, remount, and serve
/// the data back with a *different* FTL (the on-flash format is shared).
#[test]
fn power_cycle_roundtrip_across_ftls() {
    let c = config();
    let mut env = SsdEnv::new(c.clone()).expect("env");
    let mut tpftl = TpFtl::new(&c, TpftlConfig::full()).expect("budget");
    driver::bootstrap(&mut tpftl, &mut env).expect("bootstrap");
    let written = workload(&mut tpftl, &mut env, 10_000);
    recovery::flush_cache(&mut tpftl, &mut env).expect("flush");

    // Power cycle: only the flash array survives.
    let flash = env.into_flash();
    drop(tpftl);
    let mut env2 = recovery::mount(flash, c.clone()).expect("mount");
    recovery::verify(&env2).assert_clean();

    // A cold DFTL mounts the same on-flash state.
    let mut dftl = Dftl::new(&c).expect("budget");
    for &lpn in &written {
        gc::ensure_free(&mut dftl, &mut env2).expect("gc");
        let ppn = dftl
            .translate(&mut env2, lpn, &AccessCtx::single(false))
            .expect("translate")
            .unwrap_or_else(|| panic!("LPN {lpn} lost across the power cycle"));
        env2.read_data_page(ppn, lpn).expect("consistent");
    }
    // And can keep writing.
    for i in 0..2_000u32 {
        driver::serve_page_access(&mut dftl, &mut env2, i % 4096, AccessCtx::single(true))
            .expect("serve after remount");
    }
}

/// Remount preserves wear counters (the manager re-seeds from the flash
/// erase counts) and keeps GC operational.
#[test]
fn remount_preserves_wear_and_gc_works() {
    let c = config();
    let mut env = SsdEnv::new(c.clone()).expect("env");
    let mut ftl = TpFtl::new(&c, TpftlConfig::full()).expect("budget");
    driver::bootstrap(&mut ftl, &mut env).expect("bootstrap");
    // Churn until GC has erased a fair number of blocks.
    for i in 0..30_000u32 {
        driver::serve_page_access(&mut ftl, &mut env, i % 1024, AccessCtx::single(true))
            .expect("serve");
    }
    let erases_before = env.flash().total_erase_count();
    assert!(erases_before > 0, "workload must have triggered GC");
    recovery::flush_cache(&mut ftl, &mut env).expect("flush");

    let flash = env.into_flash();
    let mut env2 = recovery::mount(flash, c.clone()).expect("mount");
    assert_eq!(env2.flash().total_erase_count(), erases_before);
    // Keep writing through a fresh FTL: GC must keep functioning.
    let mut ftl2 = TpFtl::new(&c, TpftlConfig::full()).expect("budget");
    for i in 0..30_000u32 {
        driver::serve_page_access(&mut ftl2, &mut env2, i % 1024, AccessCtx::single(true))
            .expect("serve after remount");
    }
    assert!(env2.flash().total_erase_count() > erases_before);
    recovery::flush_cache(&mut ftl2, &mut env2).expect("flush");
    recovery::verify(&env2).assert_clean();
}

/// Flushing twice is idempotent: the second flush writes nothing.
#[test]
fn flush_is_idempotent() {
    let c = config();
    let mut env = SsdEnv::new(c.clone()).expect("env");
    let mut ftl = TpFtl::new(&c, TpftlConfig::full()).expect("budget");
    driver::bootstrap(&mut ftl, &mut env).expect("bootstrap");
    let _ = workload(&mut ftl, &mut env, 5_000);
    recovery::flush_cache(&mut ftl, &mut env).expect("first flush");
    let writes = env.flash().stats().total_writes();
    recovery::flush_cache(&mut ftl, &mut env).expect("second flush");
    assert_eq!(
        env.flash().stats().total_writes(),
        writes,
        "second flush is a no-op"
    );
}
