//! Mount-time recovery: rebuilding the FTL's RAM state from flash.
//!
//! A real SSD loses its RAM state (GTD, block bookkeeping, mapping cache)
//! at power-off. After a *clean* shutdown — the FTL flushed every dirty
//! mapping entry with [`flush_cache`] — everything can be reconstructed
//! from flash alone:
//!
//! * the GTD, by scanning for valid translation pages (their out-of-band
//!   tag is the VTPN);
//! * the block manager, by classifying each block from its page states
//!   (free / sealed data / sealed translation), seeding wear from the
//!   per-block erase counters;
//! * the mapping cache starts cold, exactly like the paper's experiments.
//!
//! Volatile *acceleration* state is deliberately not reconstructed:
//! mount builds a fresh FTL instance, so RAM-only indexes layered over
//! the persisted table — in particular LearnedFTL's piecewise-linear
//! segments (`crate::ftl::LearnedFtl`) — are discarded wholesale. The
//! durable answer never depends on them (every prediction is validated
//! against the OOB reverse map before use), and the learned index is
//! rebuilt on demand after remount via `LearnedFtl::warm_up` or the
//! normal writeback-triggered refits.
//!
//! [`mount`] performs the clean-shutdown reconstruction. [`crash_mount`]
//! handles the hard case: the power failed at an *arbitrary* instant
//! (see `tpftl_flash::FaultPlan`), so the persisted mapping table may be
//! stale, duplicated, or torn. It runs the DFTL-style power-off recovery
//! scan — elect the newest valid copy of every logical page and every
//! translation page by out-of-band program-sequence stamp, discard the
//! losers, then rewrite every translation page whose persisted entries
//! disagree with the elected data pages — and returns a
//! [`RecoveryReport`] describing what it found and fixed.
//!
//! [`verify`] cross-checks the persisted mapping table against the
//! physically valid data pages — the strongest end-to-end consistency
//! oracle in the test suite — and returns a typed [`VerifyReport`] so
//! crash harnesses can assert on it without catching panics.

use std::collections::hash_map::Entry;
use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use tpftl_flash::{Flash, Lpn, OpKind, OpPurpose, Ppn, Vtpn, PPN_NONE};

use crate::env::SsdEnv;
use crate::ftl::{AccessCtx, Ftl, TpDistEntry};
use crate::gc;
use crate::gtd::Gtd;
use crate::hash::FxHashMap;
use crate::{Result, SsdConfig};

/// Writes back every dirty entry of the FTL's mapping cache, grouped per
/// translation page, leaving the cache clean — the clean-unmount barrier.
pub fn flush_cache<F: Ftl + ?Sized>(ftl: &mut F, env: &mut SsdEnv) -> Result<()> {
    if !ftl.uses_translation_pages() {
        return Ok(()); // RAM-table FTLs have nothing to persist here.
    }
    // The flush itself writes translation pages, which may need GC room.
    if ftl.uses_page_level_gc() {
        gc::ensure_free(ftl, env)?;
    }
    for d in ftl.cached_tp_distribution() {
        if d.dirty > 0 {
            flush_one_page(ftl, env, d.vtpn)?;
        }
    }
    debug_assert!(
        ftl.cached_tp_distribution().iter().all(|d| d.dirty == 0),
        "flush left dirty entries behind"
    );
    Ok(())
}

/// Flushes one translation page: overlays every cached entry (read via the
/// side-effect-free [`Ftl::peek_cached`]) onto the persisted page and
/// writes it back if anything changed, then marks the page's entries clean.
fn flush_one_page<F: Ftl + ?Sized>(ftl: &mut F, env: &mut SsdEnv, vtpn: Vtpn) -> Result<()> {
    let entries = env.entries_per_tp() as u32;
    let base = vtpn * entries;
    let persisted = env.read_translation_entries(vtpn, OpPurpose::Translation)?;
    let mut updates: Vec<(u16, Ppn)> = Vec::new();
    for off in 0..entries {
        let lpn = base + off;
        if (lpn as u64) >= env.config().logical_pages() {
            break;
        }
        if let Some(cached) = ftl.peek_cached(env, lpn)? {
            let cached = cached.unwrap_or(PPN_NONE);
            if persisted[off as usize] != cached {
                updates.push((off as u16, cached));
            }
        }
    }
    if !updates.is_empty() {
        env.update_translation_page(vtpn, &updates, OpPurpose::Translation)?;
    }
    ftl.mark_clean(vtpn);
    Ok(())
}

/// Rebuilds the translation directory by scanning flash for valid
/// translation pages.
///
/// # Panics
///
/// Panics on a duplicate VTPN (two valid translation pages for the same
/// slice of the table). After a *clean* shutdown that indicates on-flash
/// corruption; after a power loss it is the expected interrupted-update
/// race, which [`crash_mount`] resolves by program-sequence stamp.
pub fn rebuild_gtd(flash: &Flash, config: &SsdConfig) -> Gtd {
    let mut gtd = Gtd::new(config.num_vtpns() as usize);
    for (ppn, tag, is_tp) in flash.scan_valid() {
        if is_tp {
            assert!(
                gtd.get(tag).is_none(),
                "two valid translation pages for VTPN {tag} (corruption)"
            );
            gtd.set(tag, ppn);
        }
    }
    gtd
}

/// Reconstructs a full [`SsdEnv`] around an existing flash device, as an
/// SSD controller does at mount time after a clean shutdown. Statistics
/// start at zero; partially programmed blocks are conservatively sealed
/// (their unwritten pages come back the next time GC erases them).
pub fn mount(flash: Flash, config: SsdConfig) -> Result<SsdEnv> {
    let gtd = rebuild_gtd(&flash, &config);
    SsdEnv::remount(config, flash, gtd)
}

/// The flash operation an injected power loss interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterruptedOp {
    /// Index of the fatal operation, counted from when the plan was armed.
    pub op_index: u64,
    /// Kind of the operation that was interrupted.
    pub kind: OpKind,
}

/// What [`crash_mount`] found on the device and did to repair it.
///
/// Fully deterministic: the same flash image produces a bit-identical
/// report, so crash tests can compare serialized reports across replays.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The operation the power loss interrupted, if the mounted device
    /// carried a fired fault plan.
    pub interrupted: Option<InterruptedOp>,
    /// Physical pages scanned (the whole device).
    pub scanned_pages: u64,
    /// Torn pages found (interrupted program/erase damage, reclaimed
    /// later by GC erases).
    pub torn_pages: u64,
    /// Live data pages after duplicate election.
    pub data_pages: u64,
    /// Live translation pages after duplicate election.
    pub translation_pages: u64,
    /// Older duplicate data-page copies discarded (same LPN twice —
    /// a write or GC migration interrupted between program and
    /// invalidate).
    pub duplicate_data_discarded: u64,
    /// Older duplicate translation-page copies discarded (same VTPN
    /// twice — an interrupted translation-page update).
    pub duplicate_translation_discarded: u64,
    /// Mapping entries whose persisted value missed the newest data copy
    /// and were repointed at it (unflushed or mid-flush updates).
    pub mappings_recovered: u64,
    /// Mapping entries that pointed at dead pages with no live
    /// replacement and were reset to unmapped.
    pub stale_cleared: u64,
    /// Translation pages rewritten during reconciliation.
    pub translation_pages_rewritten: u64,
    /// Translation pages examined by the reconcile loop (≥ the VTPN
    /// count: garbage collection during recovery re-queues pages).
    pub reconcile_visits: u64,
}

/// Minimal [`Ftl`] the reconcile loop runs garbage collection through: the
/// elected mapping table lives in RAM (`truth`), every GC data migration
/// updates it in place and queues the affected translation page for
/// (re-)reconciliation instead of writing through to flash.
struct RecoveryFtl {
    truth: Vec<Ppn>,
    dirtied: BTreeSet<Vtpn>,
}

impl Ftl for RecoveryFtl {
    fn name(&self) -> String {
        "Recovery".into()
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        env.note_lookup(true);
        let p = self.truth[lpn as usize];
        Ok((p != PPN_NONE).then_some(p))
    }

    fn update_mapping(&mut self, env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        self.truth[lpn as usize] = new_ppn;
        self.dirtied.insert(env.vtpn_of(lpn));
        Ok(())
    }

    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        for &(lpn, ppn) in moved {
            self.truth[lpn as usize] = ppn;
            self.dirtied.insert(env.vtpn_of(lpn));
        }
        Ok(moved.len() as u64)
    }

    fn cache_bytes_used(&self) -> usize {
        0
    }

    fn cached_entries(&self) -> usize {
        0
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        Vec::new()
    }
}

/// Differences between the persisted payload of `vtpn` and the elected
/// mapping table, as `update_translation_page` updates.
fn diff_page(env: &mut SsdEnv, truth: &[Ppn], vtpn: Vtpn) -> Result<Vec<(u16, Ppn)>> {
    let entries = env.entries_per_tp() as u32;
    let base = vtpn * entries;
    let persisted = env.read_translation_entries(vtpn, OpPurpose::Translation)?;
    let mut updates = Vec::new();
    for off in 0..entries {
        let lpn = base + off;
        if (lpn as u64) >= env.config().logical_pages() {
            break;
        }
        let want = truth[lpn as usize];
        if persisted[off as usize] != want {
            updates.push((off as u16, want));
        }
    }
    Ok(updates)
}

/// Mounts a device that lost power at an arbitrary instant, repairing the
/// persisted mapping table, and returns the environment plus a
/// [`RecoveryReport`].
///
/// The algorithm (DFTL-style power-off recovery, hardened by the
/// program-sequence stamps every program carries in its out-of-band area):
///
/// 1. **Disarm** the fired fault plan — power is back.
/// 2. **Elect**: scan every valid page. Two valid copies of the same LPN
///    (or the same VTPN) are the program-before-invalidate race of an
///    interrupted write, migration, or translation-page update; the copy
///    with the higher program-sequence stamp is newer and wins, the loser
///    is invalidated. Torn pages are skipped (they sit behind their
///    block's write pointer and vanish at its next erase).
/// 3. **Rebuild** the GTD from the winning translation pages and the
///    block manager by re-scanning block occupancy.
/// 4. **Reconcile**: the winning data pages *are* the mapping table's
///    ground truth (data is always programmed before the old copy is
///    invalidated, so the newest valid copy of an LPN is its acknowledged
///    content). Rewrite every translation page whose persisted entries
///    disagree. The rewrites may trigger garbage collection, which
///    migrates data pages and so changes the truth again; GC updates are
///    absorbed in RAM and their translation pages re-queued until the
///    table reaches a fixpoint.
pub fn crash_mount(mut flash: Flash, config: SsdConfig) -> Result<(SsdEnv, RecoveryReport)> {
    let fault = flash.disarm_faults();
    let mut report = RecoveryReport {
        interrupted: fault
            .as_ref()
            .and_then(|p| p.fired())
            .map(|r| InterruptedOp {
                op_index: r.op_index,
                kind: r.kind,
            }),
        scanned_pages: flash.geometry().total_pages() as u64,
        torn_pages: flash.torn_pages(),
        ..RecoveryReport::default()
    };

    // Step 2: elect per-LPN / per-VTPN winners by program-sequence stamp.
    let mut tp_winner: FxHashMap<Vtpn, Ppn> = FxHashMap::default();
    let mut data_winner: FxHashMap<Lpn, Ppn> = FxHashMap::default();
    let mut losers: Vec<Ppn> = Vec::new();
    for (ppn, tag, is_tp) in flash.scan_valid() {
        let winner = if is_tp {
            &mut tp_winner
        } else {
            &mut data_winner
        };
        match winner.entry(tag) {
            Entry::Vacant(e) => {
                e.insert(ppn);
            }
            Entry::Occupied(mut e) => {
                let cur = *e.get();
                if flash.program_seq(ppn) > flash.program_seq(cur) {
                    losers.push(cur);
                    e.insert(ppn);
                } else {
                    losers.push(ppn);
                }
                if is_tp {
                    report.duplicate_translation_discarded += 1;
                } else {
                    report.duplicate_data_discarded += 1;
                }
            }
        }
    }
    for ppn in losers {
        flash.invalidate(ppn)?;
    }
    report.data_pages = data_winner.len() as u64;
    report.translation_pages = tp_winner.len() as u64;

    // Step 3: rebuild the directory and block bookkeeping.
    let mut gtd = Gtd::new(config.num_vtpns() as usize);
    for (&vtpn, &ppn) in &tp_winner {
        gtd.set(vtpn, ppn);
    }
    let mut truth: Vec<Ppn> = vec![PPN_NONE; config.logical_pages() as usize];
    for (&lpn, &ppn) in &data_winner {
        truth[lpn as usize] = ppn;
    }
    let mut env = SsdEnv::remount(config, flash, gtd)?;

    // Step 4: reconcile persisted translation pages against the truth,
    // to fixpoint (GC during reconciliation re-queues what it moves).
    let mut rftl = RecoveryFtl {
        truth,
        dirtied: BTreeSet::new(),
    };
    let mut pending: BTreeSet<Vtpn> = (0..env.gtd().len() as Vtpn).collect();
    while let Some(vtpn) = pending.pop_first() {
        report.reconcile_visits += 1;
        if diff_page(&mut env, &rftl.truth, vtpn)?.is_empty() {
            continue;
        }
        // The rewrite needs an allocatable translation page; GC for room
        // first, then recompute the diff (GC may have just moved this very
        // page's data).
        gc::ensure_free(&mut rftl, &mut env)?;
        pending.append(&mut rftl.dirtied);
        let updates = diff_page(&mut env, &rftl.truth, vtpn)?;
        if !updates.is_empty() {
            for &(_, want) in &updates {
                if want == PPN_NONE {
                    report.stale_cleared += 1;
                } else {
                    report.mappings_recovered += 1;
                }
            }
            env.update_translation_page(vtpn, &updates, OpPurpose::Translation)?;
            report.translation_pages_rewritten += 1;
        }
        pending.append(&mut rftl.dirtied);
    }

    env.reset_stats();
    Ok((env, report))
}

/// Side-effect-free mapping lookup straight from the persisted table (GTD
/// and translation-page payload), bypassing any cache: the
/// read-your-writes oracle crash harnesses check acknowledged writes
/// against.
pub fn lookup(env: &SsdEnv, lpn: Lpn) -> Option<Ppn> {
    let tp = env.gtd().get(env.vtpn_of(lpn))?;
    let p = env
        .flash()
        .peek_translation_payload(tp)
        .expect("GTD points at a translation page")[env.offset_of(lpn) as usize];
    (p != PPN_NONE).then_some(p)
}

/// Outcome of [`verify`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Mapped entries found in the persisted table.
    pub mapped_entries: u64,
    /// Valid data pages on the device.
    pub data_pages: u64,
    /// Inconsistencies, in deterministic (VTPN, offset) order. Empty
    /// means the mapping table and the physical pages agree exactly.
    pub errors: Vec<String>,
}

impl VerifyReport {
    /// Whether the persisted table and physical reality agree exactly.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Panics with every inconsistency if the report is not clean; for
    /// tests that want the old fail-fast behaviour.
    ///
    /// # Panics
    ///
    /// See above.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "mapping table inconsistent ({} errors):\n{}",
            self.errors.len(),
            self.errors.join("\n")
        );
    }
}

/// Verifies the persisted mapping table against physical reality: every
/// persisted mapping must point at a valid data page holding that LPN, and
/// every valid data page must be referenced. Inconsistencies are collected
/// into the returned [`VerifyReport`] rather than panicking, so crash
/// harnesses can assert on (and print) all of them at once.
pub fn verify(env: &SsdEnv) -> VerifyReport {
    // Index physical reality once.
    let mut page_of: FxHashMap<Ppn, u32> = FxHashMap::default();
    let mut report = VerifyReport::default();
    for (ppn, tag, is_tp) in env.flash().scan_valid() {
        if !is_tp {
            page_of.insert(ppn, tag);
            report.data_pages += 1;
        }
    }
    for vtpn in 0..env.gtd().len() as Vtpn {
        let Some(tp_ppn) = env.gtd().get(vtpn) else {
            continue;
        };
        let Some(entries) = env.flash().peek_translation_payload(tp_ppn) else {
            report.errors.push(format!(
                "GTD maps VTPN {vtpn} to {tp_ppn}, not a translation page"
            ));
            continue;
        };
        let base = vtpn * env.entries_per_tp() as u32;
        for (off, &ppn) in entries.iter().enumerate() {
            if ppn == PPN_NONE {
                continue;
            }
            let lpn = base + off as u32;
            match page_of.get(&ppn) {
                Some(&tag) if tag == lpn => report.mapped_entries += 1,
                Some(&tag) => report.errors.push(format!(
                    "entry for LPN {lpn} points at page {ppn} holding LPN {tag}"
                )),
                None => report
                    .errors
                    .push(format!("entry for LPN {lpn} points at non-live page {ppn}")),
            }
        }
    }
    if report.mapped_entries != report.data_pages {
        report.errors.push(format!(
            "{} valid data pages but {} mapped entries (lost writes)",
            report.data_pages, report.mapped_entries
        ));
    }
    report
}
