//! Mount-time recovery: rebuilding the FTL's RAM state from flash.
//!
//! A real SSD loses its RAM state (GTD, block bookkeeping, mapping cache)
//! at power-off. After a *clean* shutdown — the FTL flushed every dirty
//! mapping entry with [`flush_cache`] — everything can be reconstructed
//! from flash alone:
//!
//! * the GTD, by scanning for valid translation pages (their out-of-band
//!   tag is the VTPN);
//! * the block manager, by classifying each block from its page states
//!   (free / sealed data / sealed translation), seeding wear from the
//!   per-block erase counters;
//! * the mapping cache starts cold, exactly like the paper's experiments.
//!
//! [`mount`] performs the reconstruction and [`verify`] cross-checks the
//! persisted mapping table against the physically valid data pages — the
//! strongest end-to-end consistency oracle in the test suite.

use tpftl_flash::{Flash, OpPurpose, Ppn, Vtpn, PPN_NONE};

use crate::env::SsdEnv;
use crate::ftl::Ftl;
use crate::gc;
use crate::gtd::Gtd;
use crate::{Result, SsdConfig};

/// Writes back every dirty entry of the FTL's mapping cache, grouped per
/// translation page, leaving the cache clean — the clean-unmount barrier.
pub fn flush_cache<F: Ftl + ?Sized>(ftl: &mut F, env: &mut SsdEnv) -> Result<()> {
    if !ftl.uses_translation_pages() {
        return Ok(()); // RAM-table FTLs have nothing to persist here.
    }
    // The flush itself writes translation pages, which may need GC room.
    if ftl.uses_page_level_gc() {
        gc::ensure_free(ftl, env)?;
    }
    for d in ftl.cached_tp_distribution() {
        if d.dirty > 0 {
            flush_one_page(ftl, env, d.vtpn)?;
        }
    }
    debug_assert!(
        ftl.cached_tp_distribution().iter().all(|d| d.dirty == 0),
        "flush left dirty entries behind"
    );
    Ok(())
}

/// Flushes one translation page: overlays every cached entry (read via the
/// side-effect-free [`Ftl::peek_cached`]) onto the persisted page and
/// writes it back if anything changed, then marks the page's entries clean.
fn flush_one_page<F: Ftl + ?Sized>(ftl: &mut F, env: &mut SsdEnv, vtpn: Vtpn) -> Result<()> {
    let entries = env.entries_per_tp() as u32;
    let base = vtpn * entries;
    let persisted = env.read_translation_entries(vtpn, OpPurpose::Translation)?;
    let mut updates: Vec<(u16, Ppn)> = Vec::new();
    for off in 0..entries {
        let lpn = base + off;
        if (lpn as u64) >= env.config().logical_pages() {
            break;
        }
        if let Some(cached) = ftl.peek_cached(env, lpn)? {
            let cached = cached.unwrap_or(PPN_NONE);
            if persisted[off as usize] != cached {
                updates.push((off as u16, cached));
            }
        }
    }
    if !updates.is_empty() {
        env.update_translation_page(vtpn, &updates, OpPurpose::Translation)?;
    }
    ftl.mark_clean(vtpn);
    Ok(())
}

/// Rebuilds the translation directory by scanning flash for valid
/// translation pages.
///
/// # Panics
///
/// Panics on a duplicate VTPN (two valid translation pages for the same
/// slice of the table), which indicates on-flash corruption.
pub fn rebuild_gtd(flash: &Flash, config: &SsdConfig) -> Gtd {
    let mut gtd = Gtd::new(config.num_vtpns() as usize);
    for (ppn, tag, is_tp) in flash.scan_valid() {
        if is_tp {
            assert!(
                gtd.get(tag).is_none(),
                "two valid translation pages for VTPN {tag} (corruption)"
            );
            gtd.set(tag, ppn);
        }
    }
    gtd
}

/// Reconstructs a full [`SsdEnv`] around an existing flash device, as an
/// SSD controller does at mount time. Statistics start at zero; partially
/// programmed blocks are conservatively sealed (their unwritten pages come
/// back the next time GC erases them).
pub fn mount(flash: Flash, config: SsdConfig) -> Result<SsdEnv> {
    let gtd = rebuild_gtd(&flash, &config);
    SsdEnv::remount(config, flash, gtd)
}

/// Verifies the persisted mapping table against physical reality: every
/// persisted mapping must point at a valid data page holding that LPN, and
/// every valid data page must be referenced. Returns the number of mapped
/// pages checked.
///
/// # Panics
///
/// Panics on any inconsistency; this is a test/debug oracle.
pub fn verify(env: &SsdEnv) -> u64 {
    // Index physical reality once.
    let mut page_of: std::collections::HashMap<Ppn, u32> = std::collections::HashMap::new();
    let mut data_pages = 0u64;
    for (ppn, tag, is_tp) in env.flash().scan_valid() {
        if !is_tp {
            page_of.insert(ppn, tag);
            data_pages += 1;
        }
    }
    let mut checked = 0u64;
    for vtpn in 0..env.gtd().len() as Vtpn {
        let Some(tp_ppn) = env.gtd().get(vtpn) else {
            continue;
        };
        let entries = env
            .flash()
            .peek_translation_payload(tp_ppn)
            .expect("GTD points at a translation page");
        let base = vtpn * env.entries_per_tp() as u32;
        for (off, &ppn) in entries.iter().enumerate() {
            if ppn == PPN_NONE {
                continue;
            }
            let lpn = base + off as u32;
            match page_of.get(&ppn) {
                Some(&tag) if tag == lpn => checked += 1,
                Some(&tag) => {
                    panic!("entry for LPN {lpn} points at page {ppn} holding LPN {tag}")
                }
                None => panic!("entry for LPN {lpn} points at non-live page {ppn}"),
            }
        }
    }
    assert_eq!(
        checked, data_pages,
        "valid data pages not referenced by the mapping table (lost writes)"
    );
    checked
}
