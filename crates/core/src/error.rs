//! Error type shared by the FTL framework.

use tpftl_flash::FlashError;

/// Errors surfaced by the FTL layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The underlying flash device rejected an operation; always an FTL
    /// logic bug, surfaced rather than masked.
    Flash(FlashError),
    /// No free block is available and garbage collection cannot reclaim
    /// one: the device capacity (logical space + over-provisioning) is
    /// exhausted.
    DeviceFull,
    /// A host request addressed beyond the configured logical space.
    OutOfLogicalSpace {
        /// The offending logical page.
        lpn: tpftl_flash::Lpn,
        /// Number of logical pages the device exports.
        logical_pages: u64,
    },
    /// The mapping cache budget is too small to hold even one entry plus
    /// the structures the FTL needs.
    CacheTooSmall,
}

impl core::fmt::Display for FtlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Flash(e) => write!(f, "flash error: {e}"),
            Self::DeviceFull => write!(f, "device capacity exhausted (no reclaimable block)"),
            Self::OutOfLogicalSpace { lpn, logical_pages } => {
                write!(f, "LPN {lpn} beyond logical space of {logical_pages} pages")
            }
            Self::CacheTooSmall => write!(f, "mapping cache budget too small"),
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        Self::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = FtlError::Flash(FlashError::ReadFree(3));
        assert!(e.to_string().contains("flash error"));
        assert!(e.source().is_some());
        assert!(FtlError::DeviceFull.source().is_none());
        let o = FtlError::OutOfLogicalSpace {
            lpn: 10,
            logical_pages: 5,
        };
        assert!(o.to_string().contains("LPN 10"));
    }
}
