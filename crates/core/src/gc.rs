//! Greedy garbage collection (Section 2/3.1 of the paper).
//!
//! A GC operation performs the paper's three steps: (1) pick the sealed
//! block with the fewest valid pages — data or translation; (2) migrate the
//! remaining valid pages, updating their mapping entries (through the FTL,
//! which decides GC hit vs. batched flash update) or the GTD; (3) erase the
//! block. The collector is a free function generic over [`Ftl`] so that the
//! FTL and the environment can be borrowed simultaneously without cycles.

use tpftl_flash::{Lpn, OpPurpose, Ppn, Vtpn};

use crate::blockmgr::AllocClass;
use crate::env::SsdEnv;
use crate::ftl::Ftl;
use crate::{FtlError, Result};

/// Runs GC until the free pool reaches the configured high watermark, if it
/// has dropped below the low watermark. Call before serving each request.
pub fn ensure_free<F: Ftl + ?Sized>(ftl: &mut F, env: &mut SsdEnv) -> Result<()> {
    // Every open data stream beyond the first can swallow a free block on
    // any single write (each stream seals and replaces its active block
    // independently), so the watermarks shift up by streams−1 to preserve
    // the configured headroom. With one stream this is exactly the
    // configured pair, bit-identical to the single-stream behaviour.
    let slack = env.blocks.streams() - 1;
    if env.free_blocks() >= env.config().gc_low_blocks + slack {
        return Ok(());
    }
    while env.free_blocks() < env.config().gc_high_blocks + slack {
        collect_one(ftl, env)?;
    }
    Ok(())
}

/// Collects exactly one victim block.
///
/// # Errors
///
/// [`FtlError::DeviceFull`] when no sealed block has a reclaimable page.
pub fn collect_one<F: Ftl + ?Sized>(ftl: &mut F, env: &mut SsdEnv) -> Result<()> {
    let policy = env.config().gc_policy;
    let (victim, class) = env.blocks.pick_victim(policy).ok_or(FtlError::DeviceFull)?;
    match class {
        AllocClass::Data => collect_data_block(ftl, env, victim),
        AllocClass::Translation => collect_translation_block(env, victim),
    }
}

fn collect_data_block<F: Ftl + ?Sized>(
    ftl: &mut F,
    env: &mut SsdEnv,
    victim: tpftl_flash::BlockId,
) -> Result<()> {
    // Victim scans reuse the environment's scratch buffers (taken here, put
    // back below), so a steady-state GC pass performs no heap allocation.
    let mut valid = std::mem::take(&mut env.gc_page_scratch);
    let mut moved = std::mem::take(&mut env.gc_moved_scratch);
    let res = migrate_data_pages(ftl, env, victim, &mut valid, &mut moved);
    env.gc_page_scratch = valid;
    env.gc_moved_scratch = moved;
    res
}

fn migrate_data_pages<F: Ftl + ?Sized>(
    ftl: &mut F,
    env: &mut SsdEnv,
    victim: tpftl_flash::BlockId,
    valid: &mut Vec<(Ppn, Lpn)>,
    moved: &mut Vec<(Lpn, Ppn)>,
) -> Result<()> {
    valid.clear();
    valid.extend(env.flash.valid_pages(victim));
    env.gc_stats.data_victims += 1;
    env.gc_stats.data_pages_migrated += valid.len() as u64;

    // Each migration (read + program of one page) depends only on GC
    // start, not on the previous migration: reads all queue on the victim's
    // unit, but the programs land on other units and overlap. The erase
    // must still wait for every migration to finish (no instant where a
    // page's data exists nowhere), so the frontier is advanced to the
    // latest migration before it issues.
    moved.clear();
    let fence = env.flash.sim_frontier_us();
    let mut gc_done = fence;
    for &(old_ppn, lpn) in valid.iter() {
        env.flash.sim_relax_to(fence);
        env.flash.read_page(old_ppn, OpPurpose::GcData)?;
        let new_ppn = env.program_data_page(lpn, OpPurpose::GcData)?;
        env.invalidate_page(old_ppn)?;
        moved.push((lpn, new_ppn));
        gc_done = gc_done.max(env.flash.sim_frontier_us());
    }

    // Mapping updates: cache hits are absorbed (and deferred as dirty
    // entries); misses are written back to translation pages by the FTL.
    let hits = ftl.on_gc_data_block(env, moved)?;
    env.stats.gc_updates += moved.len() as u64;
    env.stats.gc_hits += hits;

    env.flash
        .sim_relax_to(gc_done.max(env.flash.sim_frontier_us()));
    env.flash.erase_block(victim, OpPurpose::GcData)?;
    env.blocks.on_erased(victim);
    Ok(())
}

fn collect_translation_block(env: &mut SsdEnv, victim: tpftl_flash::BlockId) -> Result<()> {
    let mut valid = std::mem::take(&mut env.gc_page_scratch);
    let res = migrate_translation_pages(env, victim, &mut valid);
    env.gc_page_scratch = valid;
    res
}

fn migrate_translation_pages(
    env: &mut SsdEnv,
    victim: tpftl_flash::BlockId,
    valid: &mut Vec<(Ppn, Vtpn)>,
) -> Result<()> {
    valid.clear();
    valid.extend(env.flash.valid_pages(victim));
    env.gc_stats.trans_victims += 1;
    env.gc_stats.trans_pages_migrated += valid.len() as u64;

    // Migrations are mutually independent, like the data-page path above.
    let fence = env.flash.sim_frontier_us();
    let mut gc_done = fence;
    for &(old_ppn, vtpn) in valid.iter() {
        env.flash.sim_relax_to(fence);
        // Accounts the migration read and validates the source page.
        env.flash.read_page(old_ppn, OpPurpose::GcTranslation)?;
        // Program the copy before invalidating the original (as the
        // data-page path above does), so a power loss mid-migration never
        // leaves the table without a valid copy of this translation page.
        // The payload moves slab-slot to slab-slot inside the flash model —
        // one page-sized copy, no allocation.
        let new_ppn = env.blocks.alloc_page(AllocClass::Translation, &env.flash)?;
        env.flash.program_translation_page_from(
            new_ppn,
            vtpn,
            old_ppn,
            &[],
            OpPurpose::GcTranslation,
        )?;
        env.gtd.set(vtpn, new_ppn);
        env.invalidate_page(old_ppn)?;
        gc_done = gc_done.max(env.flash.sim_frontier_us());
    }

    env.flash.sim_relax_to(gc_done);
    env.flash.erase_block(victim, OpPurpose::GcTranslation)?;
    env.blocks.on_erased(victim);
    Ok(())
}
