//! The page-access protocol between host requests and an FTL.
//!
//! This is the FlashSim-style serving loop: a host request is split into
//! 4 KB page accesses; each access is translated (cache management +
//! translation-page flash traffic), then the data page is read or written,
//! and garbage collection runs whenever the free pool is low. The simulator
//! crate wraps these functions with arrival/queuing timing.

use tpftl_flash::Lpn;

use crate::env::SsdEnv;
use crate::ftl::{AccessCtx, Ftl};
use crate::{gc, Result};

/// Serves one page access (translate, then data I/O), running GC first if
/// the free pool is below the watermark.
pub fn serve_page_access<F: Ftl + ?Sized>(
    ftl: &mut F,
    env: &mut SsdEnv,
    lpn: Lpn,
    ctx: AccessCtx,
) -> Result<()> {
    env.check_lpn(lpn)?;
    if ftl.uses_page_level_gc() {
        gc::ensure_free(ftl, env)?;
    }
    if ctx.is_write {
        ftl.write_page(env, lpn, &ctx)?;
    } else {
        env.stats.user_page_reads += 1;
        if let Some(ppn) = ftl.translate(env, lpn, &ctx)? {
            env.read_data_page(ppn, lpn)?;
        }
        // Reads of never-written pages return no data; no flash traffic.
    }
    Ok(())
}

/// Serves a whole host request of `page_count` consecutive pages starting
/// at `start_lpn`, feeding each access the remaining-request context that
/// request-level prefetching consumes.
pub fn serve_request<F: Ftl + ?Sized>(
    ftl: &mut F,
    env: &mut SsdEnv,
    start_lpn: Lpn,
    page_count: u32,
    is_write: bool,
) -> Result<()> {
    env.stats.requests += 1;
    for i in 0..page_count {
        let ctx = AccessCtx {
            is_write,
            remaining_in_request: page_count - 1 - i,
        };
        serve_page_access(ftl, env, start_lpn + i, ctx)?;
    }
    Ok(())
}

/// Bootstraps a device for `ftl`: optional sequential pre-fill, format (for
/// FTLs that persist the mapping table), FTL state rebuild, then a
/// statistics reset so measurements cover only the workload.
pub fn bootstrap<F: Ftl + ?Sized>(ftl: &mut F, env: &mut SsdEnv) -> Result<()> {
    let prefill = env.config().prefill_frac;
    if prefill > 0.0 {
        env.prefill(prefill)?;
    }
    if ftl.uses_translation_pages() {
        env.format()?;
    }
    ftl.after_bootstrap(env)?;
    env.reset_stats();
    Ok(())
}
