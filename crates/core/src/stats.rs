//! Cache-level statistics: the quantities the paper's figures plot.
//!
//! Flash-level operation counts live in [`tpftl_flash::FlashStats`]; this
//! struct tracks the cache-management events that define the paper's two
//! key factors (Section 3.1): the hit ratio `H_r` and the probability of
//! replacing a dirty entry `P_rd`, plus the GC hit ratio `H_gcr`.

use serde::{Deserialize, Serialize};

/// Counters maintained by the FTLs through [`crate::env::SsdEnv`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Address-translation lookups (one per page access).
    pub lookups: u64,
    /// Lookups served from the mapping cache.
    pub hits: u64,
    /// Mapping-entry replacements (evictions), the denominator of `P_rd`.
    /// For S-FTL the replacement unit is a whole cached translation page.
    pub replacements: u64,
    /// Replacements whose victim was dirty, the numerator of `P_rd`.
    pub dirty_replacements: u64,
    /// Mapping updates required by GC-migrated data pages.
    pub gc_updates: u64,
    /// GC mapping updates absorbed by the cache (the paper's GC hits).
    pub gc_hits: u64,
    /// Host page reads served.
    pub user_page_reads: u64,
    /// Host page writes served.
    pub user_page_writes: u64,
    /// Host requests served.
    pub requests: u64,
    /// Learned-index predictions validated by the OOB reverse map and
    /// served with zero translation reads (LearnedFTL only).
    #[serde(default)]
    pub predict_hits: u64,
    /// Learned-index predictions rejected by validation and routed to the
    /// demand-paged fallback (LearnedFTL only).
    #[serde(default)]
    pub mispredicts: u64,
    /// Physical blocks summarized in the wear moments below (snapshotted
    /// at report time from the device's erase counters).
    #[serde(default)]
    pub wear_blocks: u64,
    /// Sum of per-block erase counts (`Σw`).
    #[serde(default)]
    pub wear_sum: u64,
    /// Sum of squared per-block erase counts (`Σw²`). Kept as exact
    /// integer moments so per-shard merges stay additive and the CV of the
    /// merged population is exact, not an average of shard CVs.
    #[serde(default)]
    pub wear_sq_sum: u64,
}

impl FtlStats {
    /// Cache hit ratio `H_r`.
    pub fn hit_ratio(&self) -> f64 {
        ratio(self.hits, self.lookups)
    }

    /// Probability of replacing a dirty entry `P_rd`.
    pub fn dirty_replacement_prob(&self) -> f64 {
        ratio(self.dirty_replacements, self.replacements)
    }

    /// GC hit ratio `H_gcr`.
    pub fn gc_hit_ratio(&self) -> f64 {
        ratio(self.gc_hits, self.gc_updates)
    }

    /// User page accesses `N_pa`.
    pub fn user_page_accesses(&self) -> u64 {
        self.user_page_reads + self.user_page_writes
    }

    /// Page-level write ratio `R_w`.
    pub fn page_write_ratio(&self) -> f64 {
        ratio(self.user_page_writes, self.user_page_accesses())
    }

    /// Fraction of lookups served by a validated learned prediction.
    pub fn predict_hit_ratio(&self) -> f64 {
        ratio(self.predict_hits, self.lookups)
    }

    /// Fraction of learned predictions that failed validation.
    pub fn mispredict_ratio(&self) -> f64 {
        ratio(self.mispredicts, self.predict_hits + self.mispredicts)
    }

    /// Coefficient of variation of the per-block erase counts — the
    /// wear-evenness metric (0 = perfectly even or unworn). Computed from
    /// the exact integer moments, so it is identical whether the device
    /// ran as one queue or as merged shards.
    pub fn erase_cv(&self) -> f64 {
        if self.wear_blocks == 0 || self.wear_sum == 0 {
            return 0.0;
        }
        let n = self.wear_blocks as f64;
        let mean = self.wear_sum as f64 / n;
        let var = (self.wear_sq_sum as f64 / n) - mean * mean;
        var.max(0.0).sqrt() / mean
    }

    /// Adds `other`'s counters into `self` — the sharded engine's
    /// per-shard stats merge (pure integer sums, order-independent).
    pub fn merge_from(&mut self, other: &FtlStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.replacements += other.replacements;
        self.dirty_replacements += other.dirty_replacements;
        self.gc_updates += other.gc_updates;
        self.gc_hits += other.gc_hits;
        self.user_page_reads += other.user_page_reads;
        self.user_page_writes += other.user_page_writes;
        self.requests += other.requests;
        self.predict_hits += other.predict_hits;
        self.mispredicts += other.mispredicts;
        self.wear_blocks += other.wear_blocks;
        self.wear_sum += other.wear_sum;
        self.wear_sq_sum += other.wear_sq_sum;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = FtlStats {
            lookups: 10,
            hits: 7,
            replacements: 4,
            dirty_replacements: 1,
            gc_updates: 5,
            gc_hits: 5,
            user_page_reads: 3,
            user_page_writes: 7,
            requests: 6,
            predict_hits: 2,
            mispredicts: 2,
            wear_blocks: 0,
            wear_sum: 0,
            wear_sq_sum: 0,
        };
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert!((s.dirty_replacement_prob() - 0.25).abs() < 1e-12);
        assert!((s.gc_hit_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(s.user_page_accesses(), 10);
        assert!((s.page_write_ratio() - 0.7).abs() < 1e-12);
        assert!((s.predict_hit_ratio() - 0.2).abs() < 1e-12);
        assert!((s.mispredict_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = FtlStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.dirty_replacement_prob(), 0.0);
        assert_eq!(s.gc_hit_ratio(), 0.0);
        assert_eq!(s.erase_cv(), 0.0);
    }

    #[test]
    fn erase_cv_is_exact_under_shard_merges() {
        // Two shards: one with blocks worn [2, 2], one with [0, 4]. The
        // merged population [2, 2, 0, 4] has mean 2 and variance 2, so
        // CV = √2 / 2 — and the merged moments must give exactly that,
        // not the average of the per-shard CVs (0 and 1).
        let mut a = FtlStats {
            wear_blocks: 2,
            wear_sum: 4,
            wear_sq_sum: 8,
            ..FtlStats::default()
        };
        let b = FtlStats {
            wear_blocks: 2,
            wear_sum: 4,
            wear_sq_sum: 16,
            ..FtlStats::default()
        };
        assert_eq!(a.erase_cv(), 0.0);
        a.merge_from(&b);
        assert!((a.erase_cv() - 2.0f64.sqrt() / 2.0).abs() < 1e-12);
    }
}
