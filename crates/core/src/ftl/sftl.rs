//! S-FTL (Jiang et al., MSST'11).
//!
//! S-FTL's caching object is an *entire translation page*, shrunk according
//! to the sequentiality of the PPNs it holds: consecutive LPNs mapped to
//! consecutive PPNs collapse into one run, so a page costs
//! `8 + 8 × runs` bytes in the cache (capped at the raw `8 + 4 × entries`).
//! Cached pages live in an LRU list; a victim writeback programs the whole
//! page from the cached copy, costing `T_fw` only (the special case noted
//! under Equation 1 of the TPFTL paper).
//!
//! A small *dirty buffer* is reserved to postpone the replacement of
//! sparsely dispersed dirty entries: when an evicted page holds only a few
//! dirty entries, they are parked in the buffer (8 B each) instead of
//! forcing a page write; when the buffer fills, the entries sharing one
//! translation page are flushed in a batch (the ZFTL-style batch eviction
//! the TPFTL paper mentions). This makes S-FTL behave well on random
//! workloads while its page granularity exploits sequential ones.

use crate::hash::FxHashMap;

use tpftl_flash::{Lpn, OpPurpose, Ppn, Vtpn, PPN_NONE};

use crate::env::SsdEnv;
use crate::ftl::{group_by_vtpn, AccessCtx, Ftl, TpDistEntry};
use crate::lru::{LruIdx, LruList};
use crate::{FtlError, Result, SsdConfig};

/// Per-page header bytes (VTPN, size, list links).
const PAGE_HEADER_BYTES: usize = 8;

/// Bytes per run descriptor (start offset, start PPN, length).
const RUN_BYTES: usize = 8;

/// Bytes per dirty-buffer entry (4 B LPN + 4 B PPN).
const DBUF_ENTRY_BYTES: usize = 8;

/// A victim page with at most this many dirty entries is "sparse": its
/// dirty entries are parked in the dirty buffer instead of forcing a
/// full-page writeback.
const SPARSE_DIRTY_MAX: u32 = 8;

/// Counts the compression runs of a payload: maximal stretches where
/// `ppn[i+1] == ppn[i] + 1` (unmapped stretches of `PPN_NONE` also form
/// runs).
pub(crate) fn count_runs(entries: &[Ppn]) -> usize {
    if entries.is_empty() {
        return 0;
    }
    1 + entries.windows(2).filter(|w| !succ(w[0], w[1])).count()
}

/// Whether `b` continues a run started by `a`.
#[inline]
fn succ(a: Ppn, b: Ppn) -> bool {
    if a == PPN_NONE {
        b == PPN_NONE
    } else {
        b != PPN_NONE && b == a.wrapping_add(1)
    }
}

/// Change in run count when `entries[off]` is replaced by `new`, without a
/// full recount: only the two boundaries around `off` can change.
fn run_delta(entries: &[Ppn], off: usize, new: Ppn) -> isize {
    let old = entries[off];
    let mut breaks_before = 0isize;
    let mut breaks_after = 0isize;
    if off > 0 {
        breaks_before += !succ(entries[off - 1], old) as isize;
        breaks_after += !succ(entries[off - 1], new) as isize;
    }
    if off + 1 < entries.len() {
        breaks_before += !succ(old, entries[off + 1]) as isize;
        breaks_after += !succ(new, entries[off + 1]) as isize;
    }
    breaks_after - breaks_before
}

struct CachedPage {
    entries: Vec<Ppn>,
    /// Dirty bitmap, one bit per entry.
    dirty: Vec<u64>,
    dirty_count: u32,
    runs: usize,
    lru: LruIdx,
}

impl CachedPage {
    fn bytes(&self) -> usize {
        (PAGE_HEADER_BYTES + RUN_BYTES * self.runs).min(PAGE_HEADER_BYTES + 4 * self.entries.len())
    }

    fn is_dirty_at(&self, off: usize) -> bool {
        self.dirty[off / 64] >> (off % 64) & 1 == 1
    }

    fn set_dirty_at(&mut self, off: usize) {
        if !self.is_dirty_at(off) {
            self.dirty[off / 64] |= 1 << (off % 64);
            self.dirty_count += 1;
        }
    }

    /// Applies `new` at `off`, maintaining runs and the dirty bitmap.
    fn update(&mut self, off: usize, new: Ppn) {
        let delta = run_delta(&self.entries, off, new);
        self.runs = (self.runs as isize + delta) as usize;
        self.entries[off] = new;
        self.set_dirty_at(off);
    }

    fn dirty_offsets(&self) -> Vec<u16> {
        (0..self.entries.len())
            .filter(|&o| self.is_dirty_at(o))
            .map(|o| o as u16)
            .collect()
    }
}

/// The S-FTL baseline.
pub struct Sftl {
    /// Budget for cached pages.
    page_budget: usize,
    /// Budget for the dirty buffer.
    dbuf_budget: usize,
    pages: FxHashMap<Vtpn, CachedPage>,
    page_lru: LruList<Vtpn>,
    pages_bytes: usize,
    dbuf: FxHashMap<Lpn, (Ppn, LruIdx)>,
    dbuf_lru: LruList<Lpn>,
    entries_per_tp: usize,
}

impl Sftl {
    /// Creates an S-FTL sized to the config's usable cache budget; 10 % of
    /// it is reserved as the dirty buffer.
    ///
    /// # Errors
    ///
    /// [`FtlError::CacheTooSmall`] if an incompressible page cannot fit.
    pub fn new(config: &SsdConfig) -> Result<Self> {
        let budget = config.usable_cache_bytes();
        let dbuf_budget = (budget / 10).max(2 * DBUF_ENTRY_BYTES);
        let page_budget = budget.saturating_sub(dbuf_budget);
        let worst_page = PAGE_HEADER_BYTES + 4 * config.entries_per_tp();
        if page_budget < worst_page {
            return Err(FtlError::CacheTooSmall);
        }
        Ok(Self {
            page_budget,
            dbuf_budget,
            pages: FxHashMap::default(),
            page_lru: LruList::new(),
            pages_bytes: 0,
            dbuf: FxHashMap::default(),
            dbuf_lru: LruList::new(),
            entries_per_tp: config.entries_per_tp(),
        })
    }

    fn dbuf_bytes(&self) -> usize {
        self.dbuf.len() * DBUF_ENTRY_BYTES
    }

    /// Flushes the dirty-buffer batch containing its LRU entry: every
    /// buffered entry of the same translation page goes out in one
    /// read-modify-write update.
    fn flush_dbuf_batch(&mut self, env: &mut SsdEnv) -> Result<()> {
        let Some((_, &lru_lpn)) = self.dbuf_lru.peek_lru() else {
            return Ok(());
        };
        let vtpn = env.vtpn_of(lru_lpn);
        let batch: Vec<Lpn> = self
            .dbuf
            .keys()
            .copied()
            .filter(|&l| env.vtpn_of(l) == vtpn)
            .collect();
        let mut updates: Vec<(u16, Ppn)> = Vec::with_capacity(batch.len());
        for lpn in batch {
            let (ppn, idx) = self.dbuf.remove(&lpn).expect("key from iteration");
            self.dbuf_lru.remove(idx);
            updates.push((env.offset_of(lpn), ppn));
        }
        updates.sort_unstable_by_key(|u| u.0);
        env.note_replacement(true);
        env.update_translation_page(vtpn, &updates, OpPurpose::Translation)
    }

    fn put_dbuf(&mut self, env: &mut SsdEnv, lpn: Lpn, ppn: Ppn) -> Result<()> {
        if let Some((v, idx)) = self.dbuf.get_mut(&lpn) {
            *v = ppn;
            let idx = *idx;
            self.dbuf_lru.touch(idx);
            return Ok(());
        }
        while self.dbuf_bytes() + DBUF_ENTRY_BYTES > self.dbuf_budget {
            self.flush_dbuf_batch(env)?;
        }
        let idx = self.dbuf_lru.push_mru(lpn);
        self.dbuf.insert(lpn, (ppn, idx));
        Ok(())
    }

    /// Evicts the LRU page: a densely dirty page is written back whole
    /// (`T_fw`); a sparsely dirty page parks its dirty entries in the
    /// buffer; a clean page is dropped.
    fn evict_page(&mut self, env: &mut SsdEnv) -> Result<()> {
        let Some((_, &vtpn)) = self.page_lru.peek_lru() else {
            return Err(FtlError::CacheTooSmall);
        };
        let page = self.pages.remove(&vtpn).expect("LRU page cached");
        self.page_lru.remove(page.lru);
        self.pages_bytes -= page.bytes();
        if page.dirty_count == 0 {
            env.note_replacement(false);
        } else if page.dirty_count <= SPARSE_DIRTY_MAX {
            // Postpone sparse dirty entries via the dirty buffer.
            env.note_replacement(false);
            let base = vtpn * self.entries_per_tp as u32;
            for off in page.dirty_offsets() {
                self.put_dbuf(env, base + off as u32, page.entries[off as usize])?;
            }
        } else {
            env.note_replacement(true);
            env.write_translation_page_full(vtpn, &page.entries, OpPurpose::Translation)?;
        }
        Ok(())
    }

    /// Loads translation page `vtpn` into the cache (one `T_fr`), merging
    /// any buffered dirty entries of that page.
    fn load_page(&mut self, env: &mut SsdEnv, vtpn: Vtpn) -> Result<()> {
        let entries = env.read_translation_entries(vtpn, OpPurpose::Translation)?;
        let words = entries.len().div_ceil(64);
        let mut page = CachedPage {
            runs: count_runs(&entries),
            entries,
            dirty: vec![0; words],
            dirty_count: 0,
            lru: self.page_lru.push_mru(vtpn),
        };
        // Merge buffered entries (they are newer than the flash copy).
        let base = vtpn * self.entries_per_tp as u32;
        let buffered: Vec<Lpn> = self
            .dbuf
            .keys()
            .copied()
            .filter(|&l| env.vtpn_of(l) == vtpn)
            .collect();
        for lpn in buffered {
            let (ppn, idx) = self.dbuf.remove(&lpn).expect("key from iteration");
            self.dbuf_lru.remove(idx);
            page.update((lpn - base) as usize, ppn);
        }
        // Make room, then insert (the fresh page is never the victim).
        while self.pages_bytes + page.bytes() > self.page_budget {
            self.evict_page(env)?;
        }
        self.pages_bytes += page.bytes();
        self.pages.insert(vtpn, page);
        Ok(())
    }

    /// Applies an update to a cached page, maintaining size accounting and
    /// re-shrinking to budget if fragmentation grew the page.
    fn update_cached(&mut self, env: &mut SsdEnv, vtpn: Vtpn, off: usize, ppn: Ppn) -> Result<()> {
        let page = self.pages.get_mut(&vtpn).expect("caller checked");
        let before = page.bytes();
        page.update(off, ppn);
        let after = page.bytes();
        self.pages_bytes = self.pages_bytes - before + after;
        while self.pages_bytes > self.page_budget {
            self.evict_page(env)?;
        }
        Ok(())
    }
}

impl Ftl for Sftl {
    fn name(&self) -> String {
        "S-FTL".to_string()
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        let vtpn = env.vtpn_of(lpn);
        let off = env.offset_of(lpn) as usize;
        if let Some(page) = self.pages.get(&vtpn) {
            env.note_lookup(true);
            let ppn = page.entries[off];
            let idx = page.lru;
            self.page_lru.touch(idx);
            return Ok((ppn != PPN_NONE).then_some(ppn));
        }
        if let Some(&(ppn, idx)) = self.dbuf.get(&lpn) {
            env.note_lookup(true);
            self.dbuf_lru.touch(idx);
            return Ok(Some(ppn));
        }
        env.note_lookup(false);
        self.load_page(env, vtpn)?;
        let ppn = self.pages[&vtpn].entries[off];
        Ok((ppn != PPN_NONE).then_some(ppn))
    }

    fn update_mapping(&mut self, env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        let vtpn = env.vtpn_of(lpn);
        let off = env.offset_of(lpn) as usize;
        if self.pages.contains_key(&vtpn) {
            self.update_cached(env, vtpn, off, new_ppn)
        } else {
            // The preceding translate hit the dirty buffer.
            self.put_dbuf(env, lpn, new_ppn)
        }
    }

    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        let mut hits = 0u64;
        let mut misses: Vec<(Lpn, Ppn)> = Vec::new();
        for &(lpn, new_ppn) in moved {
            let vtpn = env.vtpn_of(lpn);
            if self.pages.contains_key(&vtpn) {
                self.update_cached(env, vtpn, env.offset_of(lpn) as usize, new_ppn)?;
                hits += 1;
            } else if let Some((v, _)) = self.dbuf.get_mut(&lpn) {
                *v = new_ppn;
                hits += 1;
            } else {
                misses.push((lpn, new_ppn));
            }
        }
        for (vtpn, updates) in group_by_vtpn(env, &misses) {
            env.update_translation_page(vtpn, &updates, OpPurpose::GcTranslation)?;
        }
        Ok(hits)
    }

    fn cache_bytes_used(&self) -> usize {
        self.pages_bytes + self.dbuf_bytes()
    }

    fn cached_entries(&self) -> usize {
        self.pages.len() * self.entries_per_tp + self.dbuf.len()
    }

    fn peek_cached(&self, env: &SsdEnv, lpn: Lpn) -> crate::Result<Option<Option<Ppn>>> {
        if let Some(page) = self.pages.get(&env.vtpn_of(lpn)) {
            let p = page.entries[env.offset_of(lpn) as usize];
            return Ok(Some((p != PPN_NONE).then_some(p)));
        }
        if let Some(&(p, _)) = self.dbuf.get(&lpn) {
            return Ok(Some(Some(p)));
        }
        Ok(None)
    }

    fn mark_clean(&mut self, vtpn: Vtpn) {
        if let Some(page) = self.pages.get_mut(&vtpn) {
            page.dirty.iter_mut().for_each(|w| *w = 0);
            page.dirty_count = 0;
        }
        // Flushed buffer entries are persisted; drop them from the buffer.
        let flushed: Vec<Lpn> = self
            .dbuf
            .keys()
            .copied()
            .filter(|&l| l / self.entries_per_tp as u32 == vtpn)
            .collect();
        for lpn in flushed {
            let (_, idx) = self.dbuf.remove(&lpn).expect("key from iteration");
            self.dbuf_lru.remove(idx);
        }
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        let mut by_tp: std::collections::BTreeMap<Vtpn, (u32, u32)> =
            std::collections::BTreeMap::new();
        for (&vtpn, p) in &self.pages {
            let slot = by_tp.entry(vtpn).or_default();
            slot.0 += p.entries.len() as u32;
            slot.1 += p.dirty_count;
        }
        // Dirty-buffer entries are cached (and dirty) too.
        for &lpn in self.dbuf.keys() {
            let slot = by_tp.entry(lpn / self.entries_per_tp as u32).or_default();
            slot.0 += 1;
            slot.1 += 1;
        }
        by_tp
            .into_iter()
            .map(|(vtpn, (entries, dirty))| TpDistEntry {
                vtpn,
                entries,
                dirty,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;
    use crate::ftl::AccessCtx;

    #[test]
    fn run_counting() {
        assert_eq!(count_runs(&[]), 0);
        assert_eq!(count_runs(&[5]), 1);
        assert_eq!(count_runs(&[5, 6, 7]), 1);
        assert_eq!(count_runs(&[5, 7, 8]), 2);
        assert_eq!(count_runs(&[PPN_NONE, PPN_NONE, 3, 4, 9]), 3);
        assert_eq!(count_runs(&[1, PPN_NONE, 2]), 3);
    }

    #[test]
    fn run_delta_matches_recount() {
        // Exhaustive over a small space: every single-position update.
        let vals = [0u32, 1, 2, 3, PPN_NONE];
        let mut entries = vec![0u32, 1, 5, PPN_NONE, 9, 10];
        for off in 0..entries.len() {
            for &new in &vals {
                let before = count_runs(&entries) as isize;
                let delta = run_delta(&entries, off, new);
                let old = entries[off];
                entries[off] = new;
                assert_eq!(
                    count_runs(&entries) as isize,
                    before + delta,
                    "off={off} old={old} new={new}"
                );
                entries[off] = old;
            }
        }
    }

    /// 8 MB device (2 translation pages); `budget` bytes usable cache.
    fn setup(budget: usize) -> (Sftl, SsdEnv) {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + budget;
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = Sftl::new(&config).unwrap();
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    #[test]
    fn cache_too_small_rejected() {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + 512;
        assert!(matches!(Sftl::new(&config), Err(FtlError::CacheTooSmall)));
    }

    #[test]
    fn page_granular_hit_after_one_miss() {
        let (mut ftl, mut env) = setup(8 << 10);
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, 0);
        // Any entry of the same page now hits.
        for lpn in 1..100u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        assert_eq!(env.stats.hits, 99);
        assert_eq!(env.flash().stats().translation_reads(), 1);
    }

    #[test]
    fn formatted_page_is_maximally_compressed() {
        let (mut ftl, mut env) = setup(8 << 10);
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        // All entries PPN_NONE: one run.
        assert_eq!(ftl.pages[&0].runs, 1);
        assert_eq!(ftl.cache_bytes_used(), PAGE_HEADER_BYTES + RUN_BYTES);
    }

    #[test]
    fn prefilled_sequential_page_stays_compressed() {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + (8 << 10);
        config.prefill_frac = 1.0;
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = Sftl::new(&config).unwrap();
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        // Sequential prefill -> PPNs are consecutive -> very few runs.
        assert!(ftl.pages[&0].runs <= 2, "runs={}", ftl.pages[&0].runs);
    }

    #[test]
    fn fragmentation_grows_page_size() {
        let (mut ftl, mut env) = setup(8 << 10);
        // Scattered writes fragment the page's PPN space.
        for i in 0..20u32 {
            driver::serve_page_access(&mut ftl, &mut env, i * 37, AccessCtx::single(true)).unwrap();
        }
        let page = &ftl.pages[&0];
        assert!(page.runs > 20, "runs={}", page.runs);
        assert_eq!(ftl.pages_bytes, page.bytes());
    }

    #[test]
    fn sparse_dirty_eviction_parks_in_buffer() {
        let (mut ftl, mut env) = setup(4800);
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(true)).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 1, AccessCtx::single(true)).unwrap();
        let tw = env.flash().stats().translation_writes();
        // Evict page 0 (2 dirty entries, sparse): parked, not written.
        ftl.evict_page(&mut env).unwrap();
        assert_eq!(
            env.flash().stats().translation_writes(),
            tw,
            "postponed, not written"
        );
        assert_eq!(ftl.dbuf.len(), 2);
        assert_eq!(env.stats.dirty_replacements, 0);
        // The buffered mappings still translate correctly (dbuf hits).
        let hits = env.stats.hits;
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, hits + 1);
    }

    #[test]
    fn dense_dirty_eviction_writes_full_page() {
        let (mut ftl, mut env) = setup(4800);
        // Dirty more than SPARSE_DIRTY_MAX entries of page 0.
        for lpn in 0..(SPARSE_DIRTY_MAX + 4) {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        let tr = env.flash().stats().translation_reads();
        let tw = env.flash().stats().translation_writes();
        ftl.evict_page(&mut env).unwrap();
        // Full-page writeback: one write and NO read (the cache holds the
        // whole page).
        assert_eq!(env.flash().stats().translation_writes(), tw + 1);
        assert_eq!(env.flash().stats().translation_reads(), tr);
        assert_eq!(env.stats.dirty_replacements, 1);
        // Written-back mappings are durable.
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
    }

    #[test]
    fn dbuf_overflow_flushes_batch_per_page() {
        let (mut ftl, mut env) = setup(4800);
        // dbuf budget = budget/10 bytes.
        let cap_entries = ftl.dbuf_budget / DBUF_ENTRY_BYTES;
        // Park dirty entries two at a time via sparse evictions until the
        // buffer must have overflowed.
        let mut next = 0u32;
        while (next as usize) < cap_entries + 4 {
            driver::serve_page_access(&mut ftl, &mut env, next, AccessCtx::single(true)).unwrap();
            driver::serve_page_access(&mut ftl, &mut env, next + 1, AccessCtx::single(true))
                .unwrap();
            ftl.evict_page(&mut env).unwrap();
            next += 2;
        }
        // The buffer stayed within budget and flushed at least one batch.
        assert!(ftl.dbuf_bytes() <= ftl.dbuf_budget);
        assert!(env.flash().stats().translation_writes() > 0);
        // All mappings still resolve.
        for lpn in 0..next {
            let ppn = ftl
                .translate(&mut env, lpn, &AccessCtx::single(false))
                .unwrap()
                .expect("written page mapped");
            env.read_data_page(ppn, lpn).unwrap();
        }
    }

    #[test]
    fn gc_updates_cached_page_and_buffer() {
        let (mut ftl, mut env) = setup(8 << 10);
        driver::serve_page_access(&mut ftl, &mut env, 5, AccessCtx::single(true)).unwrap();
        let new_ppn = env
            .program_data_page(5, tpftl_flash::OpPurpose::GcData)
            .unwrap();
        let hits = ftl.on_gc_data_block(&mut env, &[(5, new_ppn)]).unwrap();
        assert_eq!(hits, 1);
        assert_eq!(ftl.pages[&0].entries[5], new_ppn);
        // A miss goes to flash, batched.
        let other = env
            .program_data_page(2000, tpftl_flash::OpPurpose::GcData)
            .unwrap();
        // Evict page of vtpn 1 if cached; ensure miss by dropping caches.
        ftl.pages.clear();
        while ftl.page_lru.pop_lru().is_some() {}
        ftl.pages_bytes = 0;
        let tw = env.flash().stats().translation_writes();
        let hits = ftl.on_gc_data_block(&mut env, &[(2000, other)]).unwrap();
        assert_eq!(hits, 0);
        assert_eq!(env.flash().stats().translation_writes(), tw + 1);
    }

    #[test]
    fn budget_respected_under_random_workload() {
        let (mut ftl, mut env) = setup((8 << 10) + 300);
        for i in 0..3000u32 {
            let lpn = (i * 701) % 2048;
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(i % 3 != 0))
                .unwrap();
            assert!(
                ftl.pages_bytes <= ftl.page_budget && ftl.dbuf_bytes() <= ftl.dbuf_budget,
                "budget exceeded at access {i}"
            );
        }
        // Size accounting is exact.
        let expect: usize = ftl.pages.values().map(CachedPage::bytes).sum();
        assert_eq!(ftl.pages_bytes, expect);
        // No LPN is simultaneously in a cached page and the dirty buffer.
        for &lpn in ftl.dbuf.keys() {
            assert!(!ftl.pages.contains_key(&env.vtpn_of(lpn)));
        }
    }
}
