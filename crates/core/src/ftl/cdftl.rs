//! CDFTL (Qin et al., RTAS'11).
//!
//! CDFTL layers two caches: a first-level **CMT** of individual mapping
//! entries (plain LRU) and a second-level **CTP** that caches a few entire
//! translation pages and serves as the CMT's kick-out buffer. Dirty-entry
//! replacements only occur in the CTP: a dirty CMT victim is absorbed into
//! its cached translation page when present; dirty entries whose page is
//! not cached are not evicted from the CMT unless their page is first
//! brought into the CTP ("dirty entries in CMT won't be replaced unless
//! they are also included in CTP" — Section 2.2 of the TPFTL paper). CTP
//! victims are written back whole (`T_fw`) when dirty.
//!
//! The TPFTL paper drops CDFTL from its plots because it "performs worse
//! than S-FTL in our experiments"; we implement and report it anyway.

use crate::hash::FxHashMap;

use tpftl_flash::{Lpn, OpPurpose, Ppn, Vtpn, PPN_NONE};

use crate::env::SsdEnv;
use crate::ftl::{group_by_vtpn, AccessCtx, Ftl, TpDistEntry};
use crate::lru::{LruIdx, LruList};
use crate::{FtlError, Result, SsdConfig};

/// Bytes per CMT entry (4 B LPN + 4 B PPN).
const ENTRY_BYTES: usize = 8;

/// Header bytes per CTP page.
const PAGE_HEADER_BYTES: usize = 8;

/// Fraction of the usable budget given to the CMT (the rest is CTP).
const CMT_FRAC: f64 = 0.5;

#[derive(Debug, Clone, Copy)]
struct CmtEntry {
    lpn: Lpn,
    ppn: Ppn,
    dirty: bool,
}

struct CtpPage {
    entries: Vec<Ppn>,
    dirty: bool,
    lru: LruIdx,
}

/// The CDFTL baseline.
pub struct Cdftl {
    cmt_cap: usize,
    ctp_cap_pages: usize,
    cmt_map: FxHashMap<Lpn, LruIdx>,
    cmt: LruList<CmtEntry>,
    ctp: FxHashMap<Vtpn, CtpPage>,
    ctp_lru: LruList<Vtpn>,
    entries_per_tp: usize,
}

impl Cdftl {
    /// Creates a CDFTL splitting the usable budget between CMT entries and
    /// whole CTP pages.
    ///
    /// # Errors
    ///
    /// [`FtlError::CacheTooSmall`] unless at least one CMT entry and one
    /// CTP page fit.
    pub fn new(config: &SsdConfig) -> Result<Self> {
        let budget = config.usable_cache_bytes();
        let page_bytes = PAGE_HEADER_BYTES + 4 * config.entries_per_tp();
        // Aim for an even split but guarantee at least one CTP page (the
        // kick-out buffer is mandatory); the CMT takes what remains.
        let ctp_cap_pages = (((budget as f64) * (1.0 - CMT_FRAC)) as usize / page_bytes).max(1);
        let cmt_cap = budget.saturating_sub(ctp_cap_pages * page_bytes) / ENTRY_BYTES;
        if cmt_cap == 0 {
            return Err(FtlError::CacheTooSmall);
        }
        Ok(Self {
            cmt_cap,
            ctp_cap_pages,
            cmt_map: FxHashMap::default(),
            cmt: LruList::new(),
            ctp: FxHashMap::default(),
            ctp_lru: LruList::new(),
            entries_per_tp: config.entries_per_tp(),
        })
    }

    /// Evicts the LRU CTP page, writing it back whole if dirty.
    fn evict_ctp(&mut self, env: &mut SsdEnv) -> Result<()> {
        let Some((_, &vtpn)) = self.ctp_lru.peek_lru() else {
            return Err(FtlError::CacheTooSmall);
        };
        let page = self.ctp.remove(&vtpn).expect("LRU page cached");
        self.ctp_lru.remove(page.lru);
        env.note_replacement(page.dirty);
        if page.dirty {
            env.write_translation_page_full(vtpn, &page.entries, OpPurpose::Translation)?;
        }
        Ok(())
    }

    /// Loads `vtpn` into the CTP (one `T_fr`), evicting as needed.
    fn load_ctp(&mut self, env: &mut SsdEnv, vtpn: Vtpn) -> Result<()> {
        while self.ctp.len() >= self.ctp_cap_pages {
            self.evict_ctp(env)?;
        }
        let entries = env.read_translation_entries(vtpn, OpPurpose::Translation)?;
        let lru = self.ctp_lru.push_mru(vtpn);
        self.ctp.insert(
            vtpn,
            CtpPage {
                entries,
                dirty: false,
                lru,
            },
        );
        Ok(())
    }

    /// Evicts one CMT entry per CDFTL's rule: the LRU entry that is clean
    /// or whose translation page is in the CTP; if every candidate is a
    /// dirty entry with an uncached page, the LRU entry's page is brought
    /// into the CTP first (kick-out buffer role).
    fn evict_cmt(&mut self, env: &mut SsdEnv) -> Result<()> {
        let candidate = self
            .cmt
            .iter_lru()
            .find(|(_, e)| !e.dirty || self.ctp.contains_key(&env.vtpn_of(e.lpn)))
            .map(|(idx, e)| (idx, *e));
        let (idx, entry) = match candidate {
            Some(c) => c,
            None => {
                let (idx, e) = self.cmt.peek_lru().expect("eviction from empty CMT");
                let e = *e;
                self.load_ctp(env, env.vtpn_of(e.lpn))?;
                (idx, e)
            }
        };
        env.note_replacement(entry.dirty);
        if entry.dirty {
            let vtpn = env.vtpn_of(entry.lpn);
            let page = self.ctp.get_mut(&vtpn).expect("victim's page is in CTP");
            page.entries[env.offset_of(entry.lpn) as usize] = entry.ppn;
            page.dirty = true;
        }
        self.cmt.remove(idx);
        self.cmt_map.remove(&entry.lpn);
        Ok(())
    }

    /// Inserts into the CMT; the caller must have made room already (CMT
    /// eviction can itself reshuffle the CTP, so room is made *before* the
    /// target page is resolved).
    fn push_cmt(&mut self, entry: CmtEntry) {
        debug_assert!(self.cmt.len() < self.cmt_cap);
        let idx = self.cmt.push_mru(entry);
        self.cmt_map.insert(entry.lpn, idx);
    }
}

impl Ftl for Cdftl {
    fn name(&self) -> String {
        "CDFTL".to_string()
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        if let Some(&idx) = self.cmt_map.get(&lpn) {
            env.note_lookup(true);
            self.cmt.touch(idx);
            let ppn = self.cmt.get(idx).expect("mapped handle").ppn;
            return Ok((ppn != PPN_NONE).then_some(ppn));
        }
        let vtpn = env.vtpn_of(lpn);
        let off = env.offset_of(lpn) as usize;
        // Make CMT room first: evicting a dirty CMT entry can pull its own
        // page into the CTP, which must not displace the page resolved
        // below.
        while self.cmt.len() >= self.cmt_cap {
            self.evict_cmt(env)?;
        }
        if let Some(page) = self.ctp.get(&vtpn) {
            // Second-level hit: no flash traffic, copy into the CMT.
            env.note_lookup(true);
            let ppn = page.entries[off];
            let idx = page.lru;
            self.ctp_lru.touch(idx);
            self.push_cmt(CmtEntry {
                lpn,
                ppn,
                dirty: false,
            });
            return Ok((ppn != PPN_NONE).then_some(ppn));
        }
        env.note_lookup(false);
        self.load_ctp(env, vtpn)?;
        let ppn = self.ctp[&vtpn].entries[off];
        self.push_cmt(CmtEntry {
            lpn,
            ppn,
            dirty: false,
        });
        Ok((ppn != PPN_NONE).then_some(ppn))
    }

    fn update_mapping(&mut self, _env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        let idx = *self
            .cmt_map
            .get(&lpn)
            .expect("update_mapping contract: entry was translated immediately before");
        let e = self.cmt.get_mut(idx).expect("mapped handle");
        e.ppn = new_ppn;
        e.dirty = true;
        Ok(())
    }

    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        let mut hits = 0u64;
        let mut misses: Vec<(Lpn, Ppn)> = Vec::new();
        for &(lpn, new_ppn) in moved {
            if let Some(&idx) = self.cmt_map.get(&lpn) {
                let e = self.cmt.get_mut(idx).expect("mapped handle");
                e.ppn = new_ppn;
                e.dirty = true;
                hits += 1;
            } else if let Some(page) = self.ctp.get_mut(&env.vtpn_of(lpn)) {
                page.entries[env.offset_of(lpn) as usize] = new_ppn;
                page.dirty = true;
                hits += 1;
            } else {
                misses.push((lpn, new_ppn));
            }
        }
        for (vtpn, updates) in group_by_vtpn(env, &misses) {
            env.update_translation_page(vtpn, &updates, OpPurpose::GcTranslation)?;
        }
        Ok(hits)
    }

    fn cache_bytes_used(&self) -> usize {
        self.cmt.len() * ENTRY_BYTES
            + self.ctp.len() * (PAGE_HEADER_BYTES + 4 * self.entries_per_tp)
    }

    fn cached_entries(&self) -> usize {
        self.cmt.len() + self.ctp.len() * self.entries_per_tp
    }

    fn peek_cached(&self, env: &SsdEnv, lpn: Lpn) -> crate::Result<Option<Option<Ppn>>> {
        if let Some(&idx) = self.cmt_map.get(&lpn) {
            let p = self.cmt.get(idx).expect("mapped handle").ppn;
            return Ok(Some((p != PPN_NONE).then_some(p)));
        }
        if let Some(page) = self.ctp.get(&env.vtpn_of(lpn)) {
            let p = page.entries[env.offset_of(lpn) as usize];
            return Ok(Some((p != PPN_NONE).then_some(p)));
        }
        Ok(None)
    }

    fn mark_clean(&mut self, vtpn: Vtpn) {
        // Sync dirty CMT values into the cached page (now equal to flash)
        // and clear both dirty states.
        let idxs: Vec<_> = self
            .cmt
            .iter_lru()
            .filter(|(_, e)| e.lpn / self.entries_per_tp as u32 == vtpn)
            .map(|(i, _)| i)
            .collect();
        for i in idxs {
            let e = *self.cmt.get(i).expect("live handle");
            if e.dirty {
                if let Some(page) = self.ctp.get_mut(&vtpn) {
                    page.entries[(e.lpn as usize) % self.entries_per_tp] = e.ppn;
                }
                self.cmt.get_mut(i).expect("live handle").dirty = false;
            }
        }
        if let Some(page) = self.ctp.get_mut(&vtpn) {
            page.dirty = false;
        }
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        let mut by_tp: std::collections::BTreeMap<u32, (u32, u32)> =
            std::collections::BTreeMap::new();
        for (_, e) in self.cmt.iter_lru() {
            let slot = by_tp.entry(e.lpn / self.entries_per_tp as u32).or_default();
            slot.0 += 1;
            if e.dirty {
                slot.1 += 1;
            }
        }
        for (&vtpn, p) in &self.ctp {
            let slot = by_tp.entry(vtpn).or_default();
            slot.0 += p.entries.len() as u32;
            if p.dirty {
                slot.1 += 1;
            }
        }
        by_tp
            .into_iter()
            .map(|(vtpn, (entries, dirty))| TpDistEntry {
                vtpn,
                entries,
                dirty,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;

    /// 8 MB device; CMT of `cmt_entries`, CTP of `ctp_pages`.
    fn setup(cmt_entries: usize, ctp_pages: usize) -> (Cdftl, SsdEnv) {
        let mut config = SsdConfig::paper_default(8 << 20);
        let page_bytes = PAGE_HEADER_BYTES + 4 * config.entries_per_tp();
        // CMT_FRAC splits 50/50, so size the budget accordingly.
        let budget = (cmt_entries * ENTRY_BYTES * 2).max(ctp_pages * page_bytes * 2);
        config.cache_bytes = config.gtd_bytes() + budget;
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = Cdftl::new(&config).unwrap();
        // Override the derived capacities for precise tests.
        ftl.cmt_cap = cmt_entries;
        ftl.ctp_cap_pages = ctp_pages;
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    #[test]
    fn cache_too_small_rejected() {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + 1024;
        assert!(matches!(Cdftl::new(&config), Err(FtlError::CacheTooSmall)));
    }

    #[test]
    fn two_level_hits() {
        let (mut ftl, mut env) = setup(4, 1);
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, 0);
        // Same entry: CMT hit.
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, 1);
        // Different entry of the same page: CTP hit, no flash read.
        let tr = env.flash().stats().translation_reads();
        driver::serve_page_access(&mut ftl, &mut env, 500, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, 2);
        assert_eq!(env.flash().stats().translation_reads(), tr);
    }

    #[test]
    fn dirty_cmt_victim_absorbed_by_ctp() {
        let (mut ftl, mut env) = setup(2, 1);
        // Write LPN 0 (dirty in CMT, page 0 in CTP).
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(true)).unwrap();
        let tw = env.flash().stats().translation_writes();
        // Fill the CMT past capacity with same-page reads: the dirty entry
        // is absorbed into the CTP page, with NO translation write.
        for lpn in 1..4u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        assert_eq!(env.flash().stats().translation_writes(), tw);
        let page = &ftl.ctp[&0];
        assert!(page.dirty, "CTP page carries the absorbed update");
        assert_ne!(page.entries[0], PPN_NONE);
    }

    #[test]
    fn dirty_ctp_eviction_writes_full_page() {
        let (mut ftl, mut env) = setup(8, 1);
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(true)).unwrap();
        // Absorb the dirty entry into the CTP by cycling the CMT.
        for lpn in 1..9u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        let (tr, tw) = (
            env.flash().stats().translation_reads(),
            env.flash().stats().translation_writes(),
        );
        // Load the other page: the dirty CTP page is written back whole.
        driver::serve_page_access(&mut ftl, &mut env, 1500, AccessCtx::single(false)).unwrap();
        assert_eq!(env.flash().stats().translation_writes(), tw + 1);
        // One read for the new page, none for the writeback.
        assert_eq!(env.flash().stats().translation_reads(), tr + 1);
        // Durable: re-reading LPN 0 resolves to a valid page.
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
    }

    #[test]
    fn dirty_cmt_victim_with_uncached_page_pulls_page_in() {
        let (mut ftl, mut env) = setup(1, 1);
        // Write LPN 0: CMT holds one dirty entry, CTP holds page 0.
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(true)).unwrap();
        // Write LPN 1500 (page 1): CMT must evict the dirty entry 0, but
        // first its page is kicked out of the CTP by page 1... so the
        // eviction pulls page 0 back in. Everything must stay consistent.
        driver::serve_page_access(&mut ftl, &mut env, 1500, AccessCtx::single(true)).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 1500, AccessCtx::single(false)).unwrap();
    }

    #[test]
    fn consistency_under_random_mix() {
        let (mut ftl, mut env) = setup(16, 1);
        for i in 0..2000u32 {
            let lpn = (i * 701) % 2048;
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(i % 3 != 0))
                .unwrap();
            assert!(ftl.cmt.len() <= 16);
            assert!(ftl.ctp.len() <= 1);
        }
        // Every valid data page is uniquely mapped.
        let mut seen = std::collections::HashSet::new();
        for (_, tag, is_tp) in env.flash().scan_valid() {
            if !is_tp {
                assert!(seen.insert(tag), "LPN {tag} has two valid pages");
            }
        }
    }
}
