//! ZFTL (Wang, Zhang, Wang — ICCT 2011), as characterized in Section 2.2
//! of the TPFTL paper.
//!
//! ZFTL divides the logical space into *zones* and "only caches the
//! mapping information of a recently accessed Zone": a two-tier mechanism
//! whose second tier holds one *active translation page* and whose first
//! tier is an entry cache with a small reserved area used "to conduct
//! batch evictions". The design keeps cache consumption small and stable,
//! but "Zone switches are cumbersome and incur significant overhead" — an
//! access outside the active zone flushes every dirty entry and drops the
//! cached state, which this implementation reproduces (and the tests
//! measure).
//!
//! Not part of the paper's evaluation; included to round out the
//! related-work baselines.

use std::collections::HashMap;

use tpftl_flash::{Lpn, OpPurpose, Ppn, Vtpn, PPN_NONE};

use crate::env::SsdEnv;
use crate::ftl::{group_by_vtpn, AccessCtx, Ftl, TpDistEntry};
use crate::lru::{LruIdx, LruList};
use crate::{FtlError, Result, SsdConfig};

/// Bytes per first-tier entry (4 B LPN + 4 B PPN).
const ENTRY_BYTES: usize = 8;

/// Fraction of the first-tier budget reserved for the batch-eviction area.
const RESERVE_FRAC: f64 = 0.25;

#[derive(Debug, Clone, Copy)]
struct ZEntry {
    lpn: Lpn,
    ppn: Ppn,
    dirty: bool,
}

/// The ZFTL baseline.
pub struct Zftl {
    /// Number of zones the logical space is divided into.
    zones: u32,
    /// Logical pages per zone.
    zone_pages: u32,
    /// Zone whose mappings are currently cached (`None` before first use).
    active_zone: Option<u32>,
    /// First tier: entry cache (active zone only).
    map: HashMap<Lpn, LruIdx>,
    entries: LruList<ZEntry>,
    cap_entries: usize,
    /// Reserved batch-eviction area: dirty victims parked until a batch
    /// sharing one translation page is flushed.
    reserve: HashMap<Lpn, Ppn>,
    reserve_cap: usize,
    /// Second tier: the active translation page (full copy, clean).
    active_tp: Option<(Vtpn, Vec<Ppn>)>,
    entries_per_tp: usize,
    /// Zone switches performed (the overhead the paper calls out).
    zone_switches: u64,
}

impl Zftl {
    /// Creates a ZFTL with `zones` zones, sized to the config's usable
    /// cache budget (one full translation page for the second tier, the
    /// rest split between first-tier entries and the eviction reserve).
    ///
    /// # Errors
    ///
    /// [`FtlError::CacheTooSmall`] if the second-tier page does not fit.
    pub fn new(config: &SsdConfig, zones: u32) -> Result<Self> {
        assert!(zones >= 1, "at least one zone");
        let budget = config.usable_cache_bytes();
        let tp_bytes = 4 * config.entries_per_tp() + 8;
        let first_tier = budget.saturating_sub(tp_bytes);
        let reserve_cap = ((first_tier as f64 * RESERVE_FRAC) as usize / ENTRY_BYTES).max(2);
        let cap_entries = (first_tier / ENTRY_BYTES).saturating_sub(reserve_cap);
        if budget < tp_bytes || cap_entries == 0 {
            return Err(FtlError::CacheTooSmall);
        }
        let logical_pages = config.logical_pages() as u32;
        Ok(Self {
            zones,
            zone_pages: logical_pages.div_ceil(zones),
            active_zone: None,
            map: HashMap::new(),
            entries: LruList::new(),
            cap_entries,
            reserve: HashMap::new(),
            reserve_cap,
            active_tp: None,
            entries_per_tp: config.entries_per_tp(),
            zone_switches: 0,
        })
    }

    /// ZFTL with 8 zones.
    pub fn with_defaults(config: &SsdConfig) -> Result<Self> {
        Self::new(config, 8)
    }

    /// Zone switches performed so far.
    pub fn zone_switches(&self) -> u64 {
        self.zone_switches
    }

    fn zone_of(&self, lpn: Lpn) -> u32 {
        lpn / self.zone_pages
    }

    /// Flushes the batch-eviction reserve, one update per translation page.
    fn flush_reserve(&mut self, env: &mut SsdEnv) -> Result<()> {
        if self.reserve.is_empty() {
            return Ok(());
        }
        let updates: Vec<(Lpn, Ppn)> = {
            let mut v: Vec<_> = self.reserve.drain().collect();
            v.sort_unstable_by_key(|&(l, _)| l);
            v
        };
        for (vtpn, batch) in group_by_vtpn(env, &updates) {
            env.note_replacement(true);
            env.update_translation_page(vtpn, &batch, OpPurpose::Translation)?;
            // Keep the second tier coherent if it caches this page.
            if let Some((active_vtpn, payload)) = &mut self.active_tp {
                if *active_vtpn == vtpn {
                    for &(off, ppn) in &batch {
                        payload[off as usize] = ppn;
                    }
                }
            }
        }
        Ok(())
    }

    /// The cumbersome zone switch: flush every dirty first-tier entry and
    /// the reserve, then drop all cached state.
    fn switch_zone(&mut self, env: &mut SsdEnv, zone: u32) -> Result<()> {
        if self.active_zone == Some(zone) {
            return Ok(());
        }
        self.zone_switches += 1;
        // Park every dirty entry in the reserve (flushing as it fills),
        // then flush the remainder.
        let dirty: Vec<(Lpn, Ppn)> = self
            .entries
            .iter_lru()
            .filter(|(_, e)| e.dirty)
            .map(|(_, e)| (e.lpn, e.ppn))
            .collect();
        for (lpn, ppn) in dirty {
            self.reserve.insert(lpn, ppn);
            if self.reserve.len() >= self.reserve_cap {
                self.flush_reserve(env)?;
            }
        }
        self.flush_reserve(env)?;
        self.map.clear();
        while self.entries.pop_lru().is_some() {}
        self.active_tp = None;
        self.active_zone = Some(zone);
        Ok(())
    }

    /// Loads the translation page of `vtpn` into the second tier.
    fn load_active_tp(&mut self, env: &mut SsdEnv, vtpn: Vtpn) -> Result<()> {
        if self.active_tp.as_ref().is_some_and(|(v, _)| *v == vtpn) {
            return Ok(());
        }
        let payload = env.read_translation_entries(vtpn, OpPurpose::Translation)?;
        self.active_tp = Some((vtpn, payload));
        Ok(())
    }

    /// Evicts the first-tier LRU entry; dirty victims go to the reserve
    /// (batched flush when it fills).
    fn evict_entry(&mut self, env: &mut SsdEnv) -> Result<()> {
        let Some(victim) = self.entries.pop_lru() else {
            return Err(FtlError::CacheTooSmall);
        };
        self.map.remove(&victim.lpn);
        env.note_replacement(victim.dirty);
        if victim.dirty {
            self.reserve.insert(victim.lpn, victim.ppn);
            if self.reserve.len() >= self.reserve_cap {
                self.flush_reserve(env)?;
            }
        }
        Ok(())
    }

    fn insert_entry(&mut self, env: &mut SsdEnv, e: ZEntry) -> Result<()> {
        while self.entries.len() >= self.cap_entries {
            self.evict_entry(env)?;
        }
        let idx = self.entries.push_mru(e);
        self.map.insert(e.lpn, idx);
        Ok(())
    }
}

impl Ftl for Zftl {
    fn name(&self) -> String {
        format!("ZFTL({})", self.zones)
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        self.switch_zone(env, self.zone_of(lpn))?;
        // First tier.
        if let Some(&idx) = self.map.get(&lpn) {
            env.note_lookup(true);
            self.entries.touch(idx);
            let ppn = self.entries.get(idx).expect("mapped handle").ppn;
            return Ok((ppn != PPN_NONE).then_some(ppn));
        }
        // Eviction reserve still holds the freshest value.
        if let Some(&ppn) = self.reserve.get(&lpn) {
            env.note_lookup(true);
            return Ok(Some(ppn));
        }
        let vtpn = env.vtpn_of(lpn);
        let off = env.offset_of(lpn) as usize;
        // Second tier: the active translation page.
        if self.active_tp.as_ref().is_some_and(|(v, _)| *v == vtpn) {
            env.note_lookup(true);
            let ppn = self.active_tp.as_ref().expect("checked").1[off];
            self.insert_entry(
                env,
                ZEntry {
                    lpn,
                    ppn,
                    dirty: false,
                },
            )?;
            return Ok((ppn != PPN_NONE).then_some(ppn));
        }
        env.note_lookup(false);
        self.load_active_tp(env, vtpn)?;
        let ppn = self.active_tp.as_ref().expect("just loaded").1[off];
        self.insert_entry(
            env,
            ZEntry {
                lpn,
                ppn,
                dirty: false,
            },
        )?;
        Ok((ppn != PPN_NONE).then_some(ppn))
    }

    fn update_mapping(&mut self, _env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        // The entry may have been answered from the reserve.
        if let Some(&idx) = self.map.get(&lpn) {
            let e = self.entries.get_mut(idx).expect("mapped handle");
            e.ppn = new_ppn;
            e.dirty = true;
        } else {
            self.reserve.insert(lpn, new_ppn);
        }
        Ok(())
    }

    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        let mut hits = 0u64;
        let mut misses: Vec<(Lpn, Ppn)> = Vec::new();
        for &(lpn, new_ppn) in moved {
            if let Some(&idx) = self.map.get(&lpn) {
                let e = self.entries.get_mut(idx).expect("mapped handle");
                e.ppn = new_ppn;
                e.dirty = true;
                hits += 1;
            } else if let Some(v) = self.reserve.get_mut(&lpn) {
                *v = new_ppn;
                hits += 1;
            } else {
                misses.push((lpn, new_ppn));
            }
        }
        for (vtpn, updates) in group_by_vtpn(env, &misses) {
            env.update_translation_page(vtpn, &updates, OpPurpose::GcTranslation)?;
            if let Some((active_vtpn, payload)) = &mut self.active_tp {
                if *active_vtpn == vtpn {
                    for &(off, ppn) in &updates {
                        payload[off as usize] = ppn;
                    }
                }
            }
        }
        Ok(hits)
    }

    fn cache_bytes_used(&self) -> usize {
        (self.entries.len() + self.reserve.len()) * ENTRY_BYTES
            + self.active_tp.as_ref().map_or(0, |(_, p)| 8 + 4 * p.len())
    }

    fn cached_entries(&self) -> usize {
        self.entries.len()
            + self.reserve.len()
            + self.active_tp.as_ref().map_or(0, |_| self.entries_per_tp)
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        let mut by_tp: std::collections::BTreeMap<u32, (u32, u32)> =
            std::collections::BTreeMap::new();
        for (_, e) in self.entries.iter_lru() {
            let slot = by_tp.entry(e.lpn / self.entries_per_tp as u32).or_default();
            slot.0 += 1;
            if e.dirty {
                slot.1 += 1;
            }
        }
        for &lpn in self.reserve.keys() {
            let slot = by_tp.entry(lpn / self.entries_per_tp as u32).or_default();
            slot.0 += 1;
            slot.1 += 1;
        }
        if let Some((vtpn, p)) = &self.active_tp {
            let slot = by_tp.entry(*vtpn).or_default();
            slot.0 += p.len() as u32;
        }
        by_tp
            .into_iter()
            .map(|(vtpn, (entries, dirty))| TpDistEntry {
                vtpn,
                entries,
                dirty,
            })
            .collect()
    }

    fn peek_cached(&self, env: &SsdEnv, lpn: Lpn) -> Result<Option<Option<Ppn>>> {
        if let Some(&idx) = self.map.get(&lpn) {
            let p = self.entries.get(idx).expect("mapped handle").ppn;
            return Ok(Some((p != PPN_NONE).then_some(p)));
        }
        if let Some(&p) = self.reserve.get(&lpn) {
            return Ok(Some(Some(p)));
        }
        if let Some((vtpn, payload)) = &self.active_tp {
            if *vtpn == env.vtpn_of(lpn) {
                let p = payload[env.offset_of(lpn) as usize];
                return Ok(Some((p != PPN_NONE).then_some(p)));
            }
        }
        Ok(None)
    }

    fn mark_clean(&mut self, vtpn: Vtpn) {
        let idxs: Vec<_> = self
            .entries
            .iter_lru()
            .filter(|(_, e)| e.lpn / self.entries_per_tp as u32 == vtpn)
            .map(|(i, _)| i)
            .collect();
        for i in idxs {
            self.entries.get_mut(i).expect("live handle").dirty = false;
        }
        let flushed: Vec<Lpn> = self
            .reserve
            .keys()
            .copied()
            .filter(|&l| l / self.entries_per_tp as u32 == vtpn)
            .collect();
        for lpn in flushed {
            self.reserve.remove(&lpn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;

    /// 16 MB device (4096 pages, 4 translation pages), 2 zones.
    fn setup(zones: u32) -> (Zftl, SsdEnv) {
        let mut config = SsdConfig::paper_default(16 << 20);
        config.cache_bytes = config.gtd_bytes() + 6 * 1024;
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = Zftl::new(&config, zones).unwrap();
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    #[test]
    fn cache_too_small_rejected() {
        let mut config = SsdConfig::paper_default(16 << 20);
        config.cache_bytes = config.gtd_bytes() + 1024;
        assert!(matches!(
            Zftl::new(&config, 4),
            Err(FtlError::CacheTooSmall)
        ));
    }

    #[test]
    fn within_zone_hits_via_both_tiers() {
        let (mut ftl, mut env) = setup(2);
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, 0);
        // Same entry: first-tier hit.
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        // Same translation page, different entry: second-tier hit.
        driver::serve_page_access(&mut ftl, &mut env, 500, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, 2);
        assert_eq!(env.flash().stats().translation_reads(), 1);
        assert_eq!(ftl.zone_switches(), 1, "first access switched from no zone");
    }

    #[test]
    fn zone_switch_flushes_dirty_state() {
        let (mut ftl, mut env) = setup(2);
        // Dirty a few entries in zone 0.
        for lpn in 0..5u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        let tw = env.flash().stats().translation_writes();
        // Touch zone 1 (pages 2048..4096): the switch flushes the batch.
        driver::serve_page_access(&mut ftl, &mut env, 3000, AccessCtx::single(false)).unwrap();
        assert_eq!(ftl.zone_switches(), 2);
        assert_eq!(
            env.flash().stats().translation_writes(),
            tw + 1,
            "all five dirty entries flushed in one batched update"
        );
        // Back to zone 0: data is durable.
        for lpn in 0..5u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
    }

    #[test]
    fn zone_ping_pong_is_expensive() {
        let (mut ftl, mut env) = setup(2);
        for i in 0..50u32 {
            let lpn = if i % 2 == 0 { i } else { 2048 + i };
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        assert_eq!(ftl.zone_switches(), 50, "every access crosses zones");
        // The paper's point: zone switches dominate; plenty of flash ops.
        assert!(env.flash().stats().translation_reads() >= 25);
    }

    #[test]
    fn reserve_batches_dirty_evictions() {
        let (mut ftl, mut env) = setup(1);
        let cap = ftl.cap_entries;
        // Fill the first tier with dirty entries, then stream reads to
        // evict them: they park in the reserve and flush in batches.
        for lpn in 0..cap as u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        let tw = env.flash().stats().translation_writes();
        for lpn in (cap as u32)..(cap as u32 + ftl.reserve_cap as u32 + 4) {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        let new_writes = env.flash().stats().translation_writes() - tw;
        assert!(new_writes >= 1, "reserve overflow flushed");
        assert!(
            (new_writes as usize) < ftl.reserve_cap,
            "flushes are batched, not per-entry: {new_writes}"
        );
        assert!(ftl.cache_bytes_used() <= 6 * 1024);
    }

    #[test]
    fn consistency_under_mixed_traffic() {
        let (mut ftl, mut env) = setup(4);
        for i in 0..6_000u32 {
            let lpn = (i.wrapping_mul(2654435761) >> 14) % 4096;
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(i % 3 != 0))
                .unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for (_, tag, is_tp) in env.flash().scan_valid() {
            if !is_tp {
                assert!(seen.insert(tag), "LPN {tag} double-mapped");
            }
        }
        // Flush + verify: the recovery oracle covers ZFTL too.
        crate::recovery::flush_cache(&mut ftl, &mut env).unwrap();
        crate::recovery::verify(&env).assert_clean();
    }
}
