//! The optimal page-level FTL: entire mapping table in RAM.
//!
//! "The optimal FTL, employing a page-level mapping with the entire mapping
//! table cached, has minimal overhead that any FTL can possibly have"
//! (Section 5.1). It performs no translation-page flash traffic at all;
//! every lookup and every GC mapping update is a cache hit.

use tpftl_flash::{Lpn, Ppn};

use crate::env::SsdEnv;
use crate::ftl::{AccessCtx, Ftl, TpDistEntry};
use crate::{Result, SsdConfig};

/// Page-level FTL with a fully RAM-resident mapping table.
pub struct OptimalFtl {
    table: Vec<Option<Ppn>>,
    entries_per_tp: usize,
}

impl OptimalFtl {
    /// Creates the FTL for a device of `config`'s logical size.
    pub fn new(config: &SsdConfig) -> Self {
        Self {
            table: vec![None; config.logical_pages() as usize],
            entries_per_tp: config.entries_per_tp(),
        }
    }
}

impl Ftl for OptimalFtl {
    fn name(&self) -> String {
        "Optimal".to_string()
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        env.note_lookup(true);
        Ok(self.table[lpn as usize])
    }

    fn update_mapping(&mut self, _env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        self.table[lpn as usize] = Some(new_ppn);
        Ok(())
    }

    fn on_gc_data_block(&mut self, _env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        for &(lpn, new_ppn) in moved {
            self.table[lpn as usize] = Some(new_ppn);
        }
        Ok(moved.len() as u64)
    }

    fn uses_translation_pages(&self) -> bool {
        false
    }

    fn after_bootstrap(&mut self, env: &mut SsdEnv) -> Result<()> {
        // Rebuild the table from the physically valid data pages.
        for (ppn, lpn, is_translation) in env.flash().scan_valid() {
            if !is_translation {
                self.table[lpn as usize] = Some(ppn);
            }
        }
        Ok(())
    }

    fn cache_bytes_used(&self) -> usize {
        // 8 B per entry, the paper's full-table accounting.
        self.table.len() * 8
    }

    fn cached_entries(&self) -> usize {
        self.table.iter().filter(|e| e.is_some()).count()
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        let mut out: Vec<TpDistEntry> = Vec::new();
        for (lpn, e) in self.table.iter().enumerate() {
            if e.is_some() {
                let vtpn = (lpn / self.entries_per_tp) as u32;
                match out.last_mut() {
                    Some(last) if last.vtpn == vtpn => last.entries += 1,
                    _ => out.push(TpDistEntry {
                        vtpn,
                        entries: 1,
                        dirty: 0,
                    }),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;

    fn setup() -> (OptimalFtl, SsdEnv) {
        let config = SsdConfig::paper_default(4 << 20);
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = OptimalFtl::new(&config);
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut ftl, mut env) = setup();
        driver::serve_request(&mut ftl, &mut env, 10, 3, true).unwrap();
        driver::serve_request(&mut ftl, &mut env, 10, 3, false).unwrap();
        assert_eq!(env.stats.user_page_writes, 3);
        assert_eq!(env.stats.user_page_reads, 3);
        assert_eq!(env.stats.hit_ratio(), 1.0);
        // No translation traffic ever.
        assert_eq!(env.flash().stats().translation_reads(), 0);
        assert_eq!(env.flash().stats().translation_writes(), 0);
    }

    #[test]
    fn overwrite_invalidates_previous() {
        let (mut ftl, mut env) = setup();
        driver::serve_page_access(&mut ftl, &mut env, 5, AccessCtx::single(true)).unwrap();
        let first = ftl.table[5].unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 5, AccessCtx::single(true)).unwrap();
        let second = ftl.table[5].unwrap();
        assert_ne!(first, second);
        // Exactly one valid data page holds LPN 5.
        let live: Vec<_> = env
            .flash()
            .scan_valid()
            .filter(|&(_, tag, t)| !t && tag == 5)
            .collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0, second);
    }

    #[test]
    fn read_of_unwritten_page_is_noop() {
        let (mut ftl, mut env) = setup();
        driver::serve_page_access(&mut ftl, &mut env, 900, AccessCtx::single(false)).unwrap();
        assert_eq!(env.flash().stats().total_reads(), 0);
    }

    #[test]
    fn bootstrap_with_prefill_rebuilds_table() {
        let mut config = SsdConfig::paper_default(4 << 20);
        config.prefill_frac = 0.5;
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = OptimalFtl::new(&config);
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        assert_eq!(ftl.cached_entries(), 512);
        // Reading a prefilled page touches flash exactly once.
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
        assert_eq!(env.flash().stats().total_reads(), 1);
    }

    #[test]
    fn distribution_groups_by_tp() {
        let config = SsdConfig::paper_default(8 << 20); // 2 translation pages
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = OptimalFtl::new(&config);
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(true)).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 1, AccessCtx::single(true)).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 1500, AccessCtx::single(true)).unwrap();
        let d = ftl.cached_tp_distribution();
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].vtpn, d[0].entries), (0, 2));
        assert_eq!((d[1].vtpn, d[1].entries), (1, 1));
    }

    /// GC under sustained overwrites keeps the table consistent.
    #[test]
    fn gc_pressure_consistency() {
        let (mut ftl, mut env) = setup();
        // 4 MB logical = 1024 pages; physical = 1024*1.15. Overwrite a hot
        // set until GC must have run several times.
        for round in 0..30 {
            for lpn in 0..256u32 {
                driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true))
                    .unwrap();
            }
            let _ = round;
        }
        assert!(env.flash().stats().total_erases() > 0, "GC never ran");
        // Every mapping resolves to the valid page holding that LPN.
        for lpn in 0..256u32 {
            let ppn = ftl.table[lpn as usize].unwrap();
            env.read_data_page(ppn, lpn).unwrap();
        }
        // GC updates were all hits.
        assert_eq!(env.stats.gc_updates, env.stats.gc_hits);
    }
}
