//! DFTL (Gupta et al., ASPLOS'09), the paper's baseline.
//!
//! DFTL keeps a *cached mapping table* (CMT) of individual entries managed
//! by a segmented LRU: a probationary segment absorbs newly loaded entries,
//! a protected segment holds re-referenced ones, so one-touch entries are
//! evicted early. As the TPFTL paper characterizes it (Section 3.2), the
//! replacement policy "writes back only one dirty entry when evicting a
//! dirty entry" — batching exists only in the GC path, where the mapping
//! modifications of a victim block's migrated pages that miss the cache are
//! combined into one update per translation page.

use crate::hash::FxHashMap;
use std::collections::BTreeMap;

use tpftl_flash::{Lpn, OpPurpose, Ppn, PPN_NONE};

use crate::env::SsdEnv;
use crate::ftl::{group_by_vtpn, AccessCtx, Ftl, TpDistEntry};
use crate::lru::{LruIdx, LruList};
use crate::{FtlError, Result, SsdConfig};

/// Bytes per cached entry: 4 B LPN + 4 B PPN (Section 2.2/4.1).
const ENTRY_BYTES: usize = 8;

/// Fraction of the entry budget given to the protected segment.
const PROTECTED_FRAC: f64 = 0.5;

#[derive(Debug, Clone, Copy)]
struct CmtEntry {
    lpn: Lpn,
    /// `PPN_NONE` caches "not mapped yet".
    ppn: Ppn,
    dirty: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

/// The DFTL baseline.
pub struct Dftl {
    budget_entries: usize,
    protected_cap: usize,
    map: FxHashMap<Lpn, (Segment, LruIdx)>,
    probation: LruList<CmtEntry>,
    protected: LruList<CmtEntry>,
}

impl Dftl {
    /// Creates a DFTL whose CMT fits the config's usable cache budget at
    /// 8 B per entry.
    ///
    /// # Errors
    ///
    /// [`FtlError::CacheTooSmall`] if not even one entry fits.
    pub fn new(config: &SsdConfig) -> Result<Self> {
        let budget_entries = config.usable_cache_bytes() / ENTRY_BYTES;
        if budget_entries == 0 {
            return Err(FtlError::CacheTooSmall);
        }
        Ok(Self {
            budget_entries,
            protected_cap: ((budget_entries as f64) * PROTECTED_FRAC) as usize,
            map: FxHashMap::default(),
            probation: LruList::new(),
            protected: LruList::new(),
        })
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    /// Promotes a probationary hit to the protected segment, demoting the
    /// protected LRU back to probation when over capacity (classic SLRU).
    fn promote(&mut self, lpn: Lpn, idx: LruIdx) {
        let e = self.probation.remove(idx);
        let new_idx = self.protected.push_mru(e);
        self.map.insert(lpn, (Segment::Protected, new_idx));
        if self.protected.len() > self.protected_cap.max(1) {
            if let Some((lru_idx, lru)) = self.protected.peek_lru() {
                let demoted_lpn = lru.lpn;
                let e = self.protected.remove(lru_idx);
                let p_idx = self.probation.push_mru(e);
                self.map.insert(demoted_lpn, (Segment::Probation, p_idx));
            }
        }
    }

    /// Evicts one entry (probationary LRU, else protected LRU), writing the
    /// victim back alone if dirty — DFTL's single-entry writeback.
    fn evict_one(&mut self, env: &mut SsdEnv) -> Result<()> {
        let victim = if let Some(e) = self.probation.pop_lru() {
            e
        } else if let Some(e) = self.protected.pop_lru() {
            e
        } else {
            return Err(FtlError::CacheTooSmall);
        };
        self.map.remove(&victim.lpn);
        env.note_replacement(victim.dirty);
        if victim.dirty {
            env.update_translation_page(
                env.vtpn_of(victim.lpn),
                &[(env.offset_of(victim.lpn), victim.ppn)],
                OpPurpose::Translation,
            )?;
        }
        Ok(())
    }

    fn insert(&mut self, env: &mut SsdEnv, entry: CmtEntry) -> Result<()> {
        while self.len() >= self.budget_entries {
            self.evict_one(env)?;
        }
        let idx = self.probation.push_mru(entry);
        self.map.insert(entry.lpn, (Segment::Probation, idx));
        Ok(())
    }

    fn get_mut(&mut self, lpn: Lpn) -> Option<&mut CmtEntry> {
        let (seg, idx) = *self.map.get(&lpn)?;
        match seg {
            Segment::Probation => self.probation.get_mut(idx),
            Segment::Protected => self.protected.get_mut(idx),
        }
    }
}

impl Ftl for Dftl {
    fn name(&self) -> String {
        "DFTL".to_string()
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        if let Some(&(seg, idx)) = self.map.get(&lpn) {
            env.note_lookup(true);
            let ppn = match seg {
                Segment::Probation => {
                    let ppn = self.probation.get(idx).expect("mapped handle").ppn;
                    self.promote(lpn, idx);
                    ppn
                }
                Segment::Protected => {
                    self.protected.touch(idx);
                    self.protected.get(idx).expect("mapped handle").ppn
                }
            };
            return Ok((ppn != PPN_NONE).then_some(ppn));
        }
        env.note_lookup(false);
        let vtpn = env.vtpn_of(lpn);
        // Selective caching: one entry is loaded per miss, so read just
        // that entry out of the slab — no page copy, no allocation.
        let ppn = env.read_translation_entry(vtpn, env.offset_of(lpn), OpPurpose::Translation)?;
        self.insert(
            env,
            CmtEntry {
                lpn,
                ppn,
                dirty: false,
            },
        )?;
        Ok((ppn != PPN_NONE).then_some(ppn))
    }

    fn update_mapping(&mut self, _env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        let e = self
            .get_mut(lpn)
            .expect("update_mapping contract: entry was translated immediately before");
        e.ppn = new_ppn;
        e.dirty = true;
        Ok(())
    }

    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        let mut hits = 0u64;
        let mut misses: Vec<(Lpn, Ppn)> = Vec::new();
        for &(lpn, new_ppn) in moved {
            if let Some(e) = self.get_mut(lpn) {
                e.ppn = new_ppn;
                e.dirty = true;
                hits += 1;
            } else {
                misses.push((lpn, new_ppn));
            }
        }
        // DFTL's batch update: one translation-page update per victim block
        // and translation page.
        for (vtpn, updates) in group_by_vtpn(env, &misses) {
            env.update_translation_page(vtpn, &updates, OpPurpose::GcTranslation)?;
        }
        Ok(hits)
    }

    fn cache_bytes_used(&self) -> usize {
        self.len() * ENTRY_BYTES
    }

    fn cached_entries(&self) -> usize {
        self.len()
    }

    fn peek_cached(&self, _env: &SsdEnv, lpn: Lpn) -> crate::Result<Option<Option<Ppn>>> {
        let Some(&(seg, idx)) = self.map.get(&lpn) else {
            return Ok(None);
        };
        let e = match seg {
            Segment::Probation => self.probation.get(idx),
            Segment::Protected => self.protected.get(idx),
        }
        .expect("mapped handle");
        Ok(Some((e.ppn != PPN_NONE).then_some(e.ppn)))
    }

    fn mark_clean(&mut self, vtpn: u32) {
        for list in [&mut self.probation, &mut self.protected] {
            let idxs: Vec<_> = list
                .iter_lru()
                .filter(|(_, e)| e.lpn / 1024 == vtpn && e.dirty)
                .map(|(i, _)| i)
                .collect();
            for i in idxs {
                list.get_mut(i).expect("live handle").dirty = false;
            }
        }
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        let mut by_tp: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
        for (_, e) in self.probation.iter_lru().chain(self.protected.iter_lru()) {
            // Entries per translation page is fixed at 1024 (4 KB / 4 B).
            let vtpn = e.lpn / 1024;
            let slot = by_tp.entry(vtpn).or_default();
            slot.0 += 1;
            if e.dirty {
                slot.1 += 1;
            }
        }
        by_tp
            .into_iter()
            .map(|(vtpn, (entries, dirty))| TpDistEntry {
                vtpn,
                entries,
                dirty,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;

    /// 8 MB logical space (2048 pages, 2 translation pages) with a cache
    /// budget of `entries` CMT entries.
    fn setup(entries: usize) -> (Dftl, SsdEnv) {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + entries * ENTRY_BYTES;
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = Dftl::new(&config).unwrap();
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    #[test]
    fn cache_too_small_rejected() {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + 4;
        assert!(matches!(Dftl::new(&config), Err(FtlError::CacheTooSmall)));
    }

    #[test]
    fn miss_then_hit() {
        let (mut ftl, mut env) = setup(16);
        driver::serve_page_access(&mut ftl, &mut env, 7, AccessCtx::single(true)).unwrap();
        assert_eq!(env.stats.lookups, 1);
        assert_eq!(env.stats.hits, 0);
        // The miss loaded the translation page once.
        assert_eq!(env.flash().stats().translation_reads(), 1);
        driver::serve_page_access(&mut ftl, &mut env, 7, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, 1);
        // The hit needed no further translation traffic.
        assert_eq!(env.flash().stats().translation_reads(), 1);
    }

    #[test]
    fn clean_eviction_writes_nothing() {
        let (mut ftl, mut env) = setup(4);
        // Read 5 distinct cold pages: all entries loaded clean, one evicted.
        for lpn in 0..5u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        assert_eq!(env.stats.replacements, 1);
        assert_eq!(env.stats.dirty_replacements, 0);
        assert_eq!(env.flash().stats().translation_writes(), 0);
        assert_eq!(ftl.cached_entries(), 4);
    }

    #[test]
    fn dirty_eviction_writes_back_one_entry() {
        let (mut ftl, mut env) = setup(4);
        // Write 4 pages (dirty entries), then touch 1 more to force one
        // dirty eviction.
        for lpn in 0..4u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        let tw_before = env.flash().stats().translation_writes();
        driver::serve_page_access(&mut ftl, &mut env, 100, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.replacements, 1);
        assert_eq!(env.stats.dirty_replacements, 1);
        // Exactly one translation page write for the single victim (the
        // other 3 dirty entries stay cached — DFTL's inefficiency).
        assert_eq!(env.flash().stats().translation_writes(), tw_before + 1);
        assert_eq!(ftl.cached_tp_distribution()[0].dirty, 3);
    }

    #[test]
    fn written_back_mapping_is_durable() {
        let (mut ftl, mut env) = setup(4);
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(true)).unwrap();
        // Evict LPN 0 by loading 4 colder entries.
        for lpn in 10..14u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        assert!(!ftl.map.contains_key(&0), "entry 0 must be evicted");
        // Re-translating must recover the written-back PPN and read OK.
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
    }

    #[test]
    fn segmented_lru_protects_rereferenced_entries() {
        let (mut ftl, mut env) = setup(8); // protected cap = 4
                                           // Load 4 entries and re-reference them -> protected.
        for lpn in 0..4u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        for lpn in 0..4u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        // Stream 8 one-touch entries through the cache.
        for lpn in 100..108u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        // The hot four must have survived the scan.
        for lpn in 0..4u32 {
            assert!(
                ftl.map.contains_key(&lpn),
                "protected entry {lpn} evicted by scan"
            );
        }
    }

    #[test]
    fn gc_hits_update_cache_and_misses_batch() {
        let (mut ftl, mut env) = setup(64);
        // Interleave a hot overwrite set with cold once-written pages so GC
        // victims retain valid pages to migrate.
        for i in 0..3000u32 {
            let lpn = if i % 2 == 0 {
                (i / 2) % 64
            } else {
                100 + (i / 2) % 1800
            };
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        assert!(env.stats.gc_updates > 0, "GC never migrated pages");
        // Consistency: all hot mappings resolve correctly.
        for lpn in 0..64u32 {
            let ppn = ftl
                .translate(&mut env, lpn, &AccessCtx::single(false))
                .unwrap()
                .unwrap();
            env.read_data_page(ppn, lpn).unwrap();
        }
    }

    #[test]
    fn unmapped_entries_are_cached_too() {
        let (mut ftl, mut env) = setup(4);
        driver::serve_page_access(&mut ftl, &mut env, 50, AccessCtx::single(false)).unwrap();
        assert_eq!(
            ftl.cached_entries(),
            1,
            "negative lookups occupy cache space"
        );
        driver::serve_page_access(&mut ftl, &mut env, 50, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.hits, 1);
    }

    #[test]
    fn budget_never_exceeded() {
        let (mut ftl, mut env) = setup(6);
        for lpn in 0..200u32 {
            driver::serve_page_access(
                &mut ftl,
                &mut env,
                (lpn * 37) % 2048,
                AccessCtx::single(lpn % 3 != 0),
            )
            .unwrap();
            assert!(ftl.cache_bytes_used() <= 6 * ENTRY_BYTES);
        }
    }
}
