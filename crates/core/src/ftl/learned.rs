//! LearnedFTL: a learned page-level mapping that kills the double read.
//!
//! DFTL-style demand paging pays a translation-page read on every mapping
//! cache miss — the "double read" (one flash read to learn where the data
//! is, one to fetch it). LearnedFTL observes that flash allocation is
//! log-structured: sequentially (or semi-sequentially) written LPN ranges
//! land on near-contiguous PPNs, so the LPN→PPN function is piecewise
//! near-linear and can be *learned*. This FTL keeps, per translation-page
//! region, a set of piecewise-linear segments with a fixed error bound ε,
//! greedily fitted whenever a translation page is written back. A cache
//! miss first consults the segments: a predicted PPN is validated against
//! the out-of-band reverse map of the target page (free — the subsequent
//! host data read returns the OOB tag anyway), and only a mispredict falls
//! back to the demand-paged GTD path, charging one wasted speculative read
//! when the mispredicted page was readable.
//!
//! Three invariants keep the design sound:
//!
//! * **No silent wrong PPN.** A prediction is served only if the target
//!   page is valid, is a data page, and its OOB tag equals the looked-up
//!   LPN. Because data is programmed before the superseded copy is
//!   invalidated *within* one page access, at most one valid data page per
//!   LPN exists whenever `translate` runs — a passing check identifies the
//!   current mapping, bit-exactly.
//! * **Segments are invalidated on overwrite and GC migration.** An
//!   overwritten, migrated, or mispredicted offset splits its covering
//!   segment around the stale point; the two remnants keep predicting the
//!   same real-valued line, so their exactness is untouched.
//! * **Learned state is volatile.** Segments live only in this struct:
//!   a power cycle discards them, and [`LearnedFtl::warm_up`] (also run by
//!   [`Ftl::after_bootstrap`]) rebuilds them from the persisted translation
//!   pages with zero flash traffic, via the mount-scan peek path.

use std::collections::BTreeMap;

use tpftl_flash::{Lpn, OpPurpose, PageState, Ppn, Vtpn, PPN_NONE};

use crate::env::SsdEnv;
use crate::ftl::{group_by_vtpn, AccessCtx, Ftl, TpDistEntry};
use crate::hash::FxHashMap;
use crate::lru::LruList;
use crate::{FtlError, Result, SsdConfig};

/// Default prediction error bound ε (in pages). Small enough that a
/// mispredicted speculative read stays rare on linear regions, large
/// enough that the greedy fitter absorbs the small allocation jitter of
/// semi-sequential writes into long segments.
pub const DEFAULT_EPSILON: u32 = 4;

/// Bytes per fallback-CMT entry: 4 B LPN + 4 B PPN, as DFTL.
const ENTRY_BYTES: usize = 8;

/// Modeled bytes per learned segment (start/end offsets + fixed-point
/// base and slope — the hardware encoding LearnedFTL assumes).
const SEG_BYTES: usize = 16;

/// Minimum offsets a segment must cover to be worth its footprint: below
/// this, plain CMT entries are denser than the segment describing them.
const MIN_COVERED: usize = 4;

/// Per-region segment cap; a region too fragmented to fit under it keeps
/// only its longest segments (the rest route to the fallback path).
const MAX_SEGS_PER_REGION: usize = 32;

/// One learned segment: over in-region offsets `start..=end`, predicts
/// `round(base + slope * (off - start))`.
///
/// `base` is the real-valued line height at `start` (not a rounded PPN),
/// so splitting a segment re-anchors the remnant on the *same* line and
/// every surviving prediction is bit-identical to before the split.
#[derive(Debug, Clone, Copy)]
struct Segment {
    start: u16,
    /// Inclusive.
    end: u16,
    base: f64,
    slope: f64,
}

impl Segment {
    fn covered(&self) -> usize {
        (self.end - self.start) as usize + 1
    }

    /// The predicted PPN at `off`, or `None` when the line leaves the
    /// representable PPN range (never a silent wraparound).
    fn predict(&self, off: u16) -> Option<Ppn> {
        debug_assert!(self.start <= off && off <= self.end);
        let p = (self.base + self.slope * f64::from(off - self.start)).round();
        if !(0.0..f64::from(PPN_NONE)).contains(&p) {
            return None;
        }
        Some(p as Ppn)
    }
}

/// Greedy shrinking-cone fitter (LearnedFTL §3): walk each maximal run of
/// mapped entries, intersecting the feasible-slope interval point by
/// point; when the interval empties, close the segment at the previous
/// point and restart. A closing verification pass re-checks every covered
/// offset under the *rounded* prediction (the cone guarantees only the
/// real-valued bound) and truncates at the first violation, so every
/// emitted segment satisfies |predict(off) − payload[off]| ≤ ε exactly.
fn fit_region(payload: &[Ppn], eps: u32) -> Vec<Segment> {
    let eps_f = f64::from(eps);
    let mut segs = Vec::new();
    let mut i = 0usize;
    while i < payload.len() {
        if payload[i] == PPN_NONE {
            i += 1;
            continue;
        }
        let start = i;
        let y0 = f64::from(payload[start]);
        let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
        let mut end = start;
        let mut j = start + 1;
        while j < payload.len() && payload[j] != PPN_NONE {
            let dx = (j - start) as f64;
            let y = f64::from(payload[j]);
            let nlo = lo.max((y - eps_f - y0) / dx);
            let nhi = hi.min((y + eps_f - y0) / dx);
            if nlo > nhi {
                break;
            }
            lo = nlo;
            hi = nhi;
            end = j;
            j += 1;
        }
        let slope = if end == start { 0.0 } else { (lo + hi) / 2.0 };
        let mut seg = Segment {
            start: start as u16,
            end: end as u16,
            base: y0,
            slope,
        };
        // Rounding verification: shrink to the prefix where the integer
        // prediction really is within ε of the stored mapping.
        let mut vend = start;
        for (k, &stored) in payload.iter().enumerate().take(end + 1).skip(start) {
            let ok = seg.predict(k as u16).is_some_and(|p| {
                (i64::from(p) - i64::from(stored)).unsigned_abs() <= u64::from(eps)
            });
            if !ok {
                break;
            }
            vend = k;
        }
        seg.end = vend as u16;
        segs.push(seg);
        i = vend + 1;
    }
    segs
}

#[derive(Debug, Clone, Copy)]
struct CmtEntry {
    lpn: Lpn,
    /// `PPN_NONE` caches "not mapped yet".
    ppn: Ppn,
    dirty: bool,
}

/// The learned page-level FTL.
pub struct LearnedFtl {
    epsilon: u32,
    budget_bytes: usize,
    seg_budget_bytes: usize,
    /// Learned index: per-region segments, sorted by `start`, disjoint.
    segs: FxHashMap<Vtpn, Vec<Segment>>,
    /// Total bytes charged for segments (`Σ len · SEG_BYTES`).
    seg_bytes: usize,
    /// Fallback CMT: flat LRU of individual entries, as DFTL's cache but
    /// unsegmented — the learned index already protects the sequential
    /// ranges an SLRU would.
    map: FxHashMap<Lpn, crate::lru::LruIdx>,
    cmt: LruList<CmtEntry>,
}

impl LearnedFtl {
    /// Creates a LearnedFTL with the default ε whose learned index and
    /// fallback CMT share the config's usable cache budget (segments
    /// capped at half of it).
    ///
    /// # Errors
    ///
    /// [`FtlError::CacheTooSmall`] if not even one CMT entry fits beside
    /// a full segment budget.
    pub fn new(config: &SsdConfig) -> Result<Self> {
        Self::with_epsilon(config, DEFAULT_EPSILON)
    }

    /// Creates a LearnedFTL with an explicit error bound `epsilon`.
    ///
    /// # Errors
    ///
    /// [`FtlError::CacheTooSmall`], as [`LearnedFtl::new`].
    pub fn with_epsilon(config: &SsdConfig, epsilon: u32) -> Result<Self> {
        let budget_bytes = config.usable_cache_bytes();
        if budget_bytes < 2 * ENTRY_BYTES {
            return Err(FtlError::CacheTooSmall);
        }
        Ok(Self {
            epsilon,
            budget_bytes,
            seg_budget_bytes: budget_bytes / 2,
            segs: FxHashMap::default(),
            seg_bytes: 0,
            map: FxHashMap::default(),
            cmt: LruList::new(),
        })
    }

    /// The error bound ε this instance validates predictions against.
    pub fn epsilon(&self) -> u32 {
        self.epsilon
    }

    /// Learned segments currently held, across all regions.
    pub fn segment_count(&self) -> usize {
        self.seg_bytes / SEG_BYTES
    }

    /// Rebuilds the whole learned index from the persisted translation
    /// pages — the warm-up pass run at bootstrap and after a remount
    /// (recovery discards all learned state; see `crate::recovery`).
    /// Costs no flash reads: it uses the same free payload peek the
    /// mount-time scan uses.
    pub fn warm_up(&mut self, env: &SsdEnv) {
        for vtpn in 0..env.gtd().len() as Vtpn {
            self.refit(env, vtpn);
        }
    }

    /// The predicted PPN for `off` in region `vtpn`, if a segment covers
    /// it and the line stays in range.
    fn predict_at(&self, vtpn: Vtpn, off: u16) -> Option<Ppn> {
        let segs = self.segs.get(&vtpn)?;
        let i = segs.partition_point(|s| s.start <= off).checked_sub(1)?;
        let s = &segs[i];
        if s.end < off {
            return None;
        }
        s.predict(off)
    }

    /// Re-fits region `vtpn` from its persisted translation page — called
    /// on every translation-page writeback (dirty CMT eviction, GC batch
    /// update) and from [`LearnedFtl::warm_up`]. Keeps only segments
    /// covering at least [`MIN_COVERED`] offsets, caps the region at
    /// [`MAX_SEGS_PER_REGION`], and trims (longest coverage first,
    /// deterministic tie-break on start) to the global segment budget.
    fn refit(&mut self, env: &SsdEnv, vtpn: Vtpn) {
        if let Some(old) = self.segs.remove(&vtpn) {
            self.seg_bytes -= old.len() * SEG_BYTES;
        }
        let Some(tp) = env.gtd().get(vtpn) else {
            return;
        };
        let Some(payload) = env.flash().peek_translation_payload(tp) else {
            return;
        };
        let mut fit = fit_region(payload, self.epsilon);
        fit.retain(|s| s.covered() >= MIN_COVERED);
        let room = ((self.seg_budget_bytes - self.seg_bytes) / SEG_BYTES).min(MAX_SEGS_PER_REGION);
        if fit.len() > room {
            fit.sort_by(|a, b| b.covered().cmp(&a.covered()).then(a.start.cmp(&b.start)));
            fit.truncate(room);
            fit.sort_by_key(|s| s.start);
        }
        if !fit.is_empty() {
            self.seg_bytes += fit.len() * SEG_BYTES;
            self.segs.insert(vtpn, fit);
        }
    }

    /// Invalidates the prediction point `off` of region `vtpn` after an
    /// overwrite or GC migration: the covering segment is split around
    /// `off`, remnants re-anchored on the same real-valued line (their
    /// predictions are bit-identical to before), and remnants too short
    /// to pay for themselves are dropped.
    fn split_covering(&mut self, vtpn: Vtpn, off: u16) {
        let Some(segs) = self.segs.get_mut(&vtpn) else {
            return;
        };
        let Some(i) = segs.partition_point(|s| s.start <= off).checked_sub(1) else {
            return;
        };
        let s = segs[i];
        if s.end < off {
            return;
        }
        let mut remnants: Vec<Segment> = Vec::with_capacity(2);
        if off > s.start {
            remnants.push(Segment {
                start: s.start,
                end: off - 1,
                base: s.base,
                slope: s.slope,
            });
        }
        if off < s.end {
            remnants.push(Segment {
                start: off + 1,
                end: s.end,
                base: s.base + s.slope * f64::from(off + 1 - s.start),
                slope: s.slope,
            });
        }
        remnants.retain(|r| r.covered() >= MIN_COVERED);
        if remnants.len() == 2 && self.seg_bytes + SEG_BYTES > self.seg_budget_bytes {
            // A two-way split would net one extra segment over budget;
            // keep the longer remnant (ties favour the left one).
            let keep = if remnants[1].covered() > remnants[0].covered() {
                remnants[1]
            } else {
                remnants[0]
            };
            remnants = vec![keep];
        }
        self.seg_bytes -= SEG_BYTES;
        self.seg_bytes += remnants.len() * SEG_BYTES;
        segs.splice(i..=i, remnants);
        if segs.is_empty() {
            self.segs.remove(&vtpn);
        }
    }

    /// Evicts the CMT's LRU entry, writing it back alone if dirty (and
    /// re-fitting its region from the freshly persisted page).
    fn evict_one(&mut self, env: &mut SsdEnv) -> Result<()> {
        let Some(victim) = self.cmt.pop_lru() else {
            return Err(FtlError::CacheTooSmall);
        };
        self.map.remove(&victim.lpn);
        env.note_replacement(victim.dirty);
        if victim.dirty {
            let vtpn = env.vtpn_of(victim.lpn);
            env.update_translation_page(
                vtpn,
                &[(env.offset_of(victim.lpn), victim.ppn)],
                OpPurpose::Translation,
            )?;
            self.refit(env, vtpn);
        }
        Ok(())
    }

    fn insert(&mut self, env: &mut SsdEnv, entry: CmtEntry) -> Result<()> {
        while (self.cmt.len() + 1) * ENTRY_BYTES + self.seg_bytes > self.budget_bytes {
            self.evict_one(env)?;
        }
        let idx = self.cmt.push_mru(entry);
        self.map.insert(entry.lpn, idx);
        Ok(())
    }
}

impl Ftl for LearnedFtl {
    fn name(&self) -> String {
        format!("LearnedFTL(e{})", self.epsilon)
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        if let Some(&idx) = self.map.get(&lpn) {
            env.note_lookup(true);
            self.cmt.touch(idx);
            let ppn = self.cmt.get(idx).expect("mapped handle").ppn;
            return Ok((ppn != PPN_NONE).then_some(ppn));
        }
        let vtpn = env.vtpn_of(lpn);
        let off = env.offset_of(lpn);
        if let Some(pred) = self.predict_at(vtpn, off) {
            let valid = matches!(env.flash.state(pred), Ok(PageState::Valid));
            if valid
                && env.flash.peek_translation_payload(pred).is_none()
                && env.flash.tag(pred) == Ok(lpn)
            {
                // Validated against the OOB reverse map: `pred` is the one
                // valid data page holding `lpn`, so it *is* the current
                // mapping — served with zero translation reads (the host
                // data read that follows doubles as the OOB fetch).
                env.note_lookup(true);
                env.note_predict(true);
                return Ok(Some(pred));
            }
            // Mispredict. A readable target cost one wasted speculative
            // read; an unreadable one (freed, torn, out of range) was
            // rejected by its OOB state for free.
            env.note_predict(false);
            if valid {
                env.flash.read_page(pred, OpPurpose::Translation)?;
            }
            // Excise only the lying point: on an ε-inexact fit the
            // remnants still predict their own offsets exactly.
            self.split_covering(vtpn, off);
        }
        env.note_lookup(false);
        let ppn = env.read_translation_entry(vtpn, off, OpPurpose::Translation)?;
        self.insert(
            env,
            CmtEntry {
                lpn,
                ppn,
                dirty: false,
            },
        )?;
        Ok((ppn != PPN_NONE).then_some(ppn))
    }

    fn update_mapping(&mut self, env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        self.split_covering(env.vtpn_of(lpn), env.offset_of(lpn));
        // Unlike DFTL, a translate served by the learned index leaves no
        // CMT entry behind, so the write path must insert-if-absent.
        if let Some(&idx) = self.map.get(&lpn) {
            let e = self.cmt.get_mut(idx).expect("mapped handle");
            e.ppn = new_ppn;
            e.dirty = true;
            self.cmt.touch(idx);
            return Ok(());
        }
        self.insert(
            env,
            CmtEntry {
                lpn,
                ppn: new_ppn,
                dirty: true,
            },
        )
    }

    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        let mut hits = 0u64;
        let mut misses: Vec<(Lpn, Ppn)> = Vec::new();
        for &(lpn, new_ppn) in moved {
            self.split_covering(env.vtpn_of(lpn), env.offset_of(lpn));
            if let Some(&idx) = self.map.get(&lpn) {
                let e = self.cmt.get_mut(idx).expect("mapped handle");
                e.ppn = new_ppn;
                e.dirty = true;
                hits += 1;
            } else {
                misses.push((lpn, new_ppn));
            }
        }
        for (vtpn, updates) in group_by_vtpn(env, &misses) {
            env.update_translation_page(vtpn, &updates, OpPurpose::GcTranslation)?;
            // The freshly persisted page is the fitting opportunity: GC
            // lays migrated pages out near-contiguously, exactly the
            // pattern the segments capture.
            self.refit(env, vtpn);
        }
        Ok(hits)
    }

    fn after_bootstrap(&mut self, env: &mut SsdEnv) -> Result<()> {
        self.warm_up(env);
        Ok(())
    }

    fn cache_bytes_used(&self) -> usize {
        self.cmt.len() * ENTRY_BYTES + self.seg_bytes
    }

    fn cached_entries(&self) -> usize {
        self.cmt.len()
    }

    fn peek_cached(&self, _env: &SsdEnv, lpn: Lpn) -> Result<Option<Option<Ppn>>> {
        let Some(&idx) = self.map.get(&lpn) else {
            return Ok(None);
        };
        let e = self.cmt.get(idx).expect("mapped handle");
        Ok(Some((e.ppn != PPN_NONE).then_some(e.ppn)))
    }

    fn mark_clean(&mut self, vtpn: Vtpn) {
        let idxs: Vec<_> = self
            .cmt
            .iter_lru()
            .filter(|(_, e)| e.lpn / 1024 == vtpn && e.dirty)
            .map(|(i, _)| i)
            .collect();
        for i in idxs {
            self.cmt.get_mut(i).expect("live handle").dirty = false;
        }
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        // Learned segments are clean derived state; only CMT entries count
        // as cached mapping entries (they are what a flush must persist).
        let mut by_tp: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
        for (_, e) in self.cmt.iter_lru() {
            // Entries per translation page is fixed at 1024 (4 KB / 4 B).
            let vtpn = e.lpn / 1024;
            let slot = by_tp.entry(vtpn).or_default();
            slot.0 += 1;
            if e.dirty {
                slot.1 += 1;
            }
        }
        by_tp
            .into_iter()
            .map(|(vtpn, (entries, dirty))| TpDistEntry {
                vtpn,
                entries,
                dirty,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;

    /// 8 MB logical space (2048 pages, 2 translation pages) with a cache
    /// budget of `bytes` usable bytes, prefilling `prefill` of the space.
    fn setup(bytes: usize, prefill: f64) -> (LearnedFtl, SsdEnv) {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + bytes;
        config.prefill_frac = prefill;
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = LearnedFtl::new(&config).unwrap();
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    #[test]
    fn cache_too_small_rejected() {
        let mut config = SsdConfig::paper_default(8 << 20);
        config.cache_bytes = config.gtd_bytes() + ENTRY_BYTES;
        assert!(matches!(
            LearnedFtl::new(&config),
            Err(FtlError::CacheTooSmall)
        ));
    }

    #[test]
    fn sequential_prefill_translates_with_zero_flash_reads() {
        let (mut ftl, mut env) = setup(1024, 0.5);
        assert!(ftl.segment_count() > 0, "warm-up fitted no segments");
        for lpn in [0u32, 5, 511, 1000] {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        assert_eq!(env.stats.predict_hits, 4);
        assert_eq!(env.stats.mispredicts, 0);
        assert_eq!(env.stats.hits, 4, "predict hits count as cache hits");
        // The entire point: not a single translation-page read.
        assert_eq!(env.flash().stats().translation_reads(), 0);
    }

    #[test]
    fn overwrite_splits_segment_and_routes_to_fallback() {
        let (mut ftl, mut env) = setup(64, 0.5);
        let segs_before = ftl.segment_count();
        driver::serve_page_access(&mut ftl, &mut env, 10, AccessCtx::single(true)).unwrap();
        assert!(
            ftl.segment_count() > segs_before,
            "overwrite must split the covering segment"
        );
        // Neighbours still predict exactly off the remnants.
        env.reset_stats();
        driver::serve_page_access(&mut ftl, &mut env, 9, AccessCtx::single(false)).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 11, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.predict_hits, 2);
        // Evict the dirty entry for LPN 10, then re-read it: offset 10 is
        // uncovered now, so the read must take the GTD fallback path and
        // still resolve correctly (read_data_page panics otherwise).
        for lpn in 600..610u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        assert!(!ftl.map.contains_key(&10), "entry 10 must be evicted");
        env.reset_stats();
        driver::serve_page_access(&mut ftl, &mut env, 10, AccessCtx::single(false)).unwrap();
        assert_eq!(env.stats.predict_hits, 0);
        assert_eq!(env.stats.mispredicts, 0, "split must not leave a liar");
        // At least the fallback's translation read (a dirty eviction the
        // insert forces may add an RMW read on top).
        assert!(env.flash().stats().translation_reads() >= 1);
    }

    #[test]
    fn inexact_fit_mispredicts_are_validated_and_fall_back() {
        // Manufacture a region whose mapping is linear with slope 1.5:
        // within ε of a line everywhere, but the rounded prediction is
        // wrong at every other point — the mispredict arm, exercised
        // deterministically.
        let config = SsdConfig::paper_default(8 << 20);
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = LearnedFtl::new(&config).unwrap();
        let mut payload = vec![PPN_NONE; env.entries_per_tp()];
        for off in 0..64u32 {
            // Stride the allocator: burn a page between mappings so PPNs
            // advance by 2, except at two bump offsets where the burn is
            // skipped — the mapping is within ε of a single line of slope
            // just under 2, but no rounded prediction can be right both
            // before and after the bumps.
            if off > 0 && off != 29 && off != 51 {
                env.program_data_page(2000, OpPurpose::HostData).unwrap();
            }
            let ppn = env.program_data_page(off, OpPurpose::HostData).unwrap();
            payload[off as usize] = ppn;
        }
        env.write_translation_page_full(0, &payload, OpPurpose::Translation)
            .unwrap();
        env.format().unwrap();
        ftl.after_bootstrap(&mut env).unwrap();
        env.reset_stats();
        assert!(ftl.segment_count() > 0, "the 1.5-line must fit within ε");
        for off in 0..64u32 {
            driver::serve_page_access(&mut ftl, &mut env, off, AccessCtx::single(false)).unwrap();
        }
        assert!(env.stats.predict_hits > 0, "some points round exactly");
        assert!(env.stats.mispredicts > 0, "some points round wrong");
        // Every mispredict was caught by OOB validation and resolved via
        // the fallback (read_data_page above would have panicked on any
        // silent wrong PPN). Accounting: every non-predicted access costs
        // one translation read, and every mispredict additionally charged
        // one wasted speculative read.
        assert_eq!(
            env.flash().stats().translation_reads(),
            64 - env.stats.predict_hits + env.stats.mispredicts
        );
    }

    #[test]
    fn budget_never_exceeded() {
        let (mut ftl, mut env) = setup(128, 0.5);
        for i in 0..400u32 {
            driver::serve_page_access(
                &mut ftl,
                &mut env,
                (i * 37) % 2048,
                AccessCtx::single(i % 3 != 0),
            )
            .unwrap();
            assert!(ftl.cache_bytes_used() <= 128);
            assert!(ftl.seg_bytes <= ftl.seg_budget_bytes);
        }
    }

    #[test]
    fn gc_churn_keeps_mappings_consistent() {
        let (mut ftl, mut env) = setup(512, 0.0);
        for i in 0..3000u32 {
            let lpn = if i % 2 == 0 {
                (i / 2) % 64
            } else {
                100 + (i / 2) % 1800
            };
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        assert!(env.stats.gc_updates > 0, "GC never migrated pages");
        for lpn in 0..64u32 {
            let ppn = ftl
                .translate(&mut env, lpn, &AccessCtx::single(false))
                .unwrap()
                .unwrap();
            env.read_data_page(ppn, lpn).unwrap();
        }
    }

    #[test]
    fn learned_state_is_volatile_and_warm_up_rebuilds_it() {
        let (ftl, env) = setup(1024, 0.5);
        assert!(ftl.segment_count() > 0);
        // A power cycle constructs a fresh FTL: no learned state survives.
        let config = env.config().clone();
        let flash = env.into_flash();
        let env2 = crate::recovery::mount(flash, config.clone()).unwrap();
        let mut fresh = LearnedFtl::new(&config).unwrap();
        assert_eq!(fresh.segment_count(), 0);
        assert_eq!(fresh.cached_entries(), 0);
        fresh.warm_up(&env2);
        assert_eq!(
            fresh.segment_count(),
            {
                let mut reference = LearnedFtl::new(&config).unwrap();
                reference.warm_up(&env2);
                reference.segment_count()
            },
            "warm-up must be deterministic"
        );
        assert!(fresh.segment_count() > 0, "warm-up rebuilds the index");
        // And the rebuild cost no flash traffic at all.
        assert_eq!(env2.flash().stats().total_reads(), 0);
    }

    /// Satellite property test: the fitter versus a brute-force oracle,
    /// over 500 seeded random mapping tables mixing sequential runs,
    /// semi-sequential (jittered) runs, holes, and pure noise.
    ///
    /// Pinned properties:
    /// 1. segments are sorted, disjoint, in-bounds, and never cover a
    ///    hole;
    /// 2. every prediction over a covered offset is within ε of the
    ///    stored mapping (brute-force check of every single offset);
    /// 3. under the OOB validation model, every offset is either
    ///    predicted *exactly* or routed to fallback — a wrong PPN is
    ///    never silently returned;
    /// 4. across the corpus both arms actually occur (exact hits and
    ///    within-ε mispredicts), so the dichotomy is not vacuous.
    #[test]
    fn fitter_property_vs_brute_force_oracle_500_tables() {
        let mut rng = tpftl_rng::Rng64::seed_from_u64(0x5EED_1EA2);
        let n = 1024usize;
        let (mut exact_total, mut mispredict_total, mut covered_total) = (0u64, 0u64, 0u64);
        for table_i in 0..500 {
            let mut table = vec![PPN_NONE; n];
            let mut off = 0usize;
            while off < n {
                let len = (rng.below(64) + 1) as usize;
                let end = (off + len).min(n);
                match rng.below(4) {
                    0 => {} // hole
                    1 => {
                        // Strictly sequential run.
                        let base = rng.below(1 << 20) as Ppn;
                        for (k, slot) in table[off..end].iter_mut().enumerate() {
                            *slot = base + k as Ppn;
                        }
                    }
                    2 => {
                        // Semi-sequential: jittered increments of 1..=3.
                        let mut v = rng.below(1 << 20) as Ppn;
                        for slot in table[off..end].iter_mut() {
                            *slot = v;
                            v += 1 + rng.below(3) as Ppn;
                        }
                    }
                    _ => {
                        // Pure noise.
                        for slot in table[off..end].iter_mut() {
                            *slot = rng.below(1 << 22) as Ppn;
                        }
                    }
                }
                off = end;
            }
            let segs = fit_region(&table, DEFAULT_EPSILON);
            let mut prev_end: i64 = -1;
            for s in &segs {
                assert!(
                    i64::from(s.start) > prev_end,
                    "table {table_i}: overlapping/unsorted segments"
                );
                assert!(s.start <= s.end && (s.end as usize) < n);
                prev_end = i64::from(s.end);
            }
            // Brute force over *every* offset of the table.
            for o in 0..n as u16 {
                let covering = segs.iter().find(|s| s.start <= o && o <= s.end);
                let actual = table[o as usize];
                match covering {
                    None => {} // fallback path, trivially safe
                    Some(s) => {
                        assert_ne!(actual, PPN_NONE, "table {table_i}: segment covers hole");
                        covered_total += 1;
                        let p = s
                            .predict(o)
                            .unwrap_or_else(|| panic!("table {table_i}: prediction out of range"));
                        assert!(
                            (i64::from(p) - i64::from(actual)).unsigned_abs()
                                <= u64::from(DEFAULT_EPSILON),
                            "table {table_i} off {o}: predicted {p}, actual {actual}"
                        );
                        // OOB validation model: the reverse map accepts the
                        // prediction iff it is exactly the live mapping.
                        if p == actual {
                            exact_total += 1;
                        } else {
                            mispredict_total += 1; // routed to fallback
                        }
                    }
                }
            }
        }
        assert_eq!(exact_total + mispredict_total, covered_total);
        assert!(exact_total > 0, "corpus produced no exact predictions");
        assert!(
            mispredict_total > 0,
            "corpus produced no within-ε mispredicts; the validation arm is untested"
        );
    }

    #[test]
    fn fitter_handles_degenerate_tables() {
        assert!(fit_region(&[], DEFAULT_EPSILON).is_empty());
        assert!(fit_region(&[PPN_NONE; 16], DEFAULT_EPSILON).is_empty());
        // A single mapped point fits one singleton segment.
        let mut one = vec![PPN_NONE; 8];
        one[3] = 42;
        let segs = fit_region(&one, DEFAULT_EPSILON);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].start, segs[0].end), (3, 3));
        assert_eq!(segs[0].predict(3), Some(42));
    }

    #[test]
    fn dirty_eviction_persists_and_refits() {
        let (mut ftl, mut env) = setup(64, 0.5);
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(true)).unwrap();
        // Push the dirty entry out with colder traffic.
        for lpn in 1200..1210u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
        assert!(env.stats.dirty_replacements >= 1);
        // The persisted table now holds the new mapping; a cold re-read
        // resolves it (via segment or fallback, either way correctly).
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(false)).unwrap();
    }
}
