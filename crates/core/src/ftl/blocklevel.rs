//! A coarse block-level FTL (Section 2.1 of the paper).
//!
//! Block-level mapping keeps one RAM entry per 256 KB logical block; a page
//! can only live at the fixed offset `lpn % pages_per_block` inside its
//! mapped physical block. Overwriting an already-programmed offset forces a
//! *merge*: copy every valid page of the block (with the new data) into a
//! fresh block and erase the old one — the "very poor performance as a
//! result of maintaining such a rigid mapping regularity" the paper
//! describes. The paper does not evaluate this FTL; it uses its mapping
//! table size (4 B per block) to dimension the mapping cache, which
//! [`crate::SsdConfig::block_table_bytes`] reproduces. We implement it as a
//! working extension and comparison point.

use tpftl_flash::{BlockId, Lpn, OpPurpose, PageState, Ppn};

use crate::env::SsdEnv;
use crate::ftl::{AccessCtx, Ftl, TpDistEntry};
use crate::{Result, SsdConfig};

/// The block-level FTL.
pub struct BlockLevelFtl {
    /// `lbn -> physical block`.
    map: Vec<Option<BlockId>>,
    pages_per_block: usize,
    /// Merges performed (the block-level FTL's "GC" metric).
    merges: u64,
}

impl BlockLevelFtl {
    /// Creates the FTL for `config`'s logical size.
    ///
    /// Pre-fill is not supported: the sequential pre-fill allocator packs
    /// pages without respecting block-fixed offsets.
    pub fn new(config: &SsdConfig) -> Self {
        let geom = config.geometry();
        let logical_blocks = (config.logical_bytes / geom.block_bytes() as u64) as usize;
        assert!(
            config.prefill_frac == 0.0,
            "the block-level FTL does not support pre-fill"
        );
        Self {
            map: vec![None; logical_blocks],
            pages_per_block: geom.pages_per_block,
            merges: 0,
        }
    }

    /// Number of full-block merges performed.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    fn split(&self, lpn: Lpn) -> (usize, usize) {
        (
            (lpn as usize) / self.pages_per_block,
            (lpn as usize) % self.pages_per_block,
        )
    }

    fn ppn_at(&self, env: &SsdEnv, pbn: BlockId, off: usize) -> Ppn {
        env.flash().geometry().first_ppn(pbn) + off as u32
    }

    /// Merge: rewrite the block with `lpn`'s new data at its fixed offset,
    /// carrying over every other valid page, then erase and free the old
    /// block.
    fn merge_write(&mut self, env: &mut SsdEnv, lpn: Lpn, old_pbn: BlockId) -> Result<()> {
        self.merges += 1;
        let (lbn, off) = self.split(lpn);
        let new_pbn = env.blocks.take_raw_block()?;
        for i in 0..self.pages_per_block {
            let src = self.ppn_at(env, old_pbn, i);
            let dst = self.ppn_at(env, new_pbn, i);
            if i == off {
                env.flash.program_page_at(dst, lpn, OpPurpose::HostData)?;
                if env.flash.state(src)? == PageState::Valid {
                    env.flash.invalidate(src)?;
                }
            } else if env.flash.state(src)? == PageState::Valid {
                let copied_lpn = (lbn * self.pages_per_block + i) as Lpn;
                env.flash.read_page(src, OpPurpose::GcData)?;
                env.flash
                    .program_page_at(dst, copied_lpn, OpPurpose::GcData)?;
                env.flash.invalidate(src)?;
            }
        }
        env.flash.erase_block(old_pbn, OpPurpose::GcData)?;
        env.blocks.release_raw_block(old_pbn);
        self.map[lbn] = Some(new_pbn);
        Ok(())
    }
}

impl Ftl for BlockLevelFtl {
    fn name(&self) -> String {
        "BlockLevel".to_string()
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        env.note_lookup(true); // The whole table is in RAM.
        let (lbn, off) = self.split(lpn);
        let Some(pbn) = self.map[lbn] else {
            return Ok(None);
        };
        let ppn = self.ppn_at(env, pbn, off);
        Ok((env.flash().state(ppn)? == PageState::Valid).then_some(ppn))
    }

    fn write_page(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<()> {
        env.note_lookup(true);
        env.stats.user_page_writes += 1;
        let (lbn, off) = self.split(lpn);
        match self.map[lbn] {
            None => {
                let pbn = env.blocks.take_raw_block()?;
                let dst = self.ppn_at(env, pbn, off);
                env.flash.program_page_at(dst, lpn, OpPurpose::HostData)?;
                self.map[lbn] = Some(pbn);
                Ok(())
            }
            Some(pbn) => {
                let dst = self.ppn_at(env, pbn, off);
                // Program in place if the offset is still reachable by the
                // block's write pointer; otherwise merge.
                let reachable = env.flash.next_free_ppn(pbn).is_some_and(|next| dst >= next);
                if reachable && env.flash.state(dst)? == PageState::Free {
                    env.flash.program_page_at(dst, lpn, OpPurpose::HostData)?;
                    Ok(())
                } else {
                    self.merge_write(env, lpn, pbn)
                }
            }
        }
    }

    fn update_mapping(&mut self, _env: &mut SsdEnv, _lpn: Lpn, _new_ppn: Ppn) -> Result<()> {
        unreachable!("block-level FTL handles writes in write_page")
    }

    fn on_gc_data_block(&mut self, _env: &mut SsdEnv, _moved: &[(Lpn, Ppn)]) -> Result<u64> {
        unreachable!("block-level FTL reclaims space via merges, not page-level GC")
    }

    fn uses_translation_pages(&self) -> bool {
        false
    }

    fn uses_page_level_gc(&self) -> bool {
        false
    }

    fn cache_bytes_used(&self) -> usize {
        self.map.len() * 4
    }

    fn cached_entries(&self) -> usize {
        self.map.iter().filter(|m| m.is_some()).count()
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        Vec::new() // No translation pages exist.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;
    use crate::SsdConfig;

    fn setup() -> (BlockLevelFtl, SsdEnv) {
        let config = SsdConfig::paper_default(8 << 20);
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = BlockLevelFtl::new(&config);
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    #[test]
    fn table_size_matches_paper_rule() {
        let config = SsdConfig::paper_default(512 << 20);
        let ftl = BlockLevelFtl::new(&config);
        assert_eq!(ftl.cache_bytes_used(), config.block_table_bytes());
        assert_eq!(ftl.cache_bytes_used(), 8 * 1024);
    }

    #[test]
    fn sequential_writes_fill_block_in_place() {
        let (mut ftl, mut env) = setup();
        for lpn in 0..64u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        assert_eq!(ftl.merges(), 0, "in-order fill needs no merge");
        assert_eq!(env.flash().stats().total_writes(), 64);
        for lpn in 0..64u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
    }

    #[test]
    fn overwrite_forces_merge() {
        let (mut ftl, mut env) = setup();
        for lpn in 0..64u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        let writes = env.flash().stats().total_writes();
        // Overwrite one page: merge copies the 63 others + the new page.
        driver::serve_page_access(&mut ftl, &mut env, 0, AccessCtx::single(true)).unwrap();
        assert_eq!(ftl.merges(), 1);
        assert_eq!(env.flash().stats().total_writes(), writes + 64);
        assert_eq!(env.flash().stats().total_erases(), 1);
        // All data still readable.
        for lpn in 0..64u32 {
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
    }

    #[test]
    fn backward_write_within_block_merges() {
        let (mut ftl, mut env) = setup();
        driver::serve_page_access(&mut ftl, &mut env, 10, AccessCtx::single(true)).unwrap();
        // Offset 5 is behind the write pointer: merge.
        driver::serve_page_access(&mut ftl, &mut env, 5, AccessCtx::single(true)).unwrap();
        assert_eq!(ftl.merges(), 1);
        driver::serve_page_access(&mut ftl, &mut env, 10, AccessCtx::single(false)).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 5, AccessCtx::single(false)).unwrap();
    }

    #[test]
    fn forward_skip_within_block_avoids_merge() {
        let (mut ftl, mut env) = setup();
        driver::serve_page_access(&mut ftl, &mut env, 5, AccessCtx::single(true)).unwrap();
        driver::serve_page_access(&mut ftl, &mut env, 20, AccessCtx::single(true)).unwrap();
        assert_eq!(ftl.merges(), 0);
        // The skipped pages read as unmapped.
        let r = ftl
            .translate(&mut env, 7, &AccessCtx::single(false))
            .unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn random_overwrites_are_costly() {
        let (mut ftl, mut env) = setup();
        // The paper's point: random writes at block granularity amplify
        // writes massively.
        for i in 0..200u32 {
            let lpn = (i * 37) % 256;
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true)).unwrap();
        }
        let wa = env
            .flash()
            .stats()
            .write_amplification(env.stats.user_page_writes)
            .unwrap();
        assert!(wa > 5.0, "block-level WA should be large, got {wa}");
        // Still consistent.
        for i in 0..200u32 {
            let lpn = (i * 37) % 256;
            driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(false)).unwrap();
        }
    }
}
