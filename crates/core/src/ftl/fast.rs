//! A log-buffer hybrid FTL in the style of FAST (Lee et al., "A log
//! buffer-based flash translation layer using fully-associative sector
//! translation", ACM TECS 2007) — the hybrid class the paper's Section 2.1
//! positions page-level FTLs against.
//!
//! Data blocks are block-mapped (one RAM entry per 256 KB block, fixed
//! in-block offsets); a small set of *log blocks* absorbs the writes that
//! cannot go in place:
//!
//! * one **sequential (SW) log block** captures streams that start at
//!   block offset 0 and grow in order; when it completes it replaces the
//!   data block outright (*switch merge*), or is completed from the old
//!   data block's remaining pages (*partial merge*);
//! * **random (RW) log blocks** are fully associative: any page of any
//!   block may be appended, tracked by a page-level log mapping. When the
//!   log pool overflows, the oldest log block is reclaimed by *full
//!   merges* of every data block it holds pages for — the costly operation
//!   that makes hybrids "suffer from performance degradation in random
//!   write intensive workloads" (Section 2.1), which this implementation
//!   reproduces and the test suite demonstrates.
//!
//! RAM cost: 4 B per logical block plus 8 B per live log page — far below
//! a page-level table, which is the hybrid's selling point the paper
//! acknowledges before rejecting hybrids on performance grounds.

use std::collections::{BTreeSet, HashMap, VecDeque};

use tpftl_flash::{BlockId, Lpn, OpPurpose, PageState, Ppn};

use crate::env::SsdEnv;
use crate::ftl::{AccessCtx, Ftl, TpDistEntry};
use crate::{Result, SsdConfig};

/// State of the sequential log block.
#[derive(Debug, Clone, Copy)]
struct SwLog {
    /// The logical block it shadows.
    lbn: u32,
    /// Its physical block.
    pbn: BlockId,
    /// Next in-order offset expected.
    next_off: usize,
}

/// Merge counters, exposed for tests and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// SW log completed exactly and replaced the data block.
    pub switch_merges: u64,
    /// SW log completed by copying the data block's remaining pages.
    pub partial_merges: u64,
    /// Full merges of one data block (log + data consolidated).
    pub full_merges: u64,
}

/// The FAST-style hybrid FTL.
pub struct FastFtl {
    /// `lbn -> data block`.
    block_map: Vec<Option<BlockId>>,
    /// Latest out-of-place version of each page (in SW or RW logs).
    log_map: HashMap<Lpn, Ppn>,
    sw_log: Option<SwLog>,
    /// RW log blocks, oldest first; the back one absorbs appends.
    rw_logs: VecDeque<BlockId>,
    max_rw_logs: usize,
    pages_per_block: usize,
    merges: MergeStats,
}

impl FastFtl {
    /// Creates a FAST FTL with `max_rw_logs` random log blocks (the paper
    /// era's typical configuration is a handful; default via
    /// [`FastFtl::with_defaults`] is 8).
    pub fn new(config: &SsdConfig, max_rw_logs: usize) -> Self {
        assert!(max_rw_logs >= 1, "at least one RW log block");
        assert!(
            config.prefill_frac == 0.0,
            "the FAST FTL does not support pre-fill"
        );
        let geom = config.geometry();
        let logical_blocks = (config.logical_bytes / geom.block_bytes() as u64) as usize;
        Self {
            block_map: vec![None; logical_blocks],
            log_map: HashMap::new(),
            sw_log: None,
            rw_logs: VecDeque::new(),
            max_rw_logs,
            pages_per_block: geom.pages_per_block,
            merges: MergeStats::default(),
        }
    }

    /// FAST with 8 RW log blocks.
    pub fn with_defaults(config: &SsdConfig) -> Self {
        Self::new(config, 8)
    }

    /// Merge counters.
    pub fn merge_stats(&self) -> MergeStats {
        self.merges
    }

    fn split(&self, lpn: Lpn) -> (usize, usize) {
        (
            (lpn as usize) / self.pages_per_block,
            (lpn as usize) % self.pages_per_block,
        )
    }

    fn ppn_at(env: &SsdEnv, pbn: BlockId, off: usize) -> Ppn {
        env.flash().geometry().first_ppn(pbn) + off as u32
    }

    /// Latest valid location of `lpn`, if any.
    fn locate(&self, env: &SsdEnv, lpn: Lpn) -> Result<Option<Ppn>> {
        if let Some(&ppn) = self.log_map.get(&lpn) {
            return Ok(Some(ppn));
        }
        let (lbn, off) = self.split(lpn);
        if let Some(pbn) = self.block_map[lbn] {
            let ppn = Self::ppn_at(env, pbn, off);
            if env.flash().state(ppn)? == PageState::Valid {
                return Ok(Some(ppn));
            }
        }
        Ok(None)
    }

    fn invalidate_old(&mut self, env: &mut SsdEnv, lpn: Lpn) -> Result<()> {
        if let Some(ppn) = self.locate(env, lpn)? {
            env.invalidate_page(ppn)?;
            self.log_map.remove(&lpn);
        }
        Ok(())
    }

    /// Rebuilds data block `lbn` from the freshest version of every page
    /// (a *full merge* when log pages are involved; also the tail of a
    /// partial merge). Frees every source block that ends up empty.
    fn merge_block(&mut self, env: &mut SsdEnv, lbn: usize) -> Result<()> {
        debug_assert!(
            self.sw_log.is_none_or(|sw| sw.lbn as usize != lbn),
            "cannot merge under an active SW log"
        );
        self.merges.full_merges += 1;
        let new_pbn = env.blocks.take_raw_block()?;
        for off in 0..self.pages_per_block {
            let lpn = (lbn * self.pages_per_block + off) as Lpn;
            if let Some(src) = self.locate(env, lpn)? {
                env.flash.read_page(src, OpPurpose::GcData)?;
                let dst = Self::ppn_at(env, new_pbn, off);
                env.flash.program_page_at(dst, lpn, OpPurpose::GcData)?;
                env.invalidate_page(src)?;
                self.log_map.remove(&lpn);
            }
        }
        if let Some(old) = self.block_map[lbn] {
            env.flash.erase_block(old, OpPurpose::GcData)?;
            env.blocks.release_raw_block(old);
        }
        self.block_map[lbn] = Some(new_pbn);
        Ok(())
    }

    /// Reclaims the oldest RW log block by fully merging every data block
    /// it still holds valid pages for.
    fn reclaim_oldest_rw_log(&mut self, env: &mut SsdEnv) -> Result<()> {
        let victim = self.rw_logs.pop_front().expect("caller checked");
        // Deterministic order over the associated logical blocks.
        let lbns: BTreeSet<usize> = env
            .flash
            .valid_pages(victim)
            .map(|(_, lpn)| (lpn as usize) / self.pages_per_block)
            .collect();
        // If the active SW log shadows one of these blocks, close it first:
        // merging underneath it would let the later switch replace the
        // merged block with a partially-invalidated log block.
        if let Some(sw) = self.sw_log {
            if lbns.contains(&(sw.lbn as usize)) {
                self.close_sw_log(env)?;
            }
        }
        for lbn in lbns {
            self.merge_block(env, lbn)?;
        }
        debug_assert_eq!(env.flash().valid_pages_in(victim)?, 0);
        env.flash.erase_block(victim, OpPurpose::GcData)?;
        env.blocks.release_raw_block(victim);
        Ok(())
    }

    /// Appends `lpn` to the RW log, rotating/reclaiming log blocks.
    fn rw_log_append(&mut self, env: &mut SsdEnv, lpn: Lpn) -> Result<()> {
        let target = match self.rw_logs.back() {
            Some(&b) if env.flash().next_free_ppn(b).is_some() => b,
            _ => {
                if self.rw_logs.len() >= self.max_rw_logs {
                    self.reclaim_oldest_rw_log(env)?;
                }
                let b = env.blocks.take_raw_block()?;
                self.rw_logs.push_back(b);
                b
            }
        };
        let ppn = env.flash().next_free_ppn(target).expect("target has room");
        self.invalidate_old(env, lpn)?;
        env.flash.program_page(ppn, lpn, OpPurpose::HostData)?;
        self.log_map.insert(lpn, ppn);
        Ok(())
    }

    /// Finishes the current SW log: a *switch merge* if it is complete, a
    /// *partial merge* (copy the old block's remaining valid pages, then
    /// switch) otherwise.
    fn close_sw_log(&mut self, env: &mut SsdEnv) -> Result<()> {
        let Some(sw) = self.sw_log.take() else {
            return Ok(());
        };
        let lbn = sw.lbn as usize;
        if sw.next_off == self.pages_per_block {
            self.merges.switch_merges += 1;
        } else {
            self.merges.partial_merges += 1;
            for off in sw.next_off..self.pages_per_block {
                let lpn = (lbn * self.pages_per_block + off) as Lpn;
                if let Some(src) = self.locate(env, lpn)? {
                    env.flash.read_page(src, OpPurpose::GcData)?;
                    let dst = Self::ppn_at(env, sw.pbn, off);
                    env.flash.program_page_at(dst, lpn, OpPurpose::GcData)?;
                    env.invalidate_page(src)?;
                    self.log_map.remove(&lpn);
                }
            }
        }
        // Switch: the SW log becomes the data block. Every page of the old
        // block was superseded by an SW write or copied by the partial
        // merge above; the erase below fails loudly if that invariant is
        // ever broken.
        if let Some(old) = self.block_map[lbn] {
            env.flash.erase_block(old, OpPurpose::GcData)?;
            env.blocks.release_raw_block(old);
        }
        self.block_map[lbn] = Some(sw.pbn);
        // SW-resident pages are now data-block pages; newer versions that
        // escaped into the RW log keep their log mapping.
        let first = (lbn * self.pages_per_block) as Lpn;
        for off in 0..self.pages_per_block as u32 {
            let lpn = first + off;
            if let Some(&p) = self.log_map.get(&lpn) {
                if env.flash().geometry().block_of(p) == sw.pbn {
                    self.log_map.remove(&lpn);
                }
            }
        }
        Ok(())
    }

    fn sw_log_write(&mut self, env: &mut SsdEnv, lpn: Lpn) -> Result<()> {
        let (lbn, off) = self.split(lpn);
        let sw = self.sw_log.as_mut().expect("caller ensured");
        debug_assert!(sw.lbn as usize == lbn && sw.next_off == off);
        let dst = Self::ppn_at(env, sw.pbn, off);
        self.invalidate_old(env, lpn)?;
        env.flash.program_page_at(dst, lpn, OpPurpose::HostData)?;
        self.log_map.insert(lpn, dst);
        let sw = self.sw_log.as_mut().expect("still present");
        sw.next_off += 1;
        if sw.next_off == self.pages_per_block {
            self.close_sw_log(env)?;
        }
        Ok(())
    }
}

impl Ftl for FastFtl {
    fn name(&self) -> String {
        format!("FAST({})", self.max_rw_logs)
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<Option<Ppn>> {
        env.note_lookup(true); // All mapping state is RAM-resident.
        self.locate(env, lpn)
    }

    fn write_page(&mut self, env: &mut SsdEnv, lpn: Lpn, _ctx: &AccessCtx) -> Result<()> {
        env.note_lookup(true);
        env.stats.user_page_writes += 1;
        let (lbn, off) = self.split(lpn);

        // While an SW log shadows this block, no in-place writes may touch
        // the data block (the switch would lose them): continue the stream
        // or divert to the RW log.
        if let Some(sw) = self.sw_log {
            if sw.lbn as usize == lbn {
                if sw.next_off == off {
                    return self.sw_log_write(env, lpn);
                }
                return self.rw_log_append(env, lpn);
            }
        }

        // In-place write into the data block when physically possible.
        if let Some(pbn) = self.block_map[lbn] {
            let dst = Self::ppn_at(env, pbn, off);
            let reachable = env
                .flash()
                .next_free_ppn(pbn)
                .is_some_and(|next| dst >= next);
            if reachable && env.flash().state(dst)? == PageState::Free {
                self.invalidate_old(env, lpn)?;
                env.flash.program_page_at(dst, lpn, OpPurpose::HostData)?;
                return Ok(());
            }
        }

        // Sequential log: streams starting at offset 0 and continuing in
        // order.
        match self.sw_log {
            Some(sw) if sw.lbn as usize == lbn && sw.next_off == off => {
                return self.sw_log_write(env, lpn);
            }
            _ if off == 0 => {
                self.close_sw_log(env)?;
                let pbn = env.blocks.take_raw_block()?;
                self.sw_log = Some(SwLog {
                    lbn: lbn as u32,
                    pbn,
                    next_off: 0,
                });
                return self.sw_log_write(env, lpn);
            }
            _ => {}
        }

        // Everything else goes to the fully-associative random log.
        self.rw_log_append(env, lpn)
    }

    fn update_mapping(&mut self, _env: &mut SsdEnv, _lpn: Lpn, _new_ppn: Ppn) -> Result<()> {
        unreachable!("FAST handles writes in write_page")
    }

    fn on_gc_data_block(&mut self, _env: &mut SsdEnv, _moved: &[(Lpn, Ppn)]) -> Result<u64> {
        unreachable!("FAST reclaims space via merges, not page-level GC")
    }

    fn uses_translation_pages(&self) -> bool {
        false
    }

    fn uses_page_level_gc(&self) -> bool {
        false
    }

    fn cache_bytes_used(&self) -> usize {
        // 4 B per logical block + 8 B per live log-mapped page.
        self.block_map.len() * 4 + self.log_map.len() * 8
    }

    fn cached_entries(&self) -> usize {
        self.block_map.iter().filter(|m| m.is_some()).count() + self.log_map.len()
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        Vec::new() // No translation pages exist.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;

    fn setup() -> (FastFtl, SsdEnv) {
        let config = SsdConfig::paper_default(8 << 20);
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = FastFtl::new(&config, 2);
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    fn write(ftl: &mut FastFtl, env: &mut SsdEnv, lpn: Lpn) {
        driver::serve_page_access(ftl, env, lpn, AccessCtx::single(true)).unwrap();
    }

    fn read(ftl: &mut FastFtl, env: &mut SsdEnv, lpn: Lpn) {
        driver::serve_page_access(ftl, env, lpn, AccessCtx::single(false)).unwrap();
    }

    #[test]
    fn sequential_fill_switch_merges() {
        let (mut ftl, mut env) = setup();
        // Fill block 0 twice sequentially: both passes stream through the
        // SW log; the second one also erases the superseded data block.
        for lpn in 0..64u32 {
            write(&mut ftl, &mut env, lpn);
        }
        assert_eq!(
            ftl.merge_stats(),
            MergeStats {
                switch_merges: 1,
                ..MergeStats::default()
            },
            "first fill switches with no old block"
        );
        assert_eq!(env.flash().stats().total_erases(), 0);
        for lpn in 0..64u32 {
            write(&mut ftl, &mut env, lpn);
        }
        let m = ftl.merge_stats();
        assert_eq!(m.switch_merges, 2);
        assert_eq!(m.full_merges, 0);
        // One erase (the old data block), no page copies beyond user writes.
        assert_eq!(env.flash().stats().total_erases(), 1);
        for lpn in 0..64u32 {
            read(&mut ftl, &mut env, lpn);
        }
    }

    #[test]
    fn interrupted_stream_partial_merges() {
        let (mut ftl, mut env) = setup();
        for lpn in 0..64u32 {
            write(&mut ftl, &mut env, lpn);
        }
        // Rewrite only the first half, then start a stream on another
        // block; closing the SW log forces a partial merge.
        for lpn in 0..32u32 {
            write(&mut ftl, &mut env, lpn);
        }
        write(&mut ftl, &mut env, 64); // offset 0 of block 1
        let m = ftl.merge_stats();
        assert_eq!(m.partial_merges, 1);
        // Data intact: both halves readable.
        for lpn in 0..64u32 {
            read(&mut ftl, &mut env, lpn);
        }
    }

    #[test]
    fn random_writes_go_to_log_then_full_merge() {
        let (mut ftl, mut env) = setup();
        for lpn in 0..128u32 {
            write(&mut ftl, &mut env, lpn); // two data blocks in place
        }
        // Random single-page overwrites land in the RW log without merging.
        let writes_before = env.flash().stats().total_writes();
        write(&mut ftl, &mut env, 5);
        write(&mut ftl, &mut env, 70);
        write(&mut ftl, &mut env, 9);
        assert_eq!(
            env.flash().stats().total_writes(),
            writes_before + 3,
            "no merge yet"
        );
        assert_eq!(ftl.merge_stats().full_merges, 0);
        assert_eq!(ftl.log_map.len(), 3);
        // Overflow the 2-block log pool (2 * 64 appends) -> full merges.
        for i in 0..300u32 {
            write(&mut ftl, &mut env, (i * 37) % 128);
        }
        assert!(ftl.merge_stats().full_merges > 0);
        // Everything still reads back correctly.
        for lpn in 0..128u32 {
            read(&mut ftl, &mut env, lpn);
        }
    }

    #[test]
    fn hybrid_ram_footprint_is_small() {
        let config = SsdConfig::paper_default(512 << 20);
        let ftl = FastFtl::with_defaults(&config);
        // Block table: 2048 blocks * 4 B = 8 KB, log map empty.
        assert_eq!(ftl.cache_bytes_used(), 8 * 1024);
    }

    /// The paper's Section 2.1 claim: hybrids degrade under random writes
    /// compared to a page-level FTL, due to costly full merges.
    #[test]
    fn random_write_wa_worse_than_page_level() {
        let config = SsdConfig::paper_default(8 << 20);
        let run_fast = {
            let mut env = SsdEnv::new(config.clone()).unwrap();
            let mut ftl = FastFtl::new(&config, 2);
            driver::bootstrap(&mut ftl, &mut env).unwrap();
            for i in 0..4_000u32 {
                let lpn = (i * librarian(i)) % 1024;
                driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true))
                    .unwrap();
            }
            env.flash()
                .stats()
                .write_amplification(env.stats.user_page_writes)
                .unwrap()
        };
        let run_page = {
            let mut env = SsdEnv::new(config.clone()).unwrap();
            let mut ftl = crate::ftl::OptimalFtl::new(&config);
            driver::bootstrap(&mut ftl, &mut env).unwrap();
            for i in 0..4_000u32 {
                let lpn = (i * librarian(i)) % 1024;
                driver::serve_page_access(&mut ftl, &mut env, lpn, AccessCtx::single(true))
                    .unwrap();
            }
            env.flash()
                .stats()
                .write_amplification(env.stats.user_page_writes)
                .unwrap()
        };
        assert!(
            run_fast > run_page * 1.5,
            "hybrid WA {run_fast:.2} should far exceed page-level {run_page:.2}"
        );
    }

    /// Deterministic pseudo-random multiplier (avoids pulling in rand).
    fn librarian(i: u32) -> u32 {
        (i.wrapping_mul(2654435761) >> 16) | 1
    }

    #[test]
    fn consistency_under_mixed_traffic() {
        let (mut ftl, mut env) = setup();
        let mut written = std::collections::HashSet::new();
        for i in 0..6_000u32 {
            let lpn = (i.wrapping_mul(librarian(i))) % 2048;
            if i % 3 == 0 {
                read(&mut ftl, &mut env, lpn);
            } else {
                write(&mut ftl, &mut env, lpn);
                written.insert(lpn);
            }
        }
        // No LPN owns two valid pages, and every write is recoverable.
        let mut seen = std::collections::HashSet::new();
        for (_, tag, is_tp) in env.flash().scan_valid() {
            assert!(!is_tp);
            assert!(seen.insert(tag), "LPN {tag} double-mapped");
        }
        for &lpn in &written {
            let ppn = ftl
                .translate(&mut env, lpn, &AccessCtx::single(false))
                .unwrap()
                .expect("written page mapped");
            env.read_data_page(ppn, lpn).unwrap();
        }
    }
}
