//! The FTL abstraction and the concrete page-level FTLs.

use std::collections::BTreeMap;

use tpftl_flash::{Lpn, Ppn, Vtpn};

use crate::env::SsdEnv;
use crate::Result;

mod blocklevel;
mod cdftl;
mod dftl;
mod fast;
mod learned;
mod optimal;
mod sftl;
mod tpftl;
mod zftl;

pub use blocklevel::BlockLevelFtl;
pub use cdftl::Cdftl;
pub use dftl::Dftl;
pub use fast::{FastFtl, MergeStats};
pub use learned::{LearnedFtl, DEFAULT_EPSILON};
pub use optimal::OptimalFtl;
pub use sftl::Sftl;
pub use tpftl::{TpFtl, TpftlConfig};
pub use zftl::Zftl;

/// Per-page-access context handed to [`Ftl::translate`].
///
/// `remaining_in_request` is the number of page accesses of the same host
/// request that still follow this one — the information TPFTL's
/// request-level prefetching uses ("the length of request-level prefetching
/// is proportional to the number of page accesses contained in the original
/// request").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// Whether the page access is a write.
    pub is_write: bool,
    /// Page accesses of this request still to come after this one.
    pub remaining_in_request: u32,
}

impl AccessCtx {
    /// Context for an isolated single-page access.
    pub fn single(is_write: bool) -> Self {
        Self {
            is_write,
            remaining_in_request: 0,
        }
    }
}

/// One row of a cached-translation-page distribution snapshot
/// (the Figure 1/2 observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpDistEntry {
    /// Virtual translation-page number.
    pub vtpn: Vtpn,
    /// Cached entries belonging to this translation page.
    pub entries: u32,
    /// How many of them are dirty.
    pub dirty: u32,
}

/// A flash translation layer.
///
/// The simulator drives the FTL with exactly this protocol per page access:
///
/// 1. [`Ftl::translate`] — resolve LPN → PPN, performing all mapping-cache
///    management (loads, prefetches, evictions, writebacks) and the
///    corresponding flash traffic through `env`. Must call
///    [`SsdEnv::note_lookup`] once.
/// 2. For writes, the driver programs the new data page, invalidates the
///    old one (using the PPN `translate` returned), then calls
///    [`Ftl::update_mapping`] — which updates the (now guaranteed cached)
///    entry in place and marks it dirty.
///
/// The garbage collector calls [`Ftl::on_gc_data_block`] with every data
/// page it migrated out of a victim block; the FTL absorbs what it can in
/// the cache (GC hits) and batch-updates translation pages in flash for the
/// rest, exactly as Section 3.1's `H_gcr` accounting assumes.
///
/// # Examples
///
/// A minimal custom FTL — a RAM-resident table, like the paper's "optimal"
/// baseline — needs only the mapping methods; every cache-related hook has
/// a sensible default for RAM-table designs:
///
/// ```
/// use tpftl_core::env::SsdEnv;
/// use tpftl_core::ftl::{AccessCtx, Ftl, TpDistEntry};
/// use tpftl_core::{driver, Lpn, Ppn, Result, SsdConfig};
///
/// struct RamTableFtl(Vec<Option<Ppn>>);
///
/// impl Ftl for RamTableFtl {
///     fn name(&self) -> String {
///         "RamTable".into()
///     }
///     fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, _: &AccessCtx) -> Result<Option<Ppn>> {
///         env.note_lookup(true);
///         Ok(self.0[lpn as usize])
///     }
///     fn update_mapping(&mut self, _: &mut SsdEnv, lpn: Lpn, ppn: Ppn) -> Result<()> {
///         self.0[lpn as usize] = Some(ppn);
///         Ok(())
///     }
///     fn on_gc_data_block(&mut self, _: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
///         for &(lpn, ppn) in moved {
///             self.0[lpn as usize] = Some(ppn);
///         }
///         Ok(moved.len() as u64) // every update is a GC hit
///     }
///     fn uses_translation_pages(&self) -> bool {
///         false
///     }
///     fn cache_bytes_used(&self) -> usize {
///         self.0.len() * 8
///     }
///     fn cached_entries(&self) -> usize {
///         self.0.iter().flatten().count()
///     }
///     fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
///         Vec::new()
///     }
/// }
///
/// let config = SsdConfig::paper_default(16 << 20);
/// let mut env = SsdEnv::new(config.clone())?;
/// let mut ftl = RamTableFtl(vec![None; config.logical_pages() as usize]);
/// driver::bootstrap(&mut ftl, &mut env)?;
/// driver::serve_request(&mut ftl, &mut env, 0, 8, true)?; // write 8 pages
/// driver::serve_request(&mut ftl, &mut env, 0, 8, false)?; // read them back
/// assert_eq!(env.stats.user_page_writes, 8);
/// # Ok::<(), tpftl_core::FtlError>(())
/// ```
pub trait Ftl {
    /// Descriptive name, including configuration (e.g. `TPFTL(rsbc)`).
    fn name(&self) -> String;

    /// Resolves `lpn`, managing the cache; returns the *current* PPN
    /// (`None` if the page has never been written).
    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, ctx: &AccessCtx) -> Result<Option<Ppn>>;

    /// Records `lpn -> new_ppn` after a host data-page write. The entry is
    /// guaranteed to have been translated immediately before.
    fn update_mapping(&mut self, env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()>;

    /// Handles the mapping updates for one GC victim's migrated data pages;
    /// returns how many were absorbed by the cache (GC hits).
    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64>;

    /// Serves a host page write. The default implements the demand-paging
    /// protocol (translate, program, invalidate, update); block-mapping
    /// FTLs override it with their merge-based write path.
    fn write_page(&mut self, env: &mut SsdEnv, lpn: Lpn, ctx: &AccessCtx) -> Result<()> {
        let old = self.translate(env, lpn, ctx)?;
        env.stats.user_page_writes += 1;
        let new = env.program_data_page(lpn, tpftl_flash::OpPurpose::HostData)?;
        if let Some(old_ppn) = old {
            env.invalidate_page(old_ppn)?;
        }
        self.update_mapping(env, lpn, new)
    }

    /// Whether the FTL persists its mapping table in translation pages
    /// (false for the optimal and block-level FTLs, which keep it in RAM).
    fn uses_translation_pages(&self) -> bool {
        true
    }

    /// Whether the shared page-level garbage collector manages this FTL's
    /// space (false for block-mapping FTLs, which reclaim via merges).
    fn uses_page_level_gc(&self) -> bool {
        true
    }

    /// Called once after the device is formatted/pre-filled, before
    /// statistics reset; RAM-table FTLs rebuild their state here.
    fn after_bootstrap(&mut self, _env: &mut SsdEnv) -> Result<()> {
        Ok(())
    }

    /// Bytes of the mapping-cache budget currently in use, excluding the
    /// GTD (which [`crate::SsdConfig`] accounts separately).
    fn cache_bytes_used(&self) -> usize;

    /// Number of mapping entries currently cached (space-utilization
    /// experiments, Figure 10).
    fn cached_entries(&self) -> usize;

    /// Snapshot of the cached-entry distribution grouped by translation
    /// page, sorted by VTPN (Figures 1 and 2).
    fn cached_tp_distribution(&self) -> Vec<TpDistEntry>;

    /// Side-effect-free cache probe for [`crate::recovery::flush_cache`]:
    /// `None` if `lpn`'s entry is not cached; `Some(mapping)` otherwise
    /// (where the mapping itself may be "unmapped"). Must not touch
    /// recency state or load anything. RAM-table FTLs (which never flush
    /// through translation pages) may leave the default.
    fn peek_cached(&self, _env: &SsdEnv, _lpn: Lpn) -> Result<Option<Option<Ppn>>> {
        debug_assert!(
            !self.uses_translation_pages(),
            "demand-paging FTLs must implement peek_cached"
        );
        Ok(None)
    }

    /// Marks every cached entry of `vtpn` clean after a flush persisted
    /// them. Same applicability note as [`Ftl::peek_cached`].
    fn mark_clean(&mut self, _vtpn: Vtpn) {
        debug_assert!(
            !self.uses_translation_pages(),
            "demand-paging FTLs must implement mark_clean"
        );
    }
}

impl<T: Ftl + ?Sized> Ftl for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, ctx: &AccessCtx) -> Result<Option<Ppn>> {
        (**self).translate(env, lpn, ctx)
    }
    fn update_mapping(&mut self, env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        (**self).update_mapping(env, lpn, new_ppn)
    }
    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        (**self).on_gc_data_block(env, moved)
    }
    fn write_page(&mut self, env: &mut SsdEnv, lpn: Lpn, ctx: &AccessCtx) -> Result<()> {
        (**self).write_page(env, lpn, ctx)
    }
    fn uses_translation_pages(&self) -> bool {
        (**self).uses_translation_pages()
    }
    fn uses_page_level_gc(&self) -> bool {
        (**self).uses_page_level_gc()
    }
    fn after_bootstrap(&mut self, env: &mut SsdEnv) -> Result<()> {
        (**self).after_bootstrap(env)
    }
    fn cache_bytes_used(&self) -> usize {
        (**self).cache_bytes_used()
    }
    fn cached_entries(&self) -> usize {
        (**self).cached_entries()
    }
    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        (**self).cached_tp_distribution()
    }
    fn peek_cached(&self, env: &SsdEnv, lpn: Lpn) -> Result<Option<Option<Ppn>>> {
        (**self).peek_cached(env, lpn)
    }
    fn mark_clean(&mut self, vtpn: Vtpn) {
        (**self).mark_clean(vtpn)
    }
}

// Every FTL is moved into a per-shard worker thread by the sharded engine;
// assert Send-safety for each concrete design (and the boxed form the
// experiment runner hands out) at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TpFtl>();
    assert_send::<Dftl>();
    assert_send::<Sftl>();
    assert_send::<Cdftl>();
    assert_send::<LearnedFtl>();
    assert_send::<OptimalFtl>();
    assert_send::<BlockLevelFtl>();
    assert_send::<FastFtl>();
    assert_send::<Zftl>();
    assert_send::<Box<dyn Ftl + Send>>();
};

/// Groups GC mapping updates by translation page, in deterministic VTPN
/// order — the batching unit of DFTL's GC update and everyone else's flush.
pub(crate) fn group_by_vtpn(
    env: &SsdEnv,
    updates: &[(Lpn, Ppn)],
) -> BTreeMap<Vtpn, Vec<(u16, Ppn)>> {
    let mut map: BTreeMap<Vtpn, Vec<(u16, Ppn)>> = BTreeMap::new();
    for &(lpn, ppn) in updates {
        map.entry(env.vtpn_of(lpn))
            .or_default()
            .push((env.offset_of(lpn), ppn));
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    #[test]
    fn access_ctx_single() {
        let c = AccessCtx::single(true);
        assert!(c.is_write);
        assert_eq!(c.remaining_in_request, 0);
    }

    #[test]
    fn group_by_vtpn_batches_and_orders() {
        let env = SsdEnv::new(SsdConfig::paper_default(8 << 20)).unwrap();
        // 8 MB -> 2048 pages -> 2 translation pages of 1024 entries.
        let updates = vec![(1030u32, 5u32), (2, 6), (1029, 7), (3, 8)];
        let grouped = group_by_vtpn(&env, &updates);
        let keys: Vec<_> = grouped.keys().copied().collect();
        assert_eq!(keys, vec![0, 1]);
        assert_eq!(grouped[&0], vec![(2, 6), (3, 8)]);
        assert_eq!(grouped[&1], vec![(6, 5), (5, 7)]);
    }
}
