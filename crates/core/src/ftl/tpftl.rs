//! TPFTL — the paper's contribution (Section 4).
//!
//! The mapping cache is organized as **two-level LRU lists**: a page-level
//! structure of *TP nodes* (one per translation page with cached entries),
//! each holding an entry-level LRU list of its cached mapping entries. The
//! position of a TP node is decided by its *page-level hotness*, defined as
//! the average hotness (last-access stamp) of its entry nodes; we maintain
//! the order in a position-tracked binary min-heap keyed by that average,
//! so victim selection (the coldest node) is `O(1)` and repositioning is
//! `O(log n)` worst case — and allocation-free, unlike a balanced tree.
//!
//! Four independently switchable techniques (the Figure 7/8 ablations):
//!
//! * `r` — **request-level prefetching** (Section 4.3): on the first miss of
//!   a multi-page request, load all the request's entries instead of one,
//!   so a request causes at most one miss per translation page it spans.
//! * `s` — **selective prefetching** (Section 4.3): a counter tracks the
//!   number change of TP nodes (+1 on load, −1 on eviction); when it falls
//!   by the threshold, sequential accesses are assumed and each miss also
//!   prefetches as many successors as the requested entry has cached
//!   consecutive predecessors in its translation page.
//! * `b` — **batch-update replacement** (Section 4.4): when a dirty entry
//!   is evicted, *all* dirty entries of its TP node are written back in the
//!   same translation-page update; only the victim leaves the cache, the
//!   rest stay clean. The same batching is applied when a GC miss updates a
//!   cached translation page.
//! * `c` — **clean-first replacement** (Section 4.4): the victim is the LRU
//!   *clean* entry of the LRU TP node; only if none exists is the LRU dirty
//!   entry chosen.
//!
//! Prefetching is bounded by the two rules of Section 4.5: it never crosses
//! the translation-page boundary, and the replacement it forces stays
//! within the single LRU TP node (the prefetch length is reduced
//! otherwise), so one address translation performs at most one translation
//! page read and at most one update.
//!
//! Cached entries are stored compressed (Section 4.1): the LPN is implied
//! by the node's VTPN plus a 10-bit in-page offset, so an entry costs 6
//! bytes against DFTL's 8 (the Figure 10 space-utilization gain); a TP node
//! costs 8 bytes of overhead.

use tpftl_flash::{Lpn, OpPurpose, Ppn, Vtpn, PPN_NONE};

use crate::env::SsdEnv;
use crate::ftl::{group_by_vtpn, AccessCtx, Ftl, TpDistEntry};
use crate::hash::FxHashMap;
use crate::lru::{LruIdx, LruList};
use crate::{FtlError, Result, SsdConfig};

/// Bytes per cached entry node: 10-bit offset + 4 B PPN + flags, packed
/// into 6 B (Section 4.1's compression argument).
pub const ENTRY_BYTES: usize = 6;

/// Bytes of overhead per TP node (VTPN + list heads), "only a small
/// percentage" per Section 4.1.
pub const NODE_BYTES: usize = 8;

/// Which TPFTL techniques are enabled; the Figure 7/8 ablation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpftlConfig {
    /// `r`: request-level prefetching.
    pub request_prefetch: bool,
    /// `s`: selective prefetching.
    pub selective_prefetch: bool,
    /// `b`: batch-update replacement.
    pub batch_update: bool,
    /// `c`: clean-first replacement.
    pub clean_first: bool,
    /// Selective-prefetch activation threshold (the paper found 3 works
    /// well empirically; Section 4.3).
    pub counter_threshold: i32,
}

impl TpftlConfig {
    /// The complete TPFTL (`rsbc`).
    pub fn full() -> Self {
        Self {
            request_prefetch: true,
            selective_prefetch: true,
            batch_update: true,
            clean_first: true,
            counter_threshold: 3,
        }
    }

    /// The bare two-level-LRU variant (`–` in Figures 7/8).
    pub fn baseline() -> Self {
        Self {
            request_prefetch: false,
            selective_prefetch: false,
            batch_update: false,
            clean_first: false,
            counter_threshold: 3,
        }
    }

    /// Builds a configuration from the paper's monogram (`"rsbc"`, `"b"`,
    /// `"rs"`, ..., `""` for the bare variant).
    ///
    /// # Panics
    ///
    /// Panics on letters outside `r`, `s`, `b`, `c`.
    pub fn from_flags(flags: &str) -> Self {
        let mut cfg = Self::baseline();
        for ch in flags.chars() {
            match ch {
                'r' => cfg.request_prefetch = true,
                's' => cfg.selective_prefetch = true,
                'b' => cfg.batch_update = true,
                'c' => cfg.clean_first = true,
                other => panic!("unknown TPFTL flag {other:?}"),
            }
        }
        cfg
    }

    /// The monogram describing this configuration (`"–"` if none).
    pub fn flags(&self) -> String {
        let mut s = String::new();
        if self.request_prefetch {
            s.push('r');
        }
        if self.selective_prefetch {
            s.push('s');
        }
        if self.batch_update {
            s.push('b');
        }
        if self.clean_first {
            s.push('c');
        }
        if s.is_empty() {
            s.push('–');
        }
        s
    }
}

#[derive(Debug, Clone, Copy)]
struct EntryNode {
    offset: u16,
    /// `PPN_NONE` caches "not mapped yet".
    ppn: Ppn,
    dirty: bool,
    /// Last-access stamp; feeds the node's page-level hotness.
    stamp: u64,
}

struct TpNode {
    /// Entry-level LRU list (MRU = hottest entry).
    entries: LruList<EntryNode>,
    /// Dense offset → handle table, one slot per entry of the translation
    /// page ([`LruIdx::NONE`] = not cached). An offset lookup is a single
    /// indexed load — the hottest operation of the whole FTL — instead of
    /// a hash probe. Tables are pooled by [`TpFtl`] across node churn, so
    /// node creation allocates only until the pool has warmed up.
    by_offset: Box<[LruIdx]>,
    /// Sum of entry stamps; hotness = sum / len.
    stamp_sum: u64,
    dirty_count: u32,
    /// Current key in the page-level order ((hotness, vtpn)).
    hot_key: u64,
    /// Index of this node's slot in [`TpFtl::order`]; maintained by the
    /// heap primitives so a reposition starts at the right slot without a
    /// search.
    heap_pos: u32,
}

impl TpNode {
    fn new(by_offset: Box<[LruIdx]>) -> Self {
        Self {
            entries: LruList::new(),
            by_offset,
            stamp_sum: 0,
            dirty_count: 0,
            hot_key: 0,
            heap_pos: 0,
        }
    }

    /// Handle of the entry caching `offset`, if any.
    #[inline]
    fn idx_of(&self, offset: u16) -> Option<LruIdx> {
        let idx = self.by_offset[offset as usize];
        (!idx.is_none()).then_some(idx)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn hotness(&self) -> u64 {
        if self.entries.is_empty() {
            0
        } else {
            self.stamp_sum / self.entries.len() as u64
        }
    }
}

/// The TPFTL flash translation layer.
pub struct TpFtl {
    cfg: TpftlConfig,
    budget_bytes: usize,
    entries_per_tp: usize,
    nodes: FxHashMap<Vtpn, TpNode>,
    /// Page-level order: a binary min-heap over `(hotness, vtpn)`, coldest
    /// node at the root. Only two queries are ever needed — peek the
    /// coldest node and move one node after its hotness changes — so the
    /// heap replaces a balanced tree: peeks are `O(1)`, repositions sift a
    /// level or two in the common case (a touch barely moves a node's
    /// average stamp), and no tree nodes are allocated or freed on the
    /// translate hot path. Victim selection is identical because the
    /// minimum of the same key set under the same total order is unique.
    order: Vec<(u64, Vtpn)>,
    bytes_used: usize,
    /// Global access clock driving entry stamps.
    clock: u64,
    /// The Section 4.3 counter: +1 per TP-node load, −1 per eviction.
    counter: i32,
    selective_active: bool,
    /// Recycled `by_offset` tables of dismantled nodes (all-NONE), so node
    /// churn stops allocating once the pool covers the working set.
    table_pool: Vec<Box<[LruIdx]>>,
    /// Reusable buffers for the request path (batch writebacks, GC
    /// misses): taken, filled, returned — never reallocated once grown.
    /// Miss-path payloads are borrowed from the flash slab and need no
    /// buffer at all.
    scratch_updates: Vec<(u16, Ppn)>,
    scratch_misses: Vec<(Lpn, Ppn)>,
}

impl TpFtl {
    /// Creates a TPFTL with the given technique set, sized to the config's
    /// usable cache budget.
    ///
    /// # Errors
    ///
    /// [`FtlError::CacheTooSmall`] if a node plus one entry does not fit.
    pub fn new(config: &SsdConfig, cfg: TpftlConfig) -> Result<Self> {
        let budget_bytes = config.usable_cache_bytes();
        if budget_bytes < NODE_BYTES + ENTRY_BYTES {
            return Err(FtlError::CacheTooSmall);
        }
        Ok(Self {
            cfg,
            budget_bytes,
            entries_per_tp: config.entries_per_tp(),
            nodes: FxHashMap::default(),
            order: Vec::new(),
            bytes_used: 0,
            clock: 0,
            counter: 0,
            selective_active: false,
            table_pool: Vec::new(),
            scratch_updates: Vec::new(),
            scratch_misses: Vec::new(),
        })
    }

    /// A fresh or recycled all-NONE offset table.
    fn alloc_table(&mut self) -> Box<[LruIdx]> {
        self.table_pool
            .pop()
            .unwrap_or_else(|| vec![LruIdx::NONE; self.entries_per_tp].into_boxed_slice())
    }

    /// Returns a dismantled node's table (all entries removed, hence
    /// all-NONE again) to the pool.
    fn recycle_table(&mut self, table: Box<[LruIdx]>) {
        debug_assert!(table.iter().all(|i| i.is_none()), "table not cleared");
        self.table_pool.push(table);
    }

    /// Whether selective prefetching is currently active (test hook).
    pub fn selective_active(&self) -> bool {
        self.selective_active
    }

    /// The configured technique set.
    pub fn config(&self) -> &TpftlConfig {
        &self.cfg
    }

    // ---- Page-level order maintenance ---------------------------------------
    //
    // Invariant: `order[n.heap_pos] == (n.hot_key, vtpn)` for every cached
    // node `n`, and `order` satisfies the min-heap property under the
    // lexicographic order on `(hot_key, vtpn)`.

    /// Swaps two heap slots and fixes both nodes' back-pointers.
    fn heap_swap(
        order: &mut [(u64, Vtpn)],
        nodes: &mut FxHashMap<Vtpn, TpNode>,
        a: usize,
        b: usize,
    ) {
        order.swap(a, b);
        nodes
            .get_mut(&order[a].1)
            .expect("heap slot has a node")
            .heap_pos = a as u32;
        nodes
            .get_mut(&order[b].1)
            .expect("heap slot has a node")
            .heap_pos = b as u32;
    }

    fn heap_sift_up(order: &mut [(u64, Vtpn)], nodes: &mut FxHashMap<Vtpn, TpNode>, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if order[i] < order[parent] {
                Self::heap_swap(order, nodes, i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(
        order: &mut [(u64, Vtpn)],
        nodes: &mut FxHashMap<Vtpn, TpNode>,
        mut i: usize,
    ) {
        loop {
            let left = 2 * i + 1;
            if left >= order.len() {
                break;
            }
            let right = left + 1;
            let child = if right < order.len() && order[right] < order[left] {
                right
            } else {
                left
            };
            if order[child] < order[i] {
                Self::heap_swap(order, nodes, i, child);
                i = child;
            } else {
                break;
            }
        }
    }

    /// Adds `vtpn` (whose node must already be in `nodes`, with `hot_key`
    /// set) to the heap.
    fn heap_insert(&mut self, vtpn: Vtpn) {
        let i = self.order.len();
        let node = self.nodes.get_mut(&vtpn).expect("inserting a cached node");
        node.heap_pos = i as u32;
        self.order.push((node.hot_key, vtpn));
        Self::heap_sift_up(&mut self.order, &mut self.nodes, i);
    }

    /// Re-keys the heap slot `i` to `new_key` and restores the heap
    /// property. The slot's node must already carry `hot_key == new_key`.
    fn heap_update(&mut self, i: usize, new_key: u64) {
        let old_key = self.order[i].0;
        if new_key == old_key {
            return;
        }
        self.order[i].0 = new_key;
        if new_key < old_key {
            Self::heap_sift_up(&mut self.order, &mut self.nodes, i);
        } else {
            Self::heap_sift_down(&mut self.order, &mut self.nodes, i);
        }
    }

    /// Removes the heap slot `i` (the dismantled node itself is left to the
    /// caller to drop from `nodes`).
    fn heap_remove(&mut self, i: usize) {
        let last = self.order.pop().expect("removal from empty heap");
        if i < self.order.len() {
            self.order[i] = last;
            self.nodes
                .get_mut(&last.1)
                .expect("heap slot has a node")
                .heap_pos = i as u32;
            Self::heap_sift_up(&mut self.order, &mut self.nodes, i);
            Self::heap_sift_down(&mut self.order, &mut self.nodes, i);
        }
    }

    /// Recomputes `vtpn`'s hotness key and repositions its heap slot.
    fn reposition(&mut self, vtpn: Vtpn) {
        let node = self
            .nodes
            .get_mut(&vtpn)
            .expect("repositioning a cached node");
        let new_key = node.hotness();
        node.hot_key = new_key;
        let i = node.heap_pos as usize;
        debug_assert_eq!(self.order[i].1, vtpn, "heap back-pointer out of sync");
        self.heap_update(i, new_key);
    }

    fn on_node_created(&mut self) {
        self.counter += 1;
        if self.counter >= self.cfg.counter_threshold {
            self.selective_active = false;
            self.counter = 0;
        }
    }

    fn on_node_removed(&mut self) {
        self.counter -= 1;
        if self.counter <= -self.cfg.counter_threshold {
            self.selective_active = true;
            self.counter = 0;
        }
    }

    // ---- Entry plumbing ------------------------------------------------------

    /// Hit path: if `vtpn:offset` is cached, returns its PPN after the MRU
    /// move, stamp refresh and node reposition — one node lookup for the
    /// probe and the touch combined.
    fn lookup_touch(&mut self, vtpn: Vtpn, offset: u16) -> Option<Ppn> {
        let node = self.nodes.get_mut(&vtpn)?;
        let idx = node.idx_of(offset)?;
        node.entries.touch(idx);
        let e = node.entries.get_mut(idx).expect("valid handle");
        let ppn = e.ppn;
        node.stamp_sum -= e.stamp;
        e.stamp = self.clock;
        node.stamp_sum += self.clock;
        let new_key = node.stamp_sum / node.entries.len() as u64;
        node.hot_key = new_key;
        let i = node.heap_pos as usize;
        self.heap_update(i, new_key);
        Some(ppn)
    }

    fn cached_ppn(&self, vtpn: Vtpn, offset: u16) -> Option<Ppn> {
        let node = self.nodes.get(&vtpn)?;
        let idx = node.idx_of(offset)?;
        Some(node.entries.get(idx).expect("valid handle").ppn)
    }

    /// Number of consecutive cached predecessors of `offset` in `vtpn`
    /// (the selective-prefetch length rule, Section 4.3).
    fn cached_predecessors(&self, vtpn: Vtpn, offset: u16) -> usize {
        let Some(node) = self.nodes.get(&vtpn) else {
            return 0;
        };
        let mut n = 0;
        let mut off = offset;
        while off > 0 && !node.by_offset[off as usize - 1].is_none() {
            n += 1;
            off -= 1;
        }
        n
    }

    /// Inserts a fresh entry (assumes capacity has been made).
    fn insert_entry(&mut self, vtpn: Vtpn, offset: u16, ppn: Ppn) {
        let created = !self.nodes.contains_key(&vtpn);
        if created {
            self.bytes_used += NODE_BYTES;
            let table = self.alloc_table();
            self.nodes.insert(vtpn, TpNode::new(table));
            self.heap_insert(vtpn);
        }
        let node = self.nodes.get_mut(&vtpn).expect("present or just created");
        debug_assert!(node.by_offset[offset as usize].is_none(), "double insert");
        let idx = node.entries.push_mru(EntryNode {
            offset,
            ppn,
            dirty: false,
            stamp: self.clock,
        });
        node.by_offset[offset as usize] = idx;
        node.stamp_sum += self.clock;
        self.bytes_used += ENTRY_BYTES;
        self.reposition(vtpn);
        if created {
            self.on_node_created();
        }
    }

    /// Picks the victim entry inside `node` per the replacement policy:
    /// LRU clean entry when clean-first is on, else the LRU entry.
    fn pick_victim_in(&self, vtpn: Vtpn) -> (LruIdx, EntryNode) {
        let node = &self.nodes[&vtpn];
        if self.cfg.clean_first {
            if let Some((idx, e)) = node
                .entries
                .iter_lru()
                .find(|(_, e)| !e.dirty)
                .map(|(i, e)| (i, *e))
            {
                return (idx, e);
            }
        }
        let (idx, e) = node.entries.peek_lru().expect("nodes are never empty");
        (idx, *e)
    }

    /// Evicts one entry from the coldest TP node, handling writeback and
    /// batch-update; returns the bytes freed.
    fn evict_one(&mut self, env: &mut SsdEnv) -> Result<usize> {
        let &(_, vtpn) = self.order.first().expect("eviction from empty cache");
        let (victim_idx, victim) = self.pick_victim_in(vtpn);
        env.note_replacement(victim.dirty);

        if victim.dirty {
            if self.cfg.batch_update {
                // Write back every dirty entry of the node in one update;
                // the others stay cached, now clean (Section 4.4). The
                // update list lives in a reusable scratch buffer; offsets
                // are unique per node, so the sort makes the order
                // deterministic regardless of collection order.
                let mut updates = std::mem::take(&mut self.scratch_updates);
                updates.clear();
                let node = self.nodes.get_mut(&vtpn).expect("victim node");
                node.entries.for_each_value_mut(|e| {
                    if e.dirty {
                        updates.push((e.offset, e.ppn));
                        e.dirty = false;
                    }
                });
                updates.sort_unstable_by_key(|u| u.0);
                node.dirty_count = 0;
                let res = env.update_translation_page(vtpn, &updates, OpPurpose::Translation);
                self.scratch_updates = updates;
                res?;
            } else {
                env.update_translation_page(
                    vtpn,
                    &[(victim.offset, victim.ppn)],
                    OpPurpose::Translation,
                )?;
                let node = self.nodes.get_mut(&vtpn).expect("victim node");
                node.entries
                    .get_mut(victim_idx)
                    .expect("valid handle")
                    .dirty = false;
                node.dirty_count -= 1;
            }
        }

        // Remove the (now clean) victim.
        let node = self.nodes.get_mut(&vtpn).expect("victim node");
        let e = node.entries.remove(victim_idx);
        node.by_offset[e.offset as usize] = LruIdx::NONE;
        node.stamp_sum -= e.stamp;
        let mut freed = ENTRY_BYTES;
        if node.entries.is_empty() {
            let i = node.heap_pos as usize;
            self.heap_remove(i);
            let node = self.nodes.remove(&vtpn).expect("present");
            self.recycle_table(node.by_offset);
            freed += NODE_BYTES;
            self.on_node_removed();
        } else {
            self.reposition(vtpn);
        }
        self.bytes_used -= freed;
        Ok(freed)
    }

    /// Makes room for loading `1 + prefetch` entries into `vtpn` (which may
    /// not exist yet), reducing `prefetch` so that the forced replacement
    /// stays within the single LRU TP node (Section 4.5, rule 2). Returns
    /// the final prefetch length.
    fn make_room(&mut self, env: &mut SsdEnv, vtpn: Vtpn, mut prefetch: usize) -> Result<usize> {
        loop {
            // Re-evaluated every iteration: an eviction can dismantle the
            // target node itself, re-introducing its NODE_BYTES cost.
            let node_cost = if self.nodes.contains_key(&vtpn) {
                0
            } else {
                NODE_BYTES
            };
            let need = node_cost + (1 + prefetch) * ENTRY_BYTES;
            let free = self.budget_bytes.saturating_sub(self.bytes_used);
            if need <= free {
                return Ok(prefetch);
            }
            let deficit = need - free;
            let evictions = deficit.div_ceil(ENTRY_BYTES);
            let lru_len = self
                .order
                .first()
                .map(|&(_, v)| self.nodes[&v].len())
                .unwrap_or(0);
            if evictions <= lru_len || prefetch == 0 {
                // Evict one entry and re-evaluate. When prefetch is already
                // 0 the requested entry must be loaded regardless, even if
                // that crosses into a second node.
                self.evict_one(env)?;
            } else {
                prefetch -= 1;
            }
        }
    }
}

impl Ftl for TpFtl {
    fn name(&self) -> String {
        format!("TPFTL({})", self.cfg.flags())
    }

    fn translate(&mut self, env: &mut SsdEnv, lpn: Lpn, ctx: &AccessCtx) -> Result<Option<Ppn>> {
        self.clock += 1;
        let vtpn = env.vtpn_of(lpn);
        let offset = env.offset_of(lpn);

        if let Some(ppn) = self.lookup_touch(vtpn, offset) {
            env.note_lookup(true);
            return Ok((ppn != PPN_NONE).then_some(ppn));
        }
        env.note_lookup(false);

        // Prefetch length: the larger of the request-level remainder and
        // the selective predecessor run, clipped to the page boundary.
        let req_len = if self.cfg.request_prefetch {
            ctx.remaining_in_request as usize
        } else {
            0
        };
        let sel_len = if self.cfg.selective_prefetch && self.selective_active {
            self.cached_predecessors(vtpn, offset)
        } else {
            0
        };
        let boundary = env.entries_per_tp() - 1 - offset as usize;
        let want = req_len.max(sel_len).min(boundary);

        let granted = self.make_room(env, vtpn, want)?;

        // One translation-page read serves the requested entry and every
        // prefetched successor (they share the page by rule 1). The payload
        // is borrowed straight out of the flash model's slab — the miss
        // path copies single entries into the cache, never a whole page.
        let payload = env.read_translation_entries_ref(vtpn, OpPurpose::Translation)?;
        let requested_ppn = payload[offset as usize];
        for i in 0..=granted as u16 {
            let off = offset + i;
            if self.cached_ppn(vtpn, off).is_none() {
                self.insert_entry(vtpn, off, payload[off as usize]);
            }
        }
        Ok((requested_ppn != PPN_NONE).then_some(requested_ppn))
    }

    fn update_mapping(&mut self, env: &mut SsdEnv, lpn: Lpn, new_ppn: Ppn) -> Result<()> {
        let vtpn = env.vtpn_of(lpn);
        let offset = env.offset_of(lpn);
        let node = self
            .nodes
            .get_mut(&vtpn)
            .expect("update_mapping contract: entry was translated immediately before");
        let idx = node.idx_of(offset).expect("entry cached");
        let e = node.entries.get_mut(idx).expect("valid handle");
        e.ppn = new_ppn;
        if !e.dirty {
            e.dirty = true;
            node.dirty_count += 1;
        }
        Ok(())
    }

    fn on_gc_data_block(&mut self, env: &mut SsdEnv, moved: &[(Lpn, Ppn)]) -> Result<u64> {
        let mut hits = 0u64;
        let mut misses = std::mem::take(&mut self.scratch_misses);
        misses.clear();
        for &(lpn, new_ppn) in moved {
            let vtpn = env.vtpn_of(lpn);
            let offset = env.offset_of(lpn);
            match self
                .nodes
                .get_mut(&vtpn)
                .and_then(|n| n.idx_of(offset).map(|idx| (n, idx)))
            {
                Some((node, idx)) => {
                    let e = node.entries.get_mut(idx).expect("valid handle");
                    e.ppn = new_ppn;
                    if !e.dirty {
                        e.dirty = true;
                        node.dirty_count += 1;
                    }
                    hits += 1;
                }
                None => misses.push((lpn, new_ppn)),
            }
        }
        let mut result = Ok(hits);
        for (vtpn, mut updates) in group_by_vtpn(env, &misses) {
            if self.cfg.batch_update {
                // Piggyback every cached dirty entry of this page on the
                // unavoidable update (Section 4.4), marking them clean.
                if let Some(node) = self.nodes.get_mut(&vtpn) {
                    if node.dirty_count > 0 {
                        node.entries.for_each_value_mut(|e| {
                            if e.dirty {
                                updates.push((e.offset, e.ppn));
                                e.dirty = false;
                            }
                        });
                        node.dirty_count = 0;
                    }
                }
            }
            updates.sort_unstable_by_key(|u| u.0);
            if let Err(e) = env.update_translation_page(vtpn, &updates, OpPurpose::GcTranslation) {
                result = Err(e);
                break;
            }
        }
        self.scratch_misses = misses;
        result
    }

    fn cache_bytes_used(&self) -> usize {
        self.bytes_used
    }

    fn cached_entries(&self) -> usize {
        self.nodes.values().map(TpNode::len).sum()
    }

    fn peek_cached(&self, env: &SsdEnv, lpn: Lpn) -> crate::Result<Option<Option<Ppn>>> {
        Ok(self
            .cached_ppn(env.vtpn_of(lpn), env.offset_of(lpn))
            .map(|p| (p != PPN_NONE).then_some(p)))
    }

    fn mark_clean(&mut self, vtpn: Vtpn) {
        if let Some(node) = self.nodes.get_mut(&vtpn) {
            node.entries.for_each_value_mut(|e| e.dirty = false);
            node.dirty_count = 0;
        }
    }

    fn cached_tp_distribution(&self) -> Vec<TpDistEntry> {
        let mut out: Vec<TpDistEntry> = self
            .nodes
            .iter()
            .map(|(&vtpn, n)| TpDistEntry {
                vtpn,
                entries: n.len() as u32,
                dirty: n.dirty_count,
            })
            .collect();
        out.sort_unstable_by_key(|d| d.vtpn);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;

    /// 8 MB logical space (2048 pages, 2 translation pages), cache budget
    /// of `bytes` for the FTL structures.
    fn setup(bytes: usize, flags: &str) -> (TpFtl, SsdEnv) {
        setup_sized(8 << 20, bytes, flags)
    }

    fn setup_sized(logical: u64, bytes: usize, flags: &str) -> (TpFtl, SsdEnv) {
        let mut config = SsdConfig::paper_default(logical);
        config.cache_bytes = config.gtd_bytes() + bytes;
        let mut env = SsdEnv::new(config.clone()).unwrap();
        let mut ftl = TpFtl::new(&config, TpftlConfig::from_flags(flags)).unwrap();
        driver::bootstrap(&mut ftl, &mut env).unwrap();
        (ftl, env)
    }

    fn read(ftl: &mut TpFtl, env: &mut SsdEnv, lpn: Lpn) {
        driver::serve_page_access(ftl, env, lpn, AccessCtx::single(false)).unwrap();
    }

    fn write(ftl: &mut TpFtl, env: &mut SsdEnv, lpn: Lpn) {
        driver::serve_page_access(ftl, env, lpn, AccessCtx::single(true)).unwrap();
    }

    #[test]
    fn flags_roundtrip() {
        assert_eq!(TpftlConfig::full().flags(), "rsbc");
        assert_eq!(TpftlConfig::baseline().flags(), "–");
        assert_eq!(TpftlConfig::from_flags("bc").flags(), "bc");
        assert_eq!(TpftlConfig::from_flags("rs").flags(), "rs");
        assert_eq!(
            TpFtl::new(&SsdConfig::paper_default(8 << 20), TpftlConfig::full())
                .unwrap()
                .name(),
            "TPFTL(rsbc)"
        );
    }

    #[test]
    fn miss_then_hit_two_level() {
        let (mut ftl, mut env) = setup(1024, "");
        write(&mut ftl, &mut env, 7);
        assert_eq!(env.stats.lookups, 1);
        assert_eq!(env.stats.hits, 0);
        read(&mut ftl, &mut env, 7);
        assert_eq!(env.stats.hits, 1);
        let d = ftl.cached_tp_distribution();
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].vtpn, d[0].entries, d[0].dirty), (0, 1, 1));
        assert_eq!(ftl.cache_bytes_used(), NODE_BYTES + ENTRY_BYTES);
    }

    #[test]
    fn entry_compression_fits_more_than_dftl() {
        // 120 bytes: DFTL would fit 15 entries; TPFTL fits (120-8)/6 = 18
        // in one node.
        let (mut ftl, mut env) = setup(120, "");
        for lpn in 0..50u32 {
            read(&mut ftl, &mut env, lpn);
        }
        assert!(ftl.cached_entries() >= 18, "got {}", ftl.cached_entries());
        assert!(ftl.cache_bytes_used() <= 120);
    }

    #[test]
    fn victim_comes_from_coldest_node() {
        let (mut ftl, mut env) = setup(NODE_BYTES * 2 + ENTRY_BYTES * 4, "");
        // Node 0 entries (cold), then node 1 entries (hot).
        read(&mut ftl, &mut env, 0);
        read(&mut ftl, &mut env, 1);
        read(&mut ftl, &mut env, 1024);
        read(&mut ftl, &mut env, 1025);
        // Cache full (2 nodes + 4 entries). Next load evicts from node 0.
        read(&mut ftl, &mut env, 1026);
        let d = ftl.cached_tp_distribution();
        let node0 = d.iter().find(|e| e.vtpn == 0).unwrap();
        assert_eq!(node0.entries, 1, "coldest node must have shrunk");
        assert_eq!(env.stats.replacements, 1);
    }

    #[test]
    fn clean_first_prefers_clean_victims() {
        let (mut ftl, mut env) = setup(NODE_BYTES + ENTRY_BYTES * 3, "c");
        write(&mut ftl, &mut env, 0); // dirty, LRU-most after later reads
        read(&mut ftl, &mut env, 1); // clean
        read(&mut ftl, &mut env, 2); // clean
                                     // Full: 1 node + 3 entries. Loading a 4th evicts LRU *clean* (1).
        read(&mut ftl, &mut env, 3);
        assert_eq!(env.stats.replacements, 1);
        assert_eq!(env.stats.dirty_replacements, 0);
        let node = ftl.cached_tp_distribution()[0];
        assert_eq!(node.dirty, 1, "dirty entry survived");
        assert!(ftl.cached_ppn(0, 0).is_some(), "dirty entry 0 still cached");
        assert!(ftl.cached_ppn(0, 1).is_none(), "clean LRU entry 1 evicted");
    }

    #[test]
    fn without_clean_first_lru_is_evicted() {
        let (mut ftl, mut env) = setup(NODE_BYTES + ENTRY_BYTES * 3, "");
        write(&mut ftl, &mut env, 0);
        read(&mut ftl, &mut env, 1);
        read(&mut ftl, &mut env, 2);
        read(&mut ftl, &mut env, 3);
        // Victim is the LRU entry (0), which is dirty -> one writeback.
        assert_eq!(env.stats.dirty_replacements, 1);
        assert!(ftl.cached_ppn(0, 0).is_none());
    }

    #[test]
    fn batch_update_flushes_whole_node() {
        let (mut ftl, mut env) = setup(NODE_BYTES + ENTRY_BYTES * 3, "b");
        // Three dirty entries; evicting one flushes all three in ONE
        // translation page update.
        write(&mut ftl, &mut env, 0);
        write(&mut ftl, &mut env, 1);
        write(&mut ftl, &mut env, 2);
        let tw = env.flash().stats().translation_writes();
        read(&mut ftl, &mut env, 3);
        assert_eq!(env.flash().stats().translation_writes(), tw + 1);
        assert_eq!(env.stats.dirty_replacements, 1);
        let node = ftl.cached_tp_distribution()[0];
        assert_eq!(node.dirty, 0, "all entries became clean");
        assert_eq!(node.entries, 3, "only the victim left the cache");
        // The flushed mappings are durable: drop the cache state by
        // re-reading them and checking data resolves.
        for lpn in 1..3u32 {
            read(&mut ftl, &mut env, lpn);
        }
    }

    #[test]
    fn without_batch_update_each_dirty_eviction_writes() {
        let (mut ftl, mut env) = setup(NODE_BYTES + ENTRY_BYTES * 3, "");
        write(&mut ftl, &mut env, 0);
        write(&mut ftl, &mut env, 1);
        write(&mut ftl, &mut env, 2);
        let tw = env.flash().stats().translation_writes();
        // Two loads -> two dirty evictions -> two separate updates.
        read(&mut ftl, &mut env, 3);
        read(&mut ftl, &mut env, 4);
        assert_eq!(env.flash().stats().translation_writes(), tw + 2);
        assert_eq!(env.stats.dirty_replacements, 2);
    }

    #[test]
    fn request_prefetch_single_miss_per_request() {
        let (mut ftl, mut env) = setup(1024, "r");
        driver::serve_request(&mut ftl, &mut env, 100, 8, false).unwrap();
        assert_eq!(env.stats.lookups, 8);
        assert_eq!(env.stats.hits, 7, "one miss for the whole request");
        assert_eq!(env.flash().stats().translation_reads(), 1);
    }

    #[test]
    fn request_prefetch_respects_page_boundary() {
        let (mut ftl, mut env) = setup(1024, "r");
        // Request crosses the vtpn 0/1 boundary at LPN 1024: two misses.
        driver::serve_request(&mut ftl, &mut env, 1020, 8, false).unwrap();
        assert_eq!(env.stats.lookups, 8);
        assert_eq!(env.stats.hits, 6);
        assert_eq!(env.flash().stats().translation_reads(), 2);
    }

    #[test]
    fn selective_prefetch_activates_on_node_shrinkage() {
        // 64 MB -> 16 translation pages, room for many sparse nodes.
        let (mut ftl, mut env) = setup_sized(64 << 20, NODE_BYTES * 10 + ENTRY_BYTES * 20, "s");
        assert!(!ftl.selective_active());
        // Load 10 sparse nodes with 2 entries each (fills the cache).
        for v in 1..=10u32 {
            read(&mut ftl, &mut env, v * 1024);
            read(&mut ftl, &mut env, v * 1024 + 500);
        }
        // A sequential run concentrates loads in one node while evictions
        // dismantle the sparse nodes one by one; each node removal
        // decrements the counter until it trips the threshold.
        for lpn in 0..24u32 {
            read(&mut ftl, &mut env, lpn);
        }
        assert!(
            ftl.selective_active(),
            "sequential phase must activate prefetching"
        );
    }

    #[test]
    fn selective_prefetch_loads_successor_run() {
        let (mut ftl, mut env) = setup(4096, "s");
        // Warm two consecutive entries without prefetching.
        read(&mut ftl, &mut env, 10);
        read(&mut ftl, &mut env, 11);
        ftl.selective_active = true; // force active for a focused test
                                     // Miss on 12 has 2 cached predecessors (10, 11) -> prefetch 13, 14.
        read(&mut ftl, &mut env, 12);
        assert!(ftl.cached_ppn(0, 13).is_some(), "successor 13 prefetched");
        assert!(ftl.cached_ppn(0, 14).is_some(), "successor 14 prefetched");
        assert!(
            ftl.cached_ppn(0, 15).is_none(),
            "prefetch length is bounded"
        );
        // 13/14 now hit without flash reads.
        let tr = env.flash().stats().translation_reads();
        read(&mut ftl, &mut env, 13);
        read(&mut ftl, &mut env, 14);
        assert_eq!(env.flash().stats().translation_reads(), tr);
    }

    #[test]
    fn prefetch_limited_by_lru_node_size() {
        // Budget: 2 nodes + 4 entries. Node A holds 1 entry (cold), node B
        // 3 entries. A miss with a large request wants many entries but the
        // LRU node only has 1 evictable entry.
        let (mut ftl, mut env) = setup(NODE_BYTES * 2 + ENTRY_BYTES * 4, "r");
        read(&mut ftl, &mut env, 1024); // node B=vtpn1 (cold after A reads)
        read(&mut ftl, &mut env, 0);
        read(&mut ftl, &mut env, 1);
        read(&mut ftl, &mut env, 2); // node A=vtpn0 hot with 3 entries
                                     // Miss on LPN 512 with 7 remaining pages: wants 8 entries, but the
                                     // replacement must stay within the LRU node (vtpn1, 1 entry), so
                                     // the prefetch is reduced to fit.
        driver::serve_request(&mut ftl, &mut env, 512, 8, false).unwrap();
        // The load was reduced: cache stayed within budget throughout.
        assert!(ftl.cache_bytes_used() <= NODE_BYTES * 2 + ENTRY_BYTES * 4);
        // vtpn1's node was dismantled first (it was coldest).
        let d = ftl.cached_tp_distribution();
        assert!(
            d.iter().all(|e| e.vtpn == 0),
            "cold vtpn1 node evicted: {d:?}"
        );
    }

    #[test]
    fn gc_miss_piggybacks_cached_dirty_entries() {
        let (mut ftl, mut env) = setup(NODE_BYTES + ENTRY_BYTES * 8, "b");
        // Dirty a couple of entries of vtpn 0 and keep them cached.
        write(&mut ftl, &mut env, 0);
        write(&mut ftl, &mut env, 1);
        // Simulate GC misses on the same translation page.
        let moved = vec![(
            512u32,
            env.program_data_page(512, OpPurpose::GcData).unwrap(),
        )];
        let tw = env.flash().stats().translation_writes();
        let hits = ftl.on_gc_data_block(&mut env, &moved).unwrap();
        assert_eq!(hits, 0);
        assert_eq!(env.flash().stats().translation_writes(), tw + 1);
        // The cached dirty entries were flushed alongside.
        assert_eq!(ftl.cached_tp_distribution()[0].dirty, 0);
        // And are durable in flash.
        let entries = env
            .read_translation_entries(0, OpPurpose::Translation)
            .unwrap();
        assert_ne!(entries[0], PPN_NONE);
        assert_ne!(entries[1], PPN_NONE);
    }

    #[test]
    fn gc_hit_updates_in_cache_without_flash_write() {
        let (mut ftl, mut env) = setup(1024, "");
        write(&mut ftl, &mut env, 5);
        let new_ppn = env.program_data_page(5, OpPurpose::GcData).unwrap();
        let tw = env.flash().stats().translation_writes();
        let hits = ftl.on_gc_data_block(&mut env, &[(5, new_ppn)]).unwrap();
        assert_eq!(hits, 1);
        assert_eq!(env.flash().stats().translation_writes(), tw);
        assert_eq!(ftl.cached_ppn(0, 5), Some(new_ppn));
    }

    #[test]
    fn budget_respected_under_random_workload() {
        let (mut ftl, mut env) = setup(200, "rsbc");
        for i in 0..3000u32 {
            let lpn = (i * 701) % 2048;
            driver::serve_page_access(
                &mut ftl,
                &mut env,
                lpn,
                AccessCtx {
                    is_write: i % 3 != 0,
                    remaining_in_request: (i % 5),
                },
            )
            .unwrap();
            assert!(
                ftl.cache_bytes_used() <= 200,
                "budget exceeded at access {i}"
            );
        }
        // Invariants: node byte accounting is exact.
        let expect: usize = ftl
            .nodes
            .values()
            .map(|n| NODE_BYTES + n.len() * ENTRY_BYTES)
            .sum();
        assert_eq!(ftl.cache_bytes_used(), expect);
        assert_eq!(ftl.order.len(), ftl.nodes.len());
    }

    #[test]
    fn mapping_consistency_under_gc_pressure() {
        let (mut ftl, mut env) = setup(400, "rsbc");
        for i in 0..4000u32 {
            let lpn = if i % 2 == 0 {
                (i / 2) % 48
            } else {
                100 + (i / 2) % 1700
            };
            write(&mut ftl, &mut env, lpn);
        }
        assert!(env.stats.gc_updates > 0, "GC must have migrated pages");
        // Every written LPN resolves to the valid page that holds it, and
        // no LPN has two valid pages.
        let mut seen = std::collections::HashSet::new();
        for (_, tag, is_tp) in env.flash().scan_valid() {
            if !is_tp {
                assert!(seen.insert(tag), "LPN {tag} has two valid pages");
            }
        }
        for lpn in 0..48u32 {
            let ppn = ftl
                .translate(&mut env, lpn, &AccessCtx::single(false))
                .unwrap()
                .expect("hot page mapped");
            env.read_data_page(ppn, lpn).unwrap();
        }
    }

    #[test]
    fn hotness_average_orders_nodes() {
        let (mut ftl, mut env) = setup(4096, "");
        // Node 0: one old access. Node 1: one recent access. Then touch
        // node 0 repeatedly -> its average rises above node 1's.
        read(&mut ftl, &mut env, 0);
        read(&mut ftl, &mut env, 1024);
        for _ in 0..5 {
            read(&mut ftl, &mut env, 0);
        }
        let coldest = ftl.order.first().unwrap().1;
        assert_eq!(coldest, 1, "node 1 (vtpn 1) must now be coldest");
    }

    #[test]
    fn order_heap_invariants_hold_under_random_workload() {
        let (mut ftl, mut env) = setup_sized(64 << 20, 400, "rsbc");
        for i in 0..4000u32 {
            let lpn = (i.wrapping_mul(2654435761) >> 8) % 16384;
            driver::serve_page_access(
                &mut ftl,
                &mut env,
                lpn,
                AccessCtx {
                    is_write: i % 4 == 0,
                    remaining_in_request: (i % 7),
                },
            )
            .unwrap();
            // The heap mirrors the node map exactly...
            assert_eq!(ftl.order.len(), ftl.nodes.len());
        }
        assert!(
            ftl.order.len() >= 4,
            "workload too small to exercise the heap"
        );
        // ...every slot's key and back-pointer are in sync with its node...
        for (i, &(key, vtpn)) in ftl.order.iter().enumerate() {
            let node = &ftl.nodes[&vtpn];
            assert_eq!(node.heap_pos as usize, i, "back-pointer of vtpn {vtpn}");
            assert_eq!(node.hot_key, key, "stale key for vtpn {vtpn}");
            assert_eq!(node.hotness(), key, "key != hotness for vtpn {vtpn}");
        }
        // ...and the min-heap property holds, so order[0] is the coldest.
        for i in 1..ftl.order.len() {
            let parent = (i - 1) / 2;
            assert!(
                ftl.order[parent] <= ftl.order[i],
                "heap property violated at slot {i}"
            );
        }
    }
}
