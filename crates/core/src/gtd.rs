//! The global translation directory (GTD).
//!
//! The GTD maps each virtual translation-page number to the physical page
//! currently holding that slice of the mapping table (Section 4.1: "The
//! global translation directory, which is small and entirely resident in
//! the mapping cache, maintains the physical locations of translation
//! pages"). It costs 4 bytes per translation page, accounted against the
//! cache budget by [`crate::SsdConfig::gtd_bytes`].

use tpftl_flash::{Ppn, Vtpn, PPN_NONE};

/// Directory of translation-page locations.
#[derive(Debug, Clone)]
pub struct Gtd {
    entries: Vec<Ppn>,
}

impl Gtd {
    /// Creates a directory for `num_vtpns` translation pages, all initially
    /// absent (the mapping table has not been written yet).
    pub fn new(num_vtpns: usize) -> Self {
        Self {
            entries: vec![PPN_NONE; num_vtpns],
        }
    }

    /// Number of translation pages the directory covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Physical location of translation page `vtpn`, or `None` if it has
    /// never been written.
    ///
    /// # Panics
    ///
    /// Panics if `vtpn` is out of range (an FTL addressing bug).
    pub fn get(&self, vtpn: Vtpn) -> Option<Ppn> {
        let p = self.entries[vtpn as usize];
        (p != PPN_NONE).then_some(p)
    }

    /// Records that translation page `vtpn` now lives at `ppn`.
    pub fn set(&mut self, vtpn: Vtpn, ppn: Ppn) {
        self.entries[vtpn as usize] = ppn;
    }

    /// RAM footprint in bytes (4 B per entry, as in the paper).
    pub fn bytes(&self) -> usize {
        self.entries.len() * 4
    }

    /// Iterates over present mappings as `(vtpn, ppn)`.
    pub fn iter_present(&self) -> impl Iterator<Item = (Vtpn, Ppn)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != PPN_NONE)
            .map(|(v, p)| (v as Vtpn, *p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut g = Gtd::new(8);
        assert_eq!(g.len(), 8);
        assert!(g.get(3).is_none());
        g.set(3, 100);
        assert_eq!(g.get(3), Some(100));
        g.set(3, 101);
        assert_eq!(g.get(3), Some(101));
        assert_eq!(g.bytes(), 32);
        assert_eq!(g.iter_present().collect::<Vec<_>>(), vec![(3, 101)]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let g = Gtd::new(2);
        let _ = g.get(2);
    }
}
