//! Block allocation and victim selection.
//!
//! The device is partitioned the way the paper's Figure 3 shows: *data
//! blocks* hold user pages, *translation blocks* hold the mapping table.
//! One active block per translation class — and one per *data stream* —
//! absorbs programs; sealed blocks are indexed by valid-page count so the
//! greedy garbage collector finds its victim ("the block with the fewest
//! valid pages") in O(1).
//!
//! Data streams are the hot/cold separation device: the environment
//! classifies each host write by temperature and routes it to a stream, so
//! pages with similar lifetimes share blocks and blocks die together
//! instead of trapping one long-lived page each. GC migrations land in the
//! coldest stream (stream 0). A single stream reproduces the original
//! single-active allocator bit for bit. Stream assignment is volatile:
//! [`BlockManager::rebuild`] seals every partially-written block and
//! restarts all streams empty, so crash recovery never depends on it.
//!
//! The valid-count index is allocation-free: each bucket is an intrusive
//! doubly-linked list threaded through dense per-block `prev`/`next` arrays,
//! and a bucket-occupancy bitmap locates the lowest non-empty bucket with a
//! `trailing_zeros`. Victim *order* is nevertheless identical to the
//! original per-bucket `BTreeSet` index (ascending block id within a
//! bucket), which the golden fixed-seed fingerprints depend on: picks scan
//! the — O(bucket) but allocation-free — list for the minimum id.

use std::collections::{BTreeSet, VecDeque};

use tpftl_flash::{BlockId, Flash, Ppn};

use crate::config::GcPolicy;
use crate::{FtlError, Result};

/// Candidates examined per pick for the non-greedy policies — a bounded
/// candidate set, as sampling-based GC schemes use on real devices.
const CANDIDATE_CAP: usize = 64;

/// Null link in the intrusive bucket lists.
const NIL: u32 = u32::MAX;

/// Wear spread the windowed policy tolerates before its static
/// wear-leveling arm turns over the least-worn sealed block, and the rate
/// limit (picks between turn-overs) it runs at (see
/// [`BlockManager::static_turnover`]). Both are tighter than the
/// wear-aware policy's — stream separation makes frozen cold blocks the
/// rule rather than the exception, so the spread grows faster and the
/// turn-over must keep pace.
const WINDOWED_WEAR_DELTA: u64 = 4;
const WINDOWED_TURNOVER_RATE: u32 = 4;

/// Rate limit of the wear-aware policy's static arm: every 8th pick, as
/// the original single-policy implementation hardcoded.
const WEAR_AWARE_TURNOVER_RATE: u32 = 8;

/// What a block is currently used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// In the free pool.
    Free,
    /// Actively absorbing data-page programs.
    ActiveData,
    /// Actively absorbing translation-page programs.
    ActiveTranslation,
    /// Fully programmed data block.
    SealedData,
    /// Fully programmed translation block.
    SealedTranslation,
    /// Picked as a GC victim; its pages are being migrated and it is no
    /// longer indexed in the valid-count buckets.
    Collecting,
    /// Managed directly by a block-mapping FTL; never indexed for the
    /// page-level garbage collector.
    Raw,
}

/// The two allocation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocClass {
    /// User data pages.
    Data,
    /// Translation pages.
    Translation,
}

/// Allocator and GC victim index over the device's blocks.
#[derive(Debug, Clone)]
pub struct BlockManager {
    kind: Vec<BlockKind>,
    free: VecDeque<BlockId>,
    /// Active data block per stream (index 0 = coldest). Always non-empty.
    active_data: Vec<Option<BlockId>>,
    active_trans: Option<BlockId>,
    /// Head of the intrusive list for bucket `v` = sealed blocks with
    /// exactly `v` valid pages ([`NIL`] when empty).
    bucket_head: Vec<u32>,
    /// Intrusive list links, indexed by block id ([`NIL`]-terminated).
    list_prev: Vec<u32>,
    list_next: Vec<u32>,
    /// One bit per bucket: set iff the bucket is non-empty, so the lowest
    /// occupied bucket is a word scan plus `trailing_zeros`.
    occupancy: Vec<u64>,
    /// Blocks currently indexed in a bucket.
    sealed_count: usize,
    pages_per_block: usize,
    /// Monotonic event counter; stamps seals for cost-benefit aging.
    seq: u64,
    /// Seal timestamp per block.
    seal_seq: Vec<u64>,
    /// Valid count per sealed block (mirrors the bucket it sits in).
    sealed_valid: Vec<u32>,
    /// Erase cycles per block (mirrors the flash wear counters).
    wear: Vec<u32>,
    /// Sealed blocks ordered by wear, for wear-aware selection.
    wear_index: BTreeSet<(u32, BlockId)>,
    /// Highest erase count any block has reached.
    max_wear: u32,
    /// Picks since the last static wear-leveling turn-over (rate limiter).
    picks_since_static: u32,
}

impl BlockManager {
    /// Creates a single-stream manager over `num_blocks` erased blocks.
    #[cfg_attr(not(test), expect(dead_code))]
    pub fn new(num_blocks: usize, pages_per_block: usize) -> Self {
        Self::with_streams(num_blocks, pages_per_block, 1)
    }

    /// Creates a manager with `streams` independent active data blocks
    /// (clamped to at least one). Stream 0 is the coldest.
    pub fn with_streams(num_blocks: usize, pages_per_block: usize, streams: u32) -> Self {
        Self {
            kind: vec![BlockKind::Free; num_blocks],
            free: (0..num_blocks as BlockId).collect(),
            active_data: vec![None; streams.max(1) as usize],
            active_trans: None,
            bucket_head: vec![NIL; pages_per_block + 1],
            list_prev: vec![NIL; num_blocks],
            list_next: vec![NIL; num_blocks],
            occupancy: vec![0; pages_per_block / 64 + 1],
            sealed_count: 0,
            pages_per_block,
            seq: 0,
            seal_seq: vec![0; num_blocks],
            sealed_valid: vec![0; num_blocks],
            wear: vec![0; num_blocks],
            wear_index: BTreeSet::new(),
            max_wear: 0,
            picks_since_static: 0,
        }
    }

    /// Reconstructs the manager from an existing flash device at mount
    /// time. Untouched blocks go to the free pool; any block with
    /// programmed pages is conservatively sealed (there are no actives
    /// after a restart — stream assignment is volatile and every stream
    /// restarts empty), classified as a translation block if it holds a
    /// valid translation page. Wear is seeded from the device's per-block
    /// erase counters.
    pub fn rebuild(flash: &Flash, streams: u32) -> Result<Self> {
        let geom = flash.geometry().clone();
        let mut mgr = Self::with_streams(geom.num_blocks, geom.pages_per_block, streams);
        mgr.free.clear();
        for b in 0..geom.num_blocks as BlockId {
            let wear = flash.erase_count(b).map_err(FtlError::Flash)? as u32;
            mgr.wear[b as usize] = wear;
            mgr.max_wear = mgr.max_wear.max(wear);
            let free_pages = flash.free_pages_in(b).map_err(FtlError::Flash)?;
            if free_pages == geom.pages_per_block {
                mgr.kind[b as usize] = BlockKind::Free;
                mgr.free.push_back(b);
                continue;
            }
            let valid = flash.valid_pages_in(b).map_err(FtlError::Flash)?;
            let is_translation = flash
                .valid_pages(b)
                .any(|(ppn, _)| flash.peek_translation_payload(ppn).is_some());
            mgr.kind[b as usize] = if is_translation {
                BlockKind::SealedTranslation
            } else {
                BlockKind::SealedData
            };
            mgr.bucket_insert(b, valid);
            mgr.seq += 1;
            mgr.seal_seq[b as usize] = mgr.seq;
            mgr.sealed_valid[b as usize] = valid as u32;
            mgr.wear_index.insert((wear, b));
        }
        Ok(mgr)
    }

    // ---- Intrusive valid-count buckets --------------------------------------

    /// Links `block` at the head of bucket `v`. O(1), no allocation.
    fn bucket_insert(&mut self, block: BlockId, v: usize) {
        let b = block as usize;
        debug_assert!(self.list_prev[b] == NIL && self.list_next[b] == NIL);
        let head = self.bucket_head[v];
        self.list_next[b] = head;
        if head != NIL {
            self.list_prev[head as usize] = block;
        }
        self.bucket_head[v] = block;
        self.occupancy[v / 64] |= 1 << (v % 64);
        self.sealed_count += 1;
    }

    /// Unlinks `block` from bucket `v`. O(1), no allocation.
    fn bucket_remove(&mut self, block: BlockId, v: usize) {
        let b = block as usize;
        let (prev, next) = (self.list_prev[b], self.list_next[b]);
        if prev != NIL {
            self.list_next[prev as usize] = next;
        } else {
            debug_assert_eq!(self.bucket_head[v], block, "block missing from its bucket");
            self.bucket_head[v] = next;
        }
        if next != NIL {
            self.list_prev[next as usize] = prev;
        }
        self.list_prev[b] = NIL;
        self.list_next[b] = NIL;
        if self.bucket_head[v] == NIL {
            self.occupancy[v / 64] &= !(1 << (v % 64));
        }
        self.sealed_count -= 1;
    }

    /// Lowest non-empty bucket with fewer than `limit` valid pages.
    fn min_occupied_bucket(&self, limit: usize) -> Option<usize> {
        for (w, &bits) in self.occupancy.iter().enumerate() {
            let base = w * 64;
            if base >= limit {
                break;
            }
            let mut bits = bits;
            if limit - base < 64 {
                bits &= (1u64 << (limit - base)) - 1;
            }
            if bits != 0 {
                return Some(base + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Smallest block id in bucket `v` (the `BTreeSet` index returned ids
    /// in ascending order; picks preserve that for replay determinism).
    fn min_block_in_bucket(&self, v: usize) -> Option<BlockId> {
        let mut min = NIL;
        let mut cur = self.bucket_head[v];
        while cur != NIL {
            min = min.min(cur);
            cur = self.list_next[cur as usize];
        }
        (min != NIL).then_some(min)
    }

    /// Appends bucket `v`'s smallest ids, ascending, to `out[start..]`,
    /// capping the total at [`CANDIDATE_CAP`]; returns the new length.
    fn append_bucket_sorted(&self, v: usize, out: &mut [BlockId], start: usize) -> usize {
        let mut len = start;
        let mut cur = self.bucket_head[v];
        while cur != NIL {
            let pos = start + out[start..len].partition_point(|&x| x < cur);
            if len < CANDIDATE_CAP {
                out.copy_within(pos..len, pos + 1);
                out[pos] = cur;
                len += 1;
            } else if pos < CANDIDATE_CAP {
                out.copy_within(pos..CANDIDATE_CAP - 1, pos + 1);
                out[pos] = cur;
            }
            cur = self.list_next[cur as usize];
        }
        len
    }

    /// Fills `out` with up to [`CANDIDATE_CAP`] reclaimable blocks in
    /// (valid count asc, block id asc) order — exactly the first
    /// `CANDIDATE_CAP` entries the per-bucket `BTreeSet` index would have
    /// yielded — and returns how many were written. No allocation.
    fn collect_candidates(&self, out: &mut [BlockId; CANDIDATE_CAP]) -> usize {
        let mut n = 0;
        for (w, &word) in self.occupancy.iter().enumerate() {
            let base = w * 64;
            if base >= self.pages_per_block {
                break;
            }
            let mut bits = word;
            if self.pages_per_block - base < 64 {
                bits &= (1u64 << (self.pages_per_block - base)) - 1;
            }
            while bits != 0 {
                let v = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                n = self.append_bucket_sorted(v, out, n);
                if n == CANDIDATE_CAP {
                    return n;
                }
            }
        }
        n
    }

    /// Number of blocks in the free pool.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Current use of `block`.
    #[cfg_attr(not(test), expect(dead_code))]
    pub fn kind(&self, block: BlockId) -> BlockKind {
        self.kind[block as usize]
    }

    /// Returns the PPN to program next for `class`, rotating in a fresh
    /// free block (and sealing the exhausted one) when necessary. Data
    /// allocations land in the coldest stream; temperature-routed callers
    /// use [`BlockManager::alloc_data_page`] directly.
    ///
    /// The caller must program the returned page before asking again.
    pub fn alloc_page(&mut self, class: AllocClass, flash: &Flash) -> Result<Ppn> {
        match class {
            AllocClass::Data => self.alloc_data_page(0, flash),
            AllocClass::Translation => self.alloc_translation_page(flash),
        }
    }

    /// Number of data streams this manager partitions writes into.
    pub fn streams(&self) -> usize {
        self.active_data.len()
    }

    /// Returns the PPN to program next for a data page of `stream`
    /// (clamped to the configured stream count). Each stream keeps its own
    /// active block, so pages of different streams never share a block.
    pub fn alloc_data_page(&mut self, stream: usize, flash: &Flash) -> Result<Ppn> {
        let stream = stream.min(self.active_data.len() - 1);
        if let Some(b) = self.active_data[stream] {
            if let Some(ppn) = flash.next_free_ppn(b) {
                return Ok(ppn);
            }
            self.seal_block(b, BlockKind::SealedData, flash)?;
        }
        let b = self.free.pop_front().ok_or(FtlError::DeviceFull)?;
        self.kind[b as usize] = BlockKind::ActiveData;
        self.active_data[stream] = Some(b);
        flash.next_free_ppn(b).ok_or(FtlError::DeviceFull) // A free-pool block is always erased.
    }

    fn alloc_translation_page(&mut self, flash: &Flash) -> Result<Ppn> {
        if let Some(b) = self.active_trans {
            if let Some(ppn) = flash.next_free_ppn(b) {
                return Ok(ppn);
            }
            self.seal_block(b, BlockKind::SealedTranslation, flash)?;
        }
        let b = self.free.pop_front().ok_or(FtlError::DeviceFull)?;
        self.kind[b as usize] = BlockKind::ActiveTranslation;
        self.active_trans = Some(b);
        flash.next_free_ppn(b).ok_or(FtlError::DeviceFull)
    }

    /// Seals an exhausted active block and indexes it for the collector.
    fn seal_block(&mut self, b: BlockId, sealed_kind: BlockKind, flash: &Flash) -> Result<()> {
        self.kind[b as usize] = sealed_kind;
        let valid = flash.valid_pages_in(b).map_err(FtlError::Flash)?;
        self.bucket_insert(b, valid);
        self.seq += 1;
        self.seal_seq[b as usize] = self.seq;
        self.sealed_valid[b as usize] = valid as u32;
        self.wear_index.insert((self.wear[b as usize], b));
        Ok(())
    }

    /// Re-indexes a sealed block after one of its pages was invalidated.
    /// `new_valid` is the block's valid count *after* the invalidation.
    pub fn on_invalidated(&mut self, block: BlockId, new_valid: usize) {
        match self.kind[block as usize] {
            BlockKind::SealedData | BlockKind::SealedTranslation => {
                // The page was valid before, so the block was in bucket
                // `new_valid + 1`.
                self.bucket_remove(block, new_valid + 1);
                self.bucket_insert(block, new_valid);
                self.sealed_valid[block as usize] = new_valid as u32;
            }
            // Active blocks are indexed when sealed; free blocks have no
            // valid pages to invalidate.
            _ => {}
        }
    }

    /// Picks the GC victim according to `policy`. Fully-valid blocks are
    /// only ever returned by the static wear-leveling path; for the normal
    /// policies `None` means the device is genuinely full.
    pub fn pick_victim(&mut self, policy: GcPolicy) -> Option<(BlockId, AllocClass)> {
        let b = match policy {
            GcPolicy::Greedy => self.pick_greedy()?,
            GcPolicy::CostBenefit => self.pick_cost_benefit()?,
            GcPolicy::WearAware { max_wear_delta } => self.pick_wear_aware(max_wear_delta)?,
            GcPolicy::Windowed { window } => self.pick_windowed(window)?,
        };
        self.claim(b)
    }

    fn claim(&mut self, b: BlockId) -> Option<(BlockId, AllocClass)> {
        self.bucket_remove(b, self.sealed_valid[b as usize] as usize);
        self.wear_index.remove(&(self.wear[b as usize], b));
        let class = match self.kind[b as usize] {
            BlockKind::SealedData => AllocClass::Data,
            BlockKind::SealedTranslation => AllocClass::Translation,
            k => unreachable!("claimed block has kind {k:?}"),
        };
        self.kind[b as usize] = BlockKind::Collecting;
        Some((b, class))
    }

    fn pick_greedy(&self) -> Option<BlockId> {
        let v = self.min_occupied_bucket(self.pages_per_block)?;
        self.min_block_in_bucket(v)
    }

    fn pick_cost_benefit(&self) -> Option<BlockId> {
        let mut cand = [0 as BlockId; CANDIDATE_CAP];
        let n = self.collect_candidates(&mut cand);
        let np = self.pages_per_block as f64;
        let mut best: Option<(f64, BlockId)> = None;
        for &b in &cand[..n] {
            let valid = self.sealed_valid[b as usize] as f64;
            if valid == 0.0 {
                return Some(b); // free reclaim, nothing can beat it
            }
            let u = valid / np;
            let age = (self.seq - self.seal_seq[b as usize]) as f64 + 1.0;
            let score = (1.0 - u) / (2.0 * u) * age;
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, b));
            }
        }
        best.map(|(_, b)| b)
    }

    /// Static wear leveling, shared by the wear-aware and windowed
    /// policies: when the wear spread exceeds `max_wear_delta`, turn over
    /// the least-worn sealed block so its cold data moves onto worn blocks
    /// and the block rejoins the hot rotation. Such a block is usually
    /// fully valid (that is *why* it never wears), so the turn-over frees
    /// little; rate-limit it to every 8th pick so the collector always
    /// makes progress in between, and defer it entirely while the free
    /// pool is critically low — migrating a fully-valid victim can seal
    /// both the data and the translation active block (two fresh-block
    /// pops) before its erase returns one, so firing it with fewer than
    /// two free blocks can exhaust the pool mid-collection.
    fn static_turnover(&mut self, max_wear_delta: u64, rate: u32) -> Option<BlockId> {
        self.picks_since_static += 1;
        if self.picks_since_static < rate || self.free.len() < 2 {
            return None;
        }
        let &(wear, b) = self.wear_index.iter().next()?;
        if (self.max_wear as u64).saturating_sub(wear as u64) > max_wear_delta {
            self.picks_since_static = 0;
            return Some(b);
        }
        None
    }

    fn pick_wear_aware(&mut self, max_wear_delta: u64) -> Option<BlockId> {
        if let Some(b) = self.static_turnover(max_wear_delta, WEAR_AWARE_TURNOVER_RATE) {
            return Some(b);
        }
        // Dynamic: among the least-valid candidates, prefer the least worn.
        let mut cand = [0 as BlockId; CANDIDATE_CAP];
        let n = self.collect_candidates(&mut cand);
        cand[..n]
            .iter()
            .copied()
            .min_by_key(|&b| (self.sealed_valid[b as usize], self.wear[b as usize], b))
    }

    /// Windowed cost-benefit: scores only the first `window` entries of
    /// the candidate order (valid asc, id asc) — i.e. a bounded window of
    /// the min-valid buckets — by `(1 − u) / 2u · age`, breaking exact
    /// score ties toward the least-worn block (then the smaller id). A
    /// zero-valid candidate is a free reclaim and wins outright. With
    /// `window == 1` the single candidate *is* the greedy victim, so the
    /// policy degenerates to [`GcPolicy::Greedy`] exactly — the golden
    /// test pins that identity bit for bit. With more than one stream the
    /// static wear-leveling arm (shared with the wear-aware policy, at
    /// [`WINDOWED_WEAR_DELTA`]/[`WINDOWED_TURNOVER_RATE`]) engages first:
    /// stream separation freezes cold blocks at low wear forever (they
    /// stay nearly fully valid, so no valid-count policy ever collects
    /// them), and without the turn-over the erase spread grows without
    /// bound. Single-stream windowed has no frozen-block problem — every
    /// stream shares one active block — so it stays a pure victim-choice
    /// policy there and the greedy equivalence is structural, not a
    /// workload accident.
    fn pick_windowed(&mut self, window: u32) -> Option<BlockId> {
        if self.streams() > 1 {
            if let Some(b) = self.static_turnover(WINDOWED_WEAR_DELTA, WINDOWED_TURNOVER_RATE) {
                return Some(b);
            }
        }
        let mut cand = [0 as BlockId; CANDIDATE_CAP];
        let n = self
            .collect_candidates(&mut cand)
            .min(window.max(1) as usize);
        let np = self.pages_per_block as f64;
        let mut best: Option<(f64, u32, BlockId)> = None;
        for &b in &cand[..n] {
            let valid = self.sealed_valid[b as usize] as f64;
            if valid == 0.0 {
                return Some(b); // free reclaim, nothing can beat it
            }
            let u = valid / np;
            let age = (self.seq - self.seal_seq[b as usize]) as f64 + 1.0;
            let score = (1.0 - u) / (2.0 * u) * age;
            let wear = self.wear[b as usize];
            if best.is_none_or(|(s, w, i)| score > s || (score == s && (wear, b) < (w, i))) {
                best = Some((score, wear, b));
            }
        }
        best.map(|(_, _, b)| b)
    }

    /// Returns an erased block to the free pool.
    pub fn on_erased(&mut self, block: BlockId) {
        debug_assert!(matches!(self.kind[block as usize], BlockKind::Collecting));
        self.kind[block as usize] = BlockKind::Free;
        let w = &mut self.wear[block as usize];
        *w += 1;
        self.max_wear = self.max_wear.max(*w);
        self.free.push_back(block);
    }

    /// Highest erase count any block has reached.
    pub fn max_wear(&self) -> u64 {
        self.max_wear as u64
    }

    /// Seals the current cold-stream active block of `class` without
    /// allocating a replacement (test hook for precise sealed states).
    #[cfg(test)]
    pub(crate) fn seal_active(&mut self, flash: &Flash, class: AllocClass) {
        let (taken, sealed_kind) = match class {
            AllocClass::Data => (self.active_data[0].take(), BlockKind::SealedData),
            AllocClass::Translation => (self.active_trans.take(), BlockKind::SealedTranslation),
        };
        let b = taken.expect("an active block to seal");
        self.kind[b as usize] = sealed_kind;
        let valid = flash.valid_pages_in(b).expect("block in range");
        self.bucket_insert(b, valid);
        self.seq += 1;
        self.seal_seq[b as usize] = self.seq;
        self.sealed_valid[b as usize] = valid as u32;
        self.wear_index.insert((self.wear[b as usize], b));
    }

    /// Number of sealed blocks currently indexed for collection.
    #[cfg_attr(not(test), expect(dead_code))]
    pub fn sealed_blocks(&self) -> usize {
        self.sealed_count
    }

    /// Claims a whole free block for direct management by a block-mapping
    /// FTL; it is never indexed for the page-level collector.
    pub fn take_raw_block(&mut self) -> Result<BlockId> {
        let b = self.free.pop_front().ok_or(FtlError::DeviceFull)?;
        self.kind[b as usize] = BlockKind::Raw;
        Ok(b)
    }

    /// Returns an erased raw block to the free pool.
    pub fn release_raw_block(&mut self, block: BlockId) {
        debug_assert!(matches!(self.kind[block as usize], BlockKind::Raw));
        self.kind[block as usize] = BlockKind::Free;
        self.free.push_back(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpftl_flash::{FlashGeometry, FlashTopology, OpPurpose};

    fn flash4() -> Flash {
        Flash::new(FlashGeometry {
            page_bytes: 4096,
            pages_per_block: 4,
            num_blocks: 4,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: FlashTopology::default(),
        })
        .unwrap()
    }

    #[test]
    fn alloc_rotates_and_seals() {
        let mut flash = flash4();
        let mut mgr = BlockManager::new(4, 4);
        assert_eq!(mgr.free_blocks(), 4);
        // Fill one block's worth of data pages.
        for i in 0..4u32 {
            let ppn = mgr.alloc_page(AllocClass::Data, &flash).unwrap();
            assert_eq!(ppn, i);
            flash.program_page(ppn, i, OpPurpose::HostData).unwrap();
        }
        assert_eq!(mgr.kind(0), BlockKind::ActiveData);
        // Next alloc seals block 0 and rotates to block 1.
        let ppn = mgr.alloc_page(AllocClass::Data, &flash).unwrap();
        assert_eq!(ppn, 4);
        assert_eq!(mgr.kind(0), BlockKind::SealedData);
        assert_eq!(mgr.kind(1), BlockKind::ActiveData);
        assert_eq!(mgr.free_blocks(), 2);
        assert_eq!(mgr.sealed_blocks(), 1);
    }

    #[test]
    fn data_and_translation_use_separate_actives() {
        let flash = flash4();
        let mut mgr = BlockManager::new(4, 4);
        let d = mgr.alloc_page(AllocClass::Data, &flash).unwrap();
        let t = mgr.alloc_page(AllocClass::Translation, &flash).unwrap();
        assert_ne!(
            flash.geometry().block_of(d),
            flash.geometry().block_of(t),
            "classes must not share a block"
        );
    }

    #[test]
    fn victim_is_min_valid_sealed() {
        let mut flash = flash4();
        let mut mgr = BlockManager::new(4, 4);
        // Seal two data blocks.
        for i in 0..8u32 {
            let ppn = mgr.alloc_page(AllocClass::Data, &flash).unwrap();
            flash.program_page(ppn, i, OpPurpose::HostData).unwrap();
        }
        let _ = mgr.alloc_page(AllocClass::Data, &flash).unwrap(); // seals block 1
                                                                   // Invalidate 3 pages of block 1, 1 page of block 0.
        for ppn in [4u32, 5, 6] {
            flash.invalidate(ppn).unwrap();
            mgr.on_invalidated(1, flash.valid_pages_in(1).unwrap());
        }
        flash.invalidate(0).unwrap();
        mgr.on_invalidated(0, flash.valid_pages_in(0).unwrap());
        let (victim, class) = mgr.pick_victim(GcPolicy::Greedy).unwrap();
        assert_eq!(victim, 1, "block 1 has fewer valid pages");
        assert_eq!(class, AllocClass::Data);
        // Block 0 is next.
        assert_eq!(mgr.pick_victim(GcPolicy::Greedy).unwrap().0, 0);
        // Nothing else is sealed.
        assert!(mgr.pick_victim(GcPolicy::Greedy).is_none());
    }

    #[test]
    fn fully_valid_blocks_never_picked() {
        let mut flash = flash4();
        let mut mgr = BlockManager::new(4, 4);
        for i in 0..4u32 {
            let ppn = mgr.alloc_page(AllocClass::Data, &flash).unwrap();
            flash.program_page(ppn, i, OpPurpose::HostData).unwrap();
        }
        let _ = mgr.alloc_page(AllocClass::Data, &flash).unwrap(); // seals block 0, fully valid
        assert!(mgr.pick_victim(GcPolicy::Greedy).is_none());
    }

    #[test]
    fn erase_returns_to_pool() {
        let mut flash = flash4();
        let mut mgr = BlockManager::new(4, 4);
        for i in 0..4u32 {
            let ppn = mgr.alloc_page(AllocClass::Data, &flash).unwrap();
            flash.program_page(ppn, i, OpPurpose::HostData).unwrap();
        }
        let _ = mgr.alloc_page(AllocClass::Data, &flash).unwrap();
        for ppn in 0..4u32 {
            flash.invalidate(ppn).unwrap();
            mgr.on_invalidated(0, flash.valid_pages_in(0).unwrap());
        }
        let (victim, _) = mgr.pick_victim(GcPolicy::Greedy).unwrap();
        assert_eq!(victim, 0);
        flash.erase_block(0, OpPurpose::GcData).unwrap();
        mgr.on_erased(0);
        assert_eq!(mgr.kind(0), BlockKind::Free);
        assert_eq!(mgr.free_blocks(), 3);
    }

    /// Seals `n` data blocks with `valid[i]` valid pages each.
    fn sealed_setup(valid: &[usize]) -> (Flash, BlockManager) {
        let n = valid.len();
        let mut flash = Flash::new(FlashGeometry {
            page_bytes: 4096,
            pages_per_block: 4,
            num_blocks: n + 1,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: FlashTopology::default(),
        })
        .unwrap();
        let mut mgr = BlockManager::new(n + 1, 4);
        for (i, &v) in valid.iter().enumerate() {
            let b = seal_with(&mut mgr, &mut flash, v);
            assert_eq!(b, i as BlockId);
        }
        (flash, mgr)
    }

    /// Fills the next block the allocator hands out, leaves `valid` pages
    /// valid, seals it, and returns its id.
    fn seal_with(mgr: &mut BlockManager, flash: &mut Flash, valid: usize) -> BlockId {
        let mut first = 0;
        for p in 0..4u32 {
            let ppn = mgr.alloc_page(AllocClass::Data, flash).unwrap();
            if p == 0 {
                first = ppn;
            }
            flash.program_page(ppn, ppn, OpPurpose::HostData).unwrap();
        }
        let block = flash.geometry().block_of(first);
        for p in 0..(4 - valid) as u32 {
            flash.invalidate(first + p).unwrap();
            mgr.on_invalidated(block, flash.valid_pages_in(block).unwrap());
        }
        mgr.seal_active(flash, AllocClass::Data);
        block
    }

    /// Claims `block` through the given policy-free greedy pick and erases
    /// it, returning it to the pool with one more wear cycle.
    fn churn_once(mgr: &mut BlockManager, flash: &mut Flash) -> BlockId {
        let (victim, _) = mgr.pick_victim(GcPolicy::Greedy).unwrap();
        for (ppn, _) in flash.valid_pages(victim).collect::<Vec<_>>() {
            flash.invalidate(ppn).unwrap();
        }
        flash.erase_block(victim, OpPurpose::GcData).unwrap();
        mgr.on_erased(victim);
        victim
    }

    #[test]
    fn cost_benefit_prefers_older_block_at_equal_utilization() {
        // Blocks 0 and 1 both have 2 valid pages; 0 was sealed earlier
        // (older age) so cost-benefit must pick it; block 2 is hot-full.
        let (_flash, mut mgr) = sealed_setup(&[2, 2, 4]);
        let (victim, _) = mgr.pick_victim(GcPolicy::CostBenefit).unwrap();
        assert_eq!(victim, 0);
    }

    #[test]
    fn cost_benefit_takes_free_reclaims_immediately() {
        let (_flash, mut mgr) = sealed_setup(&[2, 0, 3]);
        let (victim, _) = mgr.pick_victim(GcPolicy::CostBenefit).unwrap();
        assert_eq!(victim, 1, "a zero-valid block is a free win");
    }

    #[test]
    fn wear_aware_dynamic_prefers_less_worn_at_equal_valid() {
        // 4-block device. Wear block 0 once, then seal every block with
        // one valid page: all tie on valid count, wear differs.
        let mut flash = Flash::new(FlashGeometry {
            page_bytes: 4096,
            pages_per_block: 4,
            num_blocks: 4,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: FlashTopology::default(),
        })
        .unwrap();
        let mut mgr = BlockManager::new(4, 4);
        assert_eq!(seal_with(&mut mgr, &mut flash, 1), 0);
        assert_eq!(churn_once(&mut mgr, &mut flash), 0); // wear[0] = 1
                                                         // Free queue is now [1, 2, 3, 0]: seal all four with 1 valid page.
        for _ in 0..4 {
            seal_with(&mut mgr, &mut flash, 1);
        }
        // Greedy would take block 0 (smallest id in the bucket)...
        let mut greedy = mgr.clone();
        assert_eq!(greedy.pick_victim(GcPolicy::Greedy).unwrap().0, 0);
        // ...wear-aware avoids it in favour of a fresh block.
        let (victim, _) = mgr
            .pick_victim(GcPolicy::WearAware {
                max_wear_delta: 100,
            })
            .unwrap();
        assert_eq!(victim, 1, "least-worn block wins the tie");
    }

    #[test]
    fn wear_aware_static_leveling_turns_over_cold_blocks() {
        // 6-block device. Block 0 holds cold data (3 valid) and never
        // churns; the rest churn hot data and accumulate wear.
        let mut flash = Flash::new(FlashGeometry {
            page_bytes: 4096,
            pages_per_block: 4,
            num_blocks: 6,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: FlashTopology::default(),
        })
        .unwrap();
        let mut mgr = BlockManager::new(6, 4);
        assert_eq!(seal_with(&mut mgr, &mut flash, 3), 0);
        for _ in 0..12 {
            let b = seal_with(&mut mgr, &mut flash, 1);
            assert_ne!(b, 0, "block 0 stays sealed and cold");
            let v = churn_once(&mut mgr, &mut flash);
            assert_ne!(v, 0, "greedy churn never touches the cold block");
        }
        assert!(mgr.max_wear() >= 2);
        // Tight wear budget: the cold block must be turned over although a
        // 1-valid candidate exists... (none sealed right now except 0).
        let (victim, _) = mgr
            .pick_victim(GcPolicy::WearAware { max_wear_delta: 1 })
            .unwrap();
        assert_eq!(victim, 0, "static wear leveling turns over the cold block");
    }

    /// A *fully valid* cold block is invisible to the dynamic path, but
    /// the rate-limited static path still turns it over on the 8th pick.
    #[test]
    fn wear_aware_static_leveling_reaches_full_blocks() {
        let mut flash = Flash::new(FlashGeometry {
            page_bytes: 4096,
            pages_per_block: 4,
            num_blocks: 6,
            read_us: 25.0,
            write_us: 200.0,
            erase_us: 1500.0,
            topology: FlashTopology::default(),
        })
        .unwrap();
        let mut mgr = BlockManager::new(6, 4);
        assert_eq!(seal_with(&mut mgr, &mut flash, 4), 0); // cold, fully valid
        for _ in 0..12 {
            let b = seal_with(&mut mgr, &mut flash, 1);
            assert_ne!(b, 0);
            let v = churn_once(&mut mgr, &mut flash);
            assert_ne!(v, 0);
        }
        // Only block 0 is sealed and it is fully valid: the dynamic path
        // has no candidate, so the first 7 picks return None...
        for _ in 0..7 {
            assert!(mgr
                .pick_victim(GcPolicy::WearAware { max_wear_delta: 1 })
                .is_none());
        }
        // ...and the 8th triggers the static turn-over.
        let (victim, _) = mgr
            .pick_victim(GcPolicy::WearAware { max_wear_delta: 1 })
            .unwrap();
        assert_eq!(victim, 0);
    }

    /// The original per-bucket `BTreeSet` victim index, kept verbatim as an
    /// oracle: the intrusive-list rewrite must produce the *identical*
    /// victim sequence for every policy, or fixed-seed replays diverge.
    struct BucketOracle {
        buckets: Vec<BTreeSet<BlockId>>,
        pages_per_block: usize,
        seq: u64,
        seal_seq: Vec<u64>,
        sealed_valid: Vec<u32>,
        wear: Vec<u32>,
        wear_index: BTreeSet<(u32, BlockId)>,
        max_wear: u32,
        picks_since_static: u32,
    }

    impl BucketOracle {
        fn new(num_blocks: usize, pages_per_block: usize) -> Self {
            Self {
                buckets: (0..=pages_per_block).map(|_| BTreeSet::new()).collect(),
                pages_per_block,
                seq: 0,
                seal_seq: vec![0; num_blocks],
                sealed_valid: vec![0; num_blocks],
                wear: vec![0; num_blocks],
                wear_index: BTreeSet::new(),
                max_wear: 0,
                picks_since_static: 0,
            }
        }

        fn on_seal(&mut self, b: BlockId, valid: usize) {
            self.buckets[valid].insert(b);
            self.seq += 1;
            self.seal_seq[b as usize] = self.seq;
            self.sealed_valid[b as usize] = valid as u32;
            self.wear_index.insert((self.wear[b as usize], b));
        }

        fn on_invalidated(&mut self, b: BlockId, new_valid: usize) {
            assert!(self.buckets[new_valid + 1].remove(&b));
            self.buckets[new_valid].insert(b);
            self.sealed_valid[b as usize] = new_valid as u32;
        }

        fn on_claim(&mut self, b: BlockId) {
            self.buckets[self.sealed_valid[b as usize] as usize].remove(&b);
            self.wear_index.remove(&(self.wear[b as usize], b));
        }

        fn on_erased(&mut self, b: BlockId) {
            let w = &mut self.wear[b as usize];
            *w += 1;
            self.max_wear = self.max_wear.max(*w);
        }

        fn pick(
            &mut self,
            policy: GcPolicy,
            free_now: usize,
            multi_stream: bool,
        ) -> Option<BlockId> {
            match policy {
                GcPolicy::Greedy => self.pick_greedy(),
                GcPolicy::CostBenefit => self.pick_cost_benefit(),
                GcPolicy::WearAware { max_wear_delta } => {
                    self.pick_wear_aware(max_wear_delta, free_now)
                }
                GcPolicy::Windowed { window } => self.pick_windowed(window, free_now, multi_stream),
            }
        }

        /// Mirrors [`BlockManager::static_turnover`], with the live free
        /// count passed in (the oracle has no free pool of its own).
        fn static_turnover(
            &mut self,
            max_wear_delta: u64,
            rate: u32,
            free_now: usize,
        ) -> Option<BlockId> {
            self.picks_since_static += 1;
            if self.picks_since_static < rate || free_now < 2 {
                return None;
            }
            let &(wear, b) = self.wear_index.iter().next()?;
            if (self.max_wear as u64).saturating_sub(wear as u64) > max_wear_delta {
                self.picks_since_static = 0;
                return Some(b);
            }
            None
        }

        fn pick_greedy(&self) -> Option<BlockId> {
            self.buckets[..self.pages_per_block]
                .iter()
                .find_map(|bucket| bucket.iter().next().copied())
        }

        fn candidates(&self) -> impl Iterator<Item = BlockId> + '_ {
            self.buckets[..self.pages_per_block]
                .iter()
                .flat_map(|bucket| bucket.iter().copied())
                .take(CANDIDATE_CAP)
        }

        fn pick_cost_benefit(&self) -> Option<BlockId> {
            let np = self.pages_per_block as f64;
            let mut best: Option<(f64, BlockId)> = None;
            for b in self.candidates() {
                let valid = self.sealed_valid[b as usize] as f64;
                if valid == 0.0 {
                    return Some(b);
                }
                let u = valid / np;
                let age = (self.seq - self.seal_seq[b as usize]) as f64 + 1.0;
                let score = (1.0 - u) / (2.0 * u) * age;
                if best.is_none_or(|(s, _)| score > s) {
                    best = Some((score, b));
                }
            }
            best.map(|(_, b)| b)
        }

        fn pick_wear_aware(&mut self, max_wear_delta: u64, free_now: usize) -> Option<BlockId> {
            if let Some(b) =
                self.static_turnover(max_wear_delta, WEAR_AWARE_TURNOVER_RATE, free_now)
            {
                return Some(b);
            }
            self.candidates()
                .min_by_key(|&b| (self.sealed_valid[b as usize], self.wear[b as usize], b))
        }

        /// Brute-force windowed pick: take the first `window` candidates of
        /// the `BTreeSet` order and score them the same way.
        fn pick_windowed(
            &mut self,
            window: u32,
            free_now: usize,
            multi_stream: bool,
        ) -> Option<BlockId> {
            if multi_stream {
                if let Some(b) =
                    self.static_turnover(WINDOWED_WEAR_DELTA, WINDOWED_TURNOVER_RATE, free_now)
                {
                    return Some(b);
                }
            }
            let np = self.pages_per_block as f64;
            let mut best: Option<(f64, u32, BlockId)> = None;
            for b in self.candidates().take(window.max(1) as usize) {
                let valid = self.sealed_valid[b as usize] as f64;
                if valid == 0.0 {
                    return Some(b);
                }
                let u = valid / np;
                let age = (self.seq - self.seal_seq[b as usize]) as f64 + 1.0;
                let score = (1.0 - u) / (2.0 * u) * age;
                let wear = self.wear[b as usize];
                if best.is_none_or(|(s, w, i)| score > s || (score == s && (wear, b) < (w, i))) {
                    best = Some((score, wear, b));
                }
            }
            best.map(|(_, _, b)| b)
        }
    }

    /// Seeded seal/invalidate/pick/erase fuzz: the intrusive bucket lists
    /// must yield the same victim sequence as the `BTreeSet` oracle for
    /// greedy, cost-benefit, and wear-aware policies.
    #[test]
    fn victim_sequence_matches_btreeset_oracle() {
        use tpftl_rng::Rng64;

        const N_BLOCKS: usize = 12;
        const PPB: usize = 4;
        let policies = [
            GcPolicy::Greedy,
            GcPolicy::CostBenefit,
            GcPolicy::WearAware { max_wear_delta: 1 },
            GcPolicy::WearAware {
                max_wear_delta: 100,
            },
            GcPolicy::Windowed { window: 1 },
            GcPolicy::Windowed { window: 4 },
            GcPolicy::Windowed { window: 64 },
        ];
        for (pi, &policy) in policies.iter().enumerate() {
            for seed in 0..48u64 {
                let mut rng = Rng64::seed_from_u64(0xB10C + seed * 7 + pi as u64);
                let mut flash = Flash::new(FlashGeometry {
                    page_bytes: 4096,
                    pages_per_block: PPB,
                    num_blocks: N_BLOCKS,
                    read_us: 25.0,
                    write_us: 200.0,
                    erase_us: 1500.0,
                    topology: FlashTopology::default(),
                })
                .unwrap();
                // Odd seeds run a two-stream manager so the windowed
                // policy's static wear-leveling arm (multi-stream only)
                // is part of the fuzzed surface; the extra stream is
                // never written, so every other code path is identical.
                let mut mgr = BlockManager::with_streams(N_BLOCKS, PPB, 1 + (seed % 2) as u32);
                let mut oracle = BucketOracle::new(N_BLOCKS, PPB);
                let mut sealed: Vec<BlockId> = Vec::new();

                for _ in 0..400 {
                    match rng.range_u32(0, 4) {
                        // Seal a fresh block with a random valid count.
                        0 | 1 => {
                            if mgr.free_blocks() == 0 {
                                continue;
                            }
                            let valid = rng.range_usize(0, PPB + 1);
                            let b = seal_with(&mut mgr, &mut flash, valid);
                            oracle.on_seal(b, valid);
                            sealed.push(b);
                        }
                        // Invalidate one valid page of a random sealed block.
                        2 => {
                            if sealed.is_empty() {
                                continue;
                            }
                            let b = sealed[rng.range_usize(0, sealed.len())];
                            let pages: Vec<_> = flash.valid_pages(b).collect();
                            if pages.is_empty() {
                                continue;
                            }
                            let (ppn, _) = pages[rng.range_usize(0, pages.len())];
                            flash.invalidate(ppn).unwrap();
                            let now_valid = flash.valid_pages_in(b).unwrap();
                            mgr.on_invalidated(b, now_valid);
                            oracle.on_invalidated(b, now_valid);
                        }
                        // Pick a victim; sequences must agree exactly.
                        _ => {
                            let expect = oracle.pick(policy, mgr.free_blocks(), mgr.streams() > 1);
                            let got = mgr.pick_victim(policy);
                            assert_eq!(
                                got.map(|(b, _)| b),
                                expect,
                                "victim mismatch, policy {policy:?}, seed {seed}"
                            );
                            let Some((b, _)) = got else { continue };
                            oracle.on_claim(b);
                            sealed.retain(|&s| s != b);
                            for (ppn, _) in flash.valid_pages(b).collect::<Vec<_>>() {
                                flash.invalidate(ppn).unwrap();
                            }
                            flash.erase_block(b, OpPurpose::GcData).unwrap();
                            mgr.on_erased(b);
                            oracle.on_erased(b);
                        }
                    }
                    assert_eq!(mgr.sealed_blocks(), sealed.len(), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn windowed_one_is_exactly_greedy() {
        // Same setup as the cost-benefit test: block 0 is older at equal
        // utilization, so a wide window prefers it — but window = 1 only
        // ever sees the greedy candidate.
        let (_flash, mut mgr) = sealed_setup(&[2, 1, 4]);
        let mut greedy = mgr.clone();
        let g = greedy.pick_victim(GcPolicy::Greedy).unwrap().0;
        let w = mgr.pick_victim(GcPolicy::Windowed { window: 1 }).unwrap().0;
        assert_eq!(w, g);
        assert_eq!(w, 1, "min-valid block is the greedy victim");
    }

    #[test]
    fn windowed_scores_cost_benefit_inside_the_window() {
        // Block 1 has fewer valid pages (the greedy victim) but block 0 is
        // far older: stretch the age gap so the cost-benefit score inside
        // the window overrides pure greed and turns over the old block.
        let (_flash, mut mgr) = sealed_setup(&[2, 1]);
        mgr.seq = 10;
        mgr.seal_seq[0] = 1;
        mgr.seal_seq[1] = 10;
        let mut greedy = mgr.clone();
        assert_eq!(greedy.pick_victim(GcPolicy::Greedy).unwrap().0, 1);
        // score(0) = (1 − 0.5)/(2·0.5) · 10 = 5; score(1) = 1.5 · 1 = 1.5.
        let (victim, _) = mgr.pick_victim(GcPolicy::Windowed { window: 8 }).unwrap();
        assert_eq!(victim, 0, "the much older block wins the score");
    }

    #[test]
    fn windowed_breaks_score_ties_toward_less_worn_blocks() {
        // Two blocks with equal valid counts; sealed_setup seals them one
        // seq tick apart, so align the seal stamps to force an exact score
        // tie, then wear block 0: the tiebreak must pick the fresh block 1
        // although both the id order and the age order would say 0.
        let (_flash, mut mgr) = sealed_setup(&[1, 1]);
        mgr.seal_seq[0] = mgr.seal_seq[1];
        mgr.wear[0] = 5;
        let (victim, _) = mgr.pick_victim(GcPolicy::Windowed { window: 8 }).unwrap();
        assert_eq!(victim, 1, "equal scores fall back to the wear tiebreak");
    }

    #[test]
    fn streams_never_share_an_active_block() {
        let flash = flash4();
        let mut mgr = BlockManager::with_streams(4, 4, 2);
        let cold = mgr.alloc_data_page(0, &flash).unwrap();
        let hot = mgr.alloc_data_page(1, &flash).unwrap();
        assert_ne!(
            flash.geometry().block_of(cold),
            flash.geometry().block_of(hot),
            "streams must not share a block"
        );
        assert_eq!(mgr.streams(), 2);
        // Out-of-range stream indices clamp instead of panicking.
        let clamped = mgr.alloc_data_page(9, &flash).unwrap();
        assert_eq!(
            flash.geometry().block_of(clamped),
            flash.geometry().block_of(hot)
        );
    }

    /// Property: however allocations interleave across streams, every
    /// block only ever receives pages from one stream between erases.
    #[test]
    fn active_blocks_never_mix_streams() {
        use tpftl_rng::Rng64;

        const N_BLOCKS: usize = 24;
        const PPB: usize = 4;
        for seed in 0..24u64 {
            let mut rng = Rng64::seed_from_u64(0x57EA + seed);
            let streams = 2 + (seed % 3) as u32; // 2..=4 streams
            let mut flash = Flash::new(FlashGeometry {
                page_bytes: 4096,
                pages_per_block: PPB,
                num_blocks: N_BLOCKS,
                read_us: 25.0,
                write_us: 200.0,
                erase_us: 1500.0,
                topology: FlashTopology::default(),
            })
            .unwrap();
            let mut mgr = BlockManager::with_streams(N_BLOCKS, PPB, streams);
            // Which stream wrote each block (None = erased / untouched).
            let mut owner: Vec<Option<usize>> = vec![None; N_BLOCKS];
            let mut programmed: Vec<Vec<Ppn>> = vec![Vec::new(); N_BLOCKS];
            for op in 0..600u32 {
                let stream = rng.range_usize(0, streams as usize);
                let Ok(ppn) = mgr.alloc_data_page(stream, &flash) else {
                    // Device full: reclaim the greedy victim and move on.
                    let Some((victim, _)) = mgr.pick_victim(GcPolicy::Greedy) else {
                        break;
                    };
                    for p in programmed[victim as usize].drain(..) {
                        flash.invalidate(p).unwrap();
                    }
                    flash.erase_block(victim, OpPurpose::GcData).unwrap();
                    mgr.on_erased(victim);
                    owner[victim as usize] = None;
                    continue;
                };
                flash.program_page(ppn, op, OpPurpose::HostData).unwrap();
                let block = flash.geometry().block_of(ppn) as usize;
                match owner[block] {
                    None => owner[block] = Some(stream),
                    Some(s) => assert_eq!(
                        s, stream,
                        "seed {seed}: block {block} mixed streams {s} and {stream}"
                    ),
                }
                programmed[block].push(ppn);
            }
        }
    }

    #[test]
    fn device_full_reported() {
        let flash = flash4();
        let mut mgr = BlockManager::new(4, 4);
        // Claim both actives, then drain the pool.
        let _ = mgr.alloc_page(AllocClass::Data, &flash).unwrap();
        let _ = mgr.alloc_page(AllocClass::Translation, &flash).unwrap();
        // Exhaust the free pool via repeated sealing without programming is
        // not possible (alloc returns the same page until programmed), so
        // just steal the remaining free blocks directly.
        assert_eq!(mgr.free_blocks(), 2);
    }
}
