//! SSD and mapping-cache configuration.
//!
//! Encodes the paper's experiment setup (Section 5.1): the Table 3 flash
//! parameters, the "SSD as large as the trace's logical address space"
//! sizing rule, and the "mapping cache as large as a block-level FTL's
//! mapping table plus the GTD" cache rule (8 KB + 512 B for the 512 MB
//! Financial configuration; 256 KB + 16 KB for the 16 GB MSR one).

use serde::{Deserialize, Serialize};
use tpftl_flash::{FlashGeometry, FlashTopology};

/// Garbage-collection victim-selection policy (Section 2.3 of the paper
/// surveys GC-policy and wear-leveling work; the paper itself uses greedy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum GcPolicy {
    /// The paper's policy: the sealed block with the fewest valid pages.
    #[default]
    Greedy,
    /// Cost-benefit (Kawaguchi-style): maximize `(1 − u) / 2u · age` over
    /// the least-utilized candidates, trading reclaim efficiency against
    /// block age so cold blocks eventually turn over.
    CostBenefit,
    /// Greedy, but ties (and near-ties) broken toward the block with the
    /// fewest erase cycles; when the device's wear spread exceeds
    /// `max_wear_delta`, the least-worn sealed block is collected instead
    /// (simple static wear leveling).
    WearAware {
        /// Allowed spread between the most- and least-worn blocks.
        max_wear_delta: u64,
    },
    /// Windowed cost-benefit (Dayan & Bonnet's bounded-window cleaning):
    /// examine only the first `window` blocks of the intrusive victim
    /// index's `(valid asc, id asc)` order — the min-valid buckets — and
    /// pick the best `(1 − u) / 2u · age` score inside that window, exact
    /// score ties broken toward the block with the fewest erase cycles
    /// (cache-level wear mitigation, no separate leveling pass). The
    /// window bounds the scan to a handful of cache lines per pick while
    /// keeping greedy's reclaim efficiency; `window == 1` degenerates to
    /// exactly [`GcPolicy::Greedy`].
    Windowed {
        /// Number of least-valid candidates scored per victim pick
        /// (clamped to at least 1).
        window: u32,
    },
}

/// Number of hot/cold data streams — separate active data blocks user
/// writes are partitioned into by write temperature. Deserializes absent
/// (old configs) or `0` as the single-stream default; [`StreamCount::get`]
/// is the clamped accessor allocation paths use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamCount(pub u32);

impl Default for StreamCount {
    fn default() -> Self {
        StreamCount(1)
    }
}

impl StreamCount {
    /// The effective stream count (always at least 1).
    pub fn get(self) -> u32 {
        self.0.max(1)
    }
}

/// Full configuration of a simulated SSD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Host-visible capacity in bytes; set to the trace's address space.
    pub logical_bytes: u64,
    /// Extra physical capacity fraction (Table 3: 15 %).
    pub over_provision: f64,
    /// Total mapping-cache budget in bytes, *including* the GTD.
    pub cache_bytes: usize,
    /// GC trigger: collect when free blocks drop below this.
    pub gc_low_blocks: usize,
    /// GC target: collect until free blocks reach this.
    pub gc_high_blocks: usize,
    /// Fraction of the logical space sequentially written before the
    /// measured run (statistics are reset afterwards). The paper assumes
    /// the SSD "is in full use" for the Financial volumes; the MSR volumes
    /// are mostly empty.
    pub prefill_frac: f64,
    /// GC victim-selection policy (the paper uses greedy).
    #[serde(default)]
    pub gc_policy: GcPolicy,
    /// Hot/cold data-stream count. `1` (the default, and what absent keys
    /// in old serialized configs load as) reproduces the single-stream
    /// allocator bit for bit; with more streams, host writes are routed by
    /// write temperature and GC migrations demote to the coldest stream.
    #[serde(default)]
    pub streams: StreamCount,
    /// Channel/way parallelism of the flash array (defaults to the serial
    /// single-unit device, which reproduces the old timing bit for bit).
    #[serde(default)]
    pub topology: FlashTopology,
}

impl SsdConfig {
    /// Paper configuration for a device of `logical_bytes`, with the cache
    /// sized by the block-level-table + GTD rule.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpftl_core::SsdConfig;
    ///
    /// let fin = SsdConfig::paper_default(512 << 20);
    /// // 8 KB block-level table + 512 B GTD (Section 5.1).
    /// assert_eq!(fin.cache_bytes, 8 * 1024 + 512);
    /// let msr = SsdConfig::paper_default(16 << 30);
    /// // 256 KB + 16 KB.
    /// assert_eq!(msr.cache_bytes, 256 * 1024 + 16 * 1024);
    /// ```
    pub fn paper_default(logical_bytes: u64) -> Self {
        let mut cfg = Self {
            logical_bytes,
            over_provision: 0.15,
            cache_bytes: 0,
            gc_low_blocks: 0,
            gc_high_blocks: 0,
            prefill_frac: 0.0,
            gc_policy: GcPolicy::Greedy,
            streams: StreamCount(1),
            topology: FlashTopology::default(),
        };
        cfg.cache_bytes = cfg.paper_cache_bytes();
        // Watermarks scale with the device so that small test devices do
        // not reserve more free space than their over-provisioning allows.
        // The gap is one block: GC reclaims incrementally (one victim per
        // trigger), spreading its cost over requests the way the paper's
        // per-request GC accounting assumes, instead of stalling one
        // unlucky request behind a multi-block collection cascade.
        let blocks = cfg.geometry().num_blocks;
        cfg.gc_low_blocks = (blocks / 300).clamp(2, 8);
        cfg.gc_high_blocks = cfg.gc_low_blocks + 1;
        cfg
    }

    /// Flash geometry per Table 3, with this config's channel/way topology.
    pub fn geometry(&self) -> FlashGeometry {
        let mut geom = FlashGeometry::paper_default(self.logical_bytes, self.over_provision);
        geom.topology = self.topology;
        geom
    }

    /// Number of host-visible 4 KB pages.
    pub fn logical_pages(&self) -> u64 {
        self.logical_bytes / 4096
    }

    /// Mapping entries per translation page (4 KB page / 4 B PPN).
    pub fn entries_per_tp(&self) -> usize {
        1024
    }

    /// Number of translation pages covering the logical space.
    pub fn num_vtpns(&self) -> u64 {
        self.logical_pages().div_ceil(self.entries_per_tp() as u64)
    }

    /// Size of the global translation directory in bytes (4 B per
    /// translation page), always resident in the cache.
    pub fn gtd_bytes(&self) -> usize {
        (self.num_vtpns() * 4) as usize
    }

    /// Size of a block-level FTL's mapping table (4 B per 256 KB logical
    /// block); the paper's cache-sizing reference.
    pub fn block_table_bytes(&self) -> usize {
        ((self.logical_bytes / (256 * 1024)) * 4) as usize
    }

    /// The paper's default cache budget: block-level table + GTD.
    pub fn paper_cache_bytes(&self) -> usize {
        self.block_table_bytes() + self.gtd_bytes()
    }

    /// Size of the full page-level mapping table at 8 B per entry, the
    /// normalization base of Figures 8(c), 9 and 10.
    pub fn full_table_bytes(&self) -> usize {
        (self.logical_pages() * 8) as usize
    }

    /// Cache budget for a Figure 9-style sweep point: `frac` of the full
    /// table (entries at 8 B) plus the always-resident GTD.
    pub fn with_cache_fraction(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "cache fraction out of range");
        self.cache_bytes = ((self.full_table_bytes() as f64) * frac) as usize + self.gtd_bytes();
        self
    }

    /// Budget available to the FTL's own structures (total minus GTD).
    pub fn usable_cache_bytes(&self) -> usize {
        self.cache_bytes.saturating_sub(self.gtd_bytes())
    }

    /// Whether the device can be partitioned into `num_shards` LPN-striped
    /// shards: the count must be a nonzero power of two (routing is a mask
    /// of the low LPN bits) and every shard must own a whole number of
    /// translation pages, so per-shard devices keep the paper's
    /// 1024-entries-per-TP layout exactly.
    pub fn supports_shards(&self, num_shards: u32) -> bool {
        num_shards.is_power_of_two()
            && self
                .logical_pages()
                .is_multiple_of(num_shards as u64 * self.entries_per_tp() as u64)
    }

    /// The configuration of one shard when this device is partitioned into
    /// `num_shards` independent LPN-striped shards (the sharded engine's
    /// per-shard geometry). Every extensive resource — logical space, cache
    /// budget, and with them the derived flash geometry, GTD and
    /// over-provisioned pool — divides by the shard count; ratios
    /// (over-provisioning, prefill fraction) and the GC policy carry over,
    /// and the GC watermarks are re-derived from the shard-sized block
    /// count with the same rule [`SsdConfig::paper_default`] uses.
    ///
    /// `num_shards == 1` returns the configuration unchanged (bit-identical
    /// single-queue behaviour, whatever the caller customized).
    ///
    /// # Panics
    ///
    /// Panics when [`SsdConfig::supports_shards`] is false.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpftl_core::SsdConfig;
    ///
    /// let whole = SsdConfig::paper_default(512 << 20);
    /// let quarter = whole.shard_config(4);
    /// assert_eq!(quarter.logical_bytes, 128 << 20);
    /// assert_eq!(quarter.num_vtpns(), whole.num_vtpns() / 4);
    /// assert_eq!(whole.shard_config(1), whole);
    /// ```
    pub fn shard_config(&self, num_shards: u32) -> SsdConfig {
        assert!(
            self.supports_shards(num_shards),
            "cannot split {} logical pages into {num_shards} shards \
             (need a power of two dividing the translation-page count)",
            self.logical_pages()
        );
        if num_shards == 1 {
            return self.clone();
        }
        let n = num_shards as u64;
        let mut cfg = SsdConfig {
            logical_bytes: self.logical_bytes / n,
            over_provision: self.over_provision,
            cache_bytes: self.cache_bytes / num_shards as usize,
            gc_low_blocks: 0,
            gc_high_blocks: 0,
            prefill_frac: self.prefill_frac,
            gc_policy: self.gc_policy,
            streams: self.streams,
            topology: self.topology,
        };
        let blocks = cfg.geometry().num_blocks;
        cfg.gc_low_blocks = (blocks / 300).clamp(2, 8);
        cfg.gc_high_blocks = cfg.gc_low_blocks + 1;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cache_sizes_match_section_5_1() {
        let fin = SsdConfig::paper_default(512 << 20);
        assert_eq!(fin.block_table_bytes(), 8 * 1024);
        assert_eq!(fin.gtd_bytes(), 512);
        assert_eq!(fin.cache_bytes, 8704);
        assert_eq!(fin.num_vtpns(), 128);

        let msr = SsdConfig::paper_default(16 << 30);
        assert_eq!(msr.block_table_bytes(), 256 * 1024);
        assert_eq!(msr.gtd_bytes(), 16 * 1024);
        assert_eq!(msr.cache_bytes, 272 * 1024);
        assert_eq!(msr.num_vtpns(), 4096);
    }

    #[test]
    fn cache_fraction_sweep() {
        let cfg = SsdConfig::paper_default(512 << 20);
        // Full table: 131072 pages * 8 B = 1 MB.
        assert_eq!(cfg.full_table_bytes(), 1 << 20);
        let c = cfg.clone().with_cache_fraction(1.0 / 128.0);
        // 1/128 of the table is exactly the paper's 8 KB block-level size.
        assert_eq!(c.cache_bytes, 8 * 1024 + 512);
        let full = cfg.with_cache_fraction(1.0);
        assert_eq!(full.usable_cache_bytes(), 1 << 20);
    }

    #[test]
    fn usable_excludes_gtd() {
        let cfg = SsdConfig::paper_default(512 << 20);
        assert_eq!(cfg.usable_cache_bytes(), 8 * 1024);
    }

    #[test]
    #[should_panic(expected = "cache fraction")]
    fn zero_fraction_panics() {
        let _ = SsdConfig::paper_default(512 << 20).with_cache_fraction(0.0);
    }

    #[test]
    fn shard_config_divides_extensive_resources() {
        let whole = SsdConfig::paper_default(512 << 20);
        let part = whole.shard_config(4);
        assert_eq!(part.logical_bytes, whole.logical_bytes / 4);
        assert_eq!(part.cache_bytes, whole.cache_bytes / 4);
        assert_eq!(part.num_vtpns() * 4, whole.num_vtpns());
        assert_eq!(part.over_provision, whole.over_provision);
        assert_eq!(part.gc_policy, whole.gc_policy);
        assert_eq!(part.streams, whole.streams);
        assert_eq!(part.topology, whole.topology);
        // Watermarks follow the paper_default rule on the shard geometry.
        let blocks = part.geometry().num_blocks;
        assert_eq!(part.gc_low_blocks, (blocks / 300).clamp(2, 8));
        assert_eq!(part.gc_high_blocks, part.gc_low_blocks + 1);
    }

    #[test]
    fn one_shard_is_identity_even_when_customized() {
        let mut cfg = SsdConfig::paper_default(512 << 20);
        cfg.cache_bytes = 12_345;
        cfg.gc_low_blocks = 5;
        cfg.gc_high_blocks = 9;
        cfg.prefill_frac = 0.3;
        assert_eq!(cfg.shard_config(1), cfg);
    }

    #[test]
    fn supports_shards_checks_divisibility() {
        let cfg = SsdConfig::paper_default(512 << 20); // 128 VTPNs
        assert!(cfg.supports_shards(1));
        assert!(cfg.supports_shards(4));
        assert!(cfg.supports_shards(128));
        assert!(!cfg.supports_shards(3));
        assert!(!cfg.supports_shards(256));
        let tiny = SsdConfig::paper_default(4 << 20); // one VTPN
        assert!(tiny.supports_shards(1));
        assert!(!tiny.supports_shards(2));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn shard_config_rejects_unsupported_counts() {
        let _ = SsdConfig::paper_default(4 << 20).shard_config(2);
    }

    #[test]
    fn streams_default_and_shard_inheritance() {
        let mut cfg = SsdConfig::paper_default(512 << 20);
        assert_eq!(cfg.streams.get(), 1);
        // The degenerate zero count clamps to one stream.
        assert_eq!(StreamCount(0).get(), 1);
        cfg.streams = StreamCount(3);
        assert_eq!(cfg.shard_config(4).streams, StreamCount(3));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SsdConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.streams, StreamCount(3));
        // Old serialized configs (no streams key) load single-stream.
        let legacy = r#"{"logical_bytes":536870912,"over_provision":0.15,
            "cache_bytes":8704,"gc_low_blocks":2,"gc_high_blocks":3,
            "prefill_frac":0.0}"#;
        let back: SsdConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.streams, StreamCount(1));
        assert_eq!(back.gc_policy, GcPolicy::Greedy);
    }

    #[test]
    fn topology_threads_into_geometry_and_shards() {
        let mut cfg = SsdConfig::paper_default(512 << 20);
        assert_eq!(cfg.geometry().topology, FlashTopology::default());
        cfg.topology = FlashTopology {
            channels: 4,
            ways: 2,
            bus_us: 10.0,
        };
        assert_eq!(cfg.geometry().topology.units(), 8);
        // Shards inherit the whole device's per-shard parallelism verbatim.
        assert_eq!(cfg.shard_config(4).topology, cfg.topology);
        // Old serialized configs (no topology key) load as serial devices.
        let json = serde_json::to_string(&SsdConfig::paper_default(512 << 20)).unwrap();
        let back: SsdConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.topology, FlashTopology::default());
    }
}
