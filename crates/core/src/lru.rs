//! A slab-backed intrusive LRU list.
//!
//! Every cache design in this crate (DFTL's segmented CMT, CDFTL's
//! CMT/CTP, S-FTL's page list and dirty buffer, TPFTL's entry-level lists)
//! needs the same primitive: a doubly-linked recency list with O(1)
//! insert/touch/remove through stable handles that an index (hash map) can
//! hold. `LruList` provides it without per-node allocation; handles carry a
//! generation counter so a stale handle (use-after-remove, an FTL bug) is
//! detected instead of silently corrupting the list.

/// Sentinel for "no neighbour".
const NIL: u32 = u32::MAX;

/// Stable handle to an element of an [`LruList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LruIdx {
    slot: u32,
    gen: u32,
}

impl LruIdx {
    /// Sentinel handle that resolves to nothing, for dense index tables
    /// (`Box<[LruIdx]>`) where an `Option` would double the entry size.
    /// No live handle ever equals it: slots never reach `u32::MAX`.
    pub const NONE: LruIdx = LruIdx {
        slot: NIL,
        gen: u32::MAX,
    };

    /// Whether this is the [`LruIdx::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.slot == NIL
    }
}

impl Default for LruIdx {
    fn default() -> Self {
        Self::NONE
    }
}

#[derive(Debug, Clone)]
struct Slot<V> {
    prev: u32, // toward MRU
    next: u32, // toward LRU
    gen: u32,
    val: Option<V>,
}

/// A doubly-linked LRU list over a slab.
///
/// The *MRU* end holds the most recently used element, the *LRU* end the
/// coldest one.
///
/// # Examples
///
/// ```
/// use tpftl_core::lru::LruList;
///
/// let mut l = LruList::new();
/// let a = l.push_mru('a');
/// let b = l.push_mru('b');
/// assert_eq!(l.peek_lru(), Some((a, &'a')));
/// l.touch(a); // 'a' becomes hottest
/// assert_eq!(l.peek_lru(), Some((b, &'b')));
/// assert_eq!(l.pop_lru(), Some('b'));
/// assert_eq!(l.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LruList<V> {
    slots: Vec<Slot<V>>,
    free: Vec<u32>,
    mru: u32,
    lru: u32,
    len: usize,
}

impl<V> Default for LruList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LruList<V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            mru: NIL,
            lru: NIL,
            len: 0,
        }
    }

    /// Creates an empty list whose slab holds `cap` elements before
    /// reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            mru: NIL,
            lru: NIL,
            len: 0,
        }
    }

    /// Reserves slab room for `additional` more elements.
    pub fn reserve(&mut self, additional: usize) {
        let spare = self.free.len() + (self.slots.capacity() - self.slots.len());
        if additional > spare {
            self.slots.reserve(additional - spare);
        }
    }

    /// Number of slab slots ever allocated (live + free-list). Stays flat
    /// under churn when the free list is reused correctly.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot(&self, idx: LruIdx) -> &Slot<V> {
        let s = &self.slots[idx.slot as usize];
        assert!(
            s.gen == idx.gen && s.val.is_some(),
            "stale LRU handle {idx:?} (cache bookkeeping bug)"
        );
        s
    }

    /// Inserts `val` at the MRU end and returns its handle.
    pub fn push_mru(&mut self, val: V) -> LruIdx {
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.val = Some(val);
                sl.prev = NIL;
                sl.next = self.mru;
                s
            }
            None => {
                self.slots.push(Slot {
                    prev: NIL,
                    next: self.mru,
                    gen: 0,
                    val: Some(val),
                });
                (self.slots.len() - 1) as u32
            }
        };
        if self.mru != NIL {
            self.slots[self.mru as usize].prev = slot;
        }
        self.mru = slot;
        if self.lru == NIL {
            self.lru = slot;
        }
        self.len += 1;
        LruIdx {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Inserts `val` at the LRU (coldest) end and returns its handle.
    pub fn push_lru(&mut self, val: V) -> LruIdx {
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.val = Some(val);
                sl.next = NIL;
                sl.prev = self.lru;
                s
            }
            None => {
                self.slots.push(Slot {
                    prev: self.lru,
                    next: NIL,
                    gen: 0,
                    val: Some(val),
                });
                (self.slots.len() - 1) as u32
            }
        };
        if self.lru != NIL {
            self.slots[self.lru as usize].next = slot;
        }
        self.lru = slot;
        if self.mru == NIL {
            self.mru = slot;
        }
        self.len += 1;
        LruIdx {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.mru = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.lru = prev;
        }
    }

    /// Removes the element behind `idx` and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is stale.
    pub fn remove(&mut self, idx: LruIdx) -> V {
        self.slot(idx); // validate
        self.unlink(idx.slot);
        let sl = &mut self.slots[idx.slot as usize];
        let val = sl.val.take().expect("validated above");
        sl.gen = sl.gen.wrapping_add(1);
        self.free.push(idx.slot);
        self.len -= 1;
        val
    }

    /// Moves `idx` to the MRU end.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is stale.
    pub fn touch(&mut self, idx: LruIdx) {
        self.slot(idx); // validate
        if self.mru == idx.slot {
            return;
        }
        self.unlink(idx.slot);
        let sl = &mut self.slots[idx.slot as usize];
        sl.prev = NIL;
        sl.next = self.mru;
        if self.mru != NIL {
            self.slots[self.mru as usize].prev = idx.slot;
        }
        self.mru = idx.slot;
        if self.lru == NIL {
            self.lru = idx.slot;
        }
    }

    /// Shared access to the element behind `idx`, or `None` if stale.
    pub fn get(&self, idx: LruIdx) -> Option<&V> {
        let s = self.slots.get(idx.slot as usize)?;
        if s.gen == idx.gen {
            s.val.as_ref()
        } else {
            None
        }
    }

    /// Mutable access to the element behind `idx`, or `None` if stale.
    pub fn get_mut(&mut self, idx: LruIdx) -> Option<&mut V> {
        let s = self.slots.get_mut(idx.slot as usize)?;
        if s.gen == idx.gen {
            s.val.as_mut()
        } else {
            None
        }
    }

    /// Handle and value of the coldest element.
    pub fn peek_lru(&self) -> Option<(LruIdx, &V)> {
        if self.lru == NIL {
            return None;
        }
        let s = &self.slots[self.lru as usize];
        Some((
            LruIdx {
                slot: self.lru,
                gen: s.gen,
            },
            s.val.as_ref().expect("linked slots are occupied"),
        ))
    }

    /// Handle and value of the hottest element.
    pub fn peek_mru(&self) -> Option<(LruIdx, &V)> {
        if self.mru == NIL {
            return None;
        }
        let s = &self.slots[self.mru as usize];
        Some((
            LruIdx {
                slot: self.mru,
                gen: s.gen,
            },
            s.val.as_ref().expect("linked slots are occupied"),
        ))
    }

    /// Removes and returns the coldest element.
    pub fn pop_lru(&mut self) -> Option<V> {
        let (idx, _) = self.peek_lru()?;
        Some(self.remove(idx))
    }

    /// Applies `f` to every element, in unspecified (slab) order, without
    /// touching recency. The allocation-free alternative to collecting
    /// `iter_lru` handles just to call `get_mut` on each.
    pub fn for_each_value_mut<F: FnMut(&mut V)>(&mut self, mut f: F) {
        for s in &mut self.slots {
            if let Some(v) = s.val.as_mut() {
                f(v);
            }
        }
    }

    /// Iterates from the LRU (coldest) end toward the MRU end.
    pub fn iter_lru(&self) -> IterLru<'_, V> {
        IterLru {
            list: self,
            cur: self.lru,
        }
    }

    /// Iterates from the MRU (hottest) end toward the LRU end.
    pub fn iter_mru(&self) -> IterMru<'_, V> {
        IterMru {
            list: self,
            cur: self.mru,
        }
    }
}

/// Iterator from coldest to hottest; see [`LruList::iter_lru`].
pub struct IterLru<'a, V> {
    list: &'a LruList<V>,
    cur: u32,
}

impl<'a, V> Iterator for IterLru<'a, V> {
    type Item = (LruIdx, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let s = &self.list.slots[self.cur as usize];
        let idx = LruIdx {
            slot: self.cur,
            gen: s.gen,
        };
        self.cur = s.prev;
        Some((idx, s.val.as_ref().expect("linked slots are occupied")))
    }
}

/// Iterator from hottest to coldest; see [`LruList::iter_mru`].
pub struct IterMru<'a, V> {
    list: &'a LruList<V>,
    cur: u32,
}

impl<'a, V> Iterator for IterMru<'a, V> {
    type Item = (LruIdx, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let s = &self.list.slots[self.cur as usize];
        let idx = LruIdx {
            slot: self.cur,
            gen: s.gen,
        };
        self.cur = s.next;
        Some((idx, s.val.as_ref().expect("linked slots are occupied")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_touch_pop_order() {
        let mut l = LruList::new();
        let a = l.push_mru(1);
        let _b = l.push_mru(2);
        let _c = l.push_mru(3);
        assert_eq!(l.len(), 3);
        // Order (LRU->MRU): 1, 2, 3.
        assert_eq!(
            l.iter_lru().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        l.touch(a);
        // Now: 2, 3, 1.
        assert_eq!(
            l.iter_lru().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn push_lru_inserts_cold() {
        let mut l = LruList::new();
        l.push_mru("hot");
        l.push_lru("cold");
        assert_eq!(l.peek_lru().unwrap().1, &"cold");
        assert_eq!(l.peek_mru().unwrap().1, &"hot");
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new();
        let _a = l.push_mru(1);
        let b = l.push_mru(2);
        let _c = l.push_mru(3);
        assert_eq!(l.remove(b), 2);
        assert_eq!(
            l.iter_lru().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(
            l.iter_mru().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![3, 1]
        );
    }

    #[test]
    fn stale_handle_detected() {
        let mut l = LruList::new();
        let a = l.push_mru(1);
        l.remove(a);
        assert!(l.get(a).is_none());
        let b = l.push_mru(2); // reuses the slot
        assert_eq!(l.get(b), Some(&2));
        assert!(l.get(a).is_none(), "old generation must not resolve");
    }

    #[test]
    #[should_panic(expected = "stale LRU handle")]
    fn stale_touch_panics() {
        let mut l = LruList::new();
        let a = l.push_mru(1);
        l.remove(a);
        l.push_mru(2);
        l.touch(a);
    }

    #[test]
    fn get_mut_updates() {
        let mut l = LruList::new();
        let a = l.push_mru(10);
        *l.get_mut(a).unwrap() += 5;
        assert_eq!(l.get(a), Some(&15));
    }

    #[test]
    fn slot_reuse_keeps_len_consistent() {
        let mut l = LruList::new();
        for round in 0..3 {
            let idxs: Vec<_> = (0..10).map(|i| l.push_mru(i + round * 10)).collect();
            assert_eq!(l.len(), 10);
            for idx in idxs {
                l.remove(idx);
            }
            assert_eq!(l.len(), 0);
        }
        // Slab did not grow beyond the 10 concurrent elements.
        assert!(l.slots.len() <= 10);
    }
}
